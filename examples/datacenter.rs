//! A data-center-like scenario: a bursty stream of jobs with heavy-tailed
//! sizes and heterogeneous values on a pool of 8 speed-scalable machines —
//! the setting the paper's introduction motivates.
//!
//! The example runs the paper's PD algorithm, replays the resulting
//! schedule in the simulator, and prints an operations-style report
//! (acceptance rate, energy, utilisation, preemptions/migrations), plus the
//! dual lower bound that certifies how far from optimal the run can be.
//!
//! ```text
//! cargo run --release --example datacenter
//! ```

use pss_core::prelude::*;
use pss_sim::{Simulation, StreamingSimulation};
use pss_workloads::{ArrivalModel, RandomConfig, ValueModel, WorkModel};

fn main() {
    let cfg = RandomConfig {
        n_jobs: 120,
        machines: 8,
        alpha: 3.0,
        horizon: 30.0,
        arrival: ArrivalModel::Bursty { burst_size: 6 },
        work: WorkModel::Pareto {
            shape: 1.5,
            scale: 0.4,
            cap: 12.0,
        },
        value: ValueModel::ProportionalToEnergy { min: 0.2, max: 6.0 },
        ..RandomConfig::standard(2026)
    };
    let instance = cfg.generate();
    println!(
        "workload: {} jobs on {} machines, total work {:.1}, total value {:.1}",
        instance.len(),
        instance.machines,
        instance.total_work(),
        instance.total_value()
    );

    let run = PdScheduler::coarse().run(&instance).expect("PD run");
    let accepted = run.accepted.iter().filter(|a| **a).count();
    let cost = run.cost();
    let analysis = analyze_run(&run);

    println!("\n== profitable scheduling (PD) ==");
    println!("  accepted jobs      : {accepted}/{}", instance.len());
    println!("  energy             : {:.3}", cost.energy);
    println!("  lost value         : {:.3}", cost.lost_value);
    println!("  total cost         : {:.3}", cost.total());
    println!("  dual lower bound   : {:.3}", analysis.dual.value);
    println!(
        "  certified ratio    : {:.3} (proven worst case α^α = {:.0})",
        analysis.certified_ratio, analysis.competitive_bound
    );

    let sim = Simulation
        .run(&instance, &run.schedule)
        .expect("simulate PD schedule");
    println!("\n== execution report ==");
    println!(
        "  mean utilisation   : {:.1}%",
        100.0 * sim.mean_utilization()
    );
    println!("  preemptions        : {}", sim.preemptions);
    println!("  migrations         : {}", sim.migrations);
    for (i, m) in sim.machines.iter().enumerate() {
        println!(
            "  machine {i}: busy {:.1}, energy {:.2}, peak speed {:.2}",
            m.busy_time, m.energy, m.peak_speed
        );
    }

    // The same run, driven as a live event stream: jobs are fed to PD one
    // arrival at a time, and every decision is traced with its dual value
    // and handling latency — the view an online admission controller has.
    let stream = StreamingSimulation::default()
        .run(&PdScheduler::coarse(), &instance)
        .expect("streaming PD run");
    println!("\n== streaming arrival trace ==");
    println!(
        "  arrivals           : {} ({} accepted, {} rejected, rate {:.1}%)",
        stream.events.len(),
        stream.accepted_jobs(),
        stream.rejected_jobs(),
        100.0 * stream.acceptance_rate()
    );
    println!(
        "  arrival latency    : mean {:.3} ms, max {:.3} ms",
        1e3 * stream.mean_latency_secs(),
        1e3 * stream.max_latency_secs()
    );
    for event in stream.events.iter().take(5) {
        println!(
            "  t={:6.2}  {}  {}  dual {:.3}  frontier {} segs",
            event.time,
            event.job,
            if event.accepted { "accept" } else { "REJECT" },
            event.dual,
            event.frontier_segments
        );
    }
    println!(
        "  ... ({} more events)",
        stream.events.len().saturating_sub(5)
    );

    // What would happen if the operator insisted on finishing everything?
    let finish_all = MinEnergyScheduler::default()
        .schedule(&instance)
        .expect("offline finish-everything schedule");
    let finish_all_cost = finish_all.cost(&instance);
    println!("\n== comparison: finish every job (offline energy-optimal) ==");
    println!("  energy = total cost: {:.3}", finish_all_cost.total());
    println!(
        "  PD saves {:.1}% of that cost by rejecting {} low-value jobs",
        100.0 * (1.0 - cost.total() / finish_all_cost.total()),
        instance.len() - accepted
    );
}
