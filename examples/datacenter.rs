//! A data-center-like scenario: a bursty stream of jobs with heavy-tailed
//! sizes and heterogeneous values on a pool of 8 speed-scalable machines —
//! the setting the paper's introduction motivates.
//!
//! The example runs the paper's PD algorithm, replays the resulting
//! schedule in the simulator, and prints an operations-style report
//! (acceptance rate, energy, utilisation, preemptions/migrations), plus the
//! dual lower bound that certifies how far from optimal the run can be.
//!
//! ```text
//! cargo run -p pss-core --release --example datacenter
//! ```

use pss_core::prelude::*;
use pss_sim::Simulation;
use pss_workloads::{ArrivalModel, RandomConfig, ValueModel, WorkModel};

fn main() {
    let cfg = RandomConfig {
        n_jobs: 120,
        machines: 8,
        alpha: 3.0,
        horizon: 30.0,
        arrival: ArrivalModel::Bursty { burst_size: 6 },
        work: WorkModel::Pareto {
            shape: 1.5,
            scale: 0.4,
            cap: 12.0,
        },
        value: ValueModel::ProportionalToEnergy { min: 0.2, max: 6.0 },
        ..RandomConfig::standard(2026)
    };
    let instance = cfg.generate();
    println!(
        "workload: {} jobs on {} machines, total work {:.1}, total value {:.1}",
        instance.len(),
        instance.machines,
        instance.total_work(),
        instance.total_value()
    );

    let run = PdScheduler::coarse().run(&instance).expect("PD run");
    let accepted = run.accepted.iter().filter(|a| **a).count();
    let cost = run.cost();
    let analysis = analyze_run(&run);

    println!("\n== profitable scheduling (PD) ==");
    println!("  accepted jobs      : {accepted}/{}", instance.len());
    println!("  energy             : {:.3}", cost.energy);
    println!("  lost value         : {:.3}", cost.lost_value);
    println!("  total cost         : {:.3}", cost.total());
    println!("  dual lower bound   : {:.3}", analysis.dual.value);
    println!(
        "  certified ratio    : {:.3} (proven worst case α^α = {:.0})",
        analysis.certified_ratio, analysis.competitive_bound
    );

    let sim = Simulation
        .run(&instance, &run.schedule)
        .expect("simulate PD schedule");
    println!("\n== execution report ==");
    println!("  mean utilisation   : {:.1}%", 100.0 * sim.mean_utilization());
    println!("  preemptions        : {}", sim.preemptions);
    println!("  migrations         : {}", sim.migrations);
    for (i, m) in sim.machines.iter().enumerate() {
        println!(
            "  machine {i}: busy {:.1}, energy {:.2}, peak speed {:.2}",
            m.busy_time, m.energy, m.peak_speed
        );
    }

    // What would happen if the operator insisted on finishing everything?
    let finish_all = MinEnergyScheduler::default()
        .schedule(&instance)
        .expect("offline finish-everything schedule");
    let finish_all_cost = finish_all.cost(&instance);
    println!("\n== comparison: finish every job (offline energy-optimal) ==");
    println!("  energy = total cost: {:.3}", finish_all_cost.total());
    println!(
        "  PD saves {:.1}% of that cost by rejecting {} low-value jobs",
        100.0 * (1.0 - cost.total() / finish_all_cost.total()),
        instance.len() - accepted
    );
}
