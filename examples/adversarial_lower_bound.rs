//! The tightness construction of Theorem 3: on the Bansal–Kimbrel–Pruhs
//! staircase instance (with values too high to ever reject), PD's cost
//! approaches `α^α` times the optimum as the number of jobs grows.
//!
//! ```text
//! cargo run --release --example adversarial_lower_bound
//! ```

use pss_core::prelude::*;
use pss_workloads::staircase_instance;

fn main() {
    let alpha = 2.0;
    let bound = AlphaPower::new(alpha).competitive_ratio_pd();
    println!("alpha = {alpha}, proven tight competitive ratio alpha^alpha = {bound}");
    println!(
        "{:>6}  {:>12}  {:>12}  {:>8}",
        "n", "cost(PD)", "cost(OPT)", "ratio"
    );

    for n in [2usize, 4, 8, 16, 32, 64, 128] {
        let instance = staircase_instance(n, alpha, 1e9);
        let pd = PdScheduler::coarse()
            .schedule(&instance)
            .expect("PD on the staircase")
            .cost(&instance)
            .total();
        let opt = YdsScheduler
            .schedule(&instance)
            .expect("YDS on the staircase")
            .cost(&instance)
            .total();
        println!("{n:>6}  {pd:>12.4}  {opt:>12.4}  {:>8.4}", pd / opt);
    }

    println!(
        "\nThe ratio increases with n and converges to alpha^alpha = {bound}: the paper's\n\
         analysis is tight, and no better guarantee is possible for this algorithm."
    );
}
