//! Quickstart: schedule a handful of valuable jobs on two speed-scalable
//! processors with the paper's PD algorithm.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pss_core::prelude::*;

fn main() {
    // A small instance: two machines, cube-law power (α = 3), five jobs.
    // Tuples are (release, deadline, workload, value).
    let instance = Instance::from_tuples(
        2,
        3.0,
        vec![
            (0.0, 4.0, 2.0, 8.0),
            (1.0, 3.0, 1.0, 5.0),
            (1.5, 5.0, 3.0, 0.2), // big but nearly worthless: a rejection candidate
            (2.0, 6.0, 1.5, 4.0),
            (3.0, 7.0, 1.0, 2.5),
        ],
    )
    .expect("valid instance");

    // Run the paper's primal-dual algorithm with its analysed parameter
    // δ = α^{1-α}.
    let run = PdScheduler::default().run(&instance).expect("PD run");

    println!("== decisions ==");
    for job in &instance.jobs {
        let j = job.id.index();
        println!(
            "  {}: work {:.2}, value {:.2}, window [{:.1}, {:.1}) -> {}",
            job.id,
            job.work,
            job.value,
            job.release,
            job.deadline,
            if run.accepted[j] {
                "accepted"
            } else {
                "REJECTED"
            },
        );
    }

    let cost = run.cost();
    println!("\n== cost ==\n  {cost}");

    // Certify the paper's Theorem 3 on this very instance: the cost is at
    // most α^α times the dual lower bound (hence at most α^α · OPT).
    let analysis = analyze_run(&run);
    println!(
        "\n== Theorem 3 certificate ==\n  dual lower bound g(λ̃) = {:.4}\n  α^α = {:.1}\n  certified ratio = {:.3} (guarantee holds: {})",
        analysis.dual.value,
        analysis.competitive_bound,
        analysis.certified_ratio,
        analysis.guarantee_holds(),
    );

    // Show the machine-level schedule.
    println!("\n== schedule segments ==");
    for machine in 0..instance.machines {
        println!("  machine {machine}:");
        for seg in run.schedule.machine_segments(machine) {
            println!(
                "    [{:5.2}, {:5.2}) speed {:5.3} job {}",
                seg.start,
                seg.end,
                seg.speed,
                seg.job.map(|j| j.to_string()).unwrap_or_else(|| "-".into())
            );
        }
    }

    // A text Gantt view of the same schedule.
    println!("\n== gantt ==");
    print!(
        "{}",
        pss_sim::render_gantt(&instance, &run.schedule, &pss_sim::GanttOptions::default())
    );

    // The schedule is feasible by construction; double-check it.
    let report = validate_schedule(&instance, &run.schedule).expect("feasible schedule");
    println!(
        "\nfinished {}/{} jobs, energy {:.4}",
        report.finished_count(),
        instance.len(),
        report.energy
    );
}
