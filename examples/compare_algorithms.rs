//! Head-to-head comparison of the profitable schedulers (PD, Chan–Lam–Li)
//! and the classical mandatory-completion baselines (OA, AVR, qOA, BKP)
//! against the exact optimum on a single machine.
//!
//! ```text
//! cargo run --release --example compare_algorithms
//! ```

use pss_core::prelude::*;
use pss_metrics::{evaluate_scheduler, Table};
use pss_workloads::{RandomConfig, ValueModel};

fn main() {
    let cfg = RandomConfig {
        n_jobs: 12,
        machines: 1,
        alpha: 2.0,
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(99)
    };
    let instance = cfg.generate();

    let opt = BruteForceScheduler
        .schedule(&instance)
        .expect("exact optimum")
        .cost(&instance)
        .total();

    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(PdScheduler::default()),
        Box::new(CllScheduler),
        Box::new(OaScheduler),
        Box::new(QoaScheduler::default()),
        Box::new(AvrScheduler),
        Box::new(BkpScheduler::default()),
    ];

    let mut table = Table::new(
        format!("12 jobs, 1 machine, alpha = 2 — exact OPT = {opt:.4}"),
        &[
            "algorithm",
            "energy",
            "lost value",
            "total cost",
            "cost/OPT",
            "finished",
        ],
    );
    for algo in &algorithms {
        let result = evaluate_scheduler(algo.as_ref(), &instance).expect("algorithm run");
        table.push_row(vec![
            result.algorithm.clone(),
            format!("{:.4}", result.cost.energy),
            format!("{:.4}", result.cost.lost_value),
            format!("{:.4}", result.cost.total()),
            format!("{:.3}", result.cost.total() / opt),
            format!("{}/{}", result.finished_jobs, instance.len()),
        ]);
    }
    println!("{}", table.to_text());

    println!(
        "PD and CLL may reject low-value jobs (paying their value instead of energy);\n\
         the classical baselines always finish everything, which costs more energy when\n\
         some jobs are barely worth running."
    );
}
