//! The Chan–Lam–Li (CLL) profitable scheduler for a single machine.
//!
//! CLL extends Optimal Available with a rejection rule evaluated once, when
//! a job arrives: compute the OA plan *including* the new job and reject the
//! job if the speed OA plans to run it at exceeds the threshold
//! `(α^{α-2} · v_j / w_j)^{1/(α-1)}` — equivalently, if the energy the plan
//! would invest in the job exceeds `α^{α-2} · v_j`.  Admitted jobs are then
//! always finished.  Chan, Lam & Li prove this is `(α^α + 2e^α)`-competitive
//! for the cost = energy + lost value objective; the paper's PD algorithm
//! improves the bound to `α^α`.
//!
//! Like the other plan-revision baselines, CLL is event-driven: it
//! implements [`OnlineAlgorithm`] through a [`ReplanState`] whose admission
//! policy is the rejection rule above, and recovers its batch
//! [`Scheduler`](pss_types::Scheduler) impl through the blanket adapter.

use pss_offline::incremental::{left_aligned_planned_speed, PlanItem};
use pss_power::AlphaPower;
use pss_types::snapshot::{BlobReader, BlobWriter, SnapshotError, SnapshotPart};
use pss_types::{Instance, Job, OnlineAlgorithm, Schedule, ScheduleError};

use crate::oa::OaPlanner;
use crate::replan::{run_replanning, AdmissionPolicy, OnlineEnv, PendingJob, ReplanState};

/// The Chan–Lam–Li admission rule: reject a job if OA would plan it at a
/// speed above the value/workload threshold.
///
/// The planned speed is evaluated with the left-aligned YDS special case
/// (every job the rule sees has already been released, so all windows start
/// at `now`), which is `O(k log k)` per arrival instead of the general
/// `O(k³)` critical-interval search, and produces the same plan.
#[derive(Debug, Clone, Copy, Default)]
pub struct CllAdmission;

impl AdmissionPolicy for CllAdmission {
    fn admit(
        &self,
        env: &OnlineEnv,
        now: f64,
        job: &Job,
        pending: &[PendingJob],
    ) -> Result<bool, ScheduleError> {
        let power = AlphaPower::new(env.alpha);
        // Plan the remaining work of the admitted jobs plus the new one.
        let mut items: Vec<PlanItem> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| PlanItem {
                key: i,
                deadline: p.deadline,
                work: p.remaining,
            })
            .collect();
        let new_key = items.len();
        items.push(PlanItem {
            key: new_key,
            deadline: job.deadline,
            work: job.work,
        });
        let planned_speed = left_aligned_planned_speed(now, &items, new_key)?;
        let threshold = power.rejection_speed_threshold(job.value, job.work);
        Ok(planned_speed <= threshold * (1.0 + 1e-9))
    }
}

/// The admission rule is stateless; its snapshot is a tag so a CLL blob can
/// never restore into an admit-all executor (or vice versa).
impl SnapshotPart for CllAdmission {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_str("cll-admission");
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        match r.read_str()?.as_str() {
            "cll-admission" => Ok(CllAdmission),
            other => Err(SnapshotError::Invalid(format!(
                "expected the CLL admission rule, found {other}"
            ))),
        }
    }
}

/// The Chan–Lam–Li scheduler: OA with the value-based rejection rule.
#[derive(Debug, Clone, Copy, Default)]
pub struct CllScheduler;

impl CllScheduler {
    /// The original batch replanning loop, kept as the reference
    /// implementation for the incremental-vs-batch equivalence tests.
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(instance.machines, "CLL", "; the paper's PD handles m > 1")?;
        run_replanning(instance, &OaPlanner { speed_factor: 1.0 }, &CllAdmission)
    }
}

impl OnlineAlgorithm for CllScheduler {
    type Run = ReplanState<OaPlanner, CllAdmission>;

    fn algorithm_name(&self) -> String {
        "CLL".into()
    }

    fn start(&self, machines: usize, alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "CLL", "; the paper's PD handles m > 1")?;
        Ok(ReplanState::new(
            OaPlanner { speed_factor: 1.0 },
            CllAdmission,
            OnlineEnv { machines, alpha },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{validate_schedule, JobId, OnlineScheduler, Scheduler};

    #[test]
    fn high_value_jobs_are_all_finished() {
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 1.0, 100.0),
                (1.0, 3.0, 1.0, 100.0),
                (2.0, 6.0, 2.0, 100.0),
            ],
        )
        .unwrap();
        let s = CllScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn worthless_expensive_job_is_rejected() {
        // Needs speed 10 over a unit window (energy 100 at alpha 2) but is
        // worth almost nothing.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 0.001)]).unwrap();
        let s = CllScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert_eq!(report.rejected, vec![JobId(0)]);
        assert!((s.cost(&inst).total() - 0.001).abs() < 1e-9);
    }

    #[test]
    fn arrival_decisions_report_the_rejection_and_its_dual() {
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 0.001), (0.0, 2.0, 0.5, 10.0)])
                .unwrap();
        let mut run = CllScheduler.start_for(&inst).unwrap();
        let mut decisions = Vec::new();
        for id in inst.arrival_order() {
            let job = inst.job(id);
            decisions.push(run.on_arrival(job, job.release).unwrap());
        }
        assert!(!decisions[0].accepted);
        assert!((decisions[0].dual - 0.001).abs() < 1e-12);
        assert!(decisions[1].accepted);
    }

    #[test]
    fn threshold_case_alpha2_admits_exactly_when_value_covers_energy() {
        // With alpha = 2 the factor alpha^{alpha-2} is 1: a lone job is
        // admitted iff its planned energy w·s is at most its value.
        // Job over [0,1) with work 2 plans at speed 2, energy 4.
        let admit = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 2.0, 4.1)]).unwrap();
        let reject = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 2.0, 3.9)]).unwrap();
        let sa = CllScheduler.schedule(&admit).unwrap();
        let sr = CllScheduler.schedule(&reject).unwrap();
        assert!(validate_schedule(&admit, &sa).unwrap().rejected.is_empty());
        assert_eq!(
            validate_schedule(&reject, &sr).unwrap().rejected,
            vec![JobId(0)]
        );
    }

    #[test]
    fn rejection_is_permanent_even_if_load_later_drops() {
        // A burst makes job 1 expensive at its arrival; even though the
        // burst jobs finish quickly, job 1 stays rejected.
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 1.0, 3.0, 1000.0), // burst job forcing high speed
                (0.0, 1.2, 1.0, 0.5),    // cheap job arriving during the burst
            ],
        )
        .unwrap();
        let s = CllScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.contains(&JobId(1)));
    }

    #[test]
    fn incremental_cll_matches_the_batch_reference() {
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 1.0, 2.0),
                (0.5, 2.0, 2.0, 0.3),
                (1.0, 3.0, 1.0, 5.0),
                (2.0, 6.0, 1.5, 1.0),
            ],
        )
        .unwrap();
        let batch = CllScheduler.batch_schedule(&inst).unwrap();
        let inc = CllScheduler.schedule(&inst).unwrap();
        assert!(
            (batch.cost(&inst).total() - inc.cost(&inst).total()).abs()
                < 1e-9 * batch.cost(&inst).total().max(1.0)
        );
        assert_eq!(batch.unfinished_jobs(&inst), inc.unfinished_jobs(&inst));
    }

    #[test]
    fn cll_requires_single_machine() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(CllScheduler.schedule(&inst).is_err());
    }
}
