//! # pss-baselines
//!
//! The online baseline algorithms the paper compares against or builds on:
//!
//! * [`oa::OaScheduler`] — **Optimal Available** (Yao, Demers & Shenker):
//!   at every arrival, recompute the optimal (YDS) schedule for the
//!   remaining work and follow it until the next arrival.  Exactly
//!   `α^α`-competitive for mandatory completion.
//! * [`oa::QoaScheduler`] — **qOA** (Bansal et al.): follow the OA plan but
//!   at `q` times its speed (default `q = 2 − 1/α`), finishing work early.
//! * [`oa::MultiOaScheduler`] — the multiprocessor extension of OA (Albers,
//!   Antoniadis & Greiner): replan with the multiprocessor offline optimum
//!   (coordinate descent on the convex program) at every arrival.
//! * [`avr::AvrScheduler`] — **Average Rate**: every job is processed at its
//!   own density; the machine speed is the sum of densities of the active
//!   jobs.
//! * [`bkp::BkpScheduler`] — the **BKP** algorithm (Bansal, Kimbrel &
//!   Pruhs), evaluated on a configurable time grid.
//! * [`cll::CllScheduler`] — the **Chan–Lam–Li** profitable scheduler for a
//!   single machine: OA plus the rejection rule "reject a job if its planned
//!   speed exceeds `(α^{α-2}·v/w)^{1/(α-1)}`", `(α^α + 2e^α)`-competitive.
//!   This is the algorithm the paper's PD improves upon.
//!
//! All of them implement the event-driven
//! [`OnlineAlgorithm`](pss_types::OnlineAlgorithm) API — jobs arrive one at
//! a time, the committed past is never revised — and recover their batch
//! [`Scheduler`](pss_types::Scheduler) impl through the blanket adapter in
//! `pss-types`.  The plan-revision algorithms (OA, qOA, multiprocessor OA,
//! CLL) share the incremental replanning executor in [`replan`], which
//! enforces the online information model: plans may only depend on jobs
//! released so far and on the remaining (unprocessed) work.
//!
//! Every arrival path avoids rebuild-per-arrival work: the per-arrival
//! cost depends on the active set — except BKP's grid evaluation, which
//! is one `O(released)` sweep (its work term never forgets old jobs), so
//! BKP is amortised-flat per arrival but its tail latencies grow slowly
//! with the history.  OA, qOA
//! and CLL warm-start their left-aligned YDS replans
//! (`pss_offline::incremental` via [`replan::PlanCache`]); multiprocessor
//! OA seeds `pss_convex::solve_min_energy_warm` with the previous
//! coordinate-descent solution ([`oa::MultiOaWarm`]); AVR commits through a
//! deadline-sorted active-set index ([`avr::AvrState`]); and BKP keeps a
//! resident deadline/release speed index plus a lazy EDF heap
//! ([`bkp::BkpState`]).  Each fast path has a toggle
//! (`with_warm_start(false)`, `with_active_index(false)`,
//! `with_indexed_events(false)`) restoring the original
//! rebuild-or-rescan-per-arrival behaviour as cross-check and benchmark
//! baseline, and the `incremental_equivalence` integration tests pin the
//! fast and slow paths against each other (the `toggle_matrix` suite
//! additionally sweeps every toggle *combination* against the batch
//! references).
//!
//! Every run state ([`replan::ReplanState`], [`avr::AvrState`],
//! [`bkp::BkpState`]) implements `pss_types::Checkpointable`: a snapshot
//! captures the complete dynamic state — pending/active sets, warm caches
//! (including [`oa::MultiOaWarm`] and BKP's speed index with its convex
//! hull), toggles and the committed frontier — and a restored run
//! continues bit-identically (solver accuracy for OA(m)).  This is what
//! the checkpoint/failover layer in `pss-sim` builds on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod avr;
pub mod bkp;
pub mod cll;
pub mod oa;
pub mod replan;

pub(crate) fn require_single_machine(
    machines: usize,
    name: &str,
    hint: &str,
) -> Result<(), pss_types::ScheduleError> {
    if machines != 1 {
        return Err(pss_types::ScheduleError::Internal(format!(
            "{name} is a single-machine algorithm{hint}"
        )));
    }
    Ok(())
}

pub use avr::AvrScheduler;
pub use bkp::BkpScheduler;
pub use cll::CllScheduler;
pub use oa::{MultiOaScheduler, OaScheduler, QoaScheduler};
