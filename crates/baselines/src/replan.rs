//! The replanning executor shared by the online baseline algorithms.
//!
//! All the plan-revision style algorithms (OA, qOA, multiprocessor OA, CLL)
//! follow the same loop: whenever a job arrives, decide whether to admit it,
//! recompute a plan for the *remaining* work of all admitted jobs, and
//! follow that plan until the next arrival.  The executor implements this
//! loop once, enforcing the online information model:
//!
//! * the planner only ever sees jobs that have already been released,
//! * it only sees the work that has not been processed yet,
//! * already executed segments are never revised.

use pss_types::{num, Instance, Job, JobId, Schedule, ScheduleError, Segment};

/// A released, admitted and not yet finished job as seen by a planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingJob {
    /// The job's id in the original instance.
    pub id: JobId,
    /// Original release time.
    pub release: f64,
    /// Deadline.
    pub deadline: f64,
    /// Original workload.
    pub work: f64,
    /// Workload still to be processed.
    pub remaining: f64,
    /// Value.
    pub value: f64,
}

impl PendingJob {
    /// Creates the pending view of a freshly released job.
    pub fn new(job: &Job) -> Self {
        Self {
            id: job.id,
            release: job.release,
            deadline: job.deadline,
            work: job.work,
            remaining: job.work,
            value: job.value,
        }
    }

    /// The job as a [`Job`] with its remaining work and release clamped to
    /// `now` — the shape planners expect.
    pub fn as_job_at(&self, now: f64, dense_id: usize) -> Job {
        Job::new(
            dense_id,
            self.release.max(now),
            self.deadline,
            self.remaining,
            self.value,
        )
    }
}

/// A planning rule: given the current time and the pending jobs, produce a
/// schedule for the future (over the instance's machines).  Segment job ids
/// must refer to positions in the `pending` slice (dense ids `0..len`); the
/// executor maps them back to original ids.
pub trait Planner {
    /// Human-readable name of the planning rule.
    fn name(&self) -> String;

    /// Plans the remaining work of `pending` starting at time `now`.
    fn plan(
        &self,
        instance: &Instance,
        now: f64,
        pending: &[PendingJob],
    ) -> Result<Schedule, ScheduleError>;
}

/// An admission rule consulted once per job, at its release time, before the
/// job is added to the pending set.  Returning `false` rejects the job
/// permanently (its value is lost).
pub trait AdmissionPolicy {
    /// Decides whether to admit `job` at time `now` given the other pending
    /// jobs.
    fn admit(
        &self,
        instance: &Instance,
        now: f64,
        job: &Job,
        pending: &[PendingJob],
    ) -> Result<bool, ScheduleError>;
}

/// Admits every job (the mandatory-completion baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(
        &self,
        _instance: &Instance,
        _now: f64,
        _job: &Job,
        _pending: &[PendingJob],
    ) -> Result<bool, ScheduleError> {
        Ok(true)
    }
}

/// Runs the replanning loop and returns the executed schedule.
pub fn run_replanning<P: Planner, A: AdmissionPolicy>(
    instance: &Instance,
    planner: &P,
    admission: &A,
) -> Result<Schedule, ScheduleError> {
    let mut schedule = Schedule::empty(instance.machines);
    if instance.is_empty() {
        return Ok(schedule);
    }

    // Distinct release times in increasing order.
    let mut release_times: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    release_times.sort_by(|a, b| a.partial_cmp(b).expect("finite releases"));
    release_times.dedup_by(|a, b| num::approx_eq(*a, *b));
    let horizon_end = instance.horizon().1;

    let mut pending: Vec<PendingJob> = Vec::new();

    for (idx, &now) in release_times.iter().enumerate() {
        // Admit the jobs released now (in id order, as the paper's online
        // model reveals them one at a time).
        let mut arrivals: Vec<&Job> = instance
            .jobs
            .iter()
            .filter(|j| num::approx_eq(j.release, now))
            .collect();
        arrivals.sort_by_key(|j| j.id);
        for job in arrivals {
            if admission.admit(instance, now, job, &pending)? {
                pending.push(PendingJob::new(job));
            }
        }

        // Plan for the remaining work and follow the plan until the next
        // arrival (or the end of the horizon after the last arrival).
        let window_end = release_times.get(idx + 1).copied().unwrap_or(horizon_end);
        if window_end <= now + 1e-15 {
            continue;
        }
        let plan = planner.plan(instance, now, &pending)?;
        execute_window(&mut schedule, &mut pending, &plan, now, window_end);
        pending.retain(|p| p.remaining > 1e-9 * p.work.max(1.0) && p.deadline > window_end + 1e-12);
    }

    Ok(schedule)
}

/// Executes the part of `plan` that falls into `[from, to)`, appending the
/// executed segments (with original job ids) to `schedule` and decreasing
/// the pending jobs' remaining work.
fn execute_window(
    schedule: &mut Schedule,
    pending: &mut [PendingJob],
    plan: &Schedule,
    from: f64,
    to: f64,
) {
    let mut segments: Vec<Segment> = plan
        .segments
        .iter()
        .copied()
        .filter(|s| s.end > from + 1e-15 && s.start < to - 1e-15)
        .collect();
    segments.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));

    for mut seg in segments {
        seg.start = seg.start.max(from);
        seg.end = seg.end.min(to);
        if seg.duration() <= 1e-15 {
            continue;
        }
        let Some(plan_id) = seg.job else {
            continue;
        };
        let Some(p) = pending.get_mut(plan_id.index()) else {
            continue;
        };
        // Never process more than the job still needs (guards against
        // overshoot when a planner runs faster than strictly necessary).
        let max_duration = if seg.speed > 0.0 {
            p.remaining / seg.speed
        } else {
            0.0
        };
        if max_duration <= 1e-15 {
            continue;
        }
        if seg.duration() > max_duration {
            seg.end = seg.start + max_duration;
        }
        p.remaining = (p.remaining - seg.work_amount()).max(0.0);
        seg.job = Some(p.id);
        schedule.push(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::yds::yds_schedule;
    use pss_types::validate_schedule;

    /// A planner that simply runs every pending job back to back at speed 1
    /// starting from `now` on machine 0 (only useful to test the executor).
    struct NaivePlanner;

    impl Planner for NaivePlanner {
        fn name(&self) -> String {
            "naive".into()
        }

        fn plan(
            &self,
            instance: &Instance,
            now: f64,
            pending: &[PendingJob],
        ) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(instance.machines);
            let mut t = now;
            for (i, p) in pending.iter().enumerate() {
                let d = p.remaining;
                s.push(Segment::work(0, t, t + d, 1.0, JobId(i)));
                t += d;
            }
            Ok(s)
        }
    }

    /// A YDS planner, the real OA, to exercise the executor end to end.
    struct YdsPlanner;

    impl Planner for YdsPlanner {
        fn name(&self) -> String {
            "yds".into()
        }

        fn plan(
            &self,
            instance: &Instance,
            now: f64,
            pending: &[PendingJob],
        ) -> Result<Schedule, ScheduleError> {
            let jobs: Vec<Job> = pending
                .iter()
                .enumerate()
                .map(|(i, p)| p.as_job_at(now, i))
                .collect();
            yds_schedule(&jobs, instance.alpha).map(|r| r.schedule)
        }
    }

    #[test]
    fn executor_tracks_remaining_work_across_windows() {
        // Two jobs with generous deadlines; the naive planner at speed 1
        // finishes both.
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![(0.0, 10.0, 2.0, 1.0), (1.0, 10.0, 3.0, 1.0)],
        )
        .unwrap();
        let s = run_replanning(&inst, &NaivePlanner, &AdmitAll).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty());
        // Exactly the total work is processed (no overshoot).
        let total: f64 = s.segments.iter().map(|x| x.work_amount()).sum();
        assert!((total - 5.0).abs() < 1e-9);
    }

    #[test]
    fn executor_with_yds_planner_is_oa_and_finishes_everything() {
        let inst = Instance::from_tuples(
            1,
            3.0,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 6.0, 2.0, 1.0),
            ],
        )
        .unwrap();
        let s = run_replanning(&inst, &YdsPlanner, &AdmitAll).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty(), "rejected {:?}", report.rejected);
    }

    #[test]
    fn rejected_jobs_are_never_executed() {
        struct RejectSecond;
        impl AdmissionPolicy for RejectSecond {
            fn admit(
                &self,
                _i: &Instance,
                _now: f64,
                job: &Job,
                _p: &[PendingJob],
            ) -> Result<bool, ScheduleError> {
                Ok(job.id.index() != 1)
            }
        }
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![(0.0, 5.0, 1.0, 1.0), (1.0, 5.0, 1.0, 7.0)],
        )
        .unwrap();
        let s = run_replanning(&inst, &YdsPlanner, &RejectSecond).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert_eq!(report.rejected, vec![JobId(1)]);
        assert!((s.cost(&inst).lost_value - 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_instance_gives_empty_schedule() {
        let inst = Instance::from_tuples(2, 2.0, vec![]).unwrap();
        let s = run_replanning(&inst, &NaivePlanner, &AdmitAll).unwrap();
        assert!(s.segments.is_empty());
    }
}
