//! The replanning executor shared by the online baseline algorithms.
//!
//! All the plan-revision style algorithms (OA, qOA, multiprocessor OA, CLL)
//! follow the same loop: whenever a job arrives, decide whether to admit it,
//! recompute a plan for the *remaining* work of all admitted jobs, and
//! follow that plan until the next arrival.  The executor implements this
//! loop once, enforcing the online information model:
//!
//! * the planner only ever sees jobs that have already been released,
//! * it only sees the work that has not been processed yet,
//! * already executed segments are never revised.
//!
//! Two executors are provided:
//!
//! * [`ReplanState`] — the *incremental* executor implementing the
//!   event-driven [`OnlineScheduler`] trait: each
//!   [`on_arrival`](OnlineScheduler::on_arrival) executes the current plan
//!   up to the arrival time (extending the committed frontier), consults the
//!   admission policy, and replans.  Replans are **warm-started** through
//!   [`Planner::plan_warm`] and the per-run [`PlanCache`]: the OA-family
//!   planners reuse their previous YDS solution and only re-derive the part
//!   of the staircase the new arrival perturbs, instead of re-solving from
//!   zero.  This is what the blanket batch adapter and the streaming
//!   simulator drive; `with_warm_start(false)` restores the from-scratch
//!   behaviour for benchmarks.
//! * [`run_replanning`] — the original *batch* loop over an instance's
//!   distinct release times, retained verbatim as an independently coded
//!   reference: the `incremental_equivalence` integration tests check that
//!   both paths produce identical schedules on random workloads.

use pss_types::seglog::{FrontierPart, LogCheckpointable, SegmentLog};
use pss_types::snapshot::{
    BlobReader, BlobWriter, Checkpointable, SnapshotError, SnapshotPart, StateBlob,
};
use pss_types::{
    check_arrival, num, Decision, Instance, Job, JobId, OnlineScheduler, Schedule, ScheduleError,
    Segment,
};

/// The static environment an online run lives in: everything a planner may
/// know about the instance before any job is released.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineEnv {
    /// Number of identical speed-scalable machines.
    pub machines: usize,
    /// Energy exponent `α > 1` of the power function.
    pub alpha: f64,
}

/// A released, admitted and not yet finished job as seen by a planner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingJob {
    /// The job's id in the original instance.
    pub id: JobId,
    /// Original release time.
    pub release: f64,
    /// Deadline.
    pub deadline: f64,
    /// Original workload.
    pub work: f64,
    /// Workload still to be processed.
    pub remaining: f64,
    /// Value.
    pub value: f64,
}

impl PendingJob {
    /// Creates the pending view of a freshly released job.
    pub fn new(job: &Job) -> Self {
        Self {
            id: job.id,
            release: job.release,
            deadline: job.deadline,
            work: job.work,
            remaining: job.work,
            value: job.value,
        }
    }

    /// The job as a [`Job`] with its remaining work and release clamped to
    /// `now` — the shape planners expect.
    pub fn as_job_at(&self, now: f64, dense_id: usize) -> Job {
        Job::new(
            dense_id,
            self.release.max(now),
            self.deadline,
            self.remaining,
            self.value,
        )
    }
}

/// Mutable warm-start state a [`Planner`] may carry across the replanning
/// steps of one run.
///
/// The executor owns one cache per run and hands it to
/// [`Planner::plan_warm`] at every replan; planners without warm-start
/// support simply ignore it.  The cache is part of the run, not of the
/// planner, so one planner value can drive many concurrent runs.
#[derive(Debug, Clone, Default)]
pub struct PlanCache {
    /// Warm left-aligned YDS state (used by the OA-family planners): the
    /// deadline-sorted job order survives across replans, so consecutive
    /// plans cost an `O(k)` merge + staircase pass instead of a fresh
    /// `O(k³)` critical-interval search.
    pub yds: Option<pss_offline::IncrementalYds>,
    /// Warm multiprocessor-OA state: the previous coordinate-descent
    /// solution (per pending job, as a fraction profile over its old
    /// intervals) plus convergence statistics.  [`crate::oa::MultiOaPlanner`]
    /// remaps it onto the next replan's partition and seeds
    /// `pss_convex::solve_min_energy_warm` with it.
    pub multi: Option<crate::oa::MultiOaWarm>,
}

/// A planning rule: given the current time and the pending jobs, produce a
/// schedule for the future (over the environment's machines).  Segment job
/// ids must refer to positions in the `pending` slice (dense ids `0..len`);
/// the executor maps them back to original ids.
pub trait Planner {
    /// Human-readable name of the planning rule.
    fn name(&self) -> String;

    /// Plans the remaining work of `pending` starting at time `now`.
    fn plan(
        &self,
        env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
    ) -> Result<Schedule, ScheduleError>;

    /// Warm-started replan: like [`plan`](Self::plan), but may reuse state
    /// in `cache` carried over from the previous replanning step of the same
    /// run (e.g. the previous YDS solution, of which the new arrival only
    /// perturbs a part, or the previous coordinate-descent assignment the
    /// multiprocessor planner seeds its solver with).
    ///
    /// Implementations must produce a schedule *equivalent* to
    /// [`plan`](Self::plan) — same speeds, same per-job works — on every
    /// input, up to the planner's own numeric tolerance (exact for the
    /// combinatorial single-machine planners; solver-accuracy for the
    /// iterative multiprocessor one).  The `incremental_equivalence`
    /// integration tests pin this on random workloads.  The default ignores
    /// the cache and falls back to the from-scratch plan.
    fn plan_warm(
        &self,
        env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
        cache: &mut PlanCache,
    ) -> Result<Schedule, ScheduleError> {
        let _ = cache;
        self.plan(env, now, pending)
    }
}

/// An admission rule consulted once per job, at its release time, before the
/// job is added to the pending set.  Returning `false` rejects the job
/// permanently (its value is lost).
pub trait AdmissionPolicy {
    /// Decides whether to admit `job` at time `now` given the other pending
    /// jobs.
    fn admit(
        &self,
        env: &OnlineEnv,
        now: f64,
        job: &Job,
        pending: &[PendingJob],
    ) -> Result<bool, ScheduleError>;
}

/// Admits every job (the mandatory-completion baselines).
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmitAll;

impl AdmissionPolicy for AdmitAll {
    fn admit(
        &self,
        _env: &OnlineEnv,
        _now: f64,
        _job: &Job,
        _pending: &[PendingJob],
    ) -> Result<bool, ScheduleError> {
        Ok(true)
    }
}

/// The incremental replanning executor: event-driven state for one run of a
/// plan-revision algorithm.
///
/// The committed frontier grows by executing the *current* plan over the
/// window between consecutive arrivals; admission and replanning happen at
/// each arrival, after the window has been executed, so neither can affect
/// the past.
#[derive(Debug, Clone)]
pub struct ReplanState<P: Planner, A: AdmissionPolicy> {
    planner: P,
    admission: A,
    env: OnlineEnv,
    pending: Vec<PendingJob>,
    /// The current plan for the future (dense ids into `pending`).
    plan: Schedule,
    /// Set when the pending set changed since `plan` was computed; the plan
    /// is recomputed lazily just before it is executed, so a burst of
    /// simultaneous arrivals costs a single planning solve (exactly like
    /// the batch loop, which plans once per distinct release time).
    plan_stale: bool,
    /// Warm-start state handed to [`Planner::plan_warm`] at every replan.
    cache: PlanCache,
    /// Number of plans actually computed so far (the lazy-staleness scheme
    /// means this counts *distinct* replans, not arrivals: a burst of
    /// simultaneous arrivals costs one).  E13 reads it to report
    /// replans-per-arrival.
    replans: usize,
    /// When `false`, every replan calls the from-scratch [`Planner::plan`]
    /// instead — the pre-warm-start behaviour, kept for benchmarks and
    /// equivalence tests.
    warm_start: bool,
    /// The executed frontier (original job ids).
    committed: Schedule,
    /// Time up to which the frontier is committed.
    now: f64,
    /// Latest deadline among released jobs: the horizon the final plan is
    /// executed to by [`finish`](OnlineScheduler::finish).
    horizon_end: f64,
}

impl<P: Planner, A: AdmissionPolicy> ReplanState<P, A> {
    /// Creates a fresh run for the given environment.  Replans are
    /// warm-started by default; see [`with_warm_start`](Self::with_warm_start).
    pub fn new(planner: P, admission: A, env: OnlineEnv) -> Self {
        Self {
            planner,
            admission,
            env,
            pending: Vec::new(),
            plan: Schedule::empty(env.machines),
            plan_stale: false,
            cache: PlanCache::default(),
            replans: 0,
            warm_start: true,
            committed: Schedule::empty(env.machines),
            now: f64::NEG_INFINITY,
            horizon_end: f64::NEG_INFINITY,
        }
    }

    /// Enables or disables warm-started replanning.  With `false` every
    /// replan calls the from-scratch [`Planner::plan`]; this is the
    /// rebuild-per-arrival baseline the `warm_replan` benchmark and the
    /// warm-vs-cold equivalence tests compare against.
    pub fn with_warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// The jobs currently admitted and unfinished.
    pub fn pending(&self) -> &[PendingJob] {
        &self.pending
    }

    /// The warm-start cache carried across this run's replans (read-only).
    ///
    /// Benchmarks and the E12 streaming experiment read the solver
    /// statistics recorded here (e.g. coordinate-descent pass counts of the
    /// multiprocessor-OA planner) to make warm-start convergence visible in
    /// the results.
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Number of planning solves performed so far.
    ///
    /// Plans are recomputed lazily, just before the first execution after
    /// the pending set changed, so simultaneous (or batch-fed) arrivals
    /// share one solve: on a burst-coalesced stream this counter grows with
    /// the number of *bursts*, not arrivals — the quantity E13 tabulates as
    /// replans-per-arrival.
    pub fn replans(&self) -> usize {
        self.replans
    }

    /// Executes the current plan over `[self.now, to)` and drops finished or
    /// expired pending jobs, exactly like one window of the batch loop.
    ///
    /// Arrival times closer than the workspace tolerance are treated as
    /// simultaneous (no window is executed between them) — the same
    /// `approx_eq` rule the batch loop uses to dedup release times, so the
    /// two paths stay equivalent on near-tied releases.
    fn advance_to(&mut self, to: f64) -> Result<(), ScheduleError> {
        if !self.now.is_finite() {
            self.now = self.now.max(to);
            return Ok(());
        }
        if to <= self.now || num::approx_eq(to, self.now) {
            return Ok(());
        }
        if self.plan_stale {
            self.plan = if self.warm_start {
                self.planner
                    .plan_warm(&self.env, self.now, &self.pending, &mut self.cache)?
            } else {
                self.planner.plan(&self.env, self.now, &self.pending)?
            };
            self.plan_stale = false;
            self.replans += 1;
        }
        execute_window(
            &mut self.committed,
            &mut self.pending,
            &self.plan,
            self.now,
            to,
        );
        self.pending
            .retain(|p| p.remaining > 1e-9 * p.work.max(1.0) && p.deadline > to + 1e-12);
        self.now = to;
        Ok(())
    }
}

impl<P: Planner, A: AdmissionPolicy> OnlineScheduler for ReplanState<P, A> {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        check_arrival(job, self.now, now)?;
        self.advance_to(now.max(self.now))?;
        self.horizon_end = self.horizon_end.max(job.deadline);
        let admitted = self
            .admission
            .admit(&self.env, self.now, job, &self.pending)?;
        if admitted {
            self.pending.push(PendingJob::new(job));
        }
        self.plan_stale = true;
        Ok(if admitted {
            Decision::accept(0.0)
        } else {
            Decision::reject(job.value)
        })
    }

    /// Batch ingestion: the window up to `now` is executed **once** for the
    /// whole burst, each job then runs the per-job ingress check and the
    /// admission rule against the pending set as it stands (so the burst's
    /// earlier jobs are visible, exactly like the one-at-a-time loop and
    /// the batch reference's per-release admission pass), and the plan is
    /// marked stale once — the next execution performs a **single** (warm)
    /// replan for the burst.
    ///
    /// Because replanning is already lazy, this is decision- and
    /// schedule-identical to looping [`on_arrival`](OnlineScheduler::on_arrival)
    /// at the same `now`; the batch path saves only the per-job window
    /// bookkeeping.  The b-fold replan collapse comes from *feeding* bursts
    /// at one timestamp (e.g. via the streaming simulator's coalescing
    /// window) instead of at `b` distinct ones, each of which would execute
    /// a sliver of plan and force its own replan.
    fn on_arrivals(&mut self, jobs: &[Job], now: f64) -> Result<Vec<Decision>, ScheduleError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Validate the whole burst before mutating any state, so an invalid
        // job cannot leave a half-ingested window behind.
        for job in jobs {
            check_arrival(job, self.now, now)?;
        }
        self.advance_to(now.max(self.now))?;
        let mut decisions = Vec::with_capacity(jobs.len());
        for job in jobs {
            self.horizon_end = self.horizon_end.max(job.deadline);
            let admitted = self
                .admission
                .admit(&self.env, self.now, job, &self.pending)?;
            if admitted {
                self.pending.push(PendingJob::new(job));
            }
            decisions.push(if admitted {
                Decision::accept(0.0)
            } else {
                Decision::reject(job.value)
            });
        }
        self.plan_stale = true;
        Ok(decisions)
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        if self.horizon_end.is_finite() {
            self.advance_to(self.horizon_end)?;
        }
        Ok(self.committed)
    }
}

impl SnapshotPart for PendingJob {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_part(&self.id);
        w.write_f64(self.release);
        w.write_f64(self.deadline);
        w.write_f64(self.work);
        w.write_f64(self.remaining);
        w.write_f64(self.value);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            id: r.read_part()?,
            release: r.read_f64()?,
            deadline: r.read_f64()?,
            work: r.read_f64()?,
            remaining: r.read_f64()?,
            value: r.read_f64()?,
        })
    }
}

impl SnapshotPart for PlanCache {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_part(&self.yds);
        w.write_part(&self.multi);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            yds: r.read_part()?,
            multi: r.read_part()?,
        })
    }
}

impl SnapshotPart for AdmitAll {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_str("admit-all");
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        match r.read_str()?.as_str() {
            "admit-all" => Ok(AdmitAll),
            other => Err(SnapshotError::Invalid(format!(
                "expected admit-all admission policy, found {other}"
            ))),
        }
    }
}

/// State version of [`ReplanState`] snapshots.  Version 2 stores the
/// committed frontier as a [`FrontierPart`] (inline or a segment-log
/// cursor); version-1 blobs are rejected with a typed error.
const REPLAN_STATE_VERSION: u16 = 2;

impl<P, A> ReplanState<P, A>
where
    P: Planner + SnapshotPart,
    A: AdmissionPolicy + SnapshotPart,
{
    /// Encodes the run's live state with the given frontier encoding.
    fn encode_snapshot(&self, frontier: &FrontierPart) -> StateBlob {
        let mut w = BlobWriter::new();
        w.write_usize(self.env.machines);
        w.write_f64(self.env.alpha);
        w.write_part(&self.planner);
        w.write_part(&self.admission);
        w.write_seq(&self.pending);
        w.write_part(&self.plan);
        w.write_bool(self.plan_stale);
        w.write_part(&self.cache);
        w.write_usize(self.replans);
        w.write_bool(self.warm_start);
        w.write_part(frontier);
        w.write_f64(self.now);
        w.write_f64(self.horizon_end);
        StateBlob::new("replan", REPLAN_STATE_VERSION, w.into_payload())
    }

    /// Decodes a snapshot, resolving the frontier against `log` when it is
    /// stored as a cursor.
    fn decode_snapshot(blob: &StateBlob, log: Option<&SegmentLog>) -> Result<Self, SnapshotError> {
        let mut r = blob.expect("replan", REPLAN_STATE_VERSION)?;
        let machines = r.read_usize()?;
        let alpha = r.read_f64()?;
        let state = Self {
            env: OnlineEnv { machines, alpha },
            planner: r.read_part()?,
            admission: r.read_part()?,
            pending: r.read_seq()?,
            plan: r.read_part()?,
            plan_stale: r.read_bool()?,
            cache: r.read_part()?,
            replans: r.read_usize()?,
            warm_start: r.read_bool()?,
            committed: r.read_part::<FrontierPart>()?.resolve(log)?,
            now: r.read_f64()?,
            horizon_end: r.read_f64()?,
        };
        r.finish()?;
        if state.plan.machines != machines || state.committed.machines != machines {
            return Err(SnapshotError::Invalid(
                "schedule machine counts disagree with the environment".into(),
            ));
        }
        Ok(state)
    }
}

/// Checkpoint/restore for the replanning executor: the snapshot holds the
/// run's complete dynamic state — the pending set with its remaining works,
/// the current plan and its staleness flag, the warm-start cache (the
/// left-aligned YDS order and/or the previous multiprocessor solution), the
/// committed frontier, the clock and the horizon — plus the planner and
/// admission configuration, so [`Checkpointable::restore`] rebuilds the run
/// with no external context.  A restored run continues bit-identically
/// (solver-accuracy for the iterative multiprocessor planner); the
/// restore-equivalence integration tests pin this at arbitrary cut points,
/// including mid-burst.
impl<P, A> Checkpointable for ReplanState<P, A>
where
    P: Planner + SnapshotPart,
    A: AdmissionPolicy + SnapshotPart,
{
    fn snapshot(&self) -> StateBlob {
        self.encode_snapshot(&FrontierPart::Inline(self.committed.clone()))
    }

    fn restore(blob: &StateBlob) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, None)
    }
}

/// O(active) checkpointing: the blob stores only the pending set, plan,
/// caches and a [`pss_types::seglog::LogCursor`]; the committed frontier
/// lives in the run's [`SegmentLog`].
impl<P, A> LogCheckpointable for ReplanState<P, A>
where
    P: Planner + SnapshotPart,
    A: AdmissionPolicy + SnapshotPart,
{
    fn snapshot_live(&self, log: &mut SegmentLog) -> Result<StateBlob, SnapshotError> {
        let cursor = log.sync_from(&self.committed)?;
        Ok(self.encode_snapshot(&FrontierPart::cursor_of(self.committed.machines, cursor)))
    }

    fn restore_with_log(blob: &StateBlob, log: &SegmentLog) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, Some(log))
    }
}

/// Runs the batch replanning loop and returns the executed schedule.
///
/// This is the original, independently coded reference executor.  The
/// incremental [`ReplanState`] must produce an identical schedule when fed
/// the same instance arrival by arrival; the integration tests verify this
/// on random workloads.
pub fn run_replanning<P: Planner, A: AdmissionPolicy>(
    instance: &Instance,
    planner: &P,
    admission: &A,
) -> Result<Schedule, ScheduleError> {
    let env = OnlineEnv {
        machines: instance.machines,
        alpha: instance.alpha,
    };
    let mut schedule = Schedule::empty(instance.machines);
    if instance.is_empty() {
        return Ok(schedule);
    }

    // Distinct release times in increasing order.
    let mut release_times: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    release_times.sort_by(f64::total_cmp);
    release_times.dedup_by(|a, b| num::approx_eq(*a, *b));
    let horizon_end = instance.horizon().1;

    let mut pending: Vec<PendingJob> = Vec::new();

    for (idx, &now) in release_times.iter().enumerate() {
        // Admit the jobs released now (in id order, as the paper's online
        // model reveals them one at a time).
        let mut arrivals: Vec<&Job> = instance
            .jobs
            .iter()
            .filter(|j| num::approx_eq(j.release, now))
            .collect();
        arrivals.sort_by_key(|j| j.id);
        for job in arrivals {
            if admission.admit(&env, now, job, &pending)? {
                pending.push(PendingJob::new(job));
            }
        }

        // Plan for the remaining work and follow the plan until the next
        // arrival (or the end of the horizon after the last arrival).
        let window_end = release_times.get(idx + 1).copied().unwrap_or(horizon_end);
        if window_end <= now + 1e-15 {
            continue;
        }
        let plan = planner.plan(&env, now, &pending)?;
        execute_window(&mut schedule, &mut pending, &plan, now, window_end);
        pending.retain(|p| p.remaining > 1e-9 * p.work.max(1.0) && p.deadline > window_end + 1e-12);
    }

    Ok(schedule)
}

/// Executes the part of `plan` that falls into `[from, to)`, appending the
/// executed segments (with original job ids) to `schedule` and decreasing
/// the pending jobs' remaining work.
fn execute_window(
    schedule: &mut Schedule,
    pending: &mut [PendingJob],
    plan: &Schedule,
    from: f64,
    to: f64,
) {
    let mut segments: Vec<Segment> = plan
        .segments
        .iter()
        .copied()
        .filter(|s| s.end > from + 1e-15 && s.start < to - 1e-15)
        .collect();
    segments.sort_by(|a, b| a.start.total_cmp(&b.start));

    for mut seg in segments {
        seg.start = seg.start.max(from);
        seg.end = seg.end.min(to);
        if seg.duration() <= 1e-15 {
            continue;
        }
        let Some(plan_id) = seg.job else {
            continue;
        };
        let Some(p) = pending.get_mut(plan_id.index()) else {
            continue;
        };
        // Never process more than the job still needs (guards against
        // overshoot when a planner runs faster than strictly necessary).
        let max_duration = if seg.speed > 0.0 {
            p.remaining / seg.speed
        } else {
            0.0
        };
        if max_duration <= 1e-15 {
            continue;
        }
        if seg.duration() > max_duration {
            seg.end = seg.start + max_duration;
        }
        p.remaining = (p.remaining - seg.work_amount()).max(0.0);
        seg.job = Some(p.id);
        schedule.push(seg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::yds::yds_schedule;
    use pss_types::validate_schedule;

    /// A planner that simply runs every pending job back to back at speed 1
    /// starting from `now` on machine 0 (only useful to test the executor).
    struct NaivePlanner;

    impl Planner for NaivePlanner {
        fn name(&self) -> String {
            "naive".into()
        }

        fn plan(
            &self,
            env: &OnlineEnv,
            now: f64,
            pending: &[PendingJob],
        ) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(env.machines);
            let mut t = now;
            for (i, p) in pending.iter().enumerate() {
                let d = p.remaining;
                s.push(Segment::work(0, t, t + d, 1.0, JobId(i)));
                t += d;
            }
            Ok(s)
        }
    }

    /// A YDS planner, the real OA, to exercise the executor end to end.
    struct YdsPlanner;

    impl Planner for YdsPlanner {
        fn name(&self) -> String {
            "yds".into()
        }

        fn plan(
            &self,
            env: &OnlineEnv,
            now: f64,
            pending: &[PendingJob],
        ) -> Result<Schedule, ScheduleError> {
            let jobs: Vec<Job> = pending
                .iter()
                .enumerate()
                .map(|(i, p)| p.as_job_at(now, i))
                .collect();
            yds_schedule(&jobs, env.alpha).map(|r| r.schedule)
        }
    }

    fn drive_incremental<P: Planner + Clone, A: AdmissionPolicy + Clone>(
        instance: &Instance,
        planner: &P,
        admission: &A,
    ) -> Schedule {
        let mut state = ReplanState::new(
            planner.clone(),
            admission.clone(),
            OnlineEnv {
                machines: instance.machines,
                alpha: instance.alpha,
            },
        );
        for id in instance.arrival_order() {
            let job = instance.job(id);
            state.on_arrival(job, job.release).unwrap();
        }
        state.finish().unwrap()
    }

    impl Clone for NaivePlanner {
        fn clone(&self) -> Self {
            NaivePlanner
        }
    }

    impl Clone for YdsPlanner {
        fn clone(&self) -> Self {
            YdsPlanner
        }
    }

    #[test]
    fn executor_tracks_remaining_work_across_windows() {
        // Two jobs with generous deadlines; the naive planner at speed 1
        // finishes both.
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 10.0, 2.0, 1.0), (1.0, 10.0, 3.0, 1.0)])
                .unwrap();
        let s = run_replanning(&inst, &NaivePlanner, &AdmitAll).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty());
        // Exactly the total work is processed (no overshoot).
        let total: f64 = s.segments.iter().map(|x| x.work_amount()).sum();
        assert!((total - 5.0).abs() < 1e-9);
    }

    #[test]
    fn executor_with_yds_planner_is_oa_and_finishes_everything() {
        let inst = Instance::from_tuples(
            1,
            3.0,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 6.0, 2.0, 1.0),
            ],
        )
        .unwrap();
        let s = run_replanning(&inst, &YdsPlanner, &AdmitAll).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty(), "rejected {:?}", report.rejected);
    }

    #[test]
    fn incremental_state_matches_batch_executor() {
        let inst = Instance::from_tuples(
            1,
            2.5,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.5, 1.0),
                (1.0, 5.0, 0.5, 1.0), // simultaneous arrival
                (2.5, 6.0, 2.0, 1.0),
            ],
        )
        .unwrap();
        for (batch, inc) in [
            (
                run_replanning(&inst, &NaivePlanner, &AdmitAll).unwrap(),
                drive_incremental(&inst, &NaivePlanner, &AdmitAll),
            ),
            (
                run_replanning(&inst, &YdsPlanner, &AdmitAll).unwrap(),
                drive_incremental(&inst, &YdsPlanner, &AdmitAll),
            ),
        ] {
            let bc = batch.cost(&inst);
            let ic = inc.cost(&inst);
            assert!(
                (bc.total() - ic.total()).abs() < 1e-9 * bc.total().max(1.0),
                "batch {} vs incremental {}",
                bc.total(),
                ic.total()
            );
            for t in [0.25, 1.5, 2.0, 3.0, 4.5, 5.5] {
                assert!(
                    (batch.speed_at(0, t) - inc.speed_at(0, t)).abs() < 1e-9,
                    "profiles differ at t={t}"
                );
            }
        }
    }

    #[test]
    fn incremental_frontier_never_extends_past_now() {
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 10.0, 2.0, 1.0), (3.0, 10.0, 1.0, 1.0)])
                .unwrap();
        let mut state = ReplanState::new(
            NaivePlanner,
            AdmitAll,
            OnlineEnv {
                machines: 1,
                alpha: 2.0,
            },
        );
        for id in inst.arrival_order() {
            let job = inst.job(id);
            state.on_arrival(job, job.release).unwrap();
            for seg in &state.frontier().segments {
                assert!(seg.end <= job.release + 1e-12, "frontier leaks into future");
            }
        }
        let s = state.finish().unwrap();
        assert!(validate_schedule(&inst, &s).unwrap().rejected.is_empty());
    }

    #[test]
    fn rejected_jobs_are_never_executed() {
        #[derive(Clone)]
        struct RejectSecond;
        impl AdmissionPolicy for RejectSecond {
            fn admit(
                &self,
                _env: &OnlineEnv,
                _now: f64,
                job: &Job,
                _p: &[PendingJob],
            ) -> Result<bool, ScheduleError> {
                Ok(job.id.index() != 1)
            }
        }
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 5.0, 1.0, 1.0), (1.0, 5.0, 1.0, 7.0)])
            .unwrap();
        let s = run_replanning(&inst, &YdsPlanner, &RejectSecond).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert_eq!(report.rejected, vec![JobId(1)]);
        assert!((s.cost(&inst).lost_value - 7.0).abs() < 1e-12);
        // The incremental path reports the rejection in its decision.
        let mut state = ReplanState::new(
            YdsPlanner,
            RejectSecond,
            OnlineEnv {
                machines: 1,
                alpha: 2.0,
            },
        );
        let mut decisions = Vec::new();
        for id in inst.arrival_order() {
            let job = inst.job(id);
            decisions.push(state.on_arrival(job, job.release).unwrap().accepted);
        }
        assert_eq!(decisions, vec![true, false]);
    }

    #[test]
    fn empty_instance_gives_empty_schedule() {
        let inst = Instance::from_tuples(2, 2.0, vec![]).unwrap();
        let s = run_replanning(&inst, &NaivePlanner, &AdmitAll).unwrap();
        assert!(s.segments.is_empty());
        let state = ReplanState::new(
            NaivePlanner,
            AdmitAll,
            OnlineEnv {
                machines: 2,
                alpha: 2.0,
            },
        );
        assert!(state.finish().unwrap().segments.is_empty());
    }
}
