//! Optimal Available (OA), its speed-scaled variant qOA, and the
//! multiprocessor OA extension.
//!
//! All three are plan-revision algorithms driven by the replanning executor
//! in [`crate::replan`]: they implement the event-driven
//! [`OnlineAlgorithm`] trait (and hence, via the blanket adapter, the batch
//! [`Scheduler`](pss_types::Scheduler) trait) by starting a
//! [`ReplanState`] with the appropriate planner.  The original batch loops
//! are retained as `batch_schedule` reference paths for the equivalence
//! tests.

use pss_convex::{solve_min_energy_warm, solve_min_energy_with, ProgramContext, SolverOptions};
use pss_intervals::WorkAssignment;
use pss_offline::incremental::{IncrementalYds, PlanItem};
use pss_offline::yds::yds_schedule;
use pss_types::snapshot::{BlobReader, BlobWriter, SnapshotError, SnapshotPart};
use pss_types::{Instance, Job, OnlineAlgorithm, Schedule, ScheduleError};

use crate::replan::{
    run_replanning, AdmitAll, OnlineEnv, PendingJob, PlanCache, Planner, ReplanState,
};

/// The YDS-replanning planner: the plan at time `t` is the energy-optimal
/// schedule of the remaining work, which is precisely OA's definition.
#[derive(Debug, Clone, Copy, Default)]
pub struct OaPlanner {
    /// Factor by which every planned speed is multiplied (1.0 for OA,
    /// `2 − 1/α` for the usual qOA parameterisation).
    pub speed_factor: f64,
}

impl OaPlanner {
    /// Planner with a given speed factor (must be ≥ 1 so deadlines are met).
    pub fn with_factor(speed_factor: f64) -> Self {
        assert!(speed_factor >= 1.0, "speed factor must be >= 1");
        Self { speed_factor }
    }

    /// Multiplies every planned speed by the configured factor (1.0 and the
    /// `Default` zero value are the plain OA plan).
    fn apply_factor(&self, plan: &mut Schedule) {
        let factor = if self.speed_factor > 0.0 {
            self.speed_factor
        } else {
            1.0
        };
        // pss-lint: allow(float-eq) — exact sentinel: skip the no-op scale
        if factor != 1.0 {
            for seg in &mut plan.segments {
                seg.speed *= factor;
            }
        }
    }
}

impl Planner for OaPlanner {
    fn name(&self) -> String {
        // pss-lint: allow(float-eq) — exact config sentinels (1.0 = plain OA)
        if self.speed_factor == 1.0 || self.speed_factor == 0.0 {
            "OA".into()
        } else {
            format!("qOA(q={:.3})", self.speed_factor)
        }
    }

    fn plan(
        &self,
        env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
    ) -> Result<Schedule, ScheduleError> {
        let jobs: Vec<Job> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| p.as_job_at(now, i))
            .collect();
        let mut plan = yds_schedule(&jobs, env.alpha)?.schedule;
        self.apply_factor(&mut plan);
        Ok(plan)
    }

    /// Warm-started replan: every pending job has already been released, so
    /// its effective window starts at `now` — the left-aligned YDS special
    /// case.  The warm state keeps the previous solution's deadline order
    /// (keyed by original job id), so consecutive replans only merge the new
    /// arrival and re-derive the perturbed part of the staircase instead of
    /// running the general `O(k³)` critical-interval search.
    fn plan_warm(
        &self,
        _env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
        cache: &mut PlanCache,
    ) -> Result<Schedule, ScheduleError> {
        let items: Vec<PlanItem> = pending
            .iter()
            .map(|p| PlanItem {
                key: p.id.index(),
                deadline: p.deadline,
                work: p.remaining,
            })
            .collect();
        let warm = cache.yds.get_or_insert_with(IncrementalYds::default);
        // The plan's segment ids are item positions, which coincide with the
        // dense pending ids the executor expects — no remapping needed.
        let mut plan = warm.plan(now, &items)?;
        self.apply_factor(&mut plan);
        Ok(plan)
    }
}

/// The planner's configuration is part of a [`ReplanState`] snapshot, so a
/// restored run replans with the identical speed factor; a tag guards
/// against restoring a blob captured from a different planner type.
impl SnapshotPart for OaPlanner {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_str("oa-planner");
        w.write_f64(self.speed_factor);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        match r.read_str()?.as_str() {
            "oa-planner" => Ok(Self {
                speed_factor: r.read_f64()?,
            }),
            other => Err(SnapshotError::Invalid(format!(
                "expected an OA-family planner, found {other}"
            ))),
        }
    }
}

/// **Optimal Available** for a single machine (Yao, Demers & Shenker):
/// replan with YDS on the remaining work at every arrival.  `α^α`-competitive
/// for instances where every job must be finished.
#[derive(Debug, Clone, Copy, Default)]
pub struct OaScheduler;

impl OaScheduler {
    /// The original batch replanning loop, kept as the reference
    /// implementation for the incremental-vs-batch equivalence tests.
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(instance.machines, "OA", "; use MultiOaScheduler for m > 1")?;
        run_replanning(instance, &OaPlanner { speed_factor: 1.0 }, &AdmitAll)
    }
}

impl OnlineAlgorithm for OaScheduler {
    type Run = ReplanState<OaPlanner, AdmitAll>;

    fn algorithm_name(&self) -> String {
        "OA".into()
    }

    fn start(&self, machines: usize, alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "OA", "; use MultiOaScheduler for m > 1")?;
        Ok(ReplanState::new(
            OaPlanner { speed_factor: 1.0 },
            AdmitAll,
            OnlineEnv { machines, alpha },
        ))
    }
}

/// **qOA** (Bansal, Chan, Pruhs & Katz): follow OA's plan at `q` times its
/// speed.  The default `q = 2 − 1/α` is the parameterisation analysed in the
/// literature; any `q ≥ 1` is accepted.
#[derive(Debug, Clone, Copy, Default)]
pub struct QoaScheduler {
    /// The speed multiplier `q ≥ 1`; `None` selects `2 − 1/α`.
    pub q: Option<f64>,
}

impl QoaScheduler {
    fn effective_q(&self, alpha: f64) -> f64 {
        self.q.unwrap_or(2.0 - 1.0 / alpha).max(1.0)
    }

    /// The original batch replanning loop (reference implementation).
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(
            instance.machines,
            "qOA",
            "; use MultiOaScheduler for m > 1",
        )?;
        let q = self.effective_q(instance.alpha);
        run_replanning(instance, &OaPlanner::with_factor(q), &AdmitAll)
    }
}

impl OnlineAlgorithm for QoaScheduler {
    type Run = ReplanState<OaPlanner, AdmitAll>;

    fn algorithm_name(&self) -> String {
        "qOA".into()
    }

    fn start(&self, machines: usize, alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "qOA", "; use MultiOaScheduler for m > 1")?;
        Ok(ReplanState::new(
            OaPlanner::with_factor(self.effective_q(alpha)),
            AdmitAll,
            OnlineEnv { machines, alpha },
        ))
    }
}

/// Planner replanning with the *multiprocessor* offline optimum (coordinate
/// descent on the convex program, realised by Chen et al.'s algorithm).
///
/// Through [`Planner::plan_warm`] the planner keeps the previous replan's
/// solution in the run's [`PlanCache`] (as [`MultiOaWarm`]) and seeds
/// [`solve_min_energy_warm`] with it, remapped onto the new partition: when
/// an arrival adds one job, the descent converges in a few passes instead of
/// re-solving the convex program from scratch.
/// [`ReplanState::with_warm_start(false)`](crate::replan::ReplanState::with_warm_start)
/// restores the from-scratch behaviour as cross-check and bench baseline.
#[derive(Debug, Clone, Copy)]
pub struct MultiOaPlanner {
    /// Convex solver options used for every replanning step.
    pub options: SolverOptions,
}

impl MultiOaPlanner {
    /// Builds the replanning sub-instance and its program context for the
    /// pending jobs at time `now` (dense ids are pending positions).
    fn context(
        &self,
        env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
    ) -> Result<ProgramContext, ScheduleError> {
        let jobs: Vec<Job> = pending
            .iter()
            .enumerate()
            .map(|(i, p)| p.as_job_at(now, i))
            .collect();
        let sub = Instance::from_jobs(env.machines, env.alpha, jobs)
            .map_err(|e| ScheduleError::Internal(e.to_string()))?;
        Ok(ProgramContext::new(&sub))
    }
}

impl Planner for MultiOaPlanner {
    fn name(&self) -> String {
        "OA(m)".into()
    }

    fn plan(
        &self,
        env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
    ) -> Result<Schedule, ScheduleError> {
        if pending.is_empty() {
            return Ok(Schedule::empty(env.machines));
        }
        let ctx = self.context(env, now, pending)?;
        let sol = solve_min_energy_with(&ctx, &self.options);
        Ok(ctx.realize_schedule(&sol.assignment))
    }

    /// Warm-started replan: seed coordinate descent from the previous
    /// solution (kept in the cache keyed by original job id, remapped onto
    /// the current partition by time overlap), then record the new solution
    /// and its convergence statistics back into the cache.
    fn plan_warm(
        &self,
        env: &OnlineEnv,
        now: f64,
        pending: &[PendingJob],
        cache: &mut PlanCache,
    ) -> Result<Schedule, ScheduleError> {
        let warm = cache.multi.get_or_insert_with(MultiOaWarm::default);
        if pending.is_empty() {
            warm.rows.clear();
            return Ok(Schedule::empty(env.machines));
        }
        let ctx = self.context(env, now, pending)?;
        let seed = warm.seed_for(&ctx, pending);
        let sol = match &seed {
            Some(seed) => solve_min_energy_warm(&ctx, &self.options, seed),
            None => solve_min_energy_with(&ctx, &self.options),
        };
        warm.record(&ctx, pending, &sol.assignment);
        warm.replans += 1;
        warm.total_passes += sol.passes;
        if seed.is_some() {
            warm.seeded_replans += 1;
        }
        if sol.converged {
            warm.converged_replans += 1;
        }
        Ok(ctx.realize_schedule(&sol.assignment))
    }
}

/// One job's positive assignment pieces, as `(start, end, fraction)` over
/// time.
type FractionPieces = Vec<(f64, f64, f64)>;

/// Warm-start state of [`MultiOaPlanner`], carried in the run's
/// [`PlanCache`]: the previous coordinate-descent solution as per-job
/// fraction profiles over *time* (so it can be remapped onto the next
/// replan's partition, whose boundaries shift with `now` and the pending
/// set), plus convergence statistics for benchmarks and E12.
#[derive(Debug, Clone, Default)]
pub struct MultiOaWarm {
    /// Per pending job of the previous replan: the job's stable key (its
    /// original id) and its positive `(start, end, fraction)` pieces.
    rows: Vec<(usize, FractionPieces)>,
    /// Number of warm replans performed.
    pub replans: usize,
    /// Total coordinate-descent passes across all replans.
    pub total_passes: usize,
    /// Replans that were actually seeded from a previous solution.
    pub seeded_replans: usize,
    /// Replans whose descent converged below the energy tolerance.
    pub converged_replans: usize,
}

impl MultiOaWarm {
    /// Mean coordinate-descent passes per replan (0 before the first).
    pub fn mean_passes(&self) -> f64 {
        if self.replans == 0 {
            0.0
        } else {
            self.total_passes as f64 / self.replans as f64
        }
    }

    /// Remaps the previous solution onto the context's partition: every
    /// job's old fraction pieces are spread over the new intervals
    /// proportionally to time overlap and renormalised to a full
    /// assignment.  Returns `None` when no pending job has a previous row
    /// (the first replan).
    fn seed_for(&self, ctx: &ProgramContext, pending: &[PendingJob]) -> Option<WorkAssignment> {
        if self.rows.is_empty() {
            return None;
        }
        let partition = ctx.partition();
        let mut seed = WorkAssignment::zeros(ctx.n_jobs(), partition.len());
        let mut seeded_any = false;
        for (i, p) in pending.iter().enumerate() {
            let Some((_, pieces)) = self.rows.iter().find(|(key, _)| *key == p.id.index()) else {
                continue;
            };
            let mut total = 0.0;
            for &k in ctx.covered(i) {
                let iv = partition.interval(k);
                let mut frac = 0.0;
                for &(ps, pe, f) in pieces {
                    let overlap = iv.end.min(pe) - iv.start.max(ps);
                    if overlap > 0.0 && pe > ps {
                        frac += f * overlap / (pe - ps);
                    }
                }
                if frac > 0.0 {
                    seed.set(i, k, frac);
                    total += frac;
                }
            }
            if total > 1e-9 {
                // Renormalise: the seed should fully assign the job's
                // *remaining* work (the executed prefix fell before `now`).
                let scale = 1.0 / total;
                for &k in ctx.covered(i) {
                    let f = seed.get(i, k);
                    if f > 0.0 {
                        seed.set(i, k, f * scale);
                    }
                }
                seeded_any = true;
            }
        }
        seeded_any.then_some(seed)
    }

    /// Stores the new solution's positive pieces, keyed by original job id.
    fn record(&mut self, ctx: &ProgramContext, pending: &[PendingJob], x: &WorkAssignment) {
        self.rows.clear();
        let partition = ctx.partition();
        for (i, p) in pending.iter().enumerate() {
            let mut pieces = Vec::new();
            for &k in ctx.covered(i) {
                let f = x.get(i, k);
                if f > 0.0 {
                    let iv = partition.interval(k);
                    pieces.push((iv.start, iv.end, f));
                }
            }
            self.rows.push((p.id.index(), pieces));
        }
    }
}

/// The multiprocessor planner's snapshot is its solver options; the tag
/// guards against cross-planner restores.
impl SnapshotPart for MultiOaPlanner {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_str("multi-oa-planner");
        w.write_part(&self.options);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        match r.read_str()?.as_str() {
            "multi-oa-planner" => Ok(Self {
                options: r.read_part()?,
            }),
            other => Err(SnapshotError::Invalid(format!(
                "expected the multiprocessor OA planner, found {other}"
            ))),
        }
    }
}

/// The warm seed round-trips exactly: rows are `(key, pieces)` with the
/// pieces' `(start, end, fraction)` stored bit-for-bit, so the first replan
/// after a restore seeds coordinate descent with the identical assignment
/// the uninterrupted run would have used.
impl SnapshotPart for MultiOaWarm {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.rows.len());
        for (key, pieces) in &self.rows {
            w.write_usize(*key);
            w.write_seq(pieces);
        }
        w.write_usize(self.replans);
        w.write_usize(self.total_passes);
        w.write_usize(self.seeded_replans);
        w.write_usize(self.converged_replans);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        let n = r.read_len(8)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let key = r.read_usize()?;
            let pieces: FractionPieces = r.read_seq()?;
            rows.push((key, pieces));
        }
        Ok(Self {
            rows,
            replans: r.read_usize()?,
            total_passes: r.read_usize()?,
            seeded_replans: r.read_usize()?,
            converged_replans: r.read_usize()?,
        })
    }
}

/// The multiprocessor extension of OA (in the spirit of Albers, Antoniadis &
/// Greiner): at every arrival, recompute the optimal schedule of the
/// remaining work on all `m` machines and follow it.
#[derive(Debug, Clone, Copy, Default)]
pub struct MultiOaScheduler {
    /// Convex solver options used for every replanning step.
    pub options: SolverOptions,
}

impl MultiOaScheduler {
    /// The original batch replanning loop (reference implementation).
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        run_replanning(
            instance,
            &MultiOaPlanner {
                options: self.options,
            },
            &AdmitAll,
        )
    }
}

impl OnlineAlgorithm for MultiOaScheduler {
    type Run = ReplanState<MultiOaPlanner, AdmitAll>;

    fn algorithm_name(&self) -> String {
        "OA(m)".into()
    }

    fn start(&self, machines: usize, alpha: f64) -> Result<Self::Run, ScheduleError> {
        Ok(ReplanState::new(
            MultiOaPlanner {
                options: self.options,
            },
            AdmitAll,
            OnlineEnv { machines, alpha },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_power::AlphaPower;
    use pss_types::{validate_schedule, Scheduler};

    fn instance(alpha: f64) -> Instance {
        Instance::from_tuples(
            1,
            alpha,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.5, 1.0),
                (2.0, 6.0, 2.0, 1.0),
                (2.5, 5.0, 0.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn oa_finishes_every_job() {
        let inst = instance(3.0);
        let s = OaScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn oa_cost_is_within_alpha_alpha_of_yds() {
        for alpha in [1.5, 2.0, 3.0] {
            let inst = instance(alpha);
            let oa = OaScheduler.schedule(&inst).unwrap().cost(&inst).energy;
            let opt = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
            let bound = AlphaPower::new(alpha).competitive_ratio_pd();
            assert!(oa >= opt - 1e-9, "OA beats OPT?! {oa} < {opt}");
            assert!(
                oa <= bound * opt + 1e-9,
                "alpha={alpha}: OA {oa} exceeds {bound}·OPT ({opt})"
            );
        }
    }

    #[test]
    fn incremental_oa_matches_the_batch_reference() {
        for alpha in [1.5, 2.0, 3.0] {
            let inst = instance(alpha);
            let batch = OaScheduler.batch_schedule(&inst).unwrap();
            let inc = OaScheduler.schedule(&inst).unwrap();
            assert!(
                (batch.cost(&inst).total() - inc.cost(&inst).total()).abs()
                    < 1e-9 * batch.cost(&inst).total().max(1.0)
            );
            for t in [0.5, 1.5, 2.2, 3.5, 4.5, 5.5] {
                assert!(
                    (batch.speed_at(0, t) - inc.speed_at(0, t)).abs() < 1e-9,
                    "alpha={alpha}: profiles differ at t={t}"
                );
            }
        }
    }

    #[test]
    fn oa_on_single_job_matches_optimum() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 2.0, 1.0)]).unwrap();
        let s = OaScheduler.schedule(&inst).unwrap();
        assert!((s.cost(&inst).energy - 2.0).abs() < 1e-9);
    }

    #[test]
    fn oa_requires_single_machine() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(OaScheduler.schedule(&inst).is_err());
        assert!(QoaScheduler::default().schedule(&inst).is_err());
    }

    #[test]
    fn qoa_finishes_every_job_and_uses_no_less_energy_than_opt() {
        let inst = instance(2.0);
        let s = QoaScheduler::default().schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty());
        let opt = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(s.cost(&inst).energy >= opt - 1e-9);
    }

    #[test]
    fn multi_oa_finishes_every_job_on_two_machines() {
        let inst = Instance::from_tuples(
            2,
            2.5,
            vec![
                (0.0, 3.0, 1.0, 1.0),
                (0.5, 2.5, 1.5, 1.0),
                (1.0, 4.0, 2.0, 1.0),
                (1.5, 3.5, 0.8, 1.0),
            ],
        )
        .unwrap();
        let s = MultiOaScheduler::default().schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn multi_oa_matches_oa_on_one_machine() {
        let inst = instance(2.0);
        let a = OaScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        let b = MultiOaScheduler::default()
            .schedule(&inst)
            .unwrap()
            .cost(&inst)
            .energy;
        assert!((a - b).abs() < 1e-3 * a.max(1.0), "OA {a} vs OA(m) {b}");
    }
}
