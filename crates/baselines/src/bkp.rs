//! The BKP algorithm (Bansal, Kimbrel & Pruhs).
//!
//! BKP runs, at every time `t`, at speed `e · v(t)` where
//!
//! ```text
//! v(t) = max_{t' > t}  w(t, e·t − (e−1)·t', t') / (e · (t' − t))
//! ```
//!
//! and `w(t, t1, t2)` is the total work of jobs released by time `t` whose
//! availability window is contained in `[t1, t2]`.  Jobs are processed in
//! EDF order.  BKP is `2(α/(α−1))^α e^α`-competitive (≈ `2e^{α+1}` for large
//! α) and outperforms OA for large `α`.
//!
//! ### Discretisation note
//!
//! The speed `e·v(t)` varies continuously with `t`, so this implementation
//! evaluates it on a uniform time grid ([`BkpScheduler::resolution`] steps
//! over the instance horizon) and holds it constant within each step.  A
//! configurable safety margin (default 2%) compensates for the
//! discretisation error so that all jobs still finish; the induced energy
//! error is of the same order.  BKP is only used as a context baseline in
//! the classical-scheduling experiment (E9), where this accuracy is ample.

use pss_types::{num, Instance, OnlineScheduler, Schedule, ScheduleError, Scheduler, Segment};

/// The BKP scheduler (single machine).
#[derive(Debug, Clone, Copy)]
pub struct BkpScheduler {
    /// Number of uniform time steps used to evaluate the speed profile.
    pub resolution: usize,
    /// Multiplicative safety margin on the speed to absorb discretisation
    /// error (1.0 = none).
    pub speed_margin: f64,
}

impl Default for BkpScheduler {
    fn default() -> Self {
        Self {
            resolution: 4000,
            speed_margin: 1.02,
        }
    }
}

impl BkpScheduler {
    /// The BKP speed `e·v(t)` at time `t`, given the jobs released so far.
    fn speed_at(&self, instance: &Instance, t: f64) -> f64 {
        let e = std::f64::consts::E;
        // Candidate t': all deadlines after t, plus the points where the
        // left endpoint e·t − (e−1)·t' crosses a release time.
        let mut candidates: Vec<f64> = instance
            .jobs
            .iter()
            .filter(|j| j.release <= t + 1e-12 && j.deadline > t)
            .map(|j| j.deadline)
            .collect();
        for j in instance.jobs.iter().filter(|j| j.release <= t + 1e-12) {
            let crossing = (e * t - j.release) / (e - 1.0);
            if crossing > t {
                candidates.push(crossing);
            }
        }
        let mut v = 0.0_f64;
        for &t2 in &candidates {
            if t2 <= t {
                continue;
            }
            let t1 = e * t - (e - 1.0) * t2;
            let work: f64 = instance
                .jobs
                .iter()
                .filter(|j| {
                    j.release <= t + 1e-12
                        && num::approx_ge(j.release, t1)
                        && num::approx_le(j.deadline, t2)
                })
                .map(|j| j.work)
                .sum();
            v = v.max(work / (e * (t2 - t)));
        }
        e * v
    }
}

impl Scheduler for BkpScheduler {
    fn name(&self) -> String {
        "BKP".into()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        if instance.machines != 1 {
            return Err(ScheduleError::Internal(
                "BKP is a single-machine algorithm".into(),
            ));
        }
        let mut schedule = Schedule::empty(1);
        if instance.is_empty() {
            return Ok(schedule);
        }
        let (lo, hi) = instance.horizon();
        let steps = self.resolution.max(1);
        let dt = (hi - lo) / steps as f64;
        let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();

        for i in 0..steps {
            let t = lo + i as f64 * dt;
            let speed = self.speed_at(instance, t) * self.speed_margin;
            if speed <= 0.0 {
                continue;
            }
            // EDF within the step, possibly splitting it across jobs.
            let mut now = t;
            let step_end = t + dt;
            while now < step_end - 1e-15 {
                let next = instance
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(j, job)| {
                        remaining[*j] > 1e-12 && job.release <= now + 1e-12 && job.deadline > now
                    })
                    .min_by(|(_, a), (_, b)| {
                        a.deadline.partial_cmp(&b.deadline).expect("finite deadlines")
                    });
                let Some((j, job)) = next else { break };
                let max_dur = (remaining[j] / speed).min(step_end - now).min(job.deadline - now);
                if max_dur <= 1e-15 {
                    break;
                }
                schedule.push(Segment::work(0, now, now + max_dur, speed, job.id));
                remaining[j] -= speed * max_dur;
                now += max_dur;
            }
        }
        Ok(schedule)
    }
}

impl OnlineScheduler for BkpScheduler {}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_types::validate_schedule;

    fn instance() -> Instance {
        Instance::from_tuples(
            1,
            3.0,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 6.0, 1.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bkp_finishes_every_job() {
        let inst = instance();
        let s = BkpScheduler::default().schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty(), "rejected: {:?}", report.rejected);
    }

    #[test]
    fn bkp_energy_is_at_least_the_optimum() {
        let inst = instance();
        let bkp = BkpScheduler::default().schedule(&inst).unwrap().cost(&inst).energy;
        let opt = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(bkp >= opt - 1e-9, "BKP {bkp} below optimal {opt}");
    }

    #[test]
    fn bkp_speed_covers_single_job_density() {
        // With one job, v(t) at t = release must be at least w / (e (d - r))
        // and the e multiplier brings the speed to at least the density.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let s = BkpScheduler::default();
        assert!(s.speed_at(&inst, 0.0) >= 0.5 - 1e-9);
    }

    #[test]
    fn bkp_ignores_unreleased_jobs() {
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![(0.0, 2.0, 1.0, 1.0), (5.0, 6.0, 10.0, 1.0)],
        )
        .unwrap();
        let s = BkpScheduler::default();
        // At time 0 only the first job has arrived; the huge future job must
        // not influence the speed.
        assert!(s.speed_at(&inst, 0.0) < 3.0);
    }

    #[test]
    fn bkp_requires_single_machine() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(BkpScheduler::default().schedule(&inst).is_err());
    }
}
