//! The BKP algorithm (Bansal, Kimbrel & Pruhs).
//!
//! BKP runs, at every time `t`, at speed `e · v(t)` where
//!
//! ```text
//! v(t) = max_{t' > t}  w(t, e·t − (e−1)·t', t') / (e · (t' − t))
//! ```
//!
//! and `w(t, t1, t2)` is the total work of jobs released by time `t` whose
//! availability window is contained in `[t1, t2]`.  Jobs are processed in
//! EDF order.  BKP is `2(α/(α−1))^α e^α`-competitive (≈ `2e^{α+1}` for large
//! α) and outperforms OA for large `α`.
//!
//! ### Discretisation note
//!
//! The speed `e·v(t)` varies continuously with `t`, so this implementation
//! evaluates it on a uniform time grid ([`BkpScheduler::resolution`] steps
//! over the instance horizon) and holds it constant within each step.  A
//! configurable safety margin (default 2%) compensates for the
//! discretisation error so that all jobs still finish; the induced energy
//! error is of the same order.  BKP is only used as a context baseline in
//! the classical-scheduling experiment (E9), where this accuracy is ample.
//!
//! The event-driven [`BkpState`] executes the same grid incrementally: the
//! speed of a step is fixed when the step is first entered (it only depends
//! on jobs released by the step's start, so later arrivals cannot change
//! it), and the EDF sub-segment in flight when an arrival lands mid-step is
//! completed before the dispatcher re-evaluates — exactly reproducing the
//! batch loop.  Because the grid itself is derived from the instance
//! horizon, [`OnlineAlgorithm::start_for`] picks the grid; a pure
//! [`start`](OnlineAlgorithm::start) requires an explicit
//! [`step`](BkpScheduler::step) width.
//!
//! ### The deadline-indexed event path
//!
//! The naive `bkp_speed` scan evaluates `v(t)` by enumerating `O(k)`
//! candidate times `t'` and summing `O(k)` jobs for each — `O(k²)` per grid
//! step for `k` released jobs.  [`BkpState`] instead keeps a resident
//! `BkpSpeedIndex` across arrivals: released jobs sorted by deadline and
//! by release (releases arrive in nondecreasing order, so the release list
//! appends at the back; with key pruning the deadline list holds only
//! active jobs, so both insertions are `O(active)` or better).  For a
//! query at time `t`, every job `j` has a *key*
//! `max(d_j, (e·t − r_j)/(e−1))` — the first candidate at which it is
//! counted — and the supremum of `w/(e·(t'−t))` is attained at the keys.
//! Splitting jobs into deadline-keyed and crossing-keyed groups (monotone
//! in `e·t`, so the split is a per-job predicate), the two presorted lists
//! yield all keys in ascending order by a single merge, and one prefix-sum
//! sweep evaluates every candidate — `O(k)` per grid evaluation, with no
//! per-candidate rescan.  EDF dispatch inside a step similarly replaces its
//! full-history scan with a lazy min-deadline heap.  Both fast paths can be
//! disabled via [`BkpState::with_indexed_events(false)`](BkpState::with_indexed_events),
//! which restores the original scans as cross-check and bench baseline;
//! [`BkpScheduler::batch_schedule`] keeps using the naive scan, so the
//! equivalence tests pin the index against an independent implementation.
//!
//! On top of the merge, the index **prunes far-future candidate keys**:
//! expired jobs are dropped from the deadline list permanently (they stay
//! crossing-keyed forever), and the whole aged history — every job old
//! enough that its crossing key exceeds all deadline keys — is aggregated
//! by a single `O(log n)` max-slope query on a convex hull of
//! release/prefix-work points instead of being swept job by job.  A grid
//! evaluation costs `O(active + recent + log n)` instead of `O(released)`,
//! so per-arrival tail latencies stop growing with the stream length;
//! [`BkpState::with_key_pruning(false)`](BkpState::with_key_pruning)
//! restores the full sweep.

use std::collections::BinaryHeap;

use pss_types::seglog::{FrontierPart, LogCheckpointable, SegmentLog};
use pss_types::snapshot::{
    BlobReader, BlobWriter, Checkpointable, SnapshotError, SnapshotPart, StateBlob,
};
use pss_types::{
    check_arrival, num, Decision, Instance, Job, OnlineAlgorithm, OnlineScheduler, Schedule,
    ScheduleError, Segment,
};

/// The BKP scheduler (single machine).
#[derive(Debug, Clone, Copy)]
pub struct BkpScheduler {
    /// Number of uniform time steps used to evaluate the speed profile when
    /// the horizon is known upfront (the batch path and
    /// [`OnlineAlgorithm::start_for`]).
    pub resolution: usize,
    /// Multiplicative safety margin on the speed to absorb discretisation
    /// error (1.0 = none).
    pub speed_margin: f64,
    /// Explicit grid step width for horizon-free streaming runs started via
    /// [`OnlineAlgorithm::start`]; `None` derives the step from the horizon
    /// via `resolution` (and makes `start` without an instance an error).
    pub step: Option<f64>,
}

impl Default for BkpScheduler {
    fn default() -> Self {
        Self {
            resolution: 4000,
            speed_margin: 1.02,
            step: None,
        }
    }
}

/// The BKP speed `e·v(t)` at time `t`, given the jobs released so far.
fn bkp_speed(jobs: &[Job], t: f64) -> f64 {
    let e = std::f64::consts::E;
    // Candidate t': all deadlines after t, plus the points where the
    // left endpoint e·t − (e−1)·t' crosses a release time.
    let mut candidates: Vec<f64> = jobs
        .iter()
        .filter(|j| j.release <= t + 1e-12 && j.deadline > t)
        .map(|j| j.deadline)
        .collect();
    for j in jobs.iter().filter(|j| j.release <= t + 1e-12) {
        let crossing = (e * t - j.release) / (e - 1.0);
        if crossing > t {
            candidates.push(crossing);
        }
    }
    let mut v = 0.0_f64;
    for &t2 in &candidates {
        if t2 <= t {
            continue;
        }
        let t1 = e * t - (e - 1.0) * t2;
        let work: f64 = jobs
            .iter()
            .filter(|j| {
                j.release <= t + 1e-12
                    && num::approx_ge(j.release, t1)
                    && num::approx_le(j.deadline, t2)
            })
            .map(|j| j.work)
            .sum();
        v = v.max(work / (e * (t2 - t)));
    }
    e * v
}

/// One job as the speed index sees it: `phi = r + (e−1)·d` decides whether
/// the job's key at query time `t` is its deadline (`phi ≥ e·t`) or its
/// release-crossing `(e·t − r)/(e−1)` (`phi < e·t`) — the job's key is the
/// maximum of the two, and `phi` compares them without recomputing either.
#[derive(Debug, Clone, Copy)]
struct IndexedJob {
    release: f64,
    deadline: f64,
    work: f64,
    phi: f64,
}

impl IndexedJob {
    fn new(job: &Job) -> Self {
        let e = std::f64::consts::E;
        Self {
            release: job.release,
            deadline: job.deadline,
            work: job.work,
            phi: job.release + (e - 1.0) * job.deadline,
        }
    }
}

/// The resident deadline/release index behind the incremental BKP speed
/// evaluation.
///
/// `speed(t)` is mathematically identical to `bkp_speed` on the inserted
/// jobs (the supremum over candidate times is attained at the per-job keys,
/// which the two presorted lists enumerate in ascending order; jobs not yet
/// released at `t` — possible within the arrival-order tolerance when a job
/// is fed slightly early — are filtered during the sweep exactly like the
/// scan's release filter), but costs a single `O(k)` merge-and-sweep
/// instead of the naive `O(k²)` candidate × rescan loop.
///
/// Cost model: with **key pruning** (the default) an insertion is
/// `O(active)` and an evaluation is `O(active + recent + log n)`:
///
/// * the release list appends at the back (releases are nondecreasing) and
///   the deadline list's live tail holds only active jobs — the expired
///   prefix is dropped permanently as the query time advances (expired
///   jobs are crossing-keyed forever, so the deadline copy can never be
///   needed again);
/// * the merge sweep only walks the *young* jobs — those whose crossing
///   key could fall below some deadline key.  For every job older than the
///   cutoff `r* = e·t − (e−1)·d_max` (so its key exceeds every deadline
///   key), the candidate value has the closed form
///   `(W − P(r_j)) · (e−1) / (e·(t − r_j))`, where `W` is the total
///   released work and `P(r_j)` the prefix work released before `r_j`:
///   every released job except the strictly older crossing ones counts.
///   Maximising this over the old jobs is a **max-slope query** from the
///   moving point `(t, W)` over the static point set `(r_j, P(r_j))` —
///   answered in `O(log n)` on the *lower convex hull* of those points
///   (smaller prefix works dominate, since they subtract less from `W`),
///   which is append-only because releases and prefix works are both
///   nondecreasing.  The sup over the whole aged history is therefore
///   computed exactly without touching it.
///
/// On a steady stream the aged candidates genuinely stay competitive
/// (prefix work grows linearly with key distance, so their values plateau
/// near `ρ·(e−1)/e` for arrival work rate `ρ` — they cannot be *skipped*,
/// only aggregated), which is why the hull, not a decay bound, is the
/// right structure.  [`BkpState::with_key_pruning(false)`] restores the
/// full `O(released)` sweep as cross-check and bench baseline.
///
/// Queries must be made at nondecreasing times `t` (the grid execution
/// does this by construction); the expired-prefix drop relies on it.
#[derive(Debug, Clone)]
struct BkpSpeedIndex {
    /// Jobs sorted by deadline ascending (ties keep arrival order).  With
    /// pruning on, the entries before `expired_prefix` are dead and
    /// periodically drained, so the live tail holds only *active* jobs —
    /// which is what keeps insertion `O(active)`.
    by_deadline: Vec<IndexedJob>,
    /// Number of leading `by_deadline` entries dropped by the pruning
    /// cursor (physically drained once they outnumber the live tail).
    expired_prefix: usize,
    /// Jobs sorted by release *ascending* — arrival order up to the feed
    /// tolerance, so an insert appends at (or within a few slots of) the
    /// back.  The sweep walks it backward: descending release is ascending
    /// crossing-key order for any query time.
    by_release: Vec<IndexedJob>,
    /// `prefix_work[i]` = total work of `by_release[..i]` (length
    /// `by_release.len() + 1`); the `P(r_j)` of the hull points.
    prefix_work: Vec<f64>,
    /// Lower convex hull of the points `(release, prefix_work[pos])` over
    /// `by_release[..hull_len]` — strictly increasing in x.
    hull: Vec<(f64, f64)>,
    /// Number of leading `by_release` positions covered by `hull`.
    hull_len: usize,
    /// Running maximum deadline over every inserted job (monotone): the
    /// conservative `d_max` of the hull cutoff, so coverage regresses only
    /// when an unusually long window arrives.
    d_max_all: f64,
    /// Whether pruning (expired-prefix drop + hull aggregation of the aged
    /// history) is active (the default; disable for the full-sweep
    /// baseline).
    prune: bool,
}

impl Default for BkpSpeedIndex {
    fn default() -> Self {
        Self {
            by_deadline: Vec::new(),
            expired_prefix: 0,
            by_release: Vec::new(),
            prefix_work: vec![0.0],
            hull: Vec::new(),
            hull_len: 0,
            d_max_all: f64::NEG_INFINITY,
            prune: true,
        }
    }
}

impl BkpSpeedIndex {
    /// Registers a newly released job in both sorted lists.
    ///
    /// `by_release` is append-biased (releases are nondecreasing up to the
    /// arrival-order tolerance, so the backward walk is `O(1)` amortised);
    /// `by_deadline`'s insertion point lies in its live tail, which the
    /// expired-prefix drop keeps at `O(active)` — new deadlines are
    /// strictly after `now`, hence after every dropped deadline.
    fn insert(&mut self, job: &Job) {
        let ij = IndexedJob::new(job);
        let live = &self.by_deadline[self.expired_prefix..];
        let pos = self.expired_prefix + live.partition_point(|a| a.deadline <= ij.deadline);
        self.by_deadline.insert(pos, ij);
        let mut pos = self.by_release.len();
        while pos > 0 && self.by_release[pos - 1].release > ij.release {
            pos -= 1;
        }
        if pos < self.hull_len {
            // A tolerance-early feed landed inside the hulled prefix: its
            // prefix works go stale.  The hull keeps a 128-position margin
            // behind the back, so this needs an out-of-order feed *and* a
            // pathologically short history — rebuilt lazily if it happens.
            self.hull.clear();
            self.hull_len = 0;
        }
        self.by_release.insert(pos, ij);
        // Fix the prefix-work tail (O(1) for the in-order append case).
        self.prefix_work.truncate(pos + 1);
        for i in pos..self.by_release.len() {
            let next = self.prefix_work[i] + self.by_release[i].work;
            self.prefix_work.push(next);
        }
        self.d_max_all = self.d_max_all.max(ij.deadline);
    }

    /// Appends the point for `by_release[pos]` to the **lower** convex
    /// hull: the query maximises `(W − y)/(t − x)` from a point above and
    /// to the right, so smaller prefix works dominate and the relevant
    /// envelope is the chain convex from below.
    fn hull_push(&mut self, pos: usize) {
        let p = (self.by_release[pos].release, self.prefix_work[pos]);
        if let Some(&(x, y)) = self.hull.last() {
            if x == p.0 {
                // Equal releases: the earlier position has the smaller
                // prefix, i.e. the candidate whose work term includes the
                // whole tie group — it dominates the later tied points.
                if p.1 >= y {
                    return;
                }
                self.hull.pop();
            }
        }
        while self.hull.len() >= 2 {
            let (ox, oy) = self.hull[self.hull.len() - 2];
            let (ax, ay) = self.hull[self.hull.len() - 1];
            // Pop while the middle point lies on or above the chord (keeps
            // the chain strictly convex from below).
            if (ax - ox) * (p.1 - oy) - (ay - oy) * (p.0 - ox) <= 0.0 {
                self.hull.pop();
            } else {
                break;
            }
        }
        self.hull.push(p);
    }

    /// The best aged-candidate value over the hull,
    /// `max_j (w − y_j)·(e−1) / (e·(t − x_j))` — i.e. the largest slope
    /// from the query point `(t, w)` to a hull vertex, rescaled by
    /// `(e−1)/e`; `0` when the hull is empty.  The slope over a strictly
    /// convex chain is unimodal in the vertex index, so a binary peak
    /// search suffices.
    fn hull_best(&self, t: f64, w: f64) -> f64 {
        if self.hull.is_empty() {
            return 0.0;
        }
        let e = std::f64::consts::E;
        let value = |&(x, y): &(f64, f64)| {
            if t - x <= 0.0 {
                return 0.0;
            }
            (w - y) * (e - 1.0) / (e * (t - x))
        };
        let (mut lo, mut hi) = (0usize, self.hull.len() - 1);
        while lo < hi {
            let mid = (lo + hi) / 2;
            if value(&self.hull[mid]) < value(&self.hull[mid + 1]) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        value(&self.hull[lo])
    }

    /// The BKP speed `e·v(t)` over the inserted jobs.
    fn speed(&mut self, t: f64) -> f64 {
        let e = std::f64::consts::E;
        let et = e * t;
        if self.prune {
            // Expired jobs (deadline ≤ t, hence — windows being strictly
            // positive — `phi < e·t` now and forever) are crossing-keyed at
            // every future query: their deadline-list copy would only ever
            // be skipped, so drop it permanently.  The cursor advances
            // monotonically because query times do; the occasional physical
            // drain keeps the dead prefix bounded by the live tail, so it
            // is `O(1)` amortised per expiry.
            while self.expired_prefix < self.by_deadline.len() {
                let job = &self.by_deadline[self.expired_prefix];
                if job.deadline <= t && job.phi < et {
                    self.expired_prefix += 1;
                } else {
                    break;
                }
            }
            if self.expired_prefix > 64 && 2 * self.expired_prefix > self.by_deadline.len() {
                self.by_deadline.drain(..self.expired_prefix);
                self.expired_prefix = 0;
            }
        }

        // Hull split: jobs released at or before `r*` have crossing keys at
        // or beyond every deadline key (d_max is the running maximum, so
        // r* only regresses when an unusually long window arrives), which
        // makes their candidate values the closed form the hull aggregates.
        // The sweep below walks only the positions at or after `split`; the
        // hull answers the rest in O(log n).  A 128-position margin behind
        // the back keeps tolerance-early inserts out of the hulled prefix.
        let mut split = 0usize;
        if self.prune {
            let k_cut = self.d_max_all.max(t);
            let r_star = e * t - (e - 1.0) * k_cut;
            // Strict: a job released exactly at r* could still be
            // deadline-keyed (its crossing key ties d_max), so it sweeps.
            let idx = self.by_release.partition_point(|j| j.release < r_star);
            if idx < self.hull_len {
                // Coverage regressed past the hull (rare: a record-length
                // window arrived); rebuild over the still-valid prefix.
                self.hull.clear();
                self.hull_len = 0;
            }
            let target = idx.min(self.by_release.len().saturating_sub(128));
            while self.hull_len < target {
                self.hull_push(self.hull_len);
                self.hull_len += 1;
            }
            split = self.hull_len;
        }

        let a = &self.by_deadline;
        let b = &self.by_release;
        let mut ai = self.expired_prefix;
        let mut bi = b.len();
        // Candidate prefix sum of the swept (young) keys; old jobs only
        // have *larger* keys, so they never contribute to a swept
        // candidate's work term.
        let mut sum = 0.0_f64;
        // Total released work of the swept positions (candidate or not) —
        // together with the hulled prefix this is the released work `W` of
        // the hull's closed form.
        let mut swept_work = 0.0_f64;
        let mut v = 0.0_f64;
        loop {
            // Next deadline-keyed job (phi ≥ e·t) and next crossing-keyed
            // job (phi < e·t); the other group is skipped in each list
            // (list b is walked backward — most recent release first, and
            // only down to the hull split).
            while ai < a.len() && a[ai].phi < et {
                ai += 1;
            }
            while bi > split && b[bi - 1].phi >= et {
                if b[bi - 1].release <= t + 1e-12 {
                    swept_work += b[bi - 1].work;
                }
                bi -= 1;
            }
            let ka = (ai < a.len()).then(|| a[ai].deadline);
            let kb = (bi > split).then(|| (et - b[bi - 1].release) / (e - 1.0));
            // Consume the smaller key.  Evaluating after every single job is
            // sound even for tied keys: the last evaluation at a key sees
            // the full prefix sum, earlier ones are dominated by it.
            let consume_b = match (ka, kb) {
                (None, None) => break,
                (Some(_), None) => false,
                (None, Some(_)) => true,
                (Some(ka), Some(kb)) => ka > kb,
            };
            let (job, key) = if consume_b {
                bi -= 1;
                if b[bi].release <= t + 1e-12 {
                    swept_work += b[bi].work;
                }
                (&b[bi], kb.expect("b key exists when consuming b"))
            } else {
                ai += 1;
                (&a[ai - 1], ka.expect("a key exists when consuming a"))
            };
            // The scan's release filter: a job fed early (within the
            // arrival-order tolerance) and not released by `t` contributes
            // neither work nor a candidate.
            if job.release > t + 1e-12 {
                continue;
            }
            sum += job.work;
            if key > t {
                v = v.max(sum / (e * (key - t)));
            }
        }
        if self.prune && split > 0 {
            // The aged history, aggregated: max over the hulled prefix of
            // `(W − P(r_j))·(e−1)/(e·(t − r_j))` with `W` the total work
            // released by `t`.
            let released = self.prefix_work[split] + swept_work;
            v = v.max(self.hull_best(t, released));
        }
        e * v
    }
}

/// Entry of the lazy EDF queue: ordered so the max-heap pops the smallest
/// `(deadline, job)` — exactly the first minimum the scan's `min_by` picks.
#[derive(Debug, Clone, Copy)]
struct EdfEntry {
    deadline: f64,
    /// Dense index into [`BkpState::jobs`].
    job: usize,
}

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for EdfEntry {}

impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // (ties: smallest index) on top.
        other
            .deadline
            .total_cmp(&self.deadline)
            .then(other.job.cmp(&self.job))
    }
}

impl BkpScheduler {
    /// The BKP speed `e·v(t)` at time `t`, given the jobs of `instance`
    /// released by then.
    pub fn speed_at(&self, instance: &Instance, t: f64) -> f64 {
        bkp_speed(&instance.jobs, t)
    }

    /// The original batch grid evaluation, kept as the reference
    /// implementation for the incremental-vs-batch equivalence tests.
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(instance.machines, "BKP", "")?;
        let mut schedule = Schedule::empty(1);
        if instance.is_empty() {
            return Ok(schedule);
        }
        let (lo, hi) = instance.horizon();
        let steps = self.resolution.max(1);
        let dt = (hi - lo) / steps as f64;
        let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();

        for i in 0..steps {
            let t = lo + i as f64 * dt;
            let speed = self.speed_at(instance, t) * self.speed_margin;
            if speed <= 0.0 {
                continue;
            }
            // EDF within the step, possibly splitting it across jobs.
            let mut now = t;
            let step_end = t + dt;
            while now < step_end - 1e-15 {
                let next = instance
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(j, job)| {
                        remaining[*j] > 1e-12 && job.release <= now + 1e-12 && job.deadline > now
                    })
                    .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline));
                let Some((j, job)) = next else { break };
                let max_dur = (remaining[j] / speed)
                    .min(step_end - now)
                    .min(job.deadline - now);
                if max_dur <= 1e-15 {
                    break;
                }
                schedule.push(Segment::work(0, now, now + max_dur, speed, job.id));
                remaining[j] -= speed * max_dur;
                now += max_dur;
            }
        }
        Ok(schedule)
    }
}

/// The EDF sub-segment currently being executed (it survives arrivals that
/// land in its middle, exactly like the batch loop's inner dispatch).
#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// Dense index into [`BkpState::jobs`].
    job: usize,
    /// Time at which the sub-segment ends.
    end: f64,
    /// The job's remaining work once the sub-segment completes.
    remaining_after: f64,
}

/// One event-driven BKP run.
#[derive(Debug, Clone)]
pub struct BkpState {
    speed_margin: f64,
    /// Grid step width.
    dt: f64,
    /// Grid anchor (`τ_0`); fixed by `start_for`, or at the first arrival
    /// for horizon-free runs.
    anchor: Option<f64>,
    /// Upper bound on the number of grid steps (set by `start_for` to match
    /// the batch grid exactly; `None` runs until the released horizon ends).
    max_steps: Option<usize>,
    /// Jobs released so far (original ids).
    jobs: Vec<Job>,
    remaining: Vec<f64>,
    committed: Schedule,
    /// Time up to which the frontier is committed.
    now: f64,
    /// Index of the grid step containing `now`.
    step_idx: usize,
    /// Speed of the current step, fixed when the step is first entered.
    step_speed: Option<f64>,
    /// Set when the batch dispatch rule `break`s out of the current step
    /// (no eligible job, or a degenerate sub-segment): the remainder of the
    /// step idles even if a job arrives inside it, exactly like the batch
    /// loop.
    step_idle: bool,
    inflight: Option<Inflight>,
    /// When `true` (the default), grid evaluations use the resident
    /// deadline/release index and EDF dispatch the lazy heap; when `false`,
    /// the original full-history scans.
    indexed: bool,
    /// Resident speed index over the released jobs.
    index: BkpSpeedIndex,
    /// Lazy EDF queue over the released jobs (finished/expired entries are
    /// discarded at peek time; they can never become eligible again).
    edf: BinaryHeap<EdfEntry>,
}

impl BkpState {
    /// Enables or disables the indexed event path (speed index + EDF heap).
    /// With `false` every grid evaluation and every dispatch re-scans the
    /// full job history — the pre-index behaviour, kept as the baseline the
    /// `warm_replan` benchmark and the indexed-vs-scan equivalence tests
    /// compare against.
    pub fn with_indexed_events(mut self, enabled: bool) -> Self {
        self.indexed = enabled;
        self
    }

    /// Enables or disables the speed index's **key pruning** (the
    /// far-future early-out plus the expired-prefix drop; enabled by
    /// default).  With `false` every indexed grid evaluation sweeps the
    /// full released history — the pre-pruning behaviour, kept as the
    /// baseline the pruned-vs-full equivalence tests and the tail-latency
    /// measurements compare against.  Irrelevant when
    /// [`with_indexed_events(false)`](Self::with_indexed_events) selects
    /// the naive scan.
    pub fn with_key_pruning(mut self, enabled: bool) -> Self {
        self.index.prune = enabled;
        self
    }

    fn step_start(&self, anchor: f64) -> f64 {
        anchor + self.step_idx as f64 * self.dt
    }

    /// The earliest-deadline eligible job at `self.now`, by scanning the
    /// full history — the original dispatch rule, used by the non-indexed
    /// path and as the rare-edge fallback of the heap.
    fn scan_next(&self) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(j, job)| {
                self.remaining[*j] > 1e-12
                    && job.release <= self.now + 1e-12
                    && job.deadline > self.now
            })
            .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline))
            .map(|(j, _)| j)
    }

    /// The earliest-deadline eligible job at `self.now`, via the lazy heap
    /// (equivalent to [`scan_next`](Self::scan_next), including its
    /// first-minimum tie-break).
    fn edf_peek(&mut self) -> Option<usize> {
        while let Some(entry) = self.edf.peek() {
            let j = entry.job;
            if self.remaining[j] <= 1e-12 || self.jobs[j].deadline <= self.now {
                // Finished or expired: permanently ineligible, drop it.
                self.edf.pop();
                continue;
            }
            if self.jobs[j].release > self.now + 1e-12 {
                // Fed early (within the arrival tolerance) and not released
                // yet at dispatch time: it may become eligible later, so it
                // cannot be popped — fall back to the scan for this
                // dispatch.
                return self.scan_next();
            }
            return Some(j);
        }
        None
    }

    /// Executes the grid over `[self.now, to)`.
    fn advance_to(&mut self, to: f64) {
        let Some(anchor) = self.anchor else { return };
        while self.now < to - 1e-15 {
            if let Some(limit) = self.max_steps {
                if self.step_idx >= limit {
                    self.now = to;
                    return;
                }
            }
            let step_start = self.step_start(anchor);
            let step_end = step_start + self.dt;
            if self.dt <= 0.0 || step_end <= step_start {
                self.now = to;
                return;
            }
            // The speed of a step is fixed at its start time, from the jobs
            // released by then — later arrivals never change it.
            let speed = match self.step_speed {
                Some(s) => s,
                None => {
                    let s = if self.indexed {
                        self.index.speed(step_start) * self.speed_margin
                    } else {
                        bkp_speed(&self.jobs, step_start) * self.speed_margin
                    };
                    self.step_speed = Some(s);
                    s
                }
            };
            let stop = step_end.min(to);

            if speed <= 0.0 || self.step_idle {
                self.now = stop;
            } else {
                // Dispatch EDF sub-segments until `stop`, completing any
                // sub-segment already in flight first.
                while self.now < stop - 1e-15 {
                    let fl = match self.inflight {
                        Some(fl) => fl,
                        None => {
                            let next = if self.indexed {
                                self.edf_peek()
                            } else {
                                self.scan_next()
                            };
                            let Some(j) = next else {
                                // Batch `break`: the rest of the step idles,
                                // even past arrivals landing inside it.
                                self.step_idle = true;
                                break;
                            };
                            let job = self.jobs[j];
                            let max_dur = (self.remaining[j] / speed)
                                .min(step_end - self.now)
                                .min(job.deadline - self.now);
                            if max_dur <= 1e-15 {
                                self.step_idle = true;
                                break;
                            }
                            let fl = Inflight {
                                job: j,
                                end: self.now + max_dur,
                                remaining_after: self.remaining[j] - speed * max_dur,
                            };
                            self.inflight = Some(fl);
                            fl
                        }
                    };
                    let until = fl.end.min(stop);
                    self.committed.push(Segment::work(
                        0,
                        self.now,
                        until,
                        speed,
                        self.jobs[fl.job].id,
                    ));
                    self.now = until;
                    if until >= fl.end - 1e-15 {
                        self.remaining[fl.job] = fl.remaining_after;
                        self.inflight = None;
                    }
                }
                // A `break` above leaves the rest of `[now, stop)` idle.
                self.now = self.now.max(stop);
            }
            if self.now >= step_end - 1e-15 {
                self.step_idx += 1;
                self.step_speed = None;
                self.step_idle = false;
                self.now = self.now.max(step_end);
            }
        }
        self.now = self.now.max(to);
    }
}

impl SnapshotPart for IndexedJob {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_f64(self.release);
        w.write_f64(self.deadline);
        w.write_f64(self.work);
        w.write_f64(self.phi);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            release: r.read_f64()?,
            deadline: r.read_f64()?,
            work: r.read_f64()?,
            phi: r.read_f64()?,
        })
    }
}

/// The resident speed index round-trips *verbatim* — both sorted lists, the
/// expired-prefix cursor, the prefix works and the append-only convex hull
/// with its coverage length — so the first grid evaluation after a restore
/// walks exactly the structures the uninterrupted run would have walked.
impl SnapshotPart for BkpSpeedIndex {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_seq(&self.by_deadline);
        w.write_usize(self.expired_prefix);
        w.write_seq(&self.by_release);
        w.write_seq(&self.prefix_work);
        w.write_seq(&self.hull);
        w.write_usize(self.hull_len);
        w.write_f64(self.d_max_all);
        w.write_bool(self.prune);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        let index = Self {
            by_deadline: r.read_seq()?,
            expired_prefix: r.read_usize()?,
            by_release: r.read_seq()?,
            prefix_work: r.read_seq()?,
            hull: r.read_seq()?,
            hull_len: r.read_usize()?,
            d_max_all: r.read_f64()?,
            prune: r.read_bool()?,
        };
        if index.expired_prefix > index.by_deadline.len()
            || index.prefix_work.len() != index.by_release.len() + 1
            || index.hull_len > index.by_release.len()
            || index.hull.len() > index.hull_len
        {
            return Err(SnapshotError::Invalid(
                "speed index cursors out of range".into(),
            ));
        }
        Ok(index)
    }
}

/// State version of [`BkpState`] snapshots.  Version 2 stores the
/// committed frontier as a [`FrontierPart`] (inline or a segment-log
/// cursor); version-1 blobs are rejected with a typed error.
const BKP_STATE_VERSION: u16 = 2;

impl BkpState {
    fn encode_snapshot(&self, frontier: &FrontierPart) -> StateBlob {
        let mut w = BlobWriter::new();
        w.write_f64(self.speed_margin);
        w.write_f64(self.dt);
        w.write_part(&self.anchor);
        w.write_part(&self.max_steps);
        w.write_seq(&self.jobs);
        w.write_seq(&self.remaining);
        w.write_part(frontier);
        w.write_f64(self.now);
        w.write_usize(self.step_idx);
        w.write_part(&self.step_speed);
        w.write_bool(self.step_idle);
        match self.inflight {
            None => w.write_bool(false),
            Some(fl) => {
                w.write_bool(true);
                w.write_usize(fl.job);
                w.write_f64(fl.end);
                w.write_f64(fl.remaining_after);
            }
        }
        w.write_bool(self.indexed);
        w.write_part(&self.index);
        // The heap's pop order is a total order on (deadline, dense id), so
        // serialising the entries sorted keeps blobs deterministic without
        // changing behaviour.
        let mut entries: Vec<(f64, usize)> = self.edf.iter().map(|e| (e.deadline, e.job)).collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        w.write_seq(&entries);
        StateBlob::new("bkp", BKP_STATE_VERSION, w.into_payload())
    }

    fn decode_snapshot(blob: &StateBlob, log: Option<&SegmentLog>) -> Result<Self, SnapshotError> {
        let mut r = blob.expect("bkp", BKP_STATE_VERSION)?;
        let speed_margin = r.read_f64()?;
        let dt = r.read_f64()?;
        let anchor = r.read_part()?;
        let max_steps = r.read_part()?;
        let jobs: Vec<Job> = r.read_seq()?;
        let remaining: Vec<f64> = r.read_seq()?;
        let committed = r.read_part::<FrontierPart>()?.resolve(log)?;
        let now = r.read_f64()?;
        let step_idx = r.read_usize()?;
        let step_speed = r.read_part()?;
        let step_idle = r.read_bool()?;
        let inflight = if r.read_bool()? {
            Some(Inflight {
                job: r.read_usize()?,
                end: r.read_f64()?,
                remaining_after: r.read_f64()?,
            })
        } else {
            None
        };
        let indexed = r.read_bool()?;
        let index = r.read_part()?;
        let entries: Vec<(f64, usize)> = r.read_seq()?;
        r.finish()?;
        if remaining.len() != jobs.len()
            || inflight.is_some_and(|fl| fl.job >= jobs.len())
            || entries.iter().any(|&(_, j)| j >= jobs.len())
        {
            return Err(SnapshotError::Invalid(
                "BKP job table indices out of range".into(),
            ));
        }
        let mut edf = BinaryHeap::with_capacity(entries.len());
        for (deadline, job) in entries {
            edf.push(EdfEntry { deadline, job });
        }
        Ok(Self {
            speed_margin,
            dt,
            anchor,
            max_steps,
            jobs,
            remaining,
            committed,
            now,
            step_idx,
            step_speed,
            step_idle,
            inflight,
            indexed,
            index,
            edf,
        })
    }
}

/// The snapshot holds the grid cursor (step index, the fixed per-step speed,
/// the idle flag and any EDF sub-segment in flight), the job history with
/// remaining works, the resident speed index including its convex hull, the
/// lazy EDF queue, the committed frontier and both fast-path toggles — the
/// complete dynamic state, so a restored run resumes the same grid step at
/// the same speed.
impl Checkpointable for BkpState {
    fn snapshot(&self) -> StateBlob {
        self.encode_snapshot(&FrontierPart::Inline(self.committed.clone()))
    }

    fn restore(blob: &StateBlob) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, None)
    }
}

/// O(active) checkpointing: the committed frontier lives in the run's
/// [`SegmentLog`]; the blob stores only a cursor.
impl LogCheckpointable for BkpState {
    fn snapshot_live(&self, log: &mut SegmentLog) -> Result<StateBlob, SnapshotError> {
        let cursor = log.sync_from(&self.committed)?;
        Ok(self.encode_snapshot(&FrontierPart::cursor_of(self.committed.machines, cursor)))
    }

    fn restore_with_log(blob: &StateBlob, log: &SegmentLog) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, Some(log))
    }
}

impl OnlineScheduler for BkpState {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        check_arrival(job, self.now, now)?;
        if self.anchor.is_none() {
            self.anchor = Some(now);
            self.now = now;
        }
        if self.now.is_finite() {
            let to = now.max(self.now);
            self.advance_to(to);
        }
        self.edf.push(EdfEntry {
            deadline: job.deadline,
            job: self.jobs.len(),
        });
        self.index.insert(job);
        self.jobs.push(*job);
        self.remaining.push(job.work);
        Ok(Decision::accept(0.0))
    }

    /// Batch ingestion: the grid is advanced **once** for the whole burst,
    /// then every job is registered with the resident structures — the EDF
    /// heap push (`O(log n)`), the speed index (append-biased release
    /// list, `O(active)` deadline list), and the job/remaining tables.
    fn on_arrivals(&mut self, jobs: &[Job], now: f64) -> Result<Vec<Decision>, ScheduleError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        for job in jobs {
            check_arrival(job, self.now, now)?;
        }
        if self.anchor.is_none() {
            self.anchor = Some(now);
            self.now = now;
        }
        if self.now.is_finite() {
            let to = now.max(self.now);
            self.advance_to(to);
        }
        for job in jobs {
            self.edf.push(EdfEntry {
                deadline: job.deadline,
                job: self.jobs.len(),
            });
            self.index.insert(job);
            self.jobs.push(*job);
            self.remaining.push(job.work);
        }
        Ok(vec![Decision::accept(0.0); jobs.len()])
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        if let Some(anchor) = self.anchor {
            let end = match self.max_steps {
                Some(steps) => anchor + steps as f64 * self.dt,
                None => self.jobs.iter().map(|j| j.deadline).fold(anchor, f64::max),
            };
            self.advance_to(end);
        }
        Ok(self.committed)
    }
}

impl OnlineAlgorithm for BkpScheduler {
    type Run = BkpState;

    fn algorithm_name(&self) -> String {
        "BKP".into()
    }

    fn start(&self, machines: usize, _alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "BKP", "")?;
        let Some(dt) = self.step else {
            return Err(ScheduleError::Internal(
                "BKP needs a time grid: set BkpScheduler::step for horizon-free streaming, \
                 or start the run with start_for(instance)"
                    .into(),
            ));
        };
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ScheduleError::Internal(format!(
                "BKP step width must be positive and finite, got {dt}"
            )));
        }
        Ok(BkpState {
            speed_margin: self.speed_margin,
            dt,
            anchor: None,
            max_steps: None,
            jobs: Vec::new(),
            remaining: Vec::new(),
            committed: Schedule::empty(1),
            now: f64::NEG_INFINITY,
            step_idx: 0,
            step_speed: None,
            step_idle: false,
            inflight: None,
            indexed: true,
            index: BkpSpeedIndex::default(),
            edf: BinaryHeap::new(),
        })
    }

    fn start_for(&self, instance: &Instance) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(instance.machines, "BKP", "")?;
        if let Some(dt) = self.step {
            // An explicit step takes precedence over the horizon grid.
            let mut run = self.start(1, instance.alpha)?;
            debug_assert_eq!(run.dt, dt);
            run.anchor = Some(instance.horizon().0);
            run.now = instance.horizon().0;
            return Ok(run);
        }
        let (lo, hi) = instance.horizon();
        let steps = self.resolution.max(1);
        let span = hi - lo;
        let dt = if span > 0.0 { span / steps as f64 } else { 1.0 };
        Ok(BkpState {
            speed_margin: self.speed_margin,
            dt,
            anchor: Some(lo),
            max_steps: Some(steps),
            jobs: Vec::new(),
            remaining: Vec::new(),
            committed: Schedule::empty(1),
            now: lo,
            step_idx: 0,
            step_speed: None,
            step_idle: false,
            inflight: None,
            indexed: true,
            index: BkpSpeedIndex::default(),
            edf: BinaryHeap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_types::{validate_schedule, Scheduler};

    fn instance() -> Instance {
        Instance::from_tuples(
            1,
            3.0,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 6.0, 1.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bkp_finishes_every_job() {
        let inst = instance();
        let s = BkpScheduler::default().schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn bkp_energy_is_at_least_the_optimum() {
        let inst = instance();
        let bkp = BkpScheduler::default()
            .schedule(&inst)
            .unwrap()
            .cost(&inst)
            .energy;
        let opt = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(bkp >= opt - 1e-9, "BKP {bkp} below optimal {opt}");
    }

    #[test]
    fn incremental_bkp_matches_the_batch_reference() {
        let inst = instance();
        let algo = BkpScheduler {
            resolution: 500,
            ..Default::default()
        };
        let batch = algo.batch_schedule(&inst).unwrap();
        let inc = algo.schedule(&inst).unwrap();
        assert!(
            (batch.cost(&inst).energy - inc.cost(&inst).energy).abs()
                < 1e-6 * batch.cost(&inst).energy.max(1.0),
            "energy differs: batch {} vs incremental {}",
            batch.cost(&inst).energy,
            inc.cost(&inst).energy
        );
        for i in 0..60 {
            let t = 0.05 + i as f64 * 0.1;
            assert!(
                (batch.speed_at(0, t) - inc.speed_at(0, t)).abs() < 1e-6,
                "profiles differ at t={t}: {} vs {}",
                batch.speed_at(0, t),
                inc.speed_at(0, t)
            );
        }
    }

    #[test]
    fn horizon_free_streaming_needs_an_explicit_step() {
        assert!(BkpScheduler::default().start(1, 2.0).is_err());
        let with_step = BkpScheduler {
            step: Some(0.01),
            ..Default::default()
        };
        assert!(with_step.start(1, 2.0).is_ok());
    }

    #[test]
    fn explicit_step_streaming_finishes_jobs() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0), (1.0, 4.0, 1.0, 1.0)])
            .unwrap();
        let algo = BkpScheduler {
            step: Some(0.002),
            ..Default::default()
        };
        let mut run = algo.start(1, inst.alpha).unwrap();
        for id in inst.arrival_order() {
            let job = inst.job(id);
            assert!(run.on_arrival(job, job.release).unwrap().accepted);
        }
        let s = run.finish().unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn bkp_speed_covers_single_job_density() {
        // With one job, v(t) at t = release must be at least w / (e (d - r))
        // and the e multiplier brings the speed to at least the density.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let s = BkpScheduler::default();
        assert!(s.speed_at(&inst, 0.0) >= 0.5 - 1e-9);
    }

    #[test]
    fn bkp_ignores_unreleased_jobs() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0), (5.0, 6.0, 10.0, 1.0)])
            .unwrap();
        let s = BkpScheduler::default();
        // At time 0 only the first job has arrived; the huge future job must
        // not influence the speed.
        assert!(s.speed_at(&inst, 0.0) < 3.0);
    }

    #[test]
    fn bkp_requires_single_machine() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(BkpScheduler::default().schedule(&inst).is_err());
    }

    /// Deterministic pseudo-random stream for the index pin tests.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn speed_index_matches_the_naive_scan_at_increasing_times() {
        let mut state = 11u64;
        let mut jobs: Vec<Job> = Vec::new();
        let mut release = 0.0;
        for i in 0..120 {
            release += 0.3 * lcg(&mut state);
            let window = 0.2 + 3.0 * lcg(&mut state);
            jobs.push(Job::new(
                i,
                release,
                release + window,
                0.1 + 2.0 * lcg(&mut state),
                1.0,
            ));
        }
        let mut index = BkpSpeedIndex::default();
        let mut inserted = 0usize;
        let mut t = 0.0;
        while t < release + 4.0 {
            // Insert jobs up to 0.1 *before* their release passes `t`, like
            // a run fed within the arrival-order tolerance: the index's
            // sweep-time release filter must exclude them exactly like the
            // naive scan's.
            while inserted < jobs.len() && jobs[inserted].release <= t + 0.1 {
                index.insert(&jobs[inserted]);
                inserted += 1;
            }
            let fast = index.speed(t);
            let naive = bkp_speed(&jobs[..inserted], t);
            assert!(
                (fast - naive).abs() <= 1e-9 * naive.max(1.0),
                "speeds differ at t={t}: index {fast} vs scan {naive}"
            );
            t += 0.17;
        }
    }

    #[test]
    fn key_pruning_matches_the_full_sweep_at_increasing_times() {
        // A long stream whose early jobs expire far behind the query time:
        // the pruned sweep must still produce the exact same speeds as the
        // unpruned sweep and the naive scan at every query.
        let mut state = 23u64;
        let mut jobs: Vec<Job> = Vec::new();
        let mut release = 0.0;
        for i in 0..300 {
            release += 0.25 * lcg(&mut state);
            let window = 0.2 + 2.0 * lcg(&mut state);
            jobs.push(Job::new(
                i,
                release,
                release + window,
                0.1 + 2.0 * lcg(&mut state),
                1.0,
            ));
        }
        let mut pruned = BkpSpeedIndex::default();
        let mut full = BkpSpeedIndex {
            prune: false,
            ..Default::default()
        };
        let mut inserted = 0usize;
        let mut t = 0.0;
        while t < release + 3.0 {
            while inserted < jobs.len() && jobs[inserted].release <= t {
                pruned.insert(&jobs[inserted]);
                full.insert(&jobs[inserted]);
                inserted += 1;
            }
            let fast = pruned.speed(t);
            let slow = full.speed(t);
            let naive = bkp_speed(&jobs[..inserted], t);
            assert!(
                (fast - slow).abs() <= 1e-9 * slow.max(1.0),
                "pruned vs full sweep differ at t={t}: {fast} vs {slow}"
            );
            assert!(
                (fast - naive).abs() <= 1e-9 * naive.max(1.0),
                "pruned vs naive scan differ at t={t}: {fast} vs {naive}"
            );
            t += 0.21;
        }
        // The expired prefix really is dropped as the frontier advances.
        assert!(
            pruned.by_deadline.len() - pruned.expired_prefix < jobs.len() / 2,
            "pruning never dropped the aged deadline prefix"
        );
    }

    #[test]
    fn key_pruning_toggle_produces_identical_runs() {
        let inst = instance();
        let algo = BkpScheduler {
            resolution: 500,
            ..Default::default()
        };
        let mut pruned = algo.start_for(&inst).unwrap();
        let mut full = algo.start_for(&inst).unwrap().with_key_pruning(false);
        for id in inst.arrival_order() {
            let job = inst.job(id);
            pruned.on_arrival(job, job.release).unwrap();
            full.on_arrival(job, job.release).unwrap();
        }
        let a = pruned.finish().unwrap();
        let b = full.finish().unwrap();
        assert!((a.cost(&inst).energy - b.cost(&inst).energy).abs() < 1e-9);
        for i in 0..60 {
            let t = 0.05 + i as f64 * 0.1;
            assert!(
                (a.speed_at(0, t) - b.speed_at(0, t)).abs() < 1e-9,
                "pruned vs full profiles differ at t={t}"
            );
        }
    }

    #[test]
    fn indexed_events_match_the_full_scan_path() {
        let inst = instance();
        let algo = BkpScheduler {
            resolution: 600,
            ..Default::default()
        };
        let mut indexed = algo.start_for(&inst).unwrap();
        let mut scan = algo.start_for(&inst).unwrap().with_indexed_events(false);
        for id in inst.arrival_order() {
            let job = inst.job(id);
            indexed.on_arrival(job, job.release).unwrap();
            scan.on_arrival(job, job.release).unwrap();
        }
        let a = indexed.finish().unwrap();
        let b = scan.finish().unwrap();
        assert!(
            (a.cost(&inst).energy - b.cost(&inst).energy).abs()
                < 1e-9 * b.cost(&inst).energy.max(1.0)
        );
        for i in 0..60 {
            let t = 0.05 + i as f64 * 0.1;
            assert!(
                (a.speed_at(0, t) - b.speed_at(0, t)).abs() < 1e-9,
                "indexed vs scan profiles differ at t={t}"
            );
        }
    }
}
