//! The BKP algorithm (Bansal, Kimbrel & Pruhs).
//!
//! BKP runs, at every time `t`, at speed `e · v(t)` where
//!
//! ```text
//! v(t) = max_{t' > t}  w(t, e·t − (e−1)·t', t') / (e · (t' − t))
//! ```
//!
//! and `w(t, t1, t2)` is the total work of jobs released by time `t` whose
//! availability window is contained in `[t1, t2]`.  Jobs are processed in
//! EDF order.  BKP is `2(α/(α−1))^α e^α`-competitive (≈ `2e^{α+1}` for large
//! α) and outperforms OA for large `α`.
//!
//! ### Discretisation note
//!
//! The speed `e·v(t)` varies continuously with `t`, so this implementation
//! evaluates it on a uniform time grid ([`BkpScheduler::resolution`] steps
//! over the instance horizon) and holds it constant within each step.  A
//! configurable safety margin (default 2%) compensates for the
//! discretisation error so that all jobs still finish; the induced energy
//! error is of the same order.  BKP is only used as a context baseline in
//! the classical-scheduling experiment (E9), where this accuracy is ample.
//!
//! The event-driven [`BkpState`] executes the same grid incrementally: the
//! speed of a step is fixed when the step is first entered (it only depends
//! on jobs released by the step's start, so later arrivals cannot change
//! it), and the EDF sub-segment in flight when an arrival lands mid-step is
//! completed before the dispatcher re-evaluates — exactly reproducing the
//! batch loop.  Because the grid itself is derived from the instance
//! horizon, [`OnlineAlgorithm::start_for`] picks the grid; a pure
//! [`start`](OnlineAlgorithm::start) requires an explicit
//! [`step`](BkpScheduler::step) width.
//!
//! ### The deadline-indexed event path
//!
//! The naive `bkp_speed` scan evaluates `v(t)` by enumerating `O(k)`
//! candidate times `t'` and summing `O(k)` jobs for each — `O(k²)` per grid
//! step for `k` released jobs.  [`BkpState`] instead keeps a resident
//! `BkpSpeedIndex` across arrivals: released jobs sorted by deadline and
//! by release (new arrivals buffered and lazily merged, `O(1)` per
//! arrival).  For a query at time `t`, every job `j` has a *key*
//! `max(d_j, (e·t − r_j)/(e−1))` — the first candidate at which it is
//! counted — and the supremum of `w/(e·(t'−t))` is attained at the keys.
//! Splitting jobs into deadline-keyed and crossing-keyed groups (monotone
//! in `e·t`, so the split is a per-job predicate), the two presorted lists
//! yield all keys in ascending order by a single merge, and one prefix-sum
//! sweep evaluates every candidate — `O(k)` per grid evaluation, with no
//! per-candidate rescan.  EDF dispatch inside a step similarly replaces its
//! full-history scan with a lazy min-deadline heap.  Both fast paths can be
//! disabled via [`BkpState::with_indexed_events(false)`](BkpState::with_indexed_events),
//! which restores the original scans as cross-check and bench baseline;
//! [`BkpScheduler::batch_schedule`] keeps using the naive scan, so the
//! equivalence tests pin the index against an independent implementation.

use std::collections::BinaryHeap;

use pss_types::{
    check_arrival, num, Decision, Instance, Job, OnlineAlgorithm, OnlineScheduler, Schedule,
    ScheduleError, Segment,
};

/// The BKP scheduler (single machine).
#[derive(Debug, Clone, Copy)]
pub struct BkpScheduler {
    /// Number of uniform time steps used to evaluate the speed profile when
    /// the horizon is known upfront (the batch path and
    /// [`OnlineAlgorithm::start_for`]).
    pub resolution: usize,
    /// Multiplicative safety margin on the speed to absorb discretisation
    /// error (1.0 = none).
    pub speed_margin: f64,
    /// Explicit grid step width for horizon-free streaming runs started via
    /// [`OnlineAlgorithm::start`]; `None` derives the step from the horizon
    /// via `resolution` (and makes `start` without an instance an error).
    pub step: Option<f64>,
}

impl Default for BkpScheduler {
    fn default() -> Self {
        Self {
            resolution: 4000,
            speed_margin: 1.02,
            step: None,
        }
    }
}

/// The BKP speed `e·v(t)` at time `t`, given the jobs released so far.
fn bkp_speed(jobs: &[Job], t: f64) -> f64 {
    let e = std::f64::consts::E;
    // Candidate t': all deadlines after t, plus the points where the
    // left endpoint e·t − (e−1)·t' crosses a release time.
    let mut candidates: Vec<f64> = jobs
        .iter()
        .filter(|j| j.release <= t + 1e-12 && j.deadline > t)
        .map(|j| j.deadline)
        .collect();
    for j in jobs.iter().filter(|j| j.release <= t + 1e-12) {
        let crossing = (e * t - j.release) / (e - 1.0);
        if crossing > t {
            candidates.push(crossing);
        }
    }
    let mut v = 0.0_f64;
    for &t2 in &candidates {
        if t2 <= t {
            continue;
        }
        let t1 = e * t - (e - 1.0) * t2;
        let work: f64 = jobs
            .iter()
            .filter(|j| {
                j.release <= t + 1e-12
                    && num::approx_ge(j.release, t1)
                    && num::approx_le(j.deadline, t2)
            })
            .map(|j| j.work)
            .sum();
        v = v.max(work / (e * (t2 - t)));
    }
    e * v
}

/// One job as the speed index sees it: `phi = r + (e−1)·d` decides whether
/// the job's key at query time `t` is its deadline (`phi ≥ e·t`) or its
/// release-crossing `(e·t − r)/(e−1)` (`phi < e·t`) — the job's key is the
/// maximum of the two, and `phi` compares them without recomputing either.
#[derive(Debug, Clone, Copy)]
struct IndexedJob {
    release: f64,
    deadline: f64,
    work: f64,
    phi: f64,
}

impl IndexedJob {
    fn new(job: &Job) -> Self {
        let e = std::f64::consts::E;
        Self {
            release: job.release,
            deadline: job.deadline,
            work: job.work,
            phi: job.release + (e - 1.0) * job.deadline,
        }
    }
}

/// The resident deadline/release index behind the incremental BKP speed
/// evaluation.
///
/// `speed(t)` is mathematically identical to `bkp_speed` on the inserted
/// jobs (the supremum over candidate times is attained at the per-job keys,
/// which the two presorted lists enumerate in ascending order; jobs not yet
/// released at `t` — possible within the arrival-order tolerance when a job
/// is fed slightly early — are filtered during the sweep exactly like the
/// scan's release filter), but costs a single `O(k)` merge-and-sweep
/// instead of the naive `O(k²)` candidate × rescan loop.
///
/// Cost model: `O(1)` buffering per arrival; each grid *evaluation* is one
/// `O(k)` sweep over every job released so far (the BKP work term never
/// forgets old jobs), so per-arrival cost is amortised-flat on streams
/// whose grid advances slower than arrivals, while tail latencies grow
/// slowly with the history — see the ROADMAP open item on pruning.
#[derive(Debug, Clone, Default)]
struct BkpSpeedIndex {
    /// Merged jobs sorted by deadline ascending (ties arbitrary).
    by_deadline: Vec<IndexedJob>,
    /// Merged jobs sorted by release *descending* — ascending crossing-key
    /// order for any query time.
    by_release: Vec<IndexedJob>,
    /// Arrivals not yet merged into the sorted lists.
    fresh: Vec<IndexedJob>,
}

impl BkpSpeedIndex {
    /// Buffers a newly released job (merged lazily at the next evaluation).
    fn insert(&mut self, job: &Job) {
        self.fresh.push(IndexedJob::new(job));
    }

    /// Merges the buffered arrivals into both sorted lists.
    fn merge_fresh(&mut self) {
        if self.fresh.is_empty() {
            return;
        }
        self.fresh.sort_by(|a, b| a.deadline.total_cmp(&b.deadline));
        merge_sorted(&mut self.by_deadline, &self.fresh, |a, b| {
            a.deadline <= b.deadline
        });
        self.fresh.sort_by(|a, b| b.release.total_cmp(&a.release));
        merge_sorted(&mut self.by_release, &self.fresh, |a, b| {
            a.release >= b.release
        });
        self.fresh.clear();
    }

    /// The BKP speed `e·v(t)` over the inserted jobs.
    fn speed(&mut self, t: f64) -> f64 {
        self.merge_fresh();
        let e = std::f64::consts::E;
        let et = e * t;
        let a = &self.by_deadline;
        let b = &self.by_release;
        let (mut ai, mut bi) = (0usize, 0usize);
        let mut sum = 0.0_f64;
        let mut v = 0.0_f64;
        loop {
            // Next deadline-keyed job (phi ≥ e·t) and next crossing-keyed
            // job (phi < e·t); the other group is skipped in each list.
            while ai < a.len() && a[ai].phi < et {
                ai += 1;
            }
            while bi < b.len() && b[bi].phi >= et {
                bi += 1;
            }
            let ka = (ai < a.len()).then(|| a[ai].deadline);
            let kb = (bi < b.len()).then(|| (et - b[bi].release) / (e - 1.0));
            // Consume the smaller key.  Evaluating after every single job is
            // sound even for tied keys: the last evaluation at a key sees
            // the full prefix sum, earlier ones are dominated by it.
            let (job, key) = match (ka, kb) {
                (None, None) => break,
                (Some(ka), None) => {
                    ai += 1;
                    (&a[ai - 1], ka)
                }
                (None, Some(kb)) => {
                    bi += 1;
                    (&b[bi - 1], kb)
                }
                (Some(ka), Some(kb)) => {
                    if ka <= kb {
                        ai += 1;
                        (&a[ai - 1], ka)
                    } else {
                        bi += 1;
                        (&b[bi - 1], kb)
                    }
                }
            };
            // The scan's release filter: a job fed early (within the
            // arrival-order tolerance) and not released by `t` contributes
            // neither work nor a candidate.
            if job.release > t + 1e-12 {
                continue;
            }
            sum += job.work;
            if key > t {
                v = v.max(sum / (e * (key - t)));
            }
        }
        e * v
    }
}

/// Merges the presorted `fresh` run into the presorted `base` list in one
/// backward pass (`le(a, b)` = "a may precede b").
fn merge_sorted<F: Fn(&IndexedJob, &IndexedJob) -> bool>(
    base: &mut Vec<IndexedJob>,
    fresh: &[IndexedJob],
    le: F,
) {
    let mut merged = Vec::with_capacity(base.len() + fresh.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < base.len() && j < fresh.len() {
        if le(&base[i], &fresh[j]) {
            merged.push(base[i]);
            i += 1;
        } else {
            merged.push(fresh[j]);
            j += 1;
        }
    }
    merged.extend_from_slice(&base[i..]);
    merged.extend_from_slice(&fresh[j..]);
    *base = merged;
}

/// Entry of the lazy EDF queue: ordered so the max-heap pops the smallest
/// `(deadline, job)` — exactly the first minimum the scan's `min_by` picks.
#[derive(Debug, Clone, Copy)]
struct EdfEntry {
    deadline: f64,
    /// Dense index into [`BkpState::jobs`].
    job: usize,
}

impl PartialEq for EdfEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl Eq for EdfEntry {}

impl PartialOrd for EdfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for EdfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline
        // (ties: smallest index) on top.
        other
            .deadline
            .total_cmp(&self.deadline)
            .then(other.job.cmp(&self.job))
    }
}

impl BkpScheduler {
    /// The BKP speed `e·v(t)` at time `t`, given the jobs of `instance`
    /// released by then.
    pub fn speed_at(&self, instance: &Instance, t: f64) -> f64 {
        bkp_speed(&instance.jobs, t)
    }

    /// The original batch grid evaluation, kept as the reference
    /// implementation for the incremental-vs-batch equivalence tests.
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(instance.machines, "BKP", "")?;
        let mut schedule = Schedule::empty(1);
        if instance.is_empty() {
            return Ok(schedule);
        }
        let (lo, hi) = instance.horizon();
        let steps = self.resolution.max(1);
        let dt = (hi - lo) / steps as f64;
        let mut remaining: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();

        for i in 0..steps {
            let t = lo + i as f64 * dt;
            let speed = self.speed_at(instance, t) * self.speed_margin;
            if speed <= 0.0 {
                continue;
            }
            // EDF within the step, possibly splitting it across jobs.
            let mut now = t;
            let step_end = t + dt;
            while now < step_end - 1e-15 {
                let next = instance
                    .jobs
                    .iter()
                    .enumerate()
                    .filter(|(j, job)| {
                        remaining[*j] > 1e-12 && job.release <= now + 1e-12 && job.deadline > now
                    })
                    .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline));
                let Some((j, job)) = next else { break };
                let max_dur = (remaining[j] / speed)
                    .min(step_end - now)
                    .min(job.deadline - now);
                if max_dur <= 1e-15 {
                    break;
                }
                schedule.push(Segment::work(0, now, now + max_dur, speed, job.id));
                remaining[j] -= speed * max_dur;
                now += max_dur;
            }
        }
        Ok(schedule)
    }
}

/// The EDF sub-segment currently being executed (it survives arrivals that
/// land in its middle, exactly like the batch loop's inner dispatch).
#[derive(Debug, Clone, Copy)]
struct Inflight {
    /// Dense index into [`BkpState::jobs`].
    job: usize,
    /// Time at which the sub-segment ends.
    end: f64,
    /// The job's remaining work once the sub-segment completes.
    remaining_after: f64,
}

/// One event-driven BKP run.
#[derive(Debug, Clone)]
pub struct BkpState {
    speed_margin: f64,
    /// Grid step width.
    dt: f64,
    /// Grid anchor (`τ_0`); fixed by `start_for`, or at the first arrival
    /// for horizon-free runs.
    anchor: Option<f64>,
    /// Upper bound on the number of grid steps (set by `start_for` to match
    /// the batch grid exactly; `None` runs until the released horizon ends).
    max_steps: Option<usize>,
    /// Jobs released so far (original ids).
    jobs: Vec<Job>,
    remaining: Vec<f64>,
    committed: Schedule,
    /// Time up to which the frontier is committed.
    now: f64,
    /// Index of the grid step containing `now`.
    step_idx: usize,
    /// Speed of the current step, fixed when the step is first entered.
    step_speed: Option<f64>,
    /// Set when the batch dispatch rule `break`s out of the current step
    /// (no eligible job, or a degenerate sub-segment): the remainder of the
    /// step idles even if a job arrives inside it, exactly like the batch
    /// loop.
    step_idle: bool,
    inflight: Option<Inflight>,
    /// When `true` (the default), grid evaluations use the resident
    /// deadline/release index and EDF dispatch the lazy heap; when `false`,
    /// the original full-history scans.
    indexed: bool,
    /// Resident speed index over the released jobs.
    index: BkpSpeedIndex,
    /// Lazy EDF queue over the released jobs (finished/expired entries are
    /// discarded at peek time; they can never become eligible again).
    edf: BinaryHeap<EdfEntry>,
}

impl BkpState {
    /// Enables or disables the indexed event path (speed index + EDF heap).
    /// With `false` every grid evaluation and every dispatch re-scans the
    /// full job history — the pre-index behaviour, kept as the baseline the
    /// `warm_replan` benchmark and the indexed-vs-scan equivalence tests
    /// compare against.
    pub fn with_indexed_events(mut self, enabled: bool) -> Self {
        self.indexed = enabled;
        self
    }

    fn step_start(&self, anchor: f64) -> f64 {
        anchor + self.step_idx as f64 * self.dt
    }

    /// The earliest-deadline eligible job at `self.now`, by scanning the
    /// full history — the original dispatch rule, used by the non-indexed
    /// path and as the rare-edge fallback of the heap.
    fn scan_next(&self) -> Option<usize> {
        self.jobs
            .iter()
            .enumerate()
            .filter(|(j, job)| {
                self.remaining[*j] > 1e-12
                    && job.release <= self.now + 1e-12
                    && job.deadline > self.now
            })
            .min_by(|(_, a), (_, b)| a.deadline.total_cmp(&b.deadline))
            .map(|(j, _)| j)
    }

    /// The earliest-deadline eligible job at `self.now`, via the lazy heap
    /// (equivalent to [`scan_next`](Self::scan_next), including its
    /// first-minimum tie-break).
    fn edf_peek(&mut self) -> Option<usize> {
        while let Some(entry) = self.edf.peek() {
            let j = entry.job;
            if self.remaining[j] <= 1e-12 || self.jobs[j].deadline <= self.now {
                // Finished or expired: permanently ineligible, drop it.
                self.edf.pop();
                continue;
            }
            if self.jobs[j].release > self.now + 1e-12 {
                // Fed early (within the arrival tolerance) and not released
                // yet at dispatch time: it may become eligible later, so it
                // cannot be popped — fall back to the scan for this
                // dispatch.
                return self.scan_next();
            }
            return Some(j);
        }
        None
    }

    /// Executes the grid over `[self.now, to)`.
    fn advance_to(&mut self, to: f64) {
        let Some(anchor) = self.anchor else { return };
        while self.now < to - 1e-15 {
            if let Some(limit) = self.max_steps {
                if self.step_idx >= limit {
                    self.now = to;
                    return;
                }
            }
            let step_start = self.step_start(anchor);
            let step_end = step_start + self.dt;
            if self.dt <= 0.0 || step_end <= step_start {
                self.now = to;
                return;
            }
            // The speed of a step is fixed at its start time, from the jobs
            // released by then — later arrivals never change it.
            let speed = match self.step_speed {
                Some(s) => s,
                None => {
                    let s = if self.indexed {
                        self.index.speed(step_start) * self.speed_margin
                    } else {
                        bkp_speed(&self.jobs, step_start) * self.speed_margin
                    };
                    self.step_speed = Some(s);
                    s
                }
            };
            let stop = step_end.min(to);

            if speed <= 0.0 || self.step_idle {
                self.now = stop;
            } else {
                // Dispatch EDF sub-segments until `stop`, completing any
                // sub-segment already in flight first.
                while self.now < stop - 1e-15 {
                    let fl = match self.inflight {
                        Some(fl) => fl,
                        None => {
                            let next = if self.indexed {
                                self.edf_peek()
                            } else {
                                self.scan_next()
                            };
                            let Some(j) = next else {
                                // Batch `break`: the rest of the step idles,
                                // even past arrivals landing inside it.
                                self.step_idle = true;
                                break;
                            };
                            let job = self.jobs[j];
                            let max_dur = (self.remaining[j] / speed)
                                .min(step_end - self.now)
                                .min(job.deadline - self.now);
                            if max_dur <= 1e-15 {
                                self.step_idle = true;
                                break;
                            }
                            let fl = Inflight {
                                job: j,
                                end: self.now + max_dur,
                                remaining_after: self.remaining[j] - speed * max_dur,
                            };
                            self.inflight = Some(fl);
                            fl
                        }
                    };
                    let until = fl.end.min(stop);
                    self.committed.push(Segment::work(
                        0,
                        self.now,
                        until,
                        speed,
                        self.jobs[fl.job].id,
                    ));
                    self.now = until;
                    if until >= fl.end - 1e-15 {
                        self.remaining[fl.job] = fl.remaining_after;
                        self.inflight = None;
                    }
                }
                // A `break` above leaves the rest of `[now, stop)` idle.
                self.now = self.now.max(stop);
            }
            if self.now >= step_end - 1e-15 {
                self.step_idx += 1;
                self.step_speed = None;
                self.step_idle = false;
                self.now = self.now.max(step_end);
            }
        }
        self.now = self.now.max(to);
    }
}

impl OnlineScheduler for BkpState {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        check_arrival(job, self.now, now)?;
        if self.anchor.is_none() {
            self.anchor = Some(now);
            self.now = now;
        }
        if self.now.is_finite() {
            let to = now.max(self.now);
            self.advance_to(to);
        }
        self.edf.push(EdfEntry {
            deadline: job.deadline,
            job: self.jobs.len(),
        });
        self.index.insert(job);
        self.jobs.push(*job);
        self.remaining.push(job.work);
        Ok(Decision::accept(0.0))
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        if let Some(anchor) = self.anchor {
            let end = match self.max_steps {
                Some(steps) => anchor + steps as f64 * self.dt,
                None => self.jobs.iter().map(|j| j.deadline).fold(anchor, f64::max),
            };
            self.advance_to(end);
        }
        Ok(self.committed)
    }
}

impl OnlineAlgorithm for BkpScheduler {
    type Run = BkpState;

    fn algorithm_name(&self) -> String {
        "BKP".into()
    }

    fn start(&self, machines: usize, _alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "BKP", "")?;
        let Some(dt) = self.step else {
            return Err(ScheduleError::Internal(
                "BKP needs a time grid: set BkpScheduler::step for horizon-free streaming, \
                 or start the run with start_for(instance)"
                    .into(),
            ));
        };
        if !(dt.is_finite() && dt > 0.0) {
            return Err(ScheduleError::Internal(format!(
                "BKP step width must be positive and finite, got {dt}"
            )));
        }
        Ok(BkpState {
            speed_margin: self.speed_margin,
            dt,
            anchor: None,
            max_steps: None,
            jobs: Vec::new(),
            remaining: Vec::new(),
            committed: Schedule::empty(1),
            now: f64::NEG_INFINITY,
            step_idx: 0,
            step_speed: None,
            step_idle: false,
            inflight: None,
            indexed: true,
            index: BkpSpeedIndex::default(),
            edf: BinaryHeap::new(),
        })
    }

    fn start_for(&self, instance: &Instance) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(instance.machines, "BKP", "")?;
        if let Some(dt) = self.step {
            // An explicit step takes precedence over the horizon grid.
            let mut run = self.start(1, instance.alpha)?;
            debug_assert_eq!(run.dt, dt);
            run.anchor = Some(instance.horizon().0);
            run.now = instance.horizon().0;
            return Ok(run);
        }
        let (lo, hi) = instance.horizon();
        let steps = self.resolution.max(1);
        let span = hi - lo;
        let dt = if span > 0.0 { span / steps as f64 } else { 1.0 };
        Ok(BkpState {
            speed_margin: self.speed_margin,
            dt,
            anchor: Some(lo),
            max_steps: Some(steps),
            jobs: Vec::new(),
            remaining: Vec::new(),
            committed: Schedule::empty(1),
            now: lo,
            step_idx: 0,
            step_speed: None,
            step_idle: false,
            inflight: None,
            indexed: true,
            index: BkpSpeedIndex::default(),
            edf: BinaryHeap::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_types::{validate_schedule, Scheduler};

    fn instance() -> Instance {
        Instance::from_tuples(
            1,
            3.0,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 6.0, 1.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn bkp_finishes_every_job() {
        let inst = instance();
        let s = BkpScheduler::default().schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn bkp_energy_is_at_least_the_optimum() {
        let inst = instance();
        let bkp = BkpScheduler::default()
            .schedule(&inst)
            .unwrap()
            .cost(&inst)
            .energy;
        let opt = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(bkp >= opt - 1e-9, "BKP {bkp} below optimal {opt}");
    }

    #[test]
    fn incremental_bkp_matches_the_batch_reference() {
        let inst = instance();
        let algo = BkpScheduler {
            resolution: 500,
            ..Default::default()
        };
        let batch = algo.batch_schedule(&inst).unwrap();
        let inc = algo.schedule(&inst).unwrap();
        assert!(
            (batch.cost(&inst).energy - inc.cost(&inst).energy).abs()
                < 1e-6 * batch.cost(&inst).energy.max(1.0),
            "energy differs: batch {} vs incremental {}",
            batch.cost(&inst).energy,
            inc.cost(&inst).energy
        );
        for i in 0..60 {
            let t = 0.05 + i as f64 * 0.1;
            assert!(
                (batch.speed_at(0, t) - inc.speed_at(0, t)).abs() < 1e-6,
                "profiles differ at t={t}: {} vs {}",
                batch.speed_at(0, t),
                inc.speed_at(0, t)
            );
        }
    }

    #[test]
    fn horizon_free_streaming_needs_an_explicit_step() {
        assert!(BkpScheduler::default().start(1, 2.0).is_err());
        let with_step = BkpScheduler {
            step: Some(0.01),
            ..Default::default()
        };
        assert!(with_step.start(1, 2.0).is_ok());
    }

    #[test]
    fn explicit_step_streaming_finishes_jobs() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0), (1.0, 4.0, 1.0, 1.0)])
            .unwrap();
        let algo = BkpScheduler {
            step: Some(0.002),
            ..Default::default()
        };
        let mut run = algo.start(1, inst.alpha).unwrap();
        for id in inst.arrival_order() {
            let job = inst.job(id);
            assert!(run.on_arrival(job, job.release).unwrap().accepted);
        }
        let s = run.finish().unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
    }

    #[test]
    fn bkp_speed_covers_single_job_density() {
        // With one job, v(t) at t = release must be at least w / (e (d - r))
        // and the e multiplier brings the speed to at least the density.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let s = BkpScheduler::default();
        assert!(s.speed_at(&inst, 0.0) >= 0.5 - 1e-9);
    }

    #[test]
    fn bkp_ignores_unreleased_jobs() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0), (5.0, 6.0, 10.0, 1.0)])
            .unwrap();
        let s = BkpScheduler::default();
        // At time 0 only the first job has arrived; the huge future job must
        // not influence the speed.
        assert!(s.speed_at(&inst, 0.0) < 3.0);
    }

    #[test]
    fn bkp_requires_single_machine() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(BkpScheduler::default().schedule(&inst).is_err());
    }

    /// Deterministic pseudo-random stream for the index pin tests.
    fn lcg(state: &mut u64) -> f64 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((*state >> 11) as f64) / ((1u64 << 53) as f64)
    }

    #[test]
    fn speed_index_matches_the_naive_scan_at_increasing_times() {
        let mut state = 11u64;
        let mut jobs: Vec<Job> = Vec::new();
        let mut release = 0.0;
        for i in 0..120 {
            release += 0.3 * lcg(&mut state);
            let window = 0.2 + 3.0 * lcg(&mut state);
            jobs.push(Job::new(
                i,
                release,
                release + window,
                0.1 + 2.0 * lcg(&mut state),
                1.0,
            ));
        }
        let mut index = BkpSpeedIndex::default();
        let mut inserted = 0usize;
        let mut t = 0.0;
        while t < release + 4.0 {
            // Insert jobs up to 0.1 *before* their release passes `t`, like
            // a run fed within the arrival-order tolerance: the index's
            // sweep-time release filter must exclude them exactly like the
            // naive scan's.
            while inserted < jobs.len() && jobs[inserted].release <= t + 0.1 {
                index.insert(&jobs[inserted]);
                inserted += 1;
            }
            let fast = index.speed(t);
            let naive = bkp_speed(&jobs[..inserted], t);
            assert!(
                (fast - naive).abs() <= 1e-9 * naive.max(1.0),
                "speeds differ at t={t}: index {fast} vs scan {naive}"
            );
            t += 0.17;
        }
    }

    #[test]
    fn indexed_events_match_the_full_scan_path() {
        let inst = instance();
        let algo = BkpScheduler {
            resolution: 600,
            ..Default::default()
        };
        let mut indexed = algo.start_for(&inst).unwrap();
        let mut scan = algo.start_for(&inst).unwrap().with_indexed_events(false);
        for id in inst.arrival_order() {
            let job = inst.job(id);
            indexed.on_arrival(job, job.release).unwrap();
            scan.on_arrival(job, job.release).unwrap();
        }
        let a = indexed.finish().unwrap();
        let b = scan.finish().unwrap();
        assert!(
            (a.cost(&inst).energy - b.cost(&inst).energy).abs()
                < 1e-9 * b.cost(&inst).energy.max(1.0)
        );
        for i in 0..60 {
            let t = 0.05 + i as f64 * 0.1;
            assert!(
                (a.speed_at(0, t) - b.speed_at(0, t)).abs() < 1e-9,
                "indexed vs scan profiles differ at t={t}"
            );
        }
    }
}
