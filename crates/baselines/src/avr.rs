//! Average Rate (AVR), Yao, Demers & Shenker's second online algorithm.
//!
//! Every job is processed at its own density `w_j / (d_j − r_j)`, spread
//! uniformly over its availability window; the machine's speed at any time
//! is the sum of the densities of the jobs available at that time.  AVR is
//! `(2α)^α / 2`-competitive and serves as an easy-to-predict baseline in the
//! classical (mandatory completion) experiments.
//!
//! AVR is naturally event-driven: a job's contribution to the speed profile
//! is fixed at its own arrival and never touches the past, so the
//! incremental [`AvrState`] simply *commits* the window between consecutive
//! arrivals using the densities of the jobs known so far.  The one-shot
//! construction over the full atomic-interval partition is retained as
//! [`AvrScheduler::batch_schedule`] for the equivalence tests.

use pss_intervals::IntervalPartition;
use pss_types::{
    check_arrival, Decision, Instance, Job, JobId, OnlineAlgorithm, OnlineScheduler, Schedule,
    ScheduleError, Segment,
};

/// The Average Rate scheduler (single machine).
#[derive(Debug, Clone, Copy, Default)]
pub struct AvrScheduler;

impl AvrScheduler {
    /// The original batch construction over the instance's atomic-interval
    /// partition, kept as the reference implementation for the
    /// incremental-vs-batch equivalence tests.
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(instance.machines, "AVR", "")?;
        let mut schedule = Schedule::empty(1);
        let partition = IntervalPartition::from_jobs(&instance.jobs);

        for iv in partition.intervals() {
            // Jobs available throughout this atomic interval.
            let active: Vec<(JobId, f64)> = instance
                .jobs
                .iter()
                .filter(|j| partition.job_covers(j, iv.index))
                .map(|j| (j.id, j.density()))
                .collect();
            let total_speed: f64 = active.iter().map(|(_, d)| d).sum();
            if total_speed <= 0.0 {
                continue;
            }
            // Run at the summed density; each job receives a share of the
            // interval proportional to its own density, which processes
            // exactly `density · length` of its work.
            let mut t = iv.start;
            for (job, density) in &active {
                let duration = iv.length() * density / total_speed;
                if duration <= 0.0 {
                    continue;
                }
                schedule.push(Segment::work(0, t, t + duration, total_speed, *job));
                t += duration;
            }
        }
        Ok(schedule)
    }
}

/// One event-driven AVR run.
#[derive(Debug, Clone)]
pub struct AvrState {
    /// Jobs released so far (original ids).
    jobs: Vec<Job>,
    committed: Schedule,
    now: f64,
}

impl AvrState {
    /// Commits the window `[self.now, to)` using the densities of the jobs
    /// known so far.  Future arrivals have release `≥ to`, so they can never
    /// contribute to this window — the commit is final.
    fn commit_to(&mut self, to: f64) {
        if !self.now.is_finite() || to <= self.now + 1e-15 {
            self.now = self.now.max(to);
            return;
        }
        // Sub-partition the window at every known boundary inside it; the
        // pieces coincide with the batch partition's atomic intervals
        // because arrival times are themselves boundaries.
        let mut cuts: Vec<f64> = vec![self.now, to];
        for j in &self.jobs {
            for b in [j.release, j.deadline] {
                if b > self.now + 1e-12 && b < to - 1e-12 {
                    cuts.push(b);
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

        for pair in cuts.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            let active: Vec<(JobId, f64)> = self
                .jobs
                .iter()
                .filter(|j| j.covers(start, end))
                .map(|j| (j.id, j.density()))
                .collect();
            let total_speed: f64 = active.iter().map(|(_, d)| d).sum();
            if total_speed <= 0.0 {
                continue;
            }
            let mut t = start;
            for (job, density) in &active {
                let duration = (end - start) * density / total_speed;
                if duration <= 0.0 {
                    continue;
                }
                self.committed
                    .push(Segment::work(0, t, t + duration, total_speed, *job));
                t += duration;
            }
        }
        self.now = to;
    }
}

impl OnlineScheduler for AvrState {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        check_arrival(job, self.now, now)?;
        self.commit_to(now.max(self.now));
        self.jobs.push(*job);
        Ok(Decision::accept(0.0))
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        let end = self
            .jobs
            .iter()
            .map(|j| j.deadline)
            .fold(f64::NEG_INFINITY, f64::max);
        if end.is_finite() {
            self.commit_to(end);
        }
        Ok(self.committed)
    }
}

impl OnlineAlgorithm for AvrScheduler {
    type Run = AvrState;

    fn algorithm_name(&self) -> String {
        "AVR".into()
    }

    fn start(&self, machines: usize, _alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "AVR", "")?;
        Ok(AvrState {
            jobs: Vec::new(),
            committed: Schedule::empty(1),
            now: f64::NEG_INFINITY,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_types::{validate_schedule, Scheduler};

    fn instance() -> Instance {
        Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 2.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 5.0, 1.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn avr_finishes_every_job() {
        let inst = instance();
        let s = AvrScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty(), "rejected {:?}", report.rejected);
    }

    #[test]
    fn avr_single_job_matches_optimum() {
        let inst = Instance::from_tuples(1, 3.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let s = AvrScheduler.schedule(&inst).unwrap();
        assert!((s.cost(&inst).energy - 2.0 * 0.5f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn avr_uses_at_least_as_much_energy_as_yds() {
        let inst = instance();
        let avr = AvrScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        let yds = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(avr >= yds - 1e-9, "AVR {avr} below optimal {yds}");
    }

    #[test]
    fn avr_speed_is_sum_of_densities() {
        let inst = instance();
        let s = AvrScheduler.schedule(&inst).unwrap();
        // At t = 2.5 all three jobs are active: densities 0.5, 0.5, 0.5.
        let expected: f64 = inst
            .jobs
            .iter()
            .filter(|j| j.available_at(2.5))
            .map(|j| j.density())
            .sum();
        assert!((s.total_speed_at(2.5) - expected).abs() < 1e-9);
    }

    #[test]
    fn incremental_avr_matches_the_batch_reference() {
        let inst = instance();
        let batch = AvrScheduler.batch_schedule(&inst).unwrap();
        let inc = AvrScheduler.schedule(&inst).unwrap();
        assert!(
            (batch.cost(&inst).energy - inc.cost(&inst).energy).abs() < 1e-9,
            "energy differs: batch {} vs incremental {}",
            batch.cost(&inst).energy,
            inc.cost(&inst).energy
        );
        for t in [0.5, 1.5, 2.5, 3.5, 4.5] {
            assert!(
                (batch.total_speed_at(t) - inc.total_speed_at(t)).abs() < 1e-9,
                "profiles differ at t={t}"
            );
        }
        // Per-job work is also identical.
        let bw = batch.work_per_job(inst.len());
        let iw = inc.work_per_job(inst.len());
        for j in 0..inst.len() {
            assert!((bw[j] - iw[j]).abs() < 1e-9, "work differs for job {j}");
        }
    }

    #[test]
    fn frontier_is_committed_only_up_to_the_last_arrival() {
        let inst = instance();
        let mut run = AvrScheduler.start_for(&inst).unwrap();
        for id in inst.arrival_order() {
            let job = inst.job(id);
            run.on_arrival(job, job.release).unwrap();
            for seg in &run.frontier().segments {
                assert!(seg.end <= job.release + 1e-12);
            }
        }
        let s = run.finish().unwrap();
        assert!(validate_schedule(&inst, &s).unwrap().rejected.is_empty());
    }

    #[test]
    fn avr_rejects_multi_machine_instances() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(AvrScheduler.schedule(&inst).is_err());
    }
}
