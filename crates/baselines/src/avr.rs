//! Average Rate (AVR), Yao, Demers & Shenker's second online algorithm.
//!
//! Every job is processed at its own density `w_j / (d_j − r_j)`, spread
//! uniformly over its availability window; the machine's speed at any time
//! is the sum of the densities of the jobs available at that time.  AVR is
//! `(2α)^α / 2`-competitive and serves as an easy-to-predict baseline in the
//! classical (mandatory completion) experiments.
//!
//! AVR is naturally event-driven: a job's contribution to the speed profile
//! is fixed at its own arrival and never touches the past, so the
//! incremental [`AvrState`] simply *commits* the window between consecutive
//! arrivals using the densities of the jobs known so far.  The one-shot
//! construction over the full atomic-interval partition is retained as
//! [`AvrScheduler::batch_schedule`] for the equivalence tests.
//!
//! ### The active-set index
//!
//! Committing a window only needs the jobs whose availability window
//! intersects it.  Because arrivals are fed in release order, every stored
//! job is already released when a window is committed, so the only interior
//! boundaries are *deadlines* and the relevant jobs are exactly the ones
//! whose deadline has not passed.  [`AvrState`] therefore keeps a persistent
//! **active-set index**: released jobs sorted by deadline (descending), with
//! expired jobs popped from the tail as the committed frontier advances.
//! Each committed piece touches only the jobs covering it — amortised
//! `O(active)` per commit, independent of the stream length.  The original
//! full-history scan survives behind
//! [`AvrState::with_active_index(false)`](AvrState::with_active_index) as
//! cross-check and benchmark baseline, mirroring the warm-start toggles of
//! PD and the replanning executor.

use pss_intervals::IntervalPartition;
use pss_types::seglog::{FrontierPart, LogCheckpointable, SegmentLog};
use pss_types::snapshot::{
    BlobReader, BlobWriter, Checkpointable, SnapshotError, SnapshotPart, StateBlob,
};
use pss_types::{
    check_arrival, num, Decision, Instance, Job, JobId, OnlineAlgorithm, OnlineScheduler, Schedule,
    ScheduleError, Segment,
};

/// The Average Rate scheduler (single machine).
#[derive(Debug, Clone, Copy, Default)]
pub struct AvrScheduler;

impl AvrScheduler {
    /// The original batch construction over the instance's atomic-interval
    /// partition, kept as the reference implementation for the
    /// incremental-vs-batch equivalence tests.
    pub fn batch_schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        crate::require_single_machine(instance.machines, "AVR", "")?;
        let mut schedule = Schedule::empty(1);
        let partition = IntervalPartition::from_jobs(&instance.jobs);

        for iv in partition.intervals() {
            // Jobs available throughout this atomic interval.
            let active: Vec<(JobId, f64)> = instance
                .jobs
                .iter()
                .filter(|j| partition.job_covers(j, iv.index))
                .map(|j| (j.id, j.density()))
                .collect();
            let total_speed: f64 = active.iter().map(|(_, d)| d).sum();
            if total_speed <= 0.0 {
                continue;
            }
            // Run at the summed density; each job receives a share of the
            // interval proportional to its own density, which processes
            // exactly `density · length` of its work.
            let mut t = iv.start;
            for (job, density) in &active {
                let duration = iv.length() * density / total_speed;
                if duration <= 0.0 {
                    continue;
                }
                schedule.push(Segment::work(0, t, t + duration, total_speed, *job));
                t += duration;
            }
        }
        Ok(schedule)
    }
}

/// One entry of the active-set index: a released job that can still cover a
/// future commit piece.
#[derive(Debug, Clone, Copy)]
struct ActiveJob {
    deadline: f64,
    density: f64,
    id: JobId,
}

/// One event-driven AVR run.
#[derive(Debug, Clone)]
pub struct AvrState {
    /// Jobs released so far (original ids); only read by the full-scan
    /// reference path.
    jobs: Vec<Job>,
    /// Released, not-yet-expired jobs sorted by deadline *descending*, so
    /// expiry pops from the tail and the jobs covering a piece are a prefix.
    active: Vec<ActiveJob>,
    /// Largest deadline seen so far (the finish horizon).
    horizon_end: f64,
    /// When `true` (the default), commits use the active-set index; when
    /// `false`, the original full-history scan.
    indexed: bool,
    committed: Schedule,
    now: f64,
}

impl AvrState {
    /// Enables or disables the active-set index.  With `false` every commit
    /// re-scans the full job history — the pre-index behaviour, kept as the
    /// baseline the `warm_replan` benchmark and the indexed-vs-scan
    /// equivalence tests compare against.
    pub fn with_active_index(mut self, enabled: bool) -> Self {
        self.indexed = enabled;
        self
    }

    /// Commits the window `[self.now, to)` using the densities of the jobs
    /// known so far.  Future arrivals have release `≥ to`, so they can never
    /// contribute to this window — the commit is final.
    fn commit_to(&mut self, to: f64) {
        if self.indexed {
            self.commit_to_indexed(to);
        } else {
            self.commit_to_scan(to);
        }
    }

    /// Index-driven commit: the interior cuts are the active deadlines (all
    /// stored jobs are already released, so releases never cut the window)
    /// and each piece is covered by a prefix of the deadline-descending
    /// active set.  Touches only jobs intersecting the window.
    fn commit_to_indexed(&mut self, to: f64) {
        if !self.now.is_finite() || to <= self.now + 1e-15 {
            self.now = self.now.max(to);
            return;
        }
        // Same cut dedup rule as the scan path: chained, 1e-12 apart.
        let mut cuts: Vec<f64> = vec![self.now];
        for a in self.active.iter().rev() {
            if a.deadline > self.now + 1e-12
                && a.deadline < to - 1e-12
                && cuts.last().is_none_or(|last| a.deadline - last > 1e-12)
            {
                cuts.push(a.deadline);
            }
        }
        cuts.push(to);

        for pair in cuts.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            // Covering jobs are the prefix whose deadline reaches `end`
            // (releases are all <= start already).
            let covering = self
                .active
                .partition_point(|a| num::approx_le(end, a.deadline));
            let total_speed: f64 = self.active[..covering].iter().map(|a| a.density).sum();
            if total_speed <= 0.0 {
                continue;
            }
            let mut t = start;
            for a in &self.active[..covering] {
                let duration = (end - start) * a.density / total_speed;
                if duration <= 0.0 {
                    continue;
                }
                self.committed
                    .push(Segment::work(0, t, t + duration, total_speed, a.id));
                t += duration;
            }
        }
        self.now = to;
        // Jobs whose deadline lies definitely before the frontier can never
        // cover a future piece: drop them so the index stays `O(active)`.
        while let Some(last) = self.active.last() {
            if num::definitely_lt(last.deadline, self.now) {
                self.active.pop();
            } else {
                break;
            }
        }
    }

    /// The original full-history commit, kept as the reference baseline.
    fn commit_to_scan(&mut self, to: f64) {
        if !self.now.is_finite() || to <= self.now + 1e-15 {
            self.now = self.now.max(to);
            return;
        }
        // Sub-partition the window at every known boundary inside it; the
        // pieces coincide with the batch partition's atomic intervals
        // because arrival times are themselves boundaries.
        let mut cuts: Vec<f64> = vec![self.now, to];
        for j in &self.jobs {
            for b in [j.release, j.deadline] {
                if b > self.now + 1e-12 && b < to - 1e-12 {
                    cuts.push(b);
                }
            }
        }
        cuts.sort_by(f64::total_cmp);
        cuts.dedup_by(|a, b| (*a - *b).abs() <= 1e-12);

        for pair in cuts.windows(2) {
            let (start, end) = (pair[0], pair[1]);
            let active: Vec<(JobId, f64)> = self
                .jobs
                .iter()
                .filter(|j| j.covers(start, end))
                .map(|j| (j.id, j.density()))
                .collect();
            let total_speed: f64 = active.iter().map(|(_, d)| d).sum();
            if total_speed <= 0.0 {
                continue;
            }
            let mut t = start;
            for (job, density) in &active {
                let duration = (end - start) * density / total_speed;
                if duration <= 0.0 {
                    continue;
                }
                self.committed
                    .push(Segment::work(0, t, t + duration, total_speed, *job));
                t += duration;
            }
        }
        self.now = to;
    }
}

impl SnapshotPart for ActiveJob {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_f64(self.deadline);
        w.write_f64(self.density);
        w.write_part(&self.id);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            deadline: r.read_f64()?,
            density: r.read_f64()?,
            id: r.read_part()?,
        })
    }
}

/// State version of [`AvrState`] snapshots.  Version 2 stores the
/// committed frontier as a [`FrontierPart`] (inline or a segment-log
/// cursor); version-1 blobs are rejected with a typed error.
const AVR_STATE_VERSION: u16 = 2;

impl AvrState {
    fn encode_snapshot(&self, frontier: &FrontierPart) -> StateBlob {
        let mut w = BlobWriter::new();
        w.write_seq(&self.jobs);
        w.write_seq(&self.active);
        w.write_f64(self.horizon_end);
        w.write_bool(self.indexed);
        w.write_part(frontier);
        w.write_f64(self.now);
        StateBlob::new("avr", AVR_STATE_VERSION, w.into_payload())
    }

    fn decode_snapshot(blob: &StateBlob, log: Option<&SegmentLog>) -> Result<Self, SnapshotError> {
        let mut r = blob.expect("avr", AVR_STATE_VERSION)?;
        let state = Self {
            jobs: r.read_seq()?,
            active: r.read_seq()?,
            horizon_end: r.read_f64()?,
            indexed: r.read_bool()?,
            committed: r.read_part::<FrontierPart>()?.resolve(log)?,
            now: r.read_f64()?,
        };
        r.finish()?;
        if state.active.len() > state.jobs.len() {
            return Err(SnapshotError::Invalid(
                "active set larger than the job history".into(),
            ));
        }
        Ok(state)
    }
}

/// The snapshot holds the full job history (the reference scan path reads
/// it), the deadline-descending active-set index, the committed frontier,
/// the clock and the index toggle, so a restored run commits bit-identical
/// windows.
impl Checkpointable for AvrState {
    fn snapshot(&self) -> StateBlob {
        self.encode_snapshot(&FrontierPart::Inline(self.committed.clone()))
    }

    fn restore(blob: &StateBlob) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, None)
    }
}

/// O(active) checkpointing: the committed frontier lives in the run's
/// [`SegmentLog`]; the blob stores only a cursor.
impl LogCheckpointable for AvrState {
    fn snapshot_live(&self, log: &mut SegmentLog) -> Result<StateBlob, SnapshotError> {
        let cursor = log.sync_from(&self.committed)?;
        Ok(self.encode_snapshot(&FrontierPart::cursor_of(self.committed.machines, cursor)))
    }

    fn restore_with_log(blob: &StateBlob, log: &SegmentLog) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, Some(log))
    }
}

impl OnlineScheduler for AvrState {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        check_arrival(job, self.now, now)?;
        self.commit_to(now.max(self.now));
        self.jobs.push(*job);
        // Keep the active set sorted by deadline descending (ties keep
        // arrival order); expired-on-arrival jobs can still cover nothing,
        // but inserting them is harmless — the next commit pops them.
        let pos = self.active.partition_point(|a| a.deadline >= job.deadline);
        self.active.insert(
            pos,
            ActiveJob {
                deadline: job.deadline,
                density: job.density(),
                id: job.id,
            },
        );
        self.horizon_end = self.horizon_end.max(job.deadline);
        Ok(Decision::accept(0.0))
    }

    /// Batch ingestion: one commit for the whole burst, then a single
    /// sorted merge of the burst into the deadline-descending active set —
    /// `O(active + b log b)` instead of `b` binary-search insertions each
    /// moving an `O(active)` tail.
    ///
    /// The merge keeps existing entries ahead of burst entries on tied
    /// deadlines and preserves slice order within the burst, which is
    /// exactly the order the one-insertion-at-a-time path produces, so the
    /// committed time-sharing order is identical too.
    fn on_arrivals(&mut self, jobs: &[Job], now: f64) -> Result<Vec<Decision>, ScheduleError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        for job in jobs {
            check_arrival(job, self.now, now)?;
        }
        self.commit_to(now.max(self.now));
        let mut fresh: Vec<ActiveJob> = jobs
            .iter()
            .map(|job| {
                self.horizon_end = self.horizon_end.max(job.deadline);
                ActiveJob {
                    deadline: job.deadline,
                    density: job.density(),
                    id: job.id,
                }
            })
            .collect();
        self.jobs.extend_from_slice(jobs);
        fresh.sort_by(|a, b| b.deadline.total_cmp(&a.deadline));
        let mut merged = Vec::with_capacity(self.active.len() + fresh.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < self.active.len() && j < fresh.len() {
            if self.active[i].deadline >= fresh[j].deadline {
                merged.push(self.active[i]);
                i += 1;
            } else {
                merged.push(fresh[j]);
                j += 1;
            }
        }
        merged.extend_from_slice(&self.active[i..]);
        merged.extend_from_slice(&fresh[j..]);
        self.active = merged;
        Ok(vec![Decision::accept(0.0); jobs.len()])
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        if self.horizon_end.is_finite() {
            self.commit_to(self.horizon_end);
        }
        Ok(self.committed)
    }
}

impl OnlineAlgorithm for AvrScheduler {
    type Run = AvrState;

    fn algorithm_name(&self) -> String {
        "AVR".into()
    }

    fn start(&self, machines: usize, _alpha: f64) -> Result<Self::Run, ScheduleError> {
        crate::require_single_machine(machines, "AVR", "")?;
        Ok(AvrState {
            jobs: Vec::new(),
            active: Vec::new(),
            horizon_end: f64::NEG_INFINITY,
            indexed: true,
            committed: Schedule::empty(1),
            now: f64::NEG_INFINITY,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_types::{validate_schedule, Scheduler};

    fn instance() -> Instance {
        Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 2.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 5.0, 1.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn avr_finishes_every_job() {
        let inst = instance();
        let s = AvrScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty(), "rejected {:?}", report.rejected);
    }

    #[test]
    fn avr_single_job_matches_optimum() {
        let inst = Instance::from_tuples(1, 3.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let s = AvrScheduler.schedule(&inst).unwrap();
        assert!((s.cost(&inst).energy - 2.0 * 0.5f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn avr_uses_at_least_as_much_energy_as_yds() {
        let inst = instance();
        let avr = AvrScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        let yds = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(avr >= yds - 1e-9, "AVR {avr} below optimal {yds}");
    }

    #[test]
    fn avr_speed_is_sum_of_densities() {
        let inst = instance();
        let s = AvrScheduler.schedule(&inst).unwrap();
        // At t = 2.5 all three jobs are active: densities 0.5, 0.5, 0.5.
        let expected: f64 = inst
            .jobs
            .iter()
            .filter(|j| j.available_at(2.5))
            .map(|j| j.density())
            .sum();
        assert!((s.total_speed_at(2.5) - expected).abs() < 1e-9);
    }

    #[test]
    fn incremental_avr_matches_the_batch_reference() {
        let inst = instance();
        let batch = AvrScheduler.batch_schedule(&inst).unwrap();
        let inc = AvrScheduler.schedule(&inst).unwrap();
        assert!(
            (batch.cost(&inst).energy - inc.cost(&inst).energy).abs() < 1e-9,
            "energy differs: batch {} vs incremental {}",
            batch.cost(&inst).energy,
            inc.cost(&inst).energy
        );
        for t in [0.5, 1.5, 2.5, 3.5, 4.5] {
            assert!(
                (batch.total_speed_at(t) - inc.total_speed_at(t)).abs() < 1e-9,
                "profiles differ at t={t}"
            );
        }
        // Per-job work is also identical.
        let bw = batch.work_per_job(inst.len());
        let iw = inc.work_per_job(inst.len());
        for j in 0..inst.len() {
            assert!((bw[j] - iw[j]).abs() < 1e-9, "work differs for job {j}");
        }
    }

    #[test]
    fn frontier_is_committed_only_up_to_the_last_arrival() {
        let inst = instance();
        let mut run = AvrScheduler.start_for(&inst).unwrap();
        for id in inst.arrival_order() {
            let job = inst.job(id);
            run.on_arrival(job, job.release).unwrap();
            for seg in &run.frontier().segments {
                assert!(seg.end <= job.release + 1e-12);
            }
        }
        let s = run.finish().unwrap();
        assert!(validate_schedule(&inst, &s).unwrap().rejected.is_empty());
    }

    #[test]
    fn avr_rejects_multi_machine_instances() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(AvrScheduler.schedule(&inst).is_err());
    }

    #[test]
    fn indexed_commits_match_the_full_scan_path() {
        let inst = instance();
        let mut indexed = AvrScheduler.start_for(&inst).unwrap();
        let mut scan = AvrScheduler
            .start_for(&inst)
            .unwrap()
            .with_active_index(false);
        for id in inst.arrival_order() {
            let job = inst.job(id);
            indexed.on_arrival(job, job.release).unwrap();
            scan.on_arrival(job, job.release).unwrap();
        }
        let a = indexed.finish().unwrap();
        let b = scan.finish().unwrap();
        assert!((a.cost(&inst).energy - b.cost(&inst).energy).abs() < 1e-9);
        for t in [0.5, 1.5, 2.5, 3.5, 4.5] {
            assert!(
                (a.total_speed_at(t) - b.total_speed_at(t)).abs() < 1e-9,
                "indexed vs scan profiles differ at t={t}"
            );
        }
        let aw = a.work_per_job(inst.len());
        let bw = b.work_per_job(inst.len());
        for j in 0..inst.len() {
            assert!((aw[j] - bw[j]).abs() < 1e-9, "work differs for job {j}");
        }
    }
}
