//! Average Rate (AVR), Yao, Demers & Shenker's second online algorithm.
//!
//! Every job is processed at its own density `w_j / (d_j − r_j)`, spread
//! uniformly over its availability window; the machine's speed at any time
//! is the sum of the densities of the jobs available at that time.  AVR is
//! `(2α)^α / 2`-competitive and serves as an easy-to-predict baseline in the
//! classical (mandatory completion) experiments.

use pss_intervals::IntervalPartition;
use pss_types::{Instance, JobId, OnlineScheduler, Schedule, ScheduleError, Scheduler, Segment};

/// The Average Rate scheduler (single machine).
#[derive(Debug, Clone, Copy, Default)]
pub struct AvrScheduler;

impl Scheduler for AvrScheduler {
    fn name(&self) -> String {
        "AVR".into()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        if instance.machines != 1 {
            return Err(ScheduleError::Internal(
                "AVR is a single-machine algorithm".into(),
            ));
        }
        let mut schedule = Schedule::empty(1);
        let partition = IntervalPartition::from_jobs(&instance.jobs);

        for iv in partition.intervals() {
            // Jobs available throughout this atomic interval.
            let active: Vec<(JobId, f64)> = instance
                .jobs
                .iter()
                .filter(|j| partition.job_covers(j, iv.index))
                .map(|j| (j.id, j.density()))
                .collect();
            let total_speed: f64 = active.iter().map(|(_, d)| d).sum();
            if total_speed <= 0.0 {
                continue;
            }
            // Run at the summed density; each job receives a share of the
            // interval proportional to its own density, which processes
            // exactly `density · length` of its work.
            let mut t = iv.start;
            for (job, density) in &active {
                let duration = iv.length() * density / total_speed;
                if duration <= 0.0 {
                    continue;
                }
                schedule.push(Segment::work(0, t, t + duration, total_speed, *job));
                t += duration;
            }
        }
        Ok(schedule)
    }
}

impl OnlineScheduler for AvrScheduler {}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::YdsScheduler;
    use pss_types::validate_schedule;

    fn instance() -> Instance {
        Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 2.0, 1.0),
                (1.0, 3.0, 1.0, 1.0),
                (2.0, 5.0, 1.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn avr_finishes_every_job() {
        let inst = instance();
        let s = AvrScheduler.schedule(&inst).unwrap();
        let report = validate_schedule(&inst, &s).unwrap();
        assert!(report.rejected.is_empty(), "rejected {:?}", report.rejected);
    }

    #[test]
    fn avr_single_job_matches_optimum() {
        let inst = Instance::from_tuples(1, 3.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let s = AvrScheduler.schedule(&inst).unwrap();
        assert!((s.cost(&inst).energy - 2.0 * 0.5f64.powi(3)).abs() < 1e-9);
    }

    #[test]
    fn avr_uses_at_least_as_much_energy_as_yds() {
        let inst = instance();
        let avr = AvrScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        let yds = YdsScheduler.schedule(&inst).unwrap().cost(&inst).energy;
        assert!(avr >= yds - 1e-9, "AVR {avr} below optimal {yds}");
    }

    #[test]
    fn avr_speed_is_sum_of_densities() {
        let inst = instance();
        let s = AvrScheduler.schedule(&inst).unwrap();
        // At t = 2.5 all three jobs are active: densities 0.5, 0.5, 0.5.
        let expected: f64 = inst.jobs.iter().filter(|j| j.available_at(2.5)).map(|j| j.density()).sum();
        assert!((s.total_speed_at(2.5) - expected).abs() < 1e-9);
    }

    #[test]
    fn avr_rejects_multi_machine_instances() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        assert!(AvrScheduler.schedule(&inst).is_err());
    }
}
