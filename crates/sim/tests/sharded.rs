//! Sharded-stream suites: routing determinism (bit-identical replay
//! across shard counts and policies, hash assignments pinned), the
//! frontier-merge contract (energy identity, per-shard prefix stability,
//! S = 1 bit-identical to the unsharded simulator), and the
//! sharding-cost oracle's bookkeeping.
//!
//! `ROUTE_SMOKE=1` (the CI route-smoke step) widens the replay matrix to
//! the full S ∈ {1, 2, 4, 8} sweep.

use pss_baselines::{CllScheduler, OaScheduler};
use pss_sim::{
    coalesce_arrivals, sharded_fields_equal, sharding_drift, RoutePolicy, ShardedStream,
    ShardedStreaming, StreamingSimulation,
};
use pss_types::{Instance, Job, JobId, Schedule};
use pss_workloads::{ScenarioConfig, ScenarioKind};

fn scenario(kind: ScenarioKind, n_jobs: usize, seed: u64) -> Instance {
    ScenarioConfig {
        n_jobs,
        ..ScenarioConfig::new(kind, seed)
    }
    .generate()
}

fn shard_counts() -> Vec<usize> {
    if std::env::var_os("ROUTE_SMOKE").is_some() {
        vec![1, 2, 4, 8]
    } else {
        vec![1, 4]
    }
}

#[test]
fn replay_is_bit_identical_across_shard_counts_and_policies() {
    let instance = scenario(ScenarioKind::FlashCrowd, 80, 17);
    for shards in shard_counts() {
        for policy in RoutePolicy::all() {
            let harness = ShardedStreaming {
                shards,
                policy,
                coalesce_window: 1e-3,
                price_smoothing: 0.1,
            };
            let a = harness.run(&CllScheduler, &instance).unwrap();
            let b = harness.run(&CllScheduler, &instance).unwrap();
            assert!(
                sharded_fields_equal(&a, &b),
                "replay diverged at S={shards}, policy={}",
                policy.name()
            );
            assert_eq!(a.events.len(), instance.len());
            assert_eq!(a.merged.machines, shards * instance.machines);
        }
    }
}

/// A job's hash shard is a pure function of its submission sequence
/// number: price trajectories (here perturbed via the EWMA weight) and
/// burst structure never move it.
#[test]
fn hash_routing_never_moves_a_job() {
    let instance = scenario(ScenarioKind::Diurnal, 64, 5);
    let smooth = ShardedStreaming {
        shards: 4,
        policy: RoutePolicy::HashById,
        coalesce_window: 0.0,
        price_smoothing: 0.1,
    };
    let jumpy = ShardedStreaming {
        coalesce_window: 1e-2,
        price_smoothing: 0.9,
        ..smooth
    };
    let a = smooth.run(&CllScheduler, &instance).unwrap();
    let b = jumpy.run(&CllScheduler, &instance).unwrap();
    assert_eq!(a.assignments, b.assignments);
    // And the assignment is exactly the advertised pure function.
    let prices = vec![0.0; 4];
    for (seq, &shard) in a.assignments.iter().enumerate() {
        assert_eq!(shard, RoutePolicy::HashById.route(seq as u64, &prices));
    }
}

/// With one shard the sharded harness *is* the unsharded simulator: same
/// decisions, same duals, same schedule, bit for bit.
#[test]
fn one_shard_is_bit_identical_to_the_unsharded_simulator() {
    for (kind, seed) in [
        (ScenarioKind::FlashCrowd, 3),
        (ScenarioKind::Overload, 9),
        (ScenarioKind::HeavyTailed, 21),
    ] {
        let instance = scenario(kind, 72, seed);
        for window in [0.0, 1e-3] {
            let sharded = ShardedStreaming {
                shards: 1,
                policy: RoutePolicy::CheapestPrice,
                coalesce_window: window,
                price_smoothing: 0.1,
            }
            .run(&CllScheduler, &instance)
            .unwrap();
            let plain = StreamingSimulation::with_coalescing(window)
                .run(&CllScheduler, &instance)
                .unwrap();
            // The unsharded simulator stamps each event with the job's own
            // release; the sharded stream stamps the burst feed time.  Both
            // follow from the same coalescing, so map job → burst time.
            let mut burst_time = vec![0.0f64; instance.len()];
            for (feed_time, ids) in coalesce_arrivals(&instance, window) {
                for id in ids {
                    burst_time[id.index()] = feed_time;
                }
            }
            assert_eq!(sharded.events.len(), plain.events.len());
            for (s, p) in sharded.events.iter().zip(&plain.events) {
                assert_eq!(s.job, p.job);
                assert_eq!(s.accepted, p.accepted);
                assert_eq!(s.dual.to_bits(), p.dual.to_bits());
                assert_eq!(s.feed_time.to_bits(), burst_time[s.job.index()].to_bits());
            }
            assert_eq!(sharded.merged.machines, plain.schedule.machines);
            assert_eq!(sharded.merged.segments.len(), plain.schedule.segments.len());
            for (a, b) in sharded.merged.segments.iter().zip(&plain.schedule.segments) {
                assert_eq!(a.machine, b.machine);
                assert_eq!(a.start.to_bits(), b.start.to_bits());
                assert_eq!(a.end.to_bits(), b.end.to_bits());
                assert_eq!(a.speed.to_bits(), b.speed.to_bits());
                assert_eq!(a.job, b.job);
            }
        }
    }
}

/// The segments a shard has committed into one merged frontier reappear
/// bit-identically, as that shard's lane prefix, in every later merge —
/// and the final merged energy is the sum of the shard energies.
#[test]
fn merged_frontier_is_prefix_stable_and_energy_adds() {
    let instance = scenario(ScenarioKind::FlashCrowd, 60, 29);
    let shards = 3;
    let mut stream = ShardedStream::start(
        &OaScheduler,
        shards,
        instance.machines,
        instance.alpha,
        RoutePolicy::RoundRobin,
        0.1,
    )
    .unwrap();
    let lane = |merged: &Schedule, s: usize| -> Vec<pss_types::Segment> {
        let m = instance.machines;
        merged
            .segments
            .iter()
            .filter(|seg| seg.machine >= s * m && seg.machine < (s + 1) * m)
            .copied()
            .collect()
    };
    let mut previous = stream.merged_frontier().unwrap();
    for (feed_time, ids) in coalesce_arrivals(&instance, 1e-3) {
        let burst: Vec<Job> = ids.iter().map(|&id| *instance.job(id)).collect();
        stream.on_burst(&burst, feed_time).unwrap();
        let current = stream.merged_frontier().unwrap();
        for s in 0..shards {
            let before = lane(&previous, s);
            let after = lane(&current, s);
            assert!(
                before.len() <= after.len(),
                "shard {s} lane shrank between merges"
            );
            for (i, (x, y)) in before.iter().zip(&after).enumerate() {
                assert_eq!(x.machine, y.machine, "shard {s} segment {i} moved lanes");
                assert_eq!(x.start.to_bits(), y.start.to_bits());
                assert_eq!(x.end.to_bits(), y.end.to_bits());
                assert_eq!(x.speed.to_bits(), y.speed.to_bits());
                assert_eq!(x.job, y.job);
            }
        }
        previous = current;
    }
    let report = stream.finish("OA".into()).unwrap();
    let shard_sum: f64 = report
        .shard_schedules
        .iter()
        .map(|s| s.energy(instance.alpha))
        .sum();
    let merged = report.merged_energy(instance.alpha);
    assert!(
        (merged - shard_sum).abs() <= 1e-9 * shard_sum.max(1.0),
        "merged energy {merged} != shard sum {shard_sum}"
    );
    // Every merged segment speaks the logical instance's id vocabulary.
    for seg in &report.merged.segments {
        if let Some(job) = seg.job {
            assert!(job.index() < instance.len(), "dangling merged id {job}");
        }
    }
}

/// The oracle's unsharded column is exactly a plain streaming run, and
/// its sharded column matches the report it returns.
#[test]
fn drift_oracle_totals_are_consistent() {
    let instance = scenario(ScenarioKind::Overload, 56, 41);
    let harness = ShardedStreaming {
        shards: 2,
        policy: RoutePolicy::CheapestPrice,
        coalesce_window: 1e-3,
        price_smoothing: 0.1,
    };
    let (report, drift) = sharding_drift(&CllScheduler, &instance, &harness).unwrap();
    let plain = StreamingSimulation::with_coalescing(1e-3)
        .run(&CllScheduler, &instance)
        .unwrap();
    let plain_value: f64 = plain
        .events
        .iter()
        .filter(|e| e.accepted)
        .map(|e| instance.job(e.job).value)
        .sum();
    assert_eq!(drift.unsharded_value.to_bits(), plain_value.to_bits());
    assert_eq!(
        drift.unsharded_energy.to_bits(),
        plain.schedule.energy(instance.alpha).to_bits()
    );
    assert_eq!(
        drift.sharded_value.to_bits(),
        report.value_accepted(&instance).to_bits()
    );
    assert_eq!(
        drift.sharded_energy.to_bits(),
        report.merged_energy(instance.alpha).to_bits()
    );
    assert!(drift.unsharded_cost.is_finite() && drift.unsharded_cost > 0.0);
    assert!(drift.sharded_cost.is_finite() && drift.sharded_cost > 0.0);
    // Load accounting is total: every arrival landed on exactly one shard.
    assert_eq!(report.shard_loads().iter().sum::<usize>(), instance.len());
    assert!(report.load_imbalance() >= 1.0 - 1e-12);
    let p50 = report.latency_percentile_secs(50.0);
    let p99 = report.latency_percentile_secs(99.0);
    assert!(p50 >= 0.0 && p99 >= p50);
    // JobId vocabulary sanity on the merged schedule.
    assert!(report
        .merged
        .segments
        .iter()
        .filter_map(|s| s.job)
        .all(|j: JobId| j.index() < instance.len()));
}
