//! Plain-text Gantt rendering of schedules.
//!
//! The experiment binaries and examples use this to show *what the schedule
//! looks like* (which machine runs which job when, and how fast) without any
//! plotting dependency.  Each machine becomes one row of time cells; each
//! cell shows the job occupying most of that cell, and an optional second
//! row per machine shows the speed profile as a coarse bar chart.

use pss_types::{Instance, Schedule};

/// Options for the Gantt renderer.
#[derive(Debug, Clone, Copy)]
pub struct GanttOptions {
    /// Number of time columns.
    pub columns: usize,
    /// Whether to add a per-machine speed row (`▁▂▃▄▅▆▇█` bars).
    pub show_speed: bool,
}

impl Default for GanttOptions {
    fn default() -> Self {
        Self {
            columns: 64,
            show_speed: true,
        }
    }
}

/// Renders the schedule as a plain-text Gantt chart over the instance's
/// horizon.
pub fn render_gantt(instance: &Instance, schedule: &Schedule, opts: &GanttOptions) -> String {
    let (lo, hi) = match schedule.span() {
        Some((slo, shi)) => {
            let (ilo, ihi) = instance.horizon();
            (ilo.min(slo), ihi.max(shi))
        }
        None => instance.horizon(),
    };
    if hi <= lo {
        return String::from("(empty schedule)\n");
    }
    let columns = opts.columns.max(8);
    let dt = (hi - lo) / columns as f64;

    // Global speed scale for the bar rows.
    let mut max_speed = 0.0_f64;
    for seg in &schedule.segments {
        max_speed = max_speed.max(seg.speed);
    }

    let mut out = String::new();
    out.push_str(&format!(
        "time [{lo:.2}, {hi:.2}), {columns} columns of {dt:.3} time units each\n"
    ));
    for machine in 0..instance.machines {
        let mut job_row = String::with_capacity(columns);
        let mut speed_row = String::with_capacity(columns);
        for c in 0..columns {
            let t = lo + (c as f64 + 0.5) * dt;
            // The segment covering the midpoint of this cell, if any.
            let seg = schedule
                .segments
                .iter()
                .find(|s| s.machine == machine && s.start <= t && t < s.end);
            match seg {
                Some(s) => {
                    let ch = s.job.map(|j| job_glyph(j.index())).unwrap_or('·');
                    job_row.push(ch);
                    speed_row.push(speed_glyph(s.speed, max_speed));
                }
                None => {
                    job_row.push('·');
                    speed_row.push(' ');
                }
            }
        }
        out.push_str(&format!("m{machine:<2} |{job_row}|\n"));
        if opts.show_speed {
            out.push_str(&format!("    |{speed_row}|\n"));
        }
    }
    out.push_str("legend: digits/letters = job ids (mod 36), '·' = idle\n");
    out
}

fn job_glyph(index: usize) -> char {
    const GLYPHS: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyz";
    GLYPHS[index % GLYPHS.len()] as char
}

fn speed_glyph(speed: f64, max_speed: f64) -> char {
    const BARS: [char; 8] = [
        '\u{2581}', '\u{2582}', '\u{2583}', '\u{2584}', '\u{2585}', '\u{2586}', '\u{2587}',
        '\u{2588}',
    ];
    if max_speed <= 0.0 || speed <= 0.0 {
        return ' ';
    }
    let idx = ((speed / max_speed) * (BARS.len() as f64 - 1.0)).round() as usize;
    BARS[idx.min(BARS.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{Instance, JobId, Segment};

    fn setup() -> (Instance, Schedule) {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 2.0, 1.0, 1.0), (0.0, 4.0, 2.0, 1.0)])
            .unwrap();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 0.5, JobId(0)));
        s.push(Segment::work(1, 1.0, 4.0, 2.0 / 3.0, JobId(1)));
        (inst, s)
    }

    #[test]
    fn gantt_has_one_block_per_machine() {
        let (inst, s) = setup();
        let text = render_gantt(&inst, &s, &GanttOptions::default());
        assert!(text.contains("m0 "));
        assert!(text.contains("m1 "));
        assert!(text.contains('0'));
        assert!(text.contains('1'));
        assert!(text.contains("legend"));
    }

    #[test]
    fn idle_time_is_rendered_as_dots() {
        let (inst, s) = setup();
        let text = render_gantt(
            &inst,
            &s,
            &GanttOptions {
                columns: 16,
                show_speed: false,
            },
        );
        // Machine 1 is idle during [0,1): its row must start with dots.
        let m1_row = text.lines().find(|l| l.starts_with("m1 ")).unwrap();
        assert!(m1_row.contains('·'));
    }

    #[test]
    fn empty_schedule_renders_gracefully() {
        let inst = Instance::from_tuples(1, 2.0, vec![]).unwrap();
        let s = Schedule::empty(1);
        let text = render_gantt(&inst, &s, &GanttOptions::default());
        assert!(text.contains("empty"));
    }

    #[test]
    fn glyphs_cycle_and_speed_bars_scale() {
        assert_eq!(job_glyph(0), '0');
        assert_eq!(job_glyph(10), 'a');
        assert_eq!(job_glyph(36), '0');
        assert_eq!(speed_glyph(0.0, 1.0), ' ');
        assert_eq!(speed_glyph(1.0, 1.0), '\u{2588}');
        assert_eq!(speed_glyph(0.01, 1.0), '\u{2581}');
    }
}
