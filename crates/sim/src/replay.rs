//! Online-behaviour verification by replay.
//!
//! An algorithm is *online* when its decisions about the past do not depend
//! on jobs that have not been released yet.  An implementation bug could
//! leak future information, so this module checks the operational property
//! directly, in two flavours:
//!
//! * [`streaming_prefix_report`] — the primary, single-pass check for
//!   event-driven algorithms ([`OnlineAlgorithm`]): one run is fed the
//!   arrival stream; after each arrival the speed profile of the window
//!   that just became past is sampled *from the committed frontier*, and at
//!   the end the finished schedule is compared against every stored sample.
//!   Any deviation means the final schedule revised a past the run had
//!   already committed to.  Cost: one run plus `O(n · samples)` profile
//!   samples — no re-solves.
//! * [`prefix_stability_report`] — the batch fallback for arbitrary
//!   [`Scheduler`]s (including offline ones under test): re-runs the
//!   scheduler on every prefix instance and compares past speed profiles
//!   against the full run, at `O(n)` full solves.  Kept for algorithms that
//!   do not expose the incremental API and as an independent cross-check.

use pss_types::{Instance, OnlineAlgorithm, OnlineScheduler, Schedule, ScheduleError, Scheduler};

/// Result of the prefix-stability check.
#[derive(Debug, Clone, PartialEq)]
pub struct PrefixStabilityReport {
    /// The arrival times at which prefixes were compared.
    pub checkpoints: Vec<f64>,
    /// The largest absolute speed-profile deviation observed in the past of
    /// any checkpoint.
    pub max_deviation: f64,
    /// Number of profile samples per checkpoint.
    pub samples: usize,
}

impl PrefixStabilityReport {
    /// `true` if no past deviation above the tolerance was observed.
    pub fn is_online(&self, tol: f64) -> bool {
        self.max_deviation <= tol
    }
}

/// Runs the *batch* prefix-stability check for `scheduler` on `instance`,
/// sampling each machine's speed profile at `samples` points: the scheduler
/// is re-run on every prefix instance (`O(n)` full solves).  Prefer
/// [`streaming_prefix_report`] for algorithms implementing the event-driven
/// [`OnlineAlgorithm`] API.
pub fn prefix_stability_report<S: Scheduler + ?Sized>(
    scheduler: &S,
    instance: &Instance,
    samples: usize,
) -> Result<PrefixStabilityReport, ScheduleError> {
    let full = scheduler.schedule(instance)?;
    let mut checkpoints: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    checkpoints.sort_by(f64::total_cmp);
    checkpoints.dedup();

    let mut max_deviation = 0.0_f64;
    for &t in &checkpoints {
        if t <= instance.horizon().0 {
            continue;
        }
        // The prefix instance: jobs released strictly before t (jobs
        // released exactly at t may be processed from t onwards only, so
        // they cannot affect the past either way; excluding them keeps the
        // comparison strict).
        let keep: Vec<pss_types::JobId> = instance
            .jobs
            .iter()
            .filter(|j| j.release < t - 1e-12)
            .map(|j| j.id)
            .collect();
        if keep.is_empty() {
            continue;
        }
        let prefix = instance.restrict(&keep);
        let prefix_schedule = scheduler.schedule(&prefix)?;
        max_deviation = max_deviation.max(profile_deviation(
            &full,
            &prefix_schedule,
            instance.machines,
            instance.horizon().0,
            t,
            samples,
        ));
    }

    Ok(PrefixStabilityReport {
        checkpoints,
        max_deviation,
        samples,
    })
}

/// Runs the *streaming* prefix-stability check for an event-driven
/// algorithm: a single run of `algo` is fed the arrival stream, the speed
/// profile of each window between consecutive distinct arrival times is
/// sampled from the committed [`frontier`](OnlineScheduler::frontier) at the
/// moment the window becomes past, and at the end the finished schedule is
/// compared against every stored sample.
///
/// A nonzero deviation means the finished schedule differs from what the
/// run had already committed to — i.e. the "past" was revised.  The whole
/// check costs one run plus `O(n · samples)` profile evaluations, instead
/// of the `O(n)` full re-solves of [`prefix_stability_report`].
///
/// `samples` is the number of profile samples per window and machine.
pub fn streaming_prefix_report<A: OnlineAlgorithm + ?Sized>(
    algo: &A,
    instance: &Instance,
    samples: usize,
) -> Result<PrefixStabilityReport, ScheduleError> {
    let samples = samples.max(1);
    let mut run = algo.start_for(instance)?;
    let machines = instance.machines;

    // (from, to, per-machine frontier samples at window midpoints).
    let mut windows: Vec<(f64, f64, Vec<Vec<f64>>)> = Vec::new();
    let mut checkpoints: Vec<f64> = Vec::new();
    let mut last_time: Option<f64> = None;

    for id in instance.arrival_order() {
        let job = instance.job(id);
        let t = job.release;
        run.on_arrival(job, t)?;
        match last_time {
            None => {
                checkpoints.push(t);
                last_time = Some(t);
            }
            Some(prev) if t > prev + 1e-12 => {
                // The window [prev, t) just became past: freeze its profile
                // as the frontier reports it right now.
                windows.push((
                    prev,
                    t,
                    sample_profile(run.frontier(), machines, prev, t, samples),
                ));
                checkpoints.push(t);
                last_time = Some(t);
            }
            Some(_) => {}
        }
    }

    let finished = run.finish()?;
    let mut max_deviation = 0.0_f64;
    for (from, to, frozen) in &windows {
        let final_profile = sample_profile(&finished, machines, *from, *to, samples);
        for (machine, row) in frozen.iter().enumerate() {
            for (i, committed_speed) in row.iter().enumerate() {
                let dev = (committed_speed - final_profile[machine][i]).abs();
                max_deviation = max_deviation.max(dev);
            }
        }
    }

    Ok(PrefixStabilityReport {
        checkpoints,
        max_deviation,
        samples,
    })
}

/// Samples each machine's speed profile at `samples` midpoints of
/// `[from, to)`.
fn sample_profile(
    schedule: &Schedule,
    machines: usize,
    from: f64,
    to: f64,
    samples: usize,
) -> Vec<Vec<f64>> {
    let step = (to - from) / samples as f64;
    (0..machines)
        .map(|machine| {
            (0..samples)
                .map(|i| schedule.speed_at(machine, from + (i as f64 + 0.5) * step))
                .collect()
        })
        .collect()
}

fn profile_deviation(
    a: &Schedule,
    b: &Schedule,
    machines: usize,
    from: f64,
    to: f64,
    samples: usize,
) -> f64 {
    if to <= from {
        return 0.0;
    }
    let step = (to - from) / samples as f64;
    let mut max_dev = 0.0_f64;
    for machine in 0..machines {
        for i in 0..samples {
            let t = from + (i as f64 + 0.5) * step;
            let dev = (a.speed_at(machine, t) - b.speed_at(machine, t)).abs();
            max_dev = max_dev.max(dev);
        }
    }
    max_dev
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{JobId, Segment};

    /// A fake "offline" scheduler that schedules every job at a common speed
    /// proportional to the *total* number of jobs — later arrivals change
    /// the past, so the prefix check must flag it.
    struct Clairvoyant;

    impl Scheduler for Clairvoyant {
        fn name(&self) -> String {
            "clairvoyant".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(instance.machines);
            let boost = instance.len() as f64;
            for job in &instance.jobs {
                s.push(Segment::work(
                    0,
                    job.release,
                    job.deadline,
                    boost * job.density(),
                    job.id,
                ));
            }
            Ok(s)
        }
    }

    /// An honest online scheduler: every job at its own density, which never
    /// depends on other jobs — but jobs of one machine may overlap, so use a
    /// one-job-per-interval instance.
    struct Honest;

    impl Scheduler for Honest {
        fn name(&self) -> String {
            "honest".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(instance.machines);
            for job in &instance.jobs {
                s.push(Segment::work(
                    0,
                    job.release,
                    job.deadline,
                    job.density(),
                    job.id,
                ));
            }
            Ok(s)
        }
    }

    fn disjoint_instance() -> Instance {
        Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 1.0, 0.5, 1.0),
                (1.0, 2.0, 0.7, 1.0),
                (2.0, 3.0, 0.9, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn honest_scheduler_passes_the_check() {
        let report = prefix_stability_report(&Honest, &disjoint_instance(), 64).unwrap();
        assert!(report.is_online(1e-9), "deviation {}", report.max_deviation);
    }

    #[test]
    fn clairvoyant_scheduler_fails_the_check() {
        let report = prefix_stability_report(&Clairvoyant, &disjoint_instance(), 64).unwrap();
        assert!(!report.is_online(1e-6));
        assert!(report.max_deviation > 0.1);
    }

    #[test]
    fn single_job_instances_are_trivially_online() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 0.5, 1.0)]).unwrap();
        let report = prefix_stability_report(&Honest, &inst, 16).unwrap();
        assert_eq!(report.max_deviation, 0.0);
        let _ = JobId(0);
    }

    #[test]
    fn streaming_check_passes_for_honest_incremental_algorithms() {
        use pss_baselines::{AvrScheduler, CllScheduler, OaScheduler};

        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 1.0, 2.0),
                (1.0, 3.0, 1.5, 5.0),
                (2.0, 6.0, 2.0, 1.0),
                (2.5, 5.0, 0.5, 3.0),
            ],
        )
        .unwrap();
        let avr = streaming_prefix_report(&AvrScheduler, &inst, 32).unwrap();
        assert!(avr.is_online(1e-9), "AVR deviation {}", avr.max_deviation);
        let oa = streaming_prefix_report(&OaScheduler, &inst, 32).unwrap();
        assert!(oa.is_online(1e-9), "OA deviation {}", oa.max_deviation);
        let cll = streaming_prefix_report(&CllScheduler, &inst, 32).unwrap();
        assert!(cll.is_online(1e-9), "CLL deviation {}", cll.max_deviation);
        assert_eq!(avr.checkpoints.len(), 4);
    }

    /// A deliberately broken "online" algorithm: its frontier claims every
    /// job runs at its density, but `finish` doubles all speeds — revising
    /// the already-committed past.  The streaming check must flag it.
    struct Cheater;

    struct CheaterRun {
        committed: Schedule,
        jobs: Vec<pss_types::Job>,
        now: f64,
    }

    impl pss_types::OnlineScheduler for CheaterRun {
        fn on_arrival(
            &mut self,
            job: &pss_types::Job,
            now: f64,
        ) -> Result<pss_types::Decision, ScheduleError> {
            for j in &self.jobs {
                let from = j.release.max(self.now);
                let to = j.deadline.min(now);
                if to > from {
                    self.committed
                        .push(Segment::work(0, from, to, j.density(), j.id));
                }
            }
            self.now = self.now.max(now);
            self.jobs.push(*job);
            Ok(pss_types::Decision::accept(0.0))
        }

        fn frontier(&self) -> &Schedule {
            &self.committed
        }

        fn finish(self) -> Result<Schedule, ScheduleError> {
            // "Re-optimise" the whole run, doubling past speeds: exactly the
            // behaviour an online algorithm must not exhibit.
            let mut s = Schedule::empty(1);
            for j in &self.jobs {
                s.push(Segment::work(
                    0,
                    j.release,
                    j.deadline,
                    2.0 * j.density(),
                    j.id,
                ));
            }
            Ok(s)
        }
    }

    impl OnlineAlgorithm for Cheater {
        type Run = CheaterRun;

        fn algorithm_name(&self) -> String {
            "cheater".into()
        }

        fn start(&self, machines: usize, _alpha: f64) -> Result<Self::Run, ScheduleError> {
            Ok(CheaterRun {
                committed: Schedule::empty(machines),
                jobs: Vec::new(),
                now: f64::NEG_INFINITY,
            })
        }
    }

    #[test]
    fn streaming_check_flags_an_algorithm_that_revises_the_past() {
        let report = streaming_prefix_report(&Cheater, &disjoint_instance(), 32).unwrap();
        assert!(!report.is_online(1e-6));
        assert!(
            report.max_deviation > 0.4,
            "deviation {}",
            report.max_deviation
        );
    }
}
