//! Online-behaviour verification by prefix replay.
//!
//! An algorithm is *online* when its decisions about the past do not depend
//! on jobs that have not been released yet.  All the online algorithms in
//! this workspace are implemented in the plan-revision style (they iterate
//! over arrivals), but an implementation bug could still leak future
//! information.  The replay harness checks the operational property
//! directly: for every arrival time `t`, running the scheduler on the
//! *prefix instance* (jobs released before or at `t`) must produce exactly
//! the same machine speed profiles on `[0, t)` as running it on the full
//! instance.

use serde::{Deserialize, Serialize};

use pss_types::{Instance, Schedule, ScheduleError, Scheduler};

/// Result of the prefix-stability check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrefixStabilityReport {
    /// The arrival times at which prefixes were compared.
    pub checkpoints: Vec<f64>,
    /// The largest absolute speed-profile deviation observed in the past of
    /// any checkpoint.
    pub max_deviation: f64,
    /// Number of profile samples per checkpoint.
    pub samples: usize,
}

impl PrefixStabilityReport {
    /// `true` if no past deviation above the tolerance was observed.
    pub fn is_online(&self, tol: f64) -> bool {
        self.max_deviation <= tol
    }
}

/// Runs the prefix-stability check for `scheduler` on `instance`, sampling
/// each machine's speed profile at `samples` points.
pub fn prefix_stability_report<S: Scheduler>(
    scheduler: &S,
    instance: &Instance,
    samples: usize,
) -> Result<PrefixStabilityReport, ScheduleError> {
    let full = scheduler.schedule(instance)?;
    let mut checkpoints: Vec<f64> = instance.jobs.iter().map(|j| j.release).collect();
    checkpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    checkpoints.dedup();

    let mut max_deviation = 0.0_f64;
    for &t in &checkpoints {
        if t <= instance.horizon().0 {
            continue;
        }
        // The prefix instance: jobs released strictly before t (jobs
        // released exactly at t may be processed from t onwards only, so
        // they cannot affect the past either way; excluding them keeps the
        // comparison strict).
        let keep: Vec<pss_types::JobId> = instance
            .jobs
            .iter()
            .filter(|j| j.release < t - 1e-12)
            .map(|j| j.id)
            .collect();
        if keep.is_empty() {
            continue;
        }
        let prefix = instance.restrict(&keep);
        let prefix_schedule = scheduler.schedule(&prefix)?;
        max_deviation = max_deviation.max(profile_deviation(
            &full,
            &prefix_schedule,
            instance.machines,
            instance.horizon().0,
            t,
            samples,
        ));
    }

    Ok(PrefixStabilityReport {
        checkpoints,
        max_deviation,
        samples,
    })
}

fn profile_deviation(
    a: &Schedule,
    b: &Schedule,
    machines: usize,
    from: f64,
    to: f64,
    samples: usize,
) -> f64 {
    if to <= from {
        return 0.0;
    }
    let step = (to - from) / samples as f64;
    let mut max_dev = 0.0_f64;
    for machine in 0..machines {
        for i in 0..samples {
            let t = from + (i as f64 + 0.5) * step;
            let dev = (a.speed_at(machine, t) - b.speed_at(machine, t)).abs();
            max_dev = max_dev.max(dev);
        }
    }
    max_dev
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{JobId, Segment};

    /// A fake "offline" scheduler that schedules every job at a common speed
    /// proportional to the *total* number of jobs — later arrivals change
    /// the past, so the prefix check must flag it.
    struct Clairvoyant;

    impl Scheduler for Clairvoyant {
        fn name(&self) -> String {
            "clairvoyant".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(instance.machines);
            let boost = instance.len() as f64;
            for job in &instance.jobs {
                s.push(Segment::work(
                    0,
                    job.release,
                    job.deadline,
                    boost * job.density(),
                    job.id,
                ));
            }
            Ok(s)
        }
    }

    /// An honest online scheduler: every job at its own density, which never
    /// depends on other jobs — but jobs of one machine may overlap, so use a
    /// one-job-per-interval instance.
    struct Honest;

    impl Scheduler for Honest {
        fn name(&self) -> String {
            "honest".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(instance.machines);
            for job in &instance.jobs {
                s.push(Segment::work(
                    0,
                    job.release,
                    job.deadline,
                    job.density(),
                    job.id,
                ));
            }
            Ok(s)
        }
    }

    fn disjoint_instance() -> Instance {
        Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 1.0, 0.5, 1.0),
                (1.0, 2.0, 0.7, 1.0),
                (2.0, 3.0, 0.9, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn honest_scheduler_passes_the_check() {
        let report = prefix_stability_report(&Honest, &disjoint_instance(), 64).unwrap();
        assert!(report.is_online(1e-9), "deviation {}", report.max_deviation);
    }

    #[test]
    fn clairvoyant_scheduler_fails_the_check() {
        let report = prefix_stability_report(&Clairvoyant, &disjoint_instance(), 64).unwrap();
        assert!(!report.is_online(1e-6));
        assert!(report.max_deviation > 0.1);
    }

    #[test]
    fn single_job_instances_are_trivially_online() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 0.5, 1.0)]).unwrap();
        let report = prefix_stability_report(&Honest, &inst, 16).unwrap();
        assert_eq!(report.max_deviation, 0.0);
        let _ = JobId(0);
    }
}
