//! Checkpointed streaming and shard failover.
//!
//! A production stream runs for days; suspending and resuming it must not
//! perturb a single committed decision.  This module builds that on the
//! [`Checkpointable`] contract of `pss_types::snapshot`:
//!
//! * [`StreamingSimulation::run_checkpointed`] — drive a stream like
//!   [`StreamingSimulation::run`], snapshotting the scheduler every `k`
//!   ingestion batches (plus once before any ingestion, so a crash at any
//!   point is recoverable).  Returns the per-checkpoint blobs with their
//!   capture costs — the data of the E14 checkpoint-size experiment.
//! * [`StreamingSimulation::run_with_failover`] — the single-stream crash
//!   drill: ingest until `kill_at_batch`, *drop the run* (the worker died;
//!   everything since the last checkpoint is lost), restore a fresh
//!   scheduler from the last checkpoint blob and **replay the delta** (the
//!   arrivals after the checkpoint, which a real deployment would re-read
//!   from its ingestion log).  Because restores continue bit-identically,
//!   the recovered stream's decisions, schedule and report equal the
//!   failure-free run's.
//! * [`ParallelStreamingSimulation::run_with_failover`] — the fleet drill:
//!   designated shards are killed mid-stream on their original worker and
//!   their restored schedulers are *rebalanced* onto fresh worker threads
//!   for the delta replay; the merged [`FleetReport`] is identical to the
//!   no-failure run's on every deterministic field (decisions, duals,
//!   schedules, batches, acceptance, cost — wall-clock obviously differs).
//!
//! Each of those drills exists in two forms.  The legacy *full-frontier*
//! form above snapshots through [`Checkpointable`], so every blob carries
//! the committed frontier and grows with the stream — retained as the
//! differential baseline (E18 measures it).  The `_logged` variants
//! ([`StreamingSimulation::run_checkpointed_logged`],
//! [`StreamingSimulation::run_with_failover_logged`],
//! [`ParallelStreamingSimulation::run_with_failover_logged`]) carry a
//! [`SegmentLog`] per run: the driver syncs the log with the frontier
//! after every ingested batch (the worker appending realised segments as
//! it commits), snapshots through
//! [`LogCheckpointable::snapshot_live`] so blobs stay O(active), compacts
//! record envelopes below the newest retained checkpoint's cursor, and on
//! recovery truncates the log to the restored blob's cursor *before*
//! replaying the delta (write-ahead-log discipline — replay re-commits
//! those segments through the run itself).
//!
//! What is (and is not) in a blob, cadence guidance and the RNG-position
//! caveat are documented in the checkpoint recipe in `src/README.md`.

use std::time::Instant;

use pss_types::seglog::{LogCheckpointable, LogCursor, SegmentLog};
use pss_types::snapshot::{Checkpointable, StateBlob};
use pss_types::{Instance, Job, JobId, OnlineAlgorithm, OnlineScheduler, ScheduleError};

use crate::engine::{
    coalesce_arrivals, ArrivalRecord, Simulation, StreamReport, StreamingSimulation,
};
use crate::parallel::{FleetReport, ParallelStreamingSimulation};

/// One captured checkpoint of a streaming run.
#[derive(Debug, Clone)]
pub struct CheckpointRecord {
    /// Ingestion batches already processed when the checkpoint was taken
    /// (0 for the pre-ingestion checkpoint).
    pub batches_done: usize,
    /// Arrival events already processed when the checkpoint was taken.
    pub events_done: usize,
    /// Feed time of the last ingested batch (`-inf` before the first).
    pub time: f64,
    /// Wall-clock cost of capturing the snapshot, in seconds.
    pub capture_secs: f64,
    /// The snapshot itself.
    pub blob: StateBlob,
}

/// What a recovery cost: the numbers E14's recovery-latency table reports.
#[derive(Debug, Clone)]
pub struct RecoveryStats {
    /// Which shard failed (0 for a single-stream run).
    pub shard: usize,
    /// Ingestion batches the dead worker had processed when it was killed.
    pub killed_at_batch: usize,
    /// Ingestion batches covered by the checkpoint the shard was restored
    /// from (everything after it was lost and replayed).
    pub restored_batches: usize,
    /// Arrival events re-fed after the restore (the delta).
    pub replayed_events: usize,
    /// Size of the checkpoint blob that was restored, in bytes (binary wire
    /// form).
    pub checkpoint_bytes: usize,
    /// Wall-clock cost of decoding + restoring the scheduler state.
    pub restore_secs: f64,
    /// Wall-clock cost of replaying the delta arrivals.
    pub replay_secs: f64,
}

impl RecoveryStats {
    /// Total recovery latency: restore plus delta replay.
    pub fn recovery_secs(&self) -> f64 {
        self.restore_secs + self.replay_secs
    }
}

/// One captured O(active) checkpoint of a logged streaming run: the blob
/// holds only live state, and `cursor` records where in the shared
/// [`SegmentLog`] its frontier ends (recovery truncates the log here
/// before replay).
#[derive(Debug, Clone)]
pub struct LogCheckpointRecord {
    /// Ingestion batches already processed when the checkpoint was taken.
    pub batches_done: usize,
    /// Arrival events already processed when the checkpoint was taken.
    pub events_done: usize,
    /// Feed time of the last ingested batch (`-inf` before the first).
    pub time: f64,
    /// Wall-clock cost of capturing the snapshot, in seconds.
    pub capture_secs: f64,
    /// End cursor of the run's frontier in the segment log.
    pub cursor: LogCursor,
    /// The live-state snapshot (no frontier inside).
    pub blob: StateBlob,
}

/// One planned shard failure of
/// [`ParallelStreamingSimulation::run_with_failover`].
#[derive(Debug, Clone, Copy)]
pub struct ShardFailover {
    /// Index of the shard whose worker is killed.
    pub shard: usize,
    /// The worker dies after ingesting this many batches of the shard's
    /// stream (clamped to the stream's batch count).
    pub kill_at_batch: usize,
    /// Checkpoint cadence (in ingestion batches) the shard runs with.
    pub checkpoint_every: usize,
}

/// The coalesced ingestion plan of a stream: `(feed time, job ids)` per
/// batch, exactly what [`StreamingSimulation::run`] would feed.
fn ingestion_plan(instance: &Instance, window: f64) -> Vec<(f64, Vec<JobId>)> {
    coalesce_arrivals(instance, window)
}

/// Feeds one batch through `on_arrivals`, appending trace records exactly
/// like the streaming simulator (amortised latency, post-batch frontier
/// size, batch width).
fn ingest_batch<R: OnlineScheduler>(
    run: &mut R,
    instance: &Instance,
    feed_time: f64,
    ids: &[JobId],
    events: &mut Vec<ArrivalRecord>,
) -> Result<(), ScheduleError> {
    let jobs: Vec<Job> = ids.iter().map(|&id| *instance.job(id)).collect();
    let started = Instant::now();
    let decisions = run.on_arrivals(&jobs, feed_time)?;
    let amortised = started.elapsed().as_secs_f64() / ids.len().max(1) as f64;
    if decisions.len() != ids.len() {
        return Err(ScheduleError::Internal(format!(
            "on_arrivals contract violation: {} decisions for a batch of {} jobs",
            decisions.len(),
            ids.len()
        )));
    }
    let frontier_segments = run.frontier().segments.len();
    for (id, decision) in ids.iter().zip(decisions) {
        events.push(ArrivalRecord {
            job: *id,
            time: instance.job(*id).release,
            accepted: decision.accepted,
            dual: decision.dual,
            latency_secs: amortised,
            frontier_segments,
            burst: ids.len(),
        });
    }
    Ok(())
}

/// Snapshots a run, timing the capture.
fn capture<R: Checkpointable>(
    run: &R,
    batches_done: usize,
    events_done: usize,
    time: f64,
) -> CheckpointRecord {
    let started = Instant::now();
    let blob = run.snapshot();
    CheckpointRecord {
        batches_done,
        events_done,
        time,
        capture_secs: started.elapsed().as_secs_f64(),
        blob,
    }
}

/// Snapshots only a run's live state into `log`, timing the capture.  The
/// log is synced with the frontier by `snapshot_live`, then compacted to
/// the new checkpoint's cursor — the newest retained blob — so record
/// envelopes stay bounded by the retained chain.
fn capture_live<R: LogCheckpointable>(
    run: &R,
    log: &mut SegmentLog,
    batches_done: usize,
    events_done: usize,
    time: f64,
) -> Result<LogCheckpointRecord, ScheduleError> {
    let started = Instant::now();
    let blob = run.snapshot_live(log)?;
    let capture_secs = started.elapsed().as_secs_f64();
    let cursor = log.cursor();
    log.compact(cursor);
    Ok(LogCheckpointRecord {
        batches_done,
        events_done,
        time,
        capture_secs,
        cursor,
        blob,
    })
}

/// Finishes a run and wraps the trace into a [`StreamReport`] (validated
/// and replayed through [`Simulation`], like the plain streaming path).
fn finish_stream<R: OnlineScheduler>(
    algorithm: String,
    run: R,
    instance: &Instance,
    events: Vec<ArrivalRecord>,
    batches: usize,
) -> Result<StreamReport, ScheduleError> {
    let schedule = run.finish()?;
    let report = Simulation.run(instance, &schedule)?;
    Ok(StreamReport {
        algorithm,
        events,
        batches,
        schedule,
        report,
    })
}

impl StreamingSimulation {
    /// Like [`run`](Self::run), but snapshots the scheduler every
    /// `every_batches` ingestion batches (and once before any ingestion).
    ///
    /// The stream itself is driven identically — same batches, same feed
    /// times — so decisions and the finished schedule match the plain run;
    /// the returned checkpoint records add the blobs with their capture
    /// costs.  `every_batches` is clamped to at least 1.
    pub fn run_checkpointed<A>(
        &self,
        algo: &A,
        instance: &Instance,
        every_batches: usize,
    ) -> Result<(StreamReport, Vec<CheckpointRecord>), ScheduleError>
    where
        A: OnlineAlgorithm + ?Sized,
        A::Run: Checkpointable,
    {
        let every = every_batches.max(1);
        let plan = ingestion_plan(instance, self.coalesce_window);
        let mut run = algo.start_for(instance)?;
        let mut events = Vec::with_capacity(instance.len());
        let mut checkpoints = vec![capture(&run, 0, 0, f64::NEG_INFINITY)];
        for (i, (feed_time, ids)) in plan.iter().enumerate() {
            ingest_batch(&mut run, instance, *feed_time, ids, &mut events)?;
            if (i + 1) % every == 0 {
                checkpoints.push(capture(&run, i + 1, events.len(), *feed_time));
            }
        }
        let report = finish_stream(algo.algorithm_name(), run, instance, events, plan.len())?;
        Ok((report, checkpoints))
    }

    /// The single-stream crash drill: ingest until `kill_at_batch`
    /// (checkpointing every `every_batches`), **drop the run**, restore a
    /// fresh scheduler from the last checkpoint and replay the delta.
    ///
    /// The returned report is indistinguishable from the failure-free run
    /// on every deterministic field; the [`RecoveryStats`] record what the
    /// recovery cost.  `kill_at_batch` is clamped to the stream's batch
    /// count.
    pub fn run_with_failover<A>(
        &self,
        algo: &A,
        instance: &Instance,
        every_batches: usize,
        kill_at_batch: usize,
    ) -> Result<(StreamReport, RecoveryStats), ScheduleError>
    where
        A: OnlineAlgorithm + ?Sized,
        A::Run: Checkpointable,
    {
        let plan = ingestion_plan(instance, self.coalesce_window);
        let (events, checkpoint, killed_at) = run_until_kill(
            algo,
            instance,
            &plan,
            every_batches.max(1),
            kill_at_batch.min(plan.len()),
        )?;
        let (report, stats) =
            recover_and_replay(algo, instance, &plan, events, checkpoint, killed_at, 0)?;
        Ok((report, stats))
    }

    /// The O(active) counterpart of [`run_checkpointed`](Self::run_checkpointed):
    /// the driver syncs a [`SegmentLog`] with the frontier after every
    /// ingested batch and snapshots through
    /// [`LogCheckpointable::snapshot_live`], so blobs hold only live state
    /// plus a log cursor and their size does not grow with the stream.
    ///
    /// At most `retain_chain` checkpoints are kept (oldest dropped first,
    /// clamped to at least 1 — the bounded chain a daemon would hold); the
    /// log is compacted to the newest retained blob's cursor after each
    /// capture.  Returns the retained chain and the log; recovery from any
    /// `(log, chain[k])` pair is bit-identical (see
    /// [`run_with_failover_logged`](Self::run_with_failover_logged)).
    pub fn run_checkpointed_logged<A>(
        &self,
        algo: &A,
        instance: &Instance,
        every_batches: usize,
        retain_chain: usize,
    ) -> Result<(StreamReport, Vec<LogCheckpointRecord>, SegmentLog), ScheduleError>
    where
        A: OnlineAlgorithm + ?Sized,
        A::Run: LogCheckpointable,
    {
        let every = every_batches.max(1);
        let retain = retain_chain.max(1);
        let plan = ingestion_plan(instance, self.coalesce_window);
        let mut run = algo.start_for(instance)?;
        let mut log = SegmentLog::new(instance.machines);
        let mut events = Vec::with_capacity(instance.len());
        let mut chain = vec![capture_live(&run, &mut log, 0, 0, f64::NEG_INFINITY)?];
        for (i, (feed_time, ids)) in plan.iter().enumerate() {
            ingest_batch(&mut run, instance, *feed_time, ids, &mut events)?;
            // The worker appends realised segments as it commits them.
            log.sync_from(run.frontier())?;
            if (i + 1) % every == 0 {
                chain.push(capture_live(
                    &run,
                    &mut log,
                    i + 1,
                    events.len(),
                    *feed_time,
                )?);
                if chain.len() > retain {
                    chain.remove(0);
                }
            }
        }
        let report = finish_stream(algo.algorithm_name(), run, instance, events, plan.len())?;
        Ok((report, chain, log))
    }

    /// The crash drill over the `(log, blob)` pair: ingest until
    /// `kill_at_batch` with O(active) checkpoints, **drop the run** (the
    /// log and the last checkpoint survive — both are durable), truncate
    /// the log to the checkpoint's cursor, restore through
    /// [`LogCheckpointable::restore_with_log`] and replay the delta.
    ///
    /// The returned report is indistinguishable from the failure-free run
    /// on every deterministic field, and the returned log ends bit-equal
    /// to an uninterrupted run's.
    pub fn run_with_failover_logged<A>(
        &self,
        algo: &A,
        instance: &Instance,
        every_batches: usize,
        kill_at_batch: usize,
    ) -> Result<(StreamReport, RecoveryStats, SegmentLog), ScheduleError>
    where
        A: OnlineAlgorithm + ?Sized,
        A::Run: LogCheckpointable,
    {
        let plan = ingestion_plan(instance, self.coalesce_window);
        let (events, checkpoint, log, killed_at) = run_until_kill_logged(
            algo,
            instance,
            &plan,
            every_batches.max(1),
            kill_at_batch.min(plan.len()),
        )?;
        recover_and_replay_logged(algo, instance, &plan, events, checkpoint, log, killed_at, 0)
    }
}

/// Phase 1 of a logged crash drill: ingest until the kill point, syncing
/// the log after every batch and keeping only the most recent O(active)
/// checkpoint.  The run is dropped (that *is* the crash); the log and the
/// checkpoint survive, exactly like a durable journal would.
fn run_until_kill_logged<A>(
    algo: &A,
    instance: &Instance,
    plan: &[(f64, Vec<JobId>)],
    every: usize,
    kill_at: usize,
) -> Result<(Vec<ArrivalRecord>, LogCheckpointRecord, SegmentLog, usize), ScheduleError>
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: LogCheckpointable,
{
    let mut run = algo.start_for(instance)?;
    let mut log = SegmentLog::new(instance.machines);
    let mut events = Vec::new();
    let mut last_checkpoint = capture_live(&run, &mut log, 0, 0, f64::NEG_INFINITY)?;
    for (i, (feed_time, ids)) in plan.iter().enumerate().take(kill_at) {
        ingest_batch(&mut run, instance, *feed_time, ids, &mut events)?;
        log.sync_from(run.frontier())?;
        if (i + 1) % every == 0 {
            last_checkpoint = capture_live(&run, &mut log, i + 1, events.len(), *feed_time)?;
        }
    }
    Ok((events, last_checkpoint, log, kill_at))
}

/// Phase 2 of a logged crash drill: truncate the surviving log to the
/// checkpoint's cursor (WAL tail discard — the replay below re-commits
/// those segments through the run itself), restore from the blob's wire
/// bytes with the log, replay the delta and finish the stream.
#[allow(clippy::too_many_arguments)]
fn recover_and_replay_logged<A>(
    algo: &A,
    instance: &Instance,
    plan: &[(f64, Vec<JobId>)],
    mut events: Vec<ArrivalRecord>,
    checkpoint: LogCheckpointRecord,
    mut log: SegmentLog,
    killed_at_batch: usize,
    shard: usize,
) -> Result<(StreamReport, RecoveryStats, SegmentLog), ScheduleError>
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: LogCheckpointable,
{
    let wire = checkpoint.blob.to_bytes();
    let started = Instant::now();
    let blob = StateBlob::from_bytes(&wire)?;
    log.truncate(checkpoint.cursor)?;
    let mut run = <A::Run as LogCheckpointable>::restore_with_log(&blob, &log)?;
    let restore_secs = started.elapsed().as_secs_f64();

    // Everything the dead worker did after the checkpoint is lost.
    events.truncate(checkpoint.events_done);
    let replay_from = checkpoint.batches_done;
    let started = Instant::now();
    for (feed_time, ids) in plan.get(replay_from..).unwrap_or_default() {
        ingest_batch(&mut run, instance, *feed_time, ids, &mut events)?;
        log.sync_from(run.frontier())?;
    }
    let replay_secs = started.elapsed().as_secs_f64();
    let replayed_events = events.len() - checkpoint.events_done;
    let stats = RecoveryStats {
        shard,
        killed_at_batch,
        restored_batches: replay_from,
        replayed_events,
        checkpoint_bytes: wire.len(),
        restore_secs,
        replay_secs,
    };
    let report = finish_stream(algo.algorithm_name(), run, instance, events, plan.len())?;
    Ok((report, stats, log))
}

/// Phase 1 of a crash drill: ingest batches until the kill point, keeping
/// only the most recent checkpoint (a real worker would ship each blob to
/// durable storage as it is captured).  Returns the trace so far, the
/// checkpoint to restore from, and the batch index the worker died at —
/// the run itself is dropped here, which *is* the simulated crash.
fn run_until_kill<A>(
    algo: &A,
    instance: &Instance,
    plan: &[(f64, Vec<JobId>)],
    every: usize,
    kill_at: usize,
) -> Result<(Vec<ArrivalRecord>, CheckpointRecord, usize), ScheduleError>
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: Checkpointable,
{
    let mut run = algo.start_for(instance)?;
    let mut events = Vec::new();
    let mut last_checkpoint = capture(&run, 0, 0, f64::NEG_INFINITY);
    for (i, (feed_time, ids)) in plan.iter().enumerate().take(kill_at) {
        ingest_batch(&mut run, instance, *feed_time, ids, &mut events)?;
        if (i + 1) % every == 0 {
            last_checkpoint = capture(&run, i + 1, events.len(), *feed_time);
        }
    }
    Ok((events, last_checkpoint, kill_at))
}

/// Phase 2 of a crash drill: restore the scheduler from the checkpoint
/// blob's *wire bytes* (the full decode path a real failover would take),
/// discard the dead worker's post-checkpoint trace, replay the delta and
/// finish the stream.
fn recover_and_replay<A>(
    algo: &A,
    instance: &Instance,
    plan: &[(f64, Vec<JobId>)],
    mut events: Vec<ArrivalRecord>,
    checkpoint: CheckpointRecord,
    killed_at_batch: usize,
    shard: usize,
) -> Result<(StreamReport, RecoveryStats), ScheduleError>
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: Checkpointable,
{
    let wire = checkpoint.blob.to_bytes();
    let started = Instant::now();
    let blob = StateBlob::from_bytes(&wire)?;
    let mut run = <A::Run as Checkpointable>::restore(&blob)?;
    let restore_secs = started.elapsed().as_secs_f64();

    // Everything the dead worker did after the checkpoint is lost.
    events.truncate(checkpoint.events_done);
    let replay_from = checkpoint.batches_done;
    let started = Instant::now();
    for (feed_time, ids) in &plan[replay_from..] {
        ingest_batch(&mut run, instance, *feed_time, ids, &mut events)?;
    }
    let replay_secs = started.elapsed().as_secs_f64();
    let replayed_events = events.len() - checkpoint.events_done;
    let stats = RecoveryStats {
        shard,
        killed_at_batch,
        restored_batches: replay_from,
        replayed_events,
        checkpoint_bytes: wire.len(),
        restore_secs,
        replay_secs,
    };
    let report = finish_stream(algo.algorithm_name(), run, instance, events, plan.len())?;
    Ok((report, stats))
}

/// Phase-1 outcome of one shard in a fleet crash drill.
enum ShardOutcome {
    /// The shard's worker survived; its report is final.
    Done(Result<StreamReport, ScheduleError>),
    /// The shard's worker was killed mid-stream.
    Killed {
        events: Result<Vec<ArrivalRecord>, ScheduleError>,
        checkpoint: Option<CheckpointRecord>,
        killed_at_batch: usize,
        failure: ShardFailover,
    },
}

impl ParallelStreamingSimulation {
    /// The fleet crash drill: runs every shard like
    /// [`run`](ParallelStreamingSimulation::run), except that the shards
    /// named in `failures` are **killed** on their original worker after
    /// `kill_at_batch` ingestion batches, restored from their last
    /// checkpoint, and *rebalanced* — the delta replay executes on a fresh
    /// worker thread, not the one that died.
    ///
    /// The merged [`FleetReport`] equals the no-failure run on every
    /// deterministic field (per-shard decisions, duals, schedules, batch
    /// counts, acceptance, cost; pooled percentiles are recomputed over the
    /// same pooled sample count).  One [`RecoveryStats`] is returned per
    /// entry of `failures`, in order.
    ///
    /// Failures must name distinct, in-range shards; `checkpoint_every` is
    /// clamped to at least 1.
    pub fn run_with_failover<A>(
        &self,
        algo: &A,
        shards: &[Instance],
        failures: &[ShardFailover],
    ) -> Result<(FleetReport, Vec<RecoveryStats>), ScheduleError>
    where
        A: OnlineAlgorithm + Sync + ?Sized,
        A::Run: Checkpointable,
    {
        for f in failures {
            if f.shard >= shards.len() {
                return Err(ScheduleError::Internal(format!(
                    "failover shard {} out of range ({} shards)",
                    f.shard,
                    shards.len()
                )));
            }
            if failures.iter().filter(|g| g.shard == f.shard).count() > 1 {
                return Err(ScheduleError::Internal(format!(
                    "duplicate failover entry for shard {}",
                    f.shard
                )));
            }
        }
        let started = Instant::now();
        let sim = StreamingSimulation::with_coalescing(self.coalesce_window);
        let workers = self.effective_workers(shards.len());
        let failure_of = |k: usize| failures.iter().find(|f| f.shard == k).copied();

        // Phase 1: the original workers.  Failing shards die at their kill
        // point; surviving shards complete normally.
        let mut outcomes: Vec<Option<ShardOutcome>> = (0..shards.len()).map(|_| None).collect();
        let chunk = shards.len().div_ceil(workers).max(1);
        std::thread::scope(|scope| {
            for (chunk_idx, (slot_chunk, shard_chunk)) in outcomes
                .chunks_mut(chunk)
                .zip(shards.chunks(chunk))
                .enumerate()
            {
                let base = chunk_idx * chunk;
                let failure_of = &failure_of;
                scope.spawn(move || {
                    for (offset, (slot, shard)) in
                        slot_chunk.iter_mut().zip(shard_chunk).enumerate()
                    {
                        let outcome = match failure_of(base + offset) {
                            None => ShardOutcome::Done(sim.run(algo, shard)),
                            Some(failure) => {
                                let plan = ingestion_plan(shard, sim.coalesce_window);
                                let kill_at = failure.kill_at_batch.min(plan.len());
                                match run_until_kill(
                                    algo,
                                    shard,
                                    &plan,
                                    failure.checkpoint_every.max(1),
                                    kill_at,
                                ) {
                                    Ok((events, checkpoint, killed_at_batch)) => {
                                        ShardOutcome::Killed {
                                            events: Ok(events),
                                            checkpoint: Some(checkpoint),
                                            killed_at_batch,
                                            failure,
                                        }
                                    }
                                    Err(e) => ShardOutcome::Killed {
                                        events: Err(e),
                                        checkpoint: None,
                                        killed_at_batch: kill_at,
                                        failure,
                                    },
                                }
                            }
                        };
                        *slot = Some(outcome);
                    }
                });
            }
        });

        // Phase 2: rebalancing.  Every killed shard's recovery — restore
        // from the checkpoint's wire bytes, replay the delta, finish — runs
        // on a *fresh* worker thread.
        let mut reports: Vec<Option<Result<StreamReport, ScheduleError>>> =
            (0..shards.len()).map(|_| None).collect();
        let mut recoveries: Vec<Option<Result<(usize, RecoveryStats), ScheduleError>>> =
            (0..failures.len()).map(|_| None).collect();
        {
            let mut recovery_slots: Vec<
                &mut Option<Result<(usize, RecoveryStats), ScheduleError>>,
            > = recoveries.iter_mut().collect();
            std::thread::scope(|scope| {
                for (k, (slot, outcome)) in reports.iter_mut().zip(outcomes).enumerate() {
                    match outcome.expect("every shard outcome is filled") {
                        ShardOutcome::Done(report) => *slot = Some(report),
                        ShardOutcome::Killed {
                            events,
                            checkpoint,
                            killed_at_batch,
                            failure,
                        } => {
                            let failure_pos = failures
                                .iter()
                                .position(|f| f.shard == failure.shard)
                                .expect("failure entry exists");
                            let recovery_slot = recovery_slots.remove(0);
                            let shard_instance = &shards[k];
                            scope.spawn(move || {
                                let result = (|| {
                                    let events = events?;
                                    let checkpoint =
                                        checkpoint.expect("checkpoint exists when events do");
                                    recover_and_replay(
                                        algo,
                                        shard_instance,
                                        &ingestion_plan(shard_instance, sim.coalesce_window),
                                        events,
                                        checkpoint,
                                        killed_at_batch,
                                        k,
                                    )
                                })();
                                match result {
                                    Ok((report, stats)) => {
                                        *slot = Some(Ok(report));
                                        *recovery_slot = Some(Ok((failure_pos, stats)));
                                    }
                                    Err(e) => {
                                        *slot = Some(Err(e.clone()));
                                        *recovery_slot = Some(Err(e));
                                    }
                                }
                            });
                        }
                    }
                }
            });
        }

        let mut shard_reports = Vec::with_capacity(shards.len());
        for slot in reports {
            shard_reports.push(slot.expect("every shard report is filled")?);
        }
        let mut stats: Vec<Option<RecoveryStats>> = (0..failures.len()).map(|_| None).collect();
        for slot in recoveries {
            let (pos, s) = slot.expect("every recovery slot is filled")?;
            stats[pos] = Some(s);
        }
        let recovery_stats: Vec<RecoveryStats> = stats
            .into_iter()
            .map(|s| s.expect("every failure produced stats"))
            .collect();
        Ok((
            FleetReport {
                shards: shard_reports,
                workers,
                wall_clock_secs: started.elapsed().as_secs_f64(),
            },
            recovery_stats,
        ))
    }

    /// The fleet crash drill over `(log, blob)` pairs: like
    /// [`run_with_failover`](Self::run_with_failover), but every shard
    /// carries its own [`SegmentLog`] and the shards named in `failures`
    /// recover through O(active) checkpoints — truncate the surviving log
    /// to the blob's cursor, [`LogCheckpointable::restore_with_log`],
    /// replay the delta on the shard's worker.
    ///
    /// The merged [`FleetReport`] equals the no-failure run on every
    /// deterministic field; one [`RecoveryStats`] is returned per entry of
    /// `failures`, in order.  Failures must name distinct, in-range shards.
    pub fn run_with_failover_logged<A>(
        &self,
        algo: &A,
        shards: &[Instance],
        failures: &[ShardFailover],
    ) -> Result<(FleetReport, Vec<RecoveryStats>), ScheduleError>
    where
        A: OnlineAlgorithm + Sync + ?Sized,
        A::Run: LogCheckpointable,
    {
        for f in failures {
            if f.shard >= shards.len() {
                return Err(ScheduleError::Internal(format!(
                    "failover shard {} out of range ({} shards)",
                    f.shard,
                    shards.len()
                )));
            }
            if failures.iter().filter(|g| g.shard == f.shard).count() > 1 {
                return Err(ScheduleError::Internal(format!(
                    "duplicate failover entry for shard {}",
                    f.shard
                )));
            }
        }
        let started = Instant::now();
        let sim = StreamingSimulation::with_coalescing(self.coalesce_window);
        let workers = self.effective_workers(shards.len());
        let failure_of = |k: usize| failures.iter().find(|f| f.shard == k).copied();

        type ShardSlot = Option<Result<(StreamReport, Option<RecoveryStats>), ScheduleError>>;
        let mut slots: Vec<ShardSlot> = (0..shards.len()).map(|_| None).collect();
        let chunk = shards.len().div_ceil(workers).max(1);
        std::thread::scope(|scope| {
            for (chunk_idx, (slot_chunk, shard_chunk)) in slots
                .chunks_mut(chunk)
                .zip(shards.chunks(chunk))
                .enumerate()
            {
                let base = chunk_idx * chunk;
                let failure_of = &failure_of;
                let sim = &sim;
                scope.spawn(move || {
                    for (offset, (slot, shard)) in
                        slot_chunk.iter_mut().zip(shard_chunk).enumerate()
                    {
                        let k = base + offset;
                        let result = match failure_of(k) {
                            None => sim.run(algo, shard).map(|r| (r, None)),
                            Some(failure) => sim
                                .run_with_failover_logged(
                                    algo,
                                    shard,
                                    failure.checkpoint_every.max(1),
                                    failure.kill_at_batch,
                                )
                                .map(|(report, mut stats, _log)| {
                                    stats.shard = k;
                                    (report, Some(stats))
                                }),
                        };
                        *slot = Some(result);
                    }
                });
            }
        });

        let mut shard_reports = Vec::with_capacity(shards.len());
        let mut stats_by_shard: Vec<(usize, RecoveryStats)> = Vec::new();
        for (k, slot) in slots.into_iter().enumerate() {
            let (report, stats) = slot.expect("every shard slot is filled")?;
            shard_reports.push(report);
            if let Some(s) = stats {
                stats_by_shard.push((k, s));
            }
        }
        let mut recovery_stats = Vec::with_capacity(failures.len());
        for f in failures {
            let (_, s) = stats_by_shard
                .iter()
                .find(|(k, _)| *k == f.shard)
                .cloned()
                .ok_or_else(|| {
                    ScheduleError::Internal(format!("failover shard {} produced no stats", f.shard))
                })?;
            recovery_stats.push(s);
        }
        Ok((
            FleetReport {
                shards: shard_reports,
                workers,
                wall_clock_secs: started.elapsed().as_secs_f64(),
            },
            recovery_stats,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_baselines::{AvrScheduler, BkpScheduler, CllScheduler, OaScheduler};
    use pss_types::snapshot::SnapshotError;
    use pss_workloads::{ArrivalModel, RandomConfig, SmallRng, ValueModel};

    fn shard_instances(shards: usize, n: usize, seed: u64) -> Vec<Instance> {
        let base = SmallRng::seed_from_u64(seed);
        let cfg = RandomConfig {
            n_jobs: n,
            machines: 1,
            alpha: 2.0,
            arrival: ArrivalModel::BurstyPoisson {
                rate: 1.0,
                burst_size: 4,
                jitter: 1e-4,
            },
            value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
            ..RandomConfig::standard(seed)
        };
        (0..shards)
            .map(|k| cfg.generate_with(&mut base.split_stream(k as u64)))
            .collect()
    }

    /// Asserts two stream reports agree on every deterministic field
    /// (decisions, duals, schedules, batch counts — latencies are
    /// wall-clock and excluded).
    fn assert_streams_equal(a: &StreamReport, b: &StreamReport, label: &str) {
        assert_eq!(a.algorithm, b.algorithm, "{label}: algorithm");
        assert_eq!(a.batches, b.batches, "{label}: batch counts");
        assert_eq!(
            a.schedule.segments, b.schedule.segments,
            "{label}: schedule"
        );
        assert_eq!(a.events.len(), b.events.len(), "{label}: event counts");
        for (x, y) in a.events.iter().zip(&b.events) {
            assert_eq!(x.job, y.job, "{label}: event order");
            assert_eq!(x.accepted, y.accepted, "{label}: decision for {:?}", x.job);
            assert_eq!(
                x.dual.to_bits(),
                y.dual.to_bits(),
                "{label}: dual for {:?}",
                x.job
            );
            assert_eq!(x.burst, y.burst, "{label}: burst width for {:?}", x.job);
        }
        assert_eq!(
            a.report.total_cost().to_bits(),
            b.report.total_cost().to_bits(),
            "{label}: cost"
        );
    }

    #[test]
    fn checkpointed_run_matches_the_plain_run_and_records_blobs() {
        let inst = shard_instances(1, 40, 4242).remove(0);
        let sim = StreamingSimulation::with_coalescing(1e-3);
        let plain = sim.run(&CllScheduler, &inst).unwrap();
        let (stream, checkpoints) = sim.run_checkpointed(&CllScheduler, &inst, 3).unwrap();
        assert_streams_equal(&plain, &stream, "checkpointed CLL");
        // One pre-ingestion checkpoint plus one per three batches.
        assert_eq!(checkpoints.len(), 1 + stream.batches / 3);
        assert_eq!(checkpoints[0].batches_done, 0);
        assert_eq!(checkpoints[0].events_done, 0);
        // Blob sizes grow with the committed frontier.
        let first = checkpoints.first().unwrap().blob.size_bytes();
        let last = checkpoints.last().unwrap().blob.size_bytes();
        assert!(last > first, "blob sizes must grow along the stream");
        // Checkpoints are monotone in batches and events.
        for pair in checkpoints.windows(2) {
            assert!(pair[0].batches_done < pair[1].batches_done);
            assert!(pair[0].events_done <= pair[1].events_done);
        }
    }

    #[test]
    fn logged_run_matches_plain_and_blobs_stay_o_active() {
        let inst = shard_instances(1, 40, 4242).remove(0);
        let sim = StreamingSimulation::with_coalescing(1e-3);
        let plain = sim.run(&CllScheduler, &inst).unwrap();
        let (stream, chain, log) = sim
            .run_checkpointed_logged(&CllScheduler, &inst, 3, usize::MAX)
            .unwrap();
        assert_streams_equal(&plain, &stream, "logged CLL");
        assert_eq!(chain.len(), 1 + stream.batches / 3);
        // The live blobs do not absorb the frontier: the final one stays
        // far below the final full-frontier blob of the legacy path.
        let (_, legacy) = sim.run_checkpointed(&CllScheduler, &inst, 3).unwrap();
        let legacy_last = legacy.last().unwrap().blob.size_bytes();
        let live_last = chain.last().unwrap().blob.size_bytes();
        assert!(
            live_last * 2 < legacy_last,
            "live blob ({live_last} B) must be far smaller than the \
             full-frontier blob ({legacy_last} B); E18 measures the \
             flat-vs-length asymptotics on longer streams"
        );
        // The log mirrors the committed frontier: its end cursor equals the
        // frontier size the last event observed, and cursors are monotone.
        let final_frontier = stream.events.last().unwrap().frontier_segments;
        assert_eq!(log.cursor(), LogCursor(final_frontier as u64));
        for pair in chain.windows(2) {
            assert!(pair[0].cursor <= pair[1].cursor);
        }
        // Compaction after each capture bounds the record envelopes.
        assert!(log.record_count() <= stream.batches % 3 + 1);
    }

    #[test]
    fn every_retained_chain_depth_recovers_from_every_retained_blob() {
        let inst = shard_instances(1, 36, 1337).remove(0);
        let sim = StreamingSimulation::with_coalescing(1e-3);
        let plain = sim.run(&CllScheduler, &inst).unwrap();
        for retain in 1..=4 {
            let (stream, chain, log) = sim
                .run_checkpointed_logged(&CllScheduler, &inst, 2, retain)
                .unwrap();
            assert_streams_equal(&plain, &stream, &format!("retain {retain}"));
            assert!(chain.len() <= retain);
            // Every retained blob restores against the log truncated to its
            // cursor — including the oldest, whose records were compacted
            // into the prefix.
            for (k, ckpt) in chain.iter().enumerate() {
                let mut cut = log.clone();
                cut.truncate(ckpt.cursor).unwrap();
                let run = <CllScheduler as OnlineAlgorithm>::Run::restore_with_log(
                    &StateBlob::from_bytes(&ckpt.blob.to_bytes()).unwrap(),
                    &cut,
                )
                .unwrap_or_else(|e| panic!("retain {retain} chain[{k}]: {e}"));
                assert_eq!(
                    run.frontier().segments.len() as u64,
                    ckpt.cursor.segments(),
                    "retain {retain} chain[{k}]: frontier size"
                );
            }
        }
    }

    #[test]
    fn logged_failover_is_invisible_and_leaves_a_consistent_log() {
        let inst = shard_instances(1, 48, 9000).remove(0);
        let sim = StreamingSimulation::with_coalescing(1e-3);
        for algo_run in 0..2 {
            let (plain, recovered, stats, log, label) = if algo_run == 0 {
                let plain = sim.run(&OaScheduler, &inst).unwrap();
                let kill = plain.batches / 2;
                let (r, s, l) = sim
                    .run_with_failover_logged(&OaScheduler, &inst, 4, kill)
                    .unwrap();
                (plain, r, s, l, "OA")
            } else {
                let algo = BkpScheduler {
                    resolution: 400,
                    ..Default::default()
                };
                let plain = sim.run(&algo, &inst).unwrap();
                let kill = plain.batches / 2;
                let (r, s, l) = sim.run_with_failover_logged(&algo, &inst, 4, kill).unwrap();
                (plain, r, s, l, "BKP")
            };
            assert_streams_equal(&plain, &recovered, label);
            assert!(stats.replayed_events > 0, "{label}: nothing was replayed");
            // The recovered log ends exactly at the uninterrupted run's
            // final frontier.
            let final_frontier = plain.events.last().unwrap().frontier_segments;
            assert_eq!(log.cursor(), LogCursor(final_frontier as u64), "{label}");
        }
    }

    #[test]
    fn logged_fleet_failover_yields_the_no_failure_fleet_report() {
        let shards = shard_instances(3, 36, 777);
        let sim = ParallelStreamingSimulation::with_coalescing(1e-3);
        let clean = sim.run(&CllScheduler, &shards).unwrap();
        let batches_1 = clean.shards[1].batches;
        for kill_at in [0, batches_1 / 2, batches_1 + 7] {
            let (fleet, stats) = sim
                .run_with_failover_logged(
                    &CllScheduler,
                    &shards,
                    &[ShardFailover {
                        shard: 1,
                        kill_at_batch: kill_at,
                        checkpoint_every: 3,
                    }],
                )
                .unwrap();
            assert_eq!(stats.len(), 1);
            assert_eq!(stats[0].shard, 1);
            for (k, (a, b)) in clean.shards.iter().zip(&fleet.shards).enumerate() {
                assert_streams_equal(a, b, &format!("logged kill@{kill_at} shard {k}"));
            }
            assert_eq!(fleet.total_cost().to_bits(), clean.total_cost().to_bits());
        }
        assert!(sim
            .run_with_failover_logged(
                &CllScheduler,
                &shards,
                &[ShardFailover {
                    shard: 9,
                    kill_at_batch: 1,
                    checkpoint_every: 1
                }]
            )
            .is_err());
    }

    #[test]
    fn single_stream_failover_is_invisible_in_the_report() {
        let inst = shard_instances(1, 48, 9000).remove(0);
        let sim = StreamingSimulation::with_coalescing(1e-3);
        for algo_run in 0..2 {
            // Two very different state shapes: the replanning executor and
            // the BKP grid.
            let (plain, recovered, stats, label) = if algo_run == 0 {
                let plain = sim.run(&OaScheduler, &inst).unwrap();
                let kill = plain.batches / 2;
                let (r, s) = sim.run_with_failover(&OaScheduler, &inst, 4, kill).unwrap();
                (plain, r, s, "OA")
            } else {
                let algo = BkpScheduler {
                    resolution: 400,
                    ..Default::default()
                };
                let plain = sim.run(&algo, &inst).unwrap();
                let kill = plain.batches / 2;
                let (r, s) = sim.run_with_failover(&algo, &inst, 4, kill).unwrap();
                (plain, r, s, "BKP")
            };
            assert_streams_equal(&plain, &recovered, label);
            assert!(stats.killed_at_batch >= stats.restored_batches, "{label}");
            assert!(stats.replayed_events > 0, "{label}: nothing was replayed");
            assert!(stats.checkpoint_bytes > 0, "{label}");
        }
    }

    #[test]
    fn killed_and_restored_shard_yields_the_no_failure_fleet_report() {
        let shards = shard_instances(3, 36, 777);
        let sim = ParallelStreamingSimulation::with_coalescing(1e-3);
        let clean = sim.run(&CllScheduler, &shards).unwrap();
        // Kill shard 1 mid-stream at a handful of cut points (including 0 =
        // killed before any batch, and one past the end = killed after the
        // last batch).
        let batches_1 = clean.shards[1].batches;
        for kill_at in [
            0,
            1,
            batches_1 / 2,
            batches_1.saturating_sub(1),
            batches_1 + 7,
        ] {
            let (fleet, stats) = sim
                .run_with_failover(
                    &CllScheduler,
                    &shards,
                    &[ShardFailover {
                        shard: 1,
                        kill_at_batch: kill_at,
                        checkpoint_every: 3,
                    }],
                )
                .unwrap();
            assert_eq!(stats.len(), 1);
            assert_eq!(fleet.shards.len(), clean.shards.len());
            for (k, (a, b)) in clean.shards.iter().zip(&fleet.shards).enumerate() {
                assert_streams_equal(a, b, &format!("kill@{kill_at} shard {k}"));
            }
            // Fleet-level pooled statistics agree on the deterministic
            // parts: acceptance counts, batch totals, costs, and the pooled
            // percentile sample universe.
            assert_eq!(fleet.total_arrivals(), clean.total_arrivals());
            assert_eq!(fleet.total_batches(), clean.total_batches());
            assert_eq!(fleet.accepted_jobs(), clean.accepted_jobs());
            assert_eq!(fleet.acceptance_rate(), clean.acceptance_rate());
            assert_eq!(fleet.total_cost().to_bits(), clean.total_cost().to_bits());
            assert!(fleet.latency_percentile_secs(99.0).is_finite());
        }
    }

    #[test]
    fn fleet_failover_rejects_bad_plans() {
        let shards = shard_instances(2, 12, 55);
        let sim = ParallelStreamingSimulation::default();
        let bad_shard = ShardFailover {
            shard: 5,
            kill_at_batch: 1,
            checkpoint_every: 1,
        };
        assert!(sim
            .run_with_failover(&AvrScheduler, &shards, &[bad_shard])
            .is_err());
        let dup = ShardFailover {
            shard: 0,
            kill_at_batch: 1,
            checkpoint_every: 1,
        };
        assert!(sim
            .run_with_failover(&AvrScheduler, &shards, &[dup, dup])
            .is_err());
    }

    #[test]
    fn corrupted_and_truncated_blobs_error_and_never_panic() {
        // A mid-stream BKP state: the richest blob (grid cursor, speed
        // index, hull, EDF heap).
        let inst = shard_instances(1, 30, 31).remove(0);
        let algo = BkpScheduler {
            resolution: 300,
            ..Default::default()
        };
        let (_, checkpoints) = StreamingSimulation::default()
            .run_checkpointed(&algo, &inst, 5)
            .unwrap();
        let blob = &checkpoints.last().unwrap().blob;
        let wire = blob.to_bytes();
        // Every truncation fails cleanly.
        for len in (0..wire.len()).step_by(7) {
            assert!(StateBlob::from_bytes(&wire[..len]).is_err());
        }
        // Every probed bit flip fails cleanly (checksummed container).
        for i in (0..wire.len()).step_by(11) {
            let mut corrupted = wire.clone();
            corrupted[i] ^= 0x10;
            assert!(StateBlob::from_bytes(&corrupted).is_err());
        }
        // Restoring the wrong kind errors.
        use pss_baselines::avr::AvrState;
        use pss_baselines::bkp::BkpState;
        assert!(matches!(
            AvrState::restore(blob),
            Err(SnapshotError::WrongKind { .. })
        ));
        // A kind-right blob with a truncated payload errors.
        let short = StateBlob::new(
            "bkp",
            2,
            blob.payload()[..blob.payload().len() / 2].to_vec(),
        );
        assert!(BkpState::restore(&short).is_err());
        // A version-1 blob (the pre-seglog layout, frontier inline with no
        // tag byte) is rejected with the typed version error, never
        // misparsed.
        let old = StateBlob::new("bkp", 1, blob.payload().to_vec());
        assert!(matches!(
            BkpState::restore(&old),
            Err(SnapshotError::UnsupportedVersion(1))
        ));
        // The JSON envelope round-trips the same state.
        let json = pss_metrics::blob_to_json(blob);
        let back = pss_metrics::blob_from_json(&json).unwrap();
        assert_eq!(&back, blob);
        assert!(BkpState::restore(&back).is_ok());
    }

    #[test]
    fn empty_single_job_and_large_states_round_trip() {
        use pss_baselines::avr::AvrState;
        use pss_types::OnlineAlgorithm;

        // Empty state: a fresh run, never fed.
        let fresh = AvrScheduler.start(1, 2.0).unwrap();
        let blob = fresh.snapshot();
        let restored =
            AvrState::restore(&StateBlob::from_bytes(&blob.to_bytes()).unwrap()).unwrap();
        assert!(restored.finish().unwrap().segments.is_empty());

        // Single-job state.
        let single = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let mut run = AvrScheduler.start_for(&single).unwrap();
        run.on_arrival(&single.jobs[0], 0.0).unwrap();
        let restored = AvrState::restore(&run.snapshot()).unwrap();
        assert_eq!(
            restored.finish().unwrap().segments,
            run.finish().unwrap().segments
        );

        // A 10k-job state round-trips bit-exactly through the wire format.
        let big = RandomConfig {
            n_jobs: 10_000,
            machines: 1,
            alpha: 2.0,
            arrival: ArrivalModel::Poisson { rate: 4.0 },
            value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
            ..RandomConfig::standard(808)
        }
        .generate();
        let mut run = AvrScheduler.start_for(&big).unwrap();
        for id in big.arrival_order() {
            let job = big.job(id);
            run.on_arrival(job, job.release).unwrap();
        }
        let blob = run.snapshot();
        let wire = blob.to_bytes();
        let back = StateBlob::from_bytes(&wire).unwrap();
        assert_eq!(back, blob);
        let restored = AvrState::restore(&back).unwrap();
        // The restored state is observably the same state: identical
        // snapshot, identical finish.
        assert_eq!(restored.snapshot(), blob);
        assert_eq!(
            restored.finish().unwrap().segments,
            run.finish().unwrap().segments
        );
    }
}
