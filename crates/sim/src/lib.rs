//! # pss-sim
//!
//! The execution substrate: a discrete-event simulator that "runs" a
//! schedule on `m` speed-scalable machines and reports what actually
//! happened, plus an online-behaviour replay harness.
//!
//! The paper analyses schedules purely through their cost functional; a
//! system reproducing it still needs the runtime view a practitioner would
//! use — per-machine utilisation, preemptions, migrations, completion
//! times, deadline slack, energy split per machine.  [`engine::Simulation`]
//! provides exactly that, and doubles as an independent check of the cost
//! accounting in `pss-types` (the simulator integrates power over its own
//! event timeline).
//!
//! [`replay`] provides the operational definition of "online": it re-runs a
//! [`Scheduler`](pss_types::Scheduler) on growing prefixes of an instance
//! and verifies that the machine speed profiles *in the past* never change
//! when new jobs arrive.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod gantt;
pub mod replay;

pub use engine::{JobOutcome, MachineStats, SimReport, Simulation};
pub use gantt::{render_gantt, GanttOptions};
pub use replay::{prefix_stability_report, PrefixStabilityReport};
