//! # pss-sim
//!
//! The execution substrate: a discrete-event simulator that "runs" a
//! schedule on `m` speed-scalable machines and reports what actually
//! happened, plus an online-behaviour replay harness.
//!
//! The paper analyses schedules purely through their cost functional; a
//! system reproducing it still needs the runtime view a practitioner would
//! use — per-machine utilisation, preemptions, migrations, completion
//! times, deadline slack, energy split per machine.  [`engine::Simulation`]
//! provides exactly that, and doubles as an independent check of the cost
//! accounting in `pss-types` (the simulator integrates power over its own
//! event timeline).
//!
//! [`engine::StreamingSimulation`] drives an event-driven online algorithm
//! ([`OnlineAlgorithm`](pss_types::OnlineAlgorithm)) one arrival at a time
//! and records a per-event trace (decision, dual, latency, frontier
//! growth) — the runtime counterpart of the paper's online model.  A
//! configurable **burst-coalescing window** feeds near-simultaneous
//! arrivals (within the window of a burst's first release) as one batch
//! through [`OnlineScheduler::on_arrivals`](pss_types::OnlineScheduler::on_arrivals),
//! at the burst's last release time, so a burst costs one replan / index
//! merge instead of one per job; `coalesce_window = 0` (the default) is the
//! exact per-event loop.  [`parallel::ParallelStreamingSimulation`] shards
//! independent streams across `std::thread` workers and deterministically
//! merges the per-shard [`engine::StreamReport`]s into a fleet-level
//! [`parallel::FleetReport`] (pooled percentiles recomputed from pooled
//! samples, never averaged).
//!
//! [`sharded`] partitions *one* logical stream across `S` independent
//! scheduler runs — [`sharded::RoutePolicy`] (hash / round-robin /
//! cheapest-price over the shards' published dual-price EWMAs) routes each
//! arrival, [`sharded::ShardedStream`] keeps a mergeable per-shard frontier
//! ([`pss_types::merge_frontiers`]), and [`sharded::sharding_drift`] is the
//! sharding-cost oracle comparing the same workload unsharded vs sharded.
//! With `shards = 1`, [`sharded::ShardedStreaming`] is bit-identical to
//! [`engine::StreamingSimulation`].
//!
//! [`checkpoint`] makes streams *restartable*: every run state implements
//! `pss_types::Checkpointable` and `pss_types::LogCheckpointable`, so
//! [`StreamingSimulation::run_checkpointed`](engine::StreamingSimulation)
//! snapshots the scheduler every k ingestion batches, the failover
//! drills (`run_with_failover`, single-stream and fleet-level) kill a
//! worker mid-stream, restore from the last checkpoint blob and replay
//! the delta — bit-identically, with killed shards *rebalanced* onto
//! fresh worker threads — and E14 measures blob size, capture/restore
//! cost and recovery latency.  The `_logged` variants carry a
//! `pss_types::SegmentLog` per run: blobs hold only live state plus a
//! log cursor (O(active), measured flat by E18), and recovery
//! reassembles the frontier from the `(log, blob)` pair.
//!
//! [`replay`] provides the operational definition of "online": the
//! streaming check [`replay::streaming_prefix_report`] verifies in a single
//! pass that the machine speed profiles an incremental run *commits to*
//! are never revised by later arrivals, and the batch fallback
//! [`replay::prefix_stability_report`] re-runs any
//! [`Scheduler`](pss_types::Scheduler) on growing prefixes of an instance
//! for algorithms without the incremental API.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod engine;
pub mod gantt;
pub mod parallel;
pub mod replay;
pub mod sharded;

pub use checkpoint::{CheckpointRecord, LogCheckpointRecord, RecoveryStats, ShardFailover};
pub use engine::{
    coalesce_arrivals, nearest_rank, ArrivalRecord, JobOutcome, MachineStats, SimReport,
    Simulation, StreamReport, StreamingSimulation,
};
pub use gantt::{render_gantt, GanttOptions};
pub use parallel::{FleetReport, ParallelStreamingSimulation};
pub use replay::{prefix_stability_report, streaming_prefix_report, PrefixStabilityReport};
pub use sharded::{
    sharded_fields_equal, sharding_drift, RoutePolicy, ShardedEvent, ShardedReport, ShardedStream,
    ShardedStreaming, ShardingDrift,
};
