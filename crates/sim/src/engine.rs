//! The discrete-event schedule simulator.

use serde::{Deserialize, Serialize};

use pss_power::{AlphaPower, PowerFunction};
use pss_types::{num, Instance, JobId, Schedule, ScheduleError, Segment};

/// Per-machine execution statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MachineStats {
    /// Time the machine spent running jobs.
    pub busy_time: f64,
    /// Time the machine was idle within the simulated horizon.
    pub idle_time: f64,
    /// Energy the machine consumed.
    pub energy: f64,
    /// Work the machine processed.
    pub work: f64,
    /// Maximum speed the machine ever ran at.
    pub peak_speed: f64,
    /// Utilisation `busy / (busy + idle)` (0 for an unused machine).
    pub utilization: f64,
}

/// Per-job execution outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Work processed for the job.
    pub work_done: f64,
    /// Whether the job was finished.
    pub finished: bool,
    /// Completion time (time at which the job's workload was fully
    /// processed), if finished.
    pub completion_time: Option<f64>,
    /// Slack `deadline − completion_time`, if finished.
    pub slack: Option<f64>,
    /// Number of preemptions: times the job stopped running and resumed
    /// later.
    pub preemptions: usize,
    /// Number of migrations: times the job resumed on a different machine
    /// than it last ran on.
    pub migrations: usize,
}

/// The full simulation report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimReport {
    /// Simulated horizon `[start, end)`.
    pub horizon: (f64, f64),
    /// Per-machine statistics.
    pub machines: Vec<MachineStats>,
    /// Per-job outcomes, indexed by job id.
    pub jobs: Vec<JobOutcome>,
    /// Total energy (sum over machines).
    pub total_energy: f64,
    /// Total lost value (sum of values of unfinished jobs).
    pub lost_value: f64,
    /// Total number of preemptions.
    pub preemptions: usize,
    /// Total number of migrations.
    pub migrations: usize,
}

impl SimReport {
    /// Total cost `energy + lost value`, matching the paper's objective.
    pub fn total_cost(&self) -> f64 {
        self.total_energy + self.lost_value
    }

    /// Average machine utilisation.
    pub fn mean_utilization(&self) -> f64 {
        if self.machines.is_empty() {
            return 0.0;
        }
        self.machines.iter().map(|m| m.utilization).sum::<f64>() / self.machines.len() as f64
    }
}

/// The simulator: validates a schedule and replays it event by event.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulation;

impl Simulation {
    /// Replays `schedule` for `instance`, producing a [`SimReport`].
    ///
    /// The schedule must be feasible (this is checked first via
    /// [`validate_schedule`](pss_types::validate_schedule)); the simulation
    /// then walks the event timeline (all segment boundaries in time order)
    /// and accumulates the statistics.
    pub fn run(&self, instance: &Instance, schedule: &Schedule) -> Result<SimReport, ScheduleError> {
        pss_types::validate_schedule(instance, schedule)?;
        let power = AlphaPower::new(instance.alpha);
        let m = instance.machines;
        let n = instance.len();

        let horizon = {
            let (ilo, ihi) = instance.horizon();
            match schedule.span() {
                Some((slo, shi)) => (ilo.min(slo), ihi.max(shi)),
                None => (ilo, ihi),
            }
        };

        // Order segments per job by start time to count preemptions and
        // migrations and to find completion times.
        let mut jobs = Vec::with_capacity(n);
        for job in &instance.jobs {
            let mut segs: Vec<&Segment> = schedule
                .segments
                .iter()
                .filter(|s| s.job == Some(job.id))
                .collect();
            segs.sort_by(|a, b| a.start.partial_cmp(&b.start).expect("finite times"));

            let mut work_done = 0.0;
            let mut completion_time = None;
            let mut preemptions = 0usize;
            let mut migrations = 0usize;
            let mut prev: Option<&Segment> = None;
            for seg in &segs {
                if let Some(p) = prev {
                    if !num::approx_eq(p.end, seg.start) {
                        preemptions += 1;
                    }
                    if p.machine != seg.machine {
                        migrations += 1;
                    }
                }
                let before = work_done;
                work_done += seg.work_amount();
                if completion_time.is_none() && num::approx_ge(work_done, job.work) {
                    // The job completes inside this segment; interpolate.
                    let needed = job.work - before;
                    let t = if seg.speed > 0.0 {
                        seg.start + needed / seg.speed
                    } else {
                        seg.end
                    };
                    completion_time = Some(t.min(seg.end));
                }
                prev = Some(seg);
            }
            let finished = num::approx_ge(work_done, job.work);
            jobs.push(JobOutcome {
                job: job.id,
                work_done,
                finished,
                completion_time: if finished { completion_time } else { None },
                slack: if finished {
                    completion_time.map(|t| job.deadline - t)
                } else {
                    None
                },
                preemptions,
                migrations,
            });
        }

        // Per-machine statistics.
        let mut machines = vec![MachineStats::default(); m];
        for machine in 0..m {
            let segs = schedule.machine_segments(machine);
            let stats = &mut machines[machine];
            for seg in &segs {
                stats.busy_time += seg.duration();
                stats.energy += power.energy_at_speed(seg.speed, seg.duration());
                stats.work += seg.work_amount();
                stats.peak_speed = stats.peak_speed.max(seg.speed);
            }
            let span = horizon.1 - horizon.0;
            stats.idle_time = (span - stats.busy_time).max(0.0);
            stats.utilization = if span > 0.0 { stats.busy_time / span } else { 0.0 };
        }

        let total_energy = num::stable_sum(machines.iter().map(|s| s.energy));
        let lost_value = num::stable_sum(
            jobs.iter()
                .filter(|o| !o.finished)
                .map(|o| instance.job(o.job).value),
        );
        let preemptions = jobs.iter().map(|o| o.preemptions).sum();
        let migrations = jobs.iter().map(|o| o.migrations).sum();

        Ok(SimReport {
            horizon,
            machines,
            jobs,
            total_energy,
            lost_value,
            preemptions,
            migrations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::Segment;

    fn instance() -> Instance {
        Instance::from_tuples(
            2,
            2.0,
            vec![(0.0, 4.0, 2.0, 5.0), (1.0, 3.0, 1.0, 2.0)],
        )
        .unwrap()
    }

    #[test]
    fn simulation_matches_schedule_cost() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 4.0, 0.5, JobId(0)));
        s.push(Segment::work(1, 1.0, 3.0, 0.5, JobId(1)));
        let report = Simulation.run(&inst, &s).unwrap();
        let cost = s.cost(&inst);
        assert!((report.total_cost() - cost.total()).abs() < 1e-9);
        assert_eq!(report.lost_value, 0.0);
        assert!(report.jobs.iter().all(|j| j.finished));
    }

    #[test]
    fn completion_times_and_slack_are_interpolated() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        // Job 0 finishes exactly at t = 4 (work 2 at speed 0.5).
        s.push(Segment::work(0, 0.0, 4.0, 0.5, JobId(0)));
        // Job 1 runs at speed 1 from t=1, needs 1 unit of work -> done at 2.
        s.push(Segment::work(1, 1.0, 3.0, 1.0, JobId(1)));
        let report = Simulation.run(&inst, &s).unwrap();
        // Overshoot is permitted by the validator but completion is at the
        // point the workload is reached.
        assert!((report.jobs[0].completion_time.unwrap() - 4.0).abs() < 1e-9);
        assert!((report.jobs[1].completion_time.unwrap() - 2.0).abs() < 1e-9);
        assert!((report.jobs[1].slack.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn preemptions_and_migrations_are_counted() {
        let inst = Instance::from_tuples(
            2,
            2.0,
            vec![(0.0, 10.0, 3.0, 1.0)],
        )
        .unwrap();
        let mut s = Schedule::empty(2);
        // Run, pause, resume on another machine.
        s.push(Segment::work(0, 0.0, 1.0, 1.0, JobId(0)));
        s.push(Segment::work(1, 2.0, 4.0, 1.0, JobId(0)));
        let report = Simulation.run(&inst, &s).unwrap();
        assert_eq!(report.preemptions, 1);
        assert_eq!(report.migrations, 1);
    }

    #[test]
    fn unfinished_jobs_contribute_lost_value() {
        let inst = instance();
        let s = Schedule::empty(2);
        let report = Simulation.run(&inst, &s).unwrap();
        assert_eq!(report.total_energy, 0.0);
        assert!((report.lost_value - 7.0).abs() < 1e-12);
        assert!(report.jobs.iter().all(|j| !j.finished));
    }

    #[test]
    fn machine_stats_track_utilization_and_peak_speed() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.0, JobId(0)));
        s.push(Segment::work(1, 1.0, 3.0, 0.5, JobId(1)));
        let report = Simulation.run(&inst, &s).unwrap();
        assert!((report.machines[0].busy_time - 2.0).abs() < 1e-12);
        assert!((report.machines[0].peak_speed - 1.0).abs() < 1e-12);
        assert!((report.machines[0].utilization - 0.5).abs() < 1e-12);
        assert!((report.machines[1].busy_time - 2.0).abs() < 1e-12);
        assert!(report.mean_utilization() > 0.0);
    }

    #[test]
    fn infeasible_schedules_are_rejected() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 5.0, 1.0, JobId(0))); // outside window
        assert!(Simulation.run(&inst, &s).is_err());
    }
}
