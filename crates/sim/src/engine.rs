//! The discrete-event schedule simulator and the streaming online event
//! loop.
//!
//! [`Simulation`] replays a complete schedule and reports per-machine and
//! per-job execution statistics.  [`StreamingSimulation`] drives an
//! event-driven online algorithm ([`OnlineAlgorithm`]) one arrival at a
//! time, recording a per-event trace (decision, dual value, arrival-handling
//! latency, frontier growth) before replaying the finished schedule through
//! [`Simulation`] — the runtime view of the paper's online model.

use std::time::Instant;

use pss_power::{AlphaPower, PowerFunction};
use pss_types::{
    num, Instance, JobId, OnlineAlgorithm, OnlineScheduler, Schedule, ScheduleError, Segment,
};

/// Per-machine execution statistics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MachineStats {
    /// Time the machine spent running jobs.
    pub busy_time: f64,
    /// Time the machine was idle within the simulated horizon.
    pub idle_time: f64,
    /// Energy the machine consumed.
    pub energy: f64,
    /// Work the machine processed.
    pub work: f64,
    /// Maximum speed the machine ever ran at.
    pub peak_speed: f64,
    /// Utilisation `busy / (busy + idle)` (0 for an unused machine).
    pub utilization: f64,
}

/// Per-job execution outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// The job.
    pub job: JobId,
    /// Work processed for the job.
    pub work_done: f64,
    /// Whether the job was finished.
    pub finished: bool,
    /// Completion time (time at which the job's workload was fully
    /// processed), if finished.
    pub completion_time: Option<f64>,
    /// Slack `deadline − completion_time`, if finished.
    pub slack: Option<f64>,
    /// Number of preemptions: times the job stopped running and resumed
    /// later.
    pub preemptions: usize,
    /// Number of migrations: times the job resumed on a different machine
    /// than it last ran on.
    pub migrations: usize,
}

/// The full simulation report.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Simulated horizon `[start, end)`.
    pub horizon: (f64, f64),
    /// Per-machine statistics.
    pub machines: Vec<MachineStats>,
    /// Per-job outcomes, indexed by job id.
    pub jobs: Vec<JobOutcome>,
    /// Total energy (sum over machines).
    pub total_energy: f64,
    /// Total lost value (sum of values of unfinished jobs).
    pub lost_value: f64,
    /// Total number of preemptions.
    pub preemptions: usize,
    /// Total number of migrations.
    pub migrations: usize,
}

impl SimReport {
    /// Total cost `energy + lost value`, matching the paper's objective.
    pub fn total_cost(&self) -> f64 {
        self.total_energy + self.lost_value
    }

    /// Average machine utilisation.
    pub fn mean_utilization(&self) -> f64 {
        if self.machines.is_empty() {
            return 0.0;
        }
        self.machines.iter().map(|m| m.utilization).sum::<f64>() / self.machines.len() as f64
    }
}

/// The simulator: validates a schedule and replays it event by event.
#[derive(Debug, Clone, Copy, Default)]
pub struct Simulation;

impl Simulation {
    /// Replays `schedule` for `instance`, producing a [`SimReport`].
    ///
    /// The schedule must be feasible (this is checked first via
    /// [`validate_schedule`](pss_types::validate_schedule)); the simulation
    /// then walks the event timeline (all segment boundaries in time order)
    /// and accumulates the statistics.
    pub fn run(
        &self,
        instance: &Instance,
        schedule: &Schedule,
    ) -> Result<SimReport, ScheduleError> {
        pss_types::validate_schedule(instance, schedule)?;
        let power = AlphaPower::new(instance.alpha);
        let m = instance.machines;
        let n = instance.len();

        let horizon = {
            let (ilo, ihi) = instance.horizon();
            match schedule.span() {
                Some((slo, shi)) => (ilo.min(slo), ihi.max(shi)),
                None => (ilo, ihi),
            }
        };

        // Order segments per job by start time to count preemptions and
        // migrations and to find completion times.
        let mut jobs = Vec::with_capacity(n);
        for job in &instance.jobs {
            let mut segs: Vec<&Segment> = schedule
                .segments
                .iter()
                .filter(|s| s.job == Some(job.id))
                .collect();
            segs.sort_by(|a, b| a.start.total_cmp(&b.start));

            let mut work_done = 0.0;
            let mut completion_time = None;
            let mut preemptions = 0usize;
            let mut migrations = 0usize;
            let mut prev: Option<&Segment> = None;
            for seg in &segs {
                if let Some(p) = prev {
                    if !num::approx_eq(p.end, seg.start) {
                        preemptions += 1;
                    }
                    if p.machine != seg.machine {
                        migrations += 1;
                    }
                }
                let before = work_done;
                work_done += seg.work_amount();
                if completion_time.is_none() && num::approx_ge(work_done, job.work) {
                    // The job completes inside this segment; interpolate.
                    let needed = job.work - before;
                    let t = if seg.speed > 0.0 {
                        seg.start + needed / seg.speed
                    } else {
                        seg.end
                    };
                    completion_time = Some(t.min(seg.end));
                }
                prev = Some(seg);
            }
            let finished = num::approx_ge(work_done, job.work);
            jobs.push(JobOutcome {
                job: job.id,
                work_done,
                finished,
                completion_time: if finished { completion_time } else { None },
                slack: if finished {
                    completion_time.map(|t| job.deadline - t)
                } else {
                    None
                },
                preemptions,
                migrations,
            });
        }

        // Per-machine statistics.
        let mut machines = vec![MachineStats::default(); m];
        for (machine, stats) in machines.iter_mut().enumerate() {
            let segs = schedule.machine_segments(machine);
            for seg in &segs {
                stats.busy_time += seg.duration();
                stats.energy += power.energy_at_speed(seg.speed, seg.duration());
                stats.work += seg.work_amount();
                stats.peak_speed = stats.peak_speed.max(seg.speed);
            }
            let span = horizon.1 - horizon.0;
            stats.idle_time = (span - stats.busy_time).max(0.0);
            stats.utilization = if span > 0.0 {
                stats.busy_time / span
            } else {
                0.0
            };
        }

        let total_energy = num::stable_sum(machines.iter().map(|s| s.energy));
        let lost_value = num::stable_sum(
            jobs.iter()
                .filter(|o| !o.finished)
                .map(|o| instance.job(o.job).value),
        );
        let preemptions = jobs.iter().map(|o| o.preemptions).sum();
        let migrations = jobs.iter().map(|o| o.migrations).sum();

        Ok(SimReport {
            horizon,
            machines,
            jobs,
            total_energy,
            lost_value,
            preemptions,
            migrations,
        })
    }
}

/// One arrival event of a streaming run.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalRecord {
    /// The arriving job.
    pub job: JobId,
    /// Arrival (release) time.
    pub time: f64,
    /// Whether the algorithm accepted the job.
    pub accepted: bool,
    /// The dual value the algorithm reported for the job.
    pub dual: f64,
    /// Wall-clock time the algorithm spent handling this arrival, in
    /// seconds.  When the arrival was ingested as part of a coalesced
    /// burst, this is the burst's handling time divided by its size (the
    /// amortised per-arrival cost — the quantity a throughput-oriented
    /// latency percentile should see).
    pub latency_secs: f64,
    /// Number of committed frontier segments right after the arrival (after
    /// the whole burst, for burst-ingested arrivals).
    pub frontier_segments: usize,
    /// Size of the ingestion batch this arrival was part of (1 in
    /// per-event mode).
    pub burst: usize,
}

/// The result of one streaming run: the per-event trace, the finished
/// schedule, and the execution report of replaying it.
#[derive(Debug, Clone)]
pub struct StreamReport {
    /// Name of the algorithm that was driven.
    pub algorithm: String,
    /// One record per arrival, in arrival order.
    pub events: Vec<ArrivalRecord>,
    /// Number of ingestion calls made (`on_arrivals` batches; equals
    /// `events.len()` in per-event mode).
    pub batches: usize,
    /// The finished schedule.
    pub schedule: Schedule,
    /// The execution report of replaying `schedule`.
    pub report: SimReport,
}

impl StreamReport {
    /// Number of accepted jobs.
    pub fn accepted_jobs(&self) -> usize {
        self.events.iter().filter(|e| e.accepted).count()
    }

    /// Number of rejected jobs.
    pub fn rejected_jobs(&self) -> usize {
        self.events.len() - self.accepted_jobs()
    }

    /// Fraction of arrivals accepted (1 for an empty stream).
    pub fn acceptance_rate(&self) -> f64 {
        if self.events.is_empty() {
            return 1.0;
        }
        self.accepted_jobs() as f64 / self.events.len() as f64
    }

    /// Mean arrival-handling latency in seconds (0 for an empty stream).
    pub fn mean_latency_secs(&self) -> f64 {
        if self.events.is_empty() {
            return 0.0;
        }
        self.events.iter().map(|e| e.latency_secs).sum::<f64>() / self.events.len() as f64
    }

    /// Maximum arrival-handling latency in seconds.
    pub fn max_latency_secs(&self) -> f64 {
        self.events
            .iter()
            .map(|e| e.latency_secs)
            .fold(0.0, f64::max)
    }

    /// The `p`-th percentile (`0 ≤ p ≤ 100`, nearest-rank) of the per-arrival
    /// handling latency, in seconds; 0 for an empty stream.  The streaming
    /// latency experiment (E12) reports p50/p95/p99 through this.
    pub fn latency_percentile_secs(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self.events.iter().map(|e| e.latency_secs).collect();
        lat.sort_by(f64::total_cmp);
        nearest_rank(&lat, p)
    }

    /// Total wall-clock time spent handling arrivals (the sum of per-event
    /// latencies), in seconds.
    pub fn total_arrival_secs(&self) -> f64 {
        self.events.iter().map(|e| e.latency_secs).sum()
    }

    /// Total cost of the finished schedule (energy + lost value).
    pub fn total_cost(&self) -> f64 {
        self.report.total_cost()
    }
}

/// The nearest-rank `p`-th percentile (`0 ≤ p ≤ 100`) of an
/// ascending-sorted sample list; 0 for an empty list.  The single
/// percentile definition shared by [`StreamReport`], the fleet-level
/// merge (`pss_sim::parallel`) and the `pss-serve` daemon's queue-depth
/// statistics, so per-shard, pooled and service-level numbers can never
/// follow different formulas.
pub fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Partitions an instance's arrival stream into coalesced ingestion bursts:
/// each burst is a maximal run of consecutive arrivals (in arrival order)
/// whose release times lie within `window` of the burst's **first** release.
/// Returned as `(feed_time, job ids)` pairs, where `feed_time` is the
/// burst's *last* (largest) release — feeding the whole burst there keeps
/// every job's `check_arrival` ingress contract satisfied (`now ≥ release`).
///
/// `window = 0` yields one singleton burst per arrival (the per-event
/// stream), including for bit-equal release times, so the degenerate case
/// is exactly the pre-coalescing event loop.
pub fn coalesce_arrivals(instance: &Instance, window: f64) -> Vec<(f64, Vec<JobId>)> {
    let order = instance.arrival_order();
    let mut bursts: Vec<(f64, Vec<JobId>)> = Vec::new();
    let mut i = 0usize;
    while i < order.len() {
        let first = instance.job(order[i]).release;
        let mut j = i + 1;
        if window > 0.0 {
            while j < order.len() && instance.job(order[j]).release <= first + window {
                j += 1;
            }
        }
        let feed_time = instance.job(order[j - 1]).release;
        bursts.push((feed_time, order[i..j].to_vec()));
        i = j;
    }
    bursts
}

/// Drives an event-driven online algorithm over an instance's arrival
/// stream — one job at a time by default, or one coalesced *burst* at a
/// time when a coalescing window is configured.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingSimulation {
    /// Width of the burst-coalescing window: arrivals within this much of a
    /// burst's first release are fed together through
    /// [`OnlineScheduler::on_arrivals`] at the burst's last release (see
    /// [`coalesce_arrivals`]).  `0` (the default) feeds every arrival
    /// individually through [`OnlineScheduler::on_arrival`], exactly like
    /// the pre-batching simulator.
    ///
    /// Coalescing deliberately treats near-simultaneous arrivals as
    /// simultaneous: jobs are fed up to one window *later* than their
    /// release.  Replanning algorithms catch up (they plan the *remaining*
    /// work), but fixed-rate algorithms like AVR permanently under-process
    /// a delayed job by `density × delay` — keep the window far below the
    /// jobs' time scale (it models timestamp jitter, not load shedding).
    pub coalesce_window: f64,
}

impl StreamingSimulation {
    /// A simulator with the given burst-coalescing window.
    pub fn with_coalescing(window: f64) -> Self {
        Self {
            coalesce_window: window.max(0.0),
        }
    }

    /// Feeds the instance's jobs to a fresh run of `algo` in arrival order
    /// (batched per coalesced burst if a window is configured), recording
    /// per-event metrics, then finishes the run, validates the schedule and
    /// replays it through [`Simulation`].
    pub fn run<A: OnlineAlgorithm + ?Sized>(
        &self,
        algo: &A,
        instance: &Instance,
    ) -> Result<StreamReport, ScheduleError> {
        let mut run = algo.start_for(instance)?;
        let mut events = Vec::with_capacity(instance.len());
        let mut batches = 0usize;
        if self.coalesce_window > 0.0 {
            let mut burst_jobs = Vec::new();
            for (feed_time, ids) in coalesce_arrivals(instance, self.coalesce_window) {
                burst_jobs.clear();
                burst_jobs.extend(ids.iter().map(|&id| *instance.job(id)));
                let started = Instant::now();
                let decisions = run.on_arrivals(&burst_jobs, feed_time)?;
                let amortised = started.elapsed().as_secs_f64() / ids.len().max(1) as f64;
                if decisions.len() != ids.len() {
                    return Err(ScheduleError::Internal(format!(
                        "on_arrivals contract violation: {} decisions for a burst of {} jobs",
                        decisions.len(),
                        ids.len()
                    )));
                }
                batches += 1;
                let frontier_segments = run.frontier().segments.len();
                for (id, decision) in ids.iter().zip(decisions) {
                    events.push(ArrivalRecord {
                        job: *id,
                        time: instance.job(*id).release,
                        accepted: decision.accepted,
                        dual: decision.dual,
                        latency_secs: amortised,
                        frontier_segments,
                        burst: ids.len(),
                    });
                }
            }
        } else {
            for id in instance.arrival_order() {
                let job = instance.job(id);
                let started = Instant::now();
                let decision = run.on_arrival(job, job.release)?;
                let latency_secs = started.elapsed().as_secs_f64();
                batches += 1;
                events.push(ArrivalRecord {
                    job: id,
                    time: job.release,
                    accepted: decision.accepted,
                    dual: decision.dual,
                    latency_secs,
                    frontier_segments: run.frontier().segments.len(),
                    burst: 1,
                });
            }
        }
        let schedule = run.finish()?;
        let report = Simulation.run(instance, &schedule)?;
        Ok(StreamReport {
            algorithm: algo.algorithm_name(),
            events,
            batches,
            schedule,
            report,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::Segment;

    fn instance() -> Instance {
        Instance::from_tuples(2, 2.0, vec![(0.0, 4.0, 2.0, 5.0), (1.0, 3.0, 1.0, 2.0)]).unwrap()
    }

    #[test]
    fn simulation_matches_schedule_cost() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 4.0, 0.5, JobId(0)));
        s.push(Segment::work(1, 1.0, 3.0, 0.5, JobId(1)));
        let report = Simulation.run(&inst, &s).unwrap();
        let cost = s.cost(&inst);
        assert!((report.total_cost() - cost.total()).abs() < 1e-9);
        assert_eq!(report.lost_value, 0.0);
        assert!(report.jobs.iter().all(|j| j.finished));
    }

    #[test]
    fn completion_times_and_slack_are_interpolated() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        // Job 0 finishes exactly at t = 4 (work 2 at speed 0.5).
        s.push(Segment::work(0, 0.0, 4.0, 0.5, JobId(0)));
        // Job 1 runs at speed 1 from t=1, needs 1 unit of work -> done at 2.
        s.push(Segment::work(1, 1.0, 3.0, 1.0, JobId(1)));
        let report = Simulation.run(&inst, &s).unwrap();
        // Overshoot is permitted by the validator but completion is at the
        // point the workload is reached.
        assert!((report.jobs[0].completion_time.unwrap() - 4.0).abs() < 1e-9);
        assert!((report.jobs[1].completion_time.unwrap() - 2.0).abs() < 1e-9);
        assert!((report.jobs[1].slack.unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn preemptions_and_migrations_are_counted() {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 10.0, 3.0, 1.0)]).unwrap();
        let mut s = Schedule::empty(2);
        // Run, pause, resume on another machine.
        s.push(Segment::work(0, 0.0, 1.0, 1.0, JobId(0)));
        s.push(Segment::work(1, 2.0, 4.0, 1.0, JobId(0)));
        let report = Simulation.run(&inst, &s).unwrap();
        assert_eq!(report.preemptions, 1);
        assert_eq!(report.migrations, 1);
    }

    #[test]
    fn unfinished_jobs_contribute_lost_value() {
        let inst = instance();
        let s = Schedule::empty(2);
        let report = Simulation.run(&inst, &s).unwrap();
        assert_eq!(report.total_energy, 0.0);
        assert!((report.lost_value - 7.0).abs() < 1e-12);
        assert!(report.jobs.iter().all(|j| !j.finished));
    }

    #[test]
    fn machine_stats_track_utilization_and_peak_speed() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.0, JobId(0)));
        s.push(Segment::work(1, 1.0, 3.0, 0.5, JobId(1)));
        let report = Simulation.run(&inst, &s).unwrap();
        assert!((report.machines[0].busy_time - 2.0).abs() < 1e-12);
        assert!((report.machines[0].peak_speed - 1.0).abs() < 1e-12);
        assert!((report.machines[0].utilization - 0.5).abs() < 1e-12);
        assert!((report.machines[1].busy_time - 2.0).abs() < 1e-12);
        assert!(report.mean_utilization() > 0.0);
    }

    #[test]
    fn infeasible_schedules_are_rejected() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 5.0, 1.0, JobId(0))); // outside window
        assert!(Simulation.run(&inst, &s).is_err());
    }

    #[test]
    fn streaming_simulation_traces_every_arrival_and_matches_batch_cost() {
        use pss_baselines::AvrScheduler;
        use pss_types::Scheduler;

        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 2.0, 5.0),
                (1.0, 3.0, 1.0, 2.0),
                (2.0, 5.0, 1.5, 3.0),
            ],
        )
        .unwrap();
        let stream = StreamingSimulation::default()
            .run(&AvrScheduler, &inst)
            .unwrap();
        assert_eq!(stream.algorithm, "AVR");
        assert_eq!(stream.events.len(), inst.len());
        assert_eq!(stream.accepted_jobs(), inst.len());
        assert_eq!(stream.rejected_jobs(), 0);
        assert!((stream.acceptance_rate() - 1.0).abs() < 1e-12);
        assert!(stream.mean_latency_secs() >= 0.0);
        assert!(stream.max_latency_secs() >= stream.mean_latency_secs());
        // Event times follow the arrival order and the frontier only grows.
        for pair in stream.events.windows(2) {
            assert!(pair[0].time <= pair[1].time);
            assert!(pair[0].frontier_segments <= pair[1].frontier_segments);
        }
        // The streamed schedule costs the same as the batch adapter's.
        let batch_cost = AvrScheduler.schedule(&inst).unwrap().cost(&inst).total();
        assert!((stream.total_cost() - batch_cost).abs() < 1e-9 * batch_cost.max(1.0));
    }

    #[test]
    fn latency_percentiles_follow_nearest_rank() {
        use pss_baselines::AvrScheduler;

        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 2.0, 5.0),
                (1.0, 3.0, 1.0, 2.0),
                (2.0, 5.0, 1.5, 3.0),
            ],
        )
        .unwrap();
        let mut stream = StreamingSimulation::default()
            .run(&AvrScheduler, &inst)
            .unwrap();
        // Install deterministic latencies to pin the percentile math.
        for (i, e) in stream.events.iter_mut().enumerate() {
            e.latency_secs = (i + 1) as f64; // 1, 2, 3
        }
        assert_eq!(stream.latency_percentile_secs(50.0), 2.0);
        assert_eq!(stream.latency_percentile_secs(95.0), 3.0);
        assert_eq!(stream.latency_percentile_secs(99.0), 3.0);
        assert_eq!(stream.latency_percentile_secs(0.0), 1.0);
        assert_eq!(stream.total_arrival_secs(), 6.0);
    }

    #[test]
    fn empty_and_single_sample_streams_have_safe_statistics() {
        use pss_baselines::AvrScheduler;

        // Empty stream: every statistic must be defined (no NaN, no
        // division by zero).
        let empty = Instance::from_tuples(1, 2.0, vec![]).unwrap();
        let stream = StreamingSimulation::default()
            .run(&AvrScheduler, &empty)
            .unwrap();
        assert_eq!(stream.events.len(), 0);
        assert_eq!(stream.batches, 0);
        assert_eq!(stream.acceptance_rate(), 1.0);
        assert_eq!(stream.mean_latency_secs(), 0.0);
        assert_eq!(stream.max_latency_secs(), 0.0);
        assert_eq!(stream.latency_percentile_secs(50.0), 0.0);
        assert_eq!(stream.total_arrival_secs(), 0.0);
        assert!(stream.total_cost().is_finite());

        // Single-sample stream: every percentile is that sample.
        let single = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 1.0)]).unwrap();
        let mut stream = StreamingSimulation::default()
            .run(&AvrScheduler, &single)
            .unwrap();
        stream.events[0].latency_secs = 3.5;
        for p in [0.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(stream.latency_percentile_secs(p), 3.5);
        }
        assert_eq!(stream.mean_latency_secs(), 3.5);
        assert_eq!(stream.batches, 1);
        assert_eq!(stream.events[0].burst, 1);
    }

    #[test]
    fn coalescing_window_batches_near_simultaneous_arrivals() {
        use pss_baselines::AvrScheduler;

        // Two bursts of two (1e-5 apart) and a lone straggler.
        let inst = Instance::from_tuples(
            1,
            2.0,
            vec![
                (0.0, 4.0, 1.0, 1.0),
                (1e-5, 4.0, 1.0, 1.0),
                (1.0, 5.0, 1.0, 1.0),
                (1.0 + 1e-5, 5.0, 1.0, 1.0),
                (2.0, 6.0, 1.0, 1.0),
            ],
        )
        .unwrap();
        let bursts = coalesce_arrivals(&inst, 1e-4);
        assert_eq!(bursts.len(), 3);
        assert_eq!(bursts[0].1.len(), 2);
        assert_eq!(bursts[1].1.len(), 2);
        assert_eq!(bursts[2].1.len(), 1);
        // Each burst is fed at its last release.
        assert_eq!(bursts[0].0, 1e-5);
        assert_eq!(bursts[2].0, 2.0);
        // Window 0: strict per-event partition, even for equal times.
        assert_eq!(coalesce_arrivals(&inst, 0.0).len(), 5);

        let coalesced = StreamingSimulation::with_coalescing(1e-4)
            .run(&AvrScheduler, &inst)
            .unwrap();
        assert_eq!(coalesced.batches, 3);
        assert_eq!(coalesced.events.len(), 5);
        assert_eq!(coalesced.events[0].burst, 2);
        assert_eq!(coalesced.events[4].burst, 1);
        // Burst members share the amortised latency and the post-burst
        // frontier size.
        assert_eq!(
            coalesced.events[0].latency_secs,
            coalesced.events[1].latency_secs
        );
        assert_eq!(
            coalesced.events[0].frontier_segments,
            coalesced.events[1].frontier_segments
        );
        // For a replanning algorithm (which replans *remaining* work, so a
        // burst-delayed feed catches up) the coalesced schedule matches the
        // per-event one up to the jitter scale.
        use pss_baselines::OaScheduler;
        let coalesced_oa = StreamingSimulation::with_coalescing(1e-4)
            .run(&OaScheduler, &inst)
            .unwrap();
        let per_event_oa = StreamingSimulation::default()
            .run(&OaScheduler, &inst)
            .unwrap();
        assert_eq!(per_event_oa.batches, 5);
        assert_eq!(coalesced_oa.accepted_jobs(), per_event_oa.accepted_jobs());
        assert!(
            (coalesced_oa.total_cost() - per_event_oa.total_cost()).abs()
                < 1e-3 * per_event_oa.total_cost().max(1.0)
        );
    }

    #[test]
    fn streaming_simulation_records_rejections_and_duals() {
        use pss_baselines::CllScheduler;

        // One hopeless job (huge work, tiny value) and one easy job.
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 0.001), (0.0, 2.0, 0.5, 10.0)])
                .unwrap();
        let stream = StreamingSimulation::default()
            .run(&CllScheduler, &inst)
            .unwrap();
        assert_eq!(stream.accepted_jobs(), 1);
        assert_eq!(stream.rejected_jobs(), 1);
        let rejected = stream.events.iter().find(|e| !e.accepted).unwrap();
        assert_eq!(rejected.job, JobId(0));
        assert!((rejected.dual - 0.001).abs() < 1e-12);
        // The execution report agrees: the rejected job's value is lost.
        assert!((stream.report.lost_value - 0.001).abs() < 1e-9);
    }
}
