//! Parallel sharded streaming: many independent arrival streams, one
//! algorithm, `std::thread` workers, and a deterministic fleet-level merge.
//!
//! A production scheduler serving heavy traffic does not funnel every
//! arrival through one run: independent streams (tenants, clusters,
//! partitions of the job-id space) are *sharded* across cores, each shard
//! driving its own [`OnlineScheduler`](pss_types::OnlineScheduler) run.
//! [`ParallelStreamingSimulation`] is that harness: it takes one shard
//! instance per stream (generated from provably disjoint RNG substreams via
//! `pss_workloads::SmallRng::split_stream`), drives every shard through the
//! burst-coalescing [`StreamingSimulation`], and merges the per-shard
//! [`StreamReport`]s into a [`FleetReport`].
//!
//! Shards are distributed over at most `workers` OS threads (clamped to the
//! machine's available parallelism by default); a worker processes its
//! shards sequentially.  Scheduling decisions, schedules and costs are a
//! pure function of each shard's instance, so the merged report is
//! **deterministic** for a fixed seed and shard count regardless of the
//! worker count or thread interleaving — only the wall-clock fields vary
//! between runs.  The merge recomputes every pooled statistic from the
//! pooled per-event samples (percentiles are *not* averages of per-shard
//! percentiles, which would be statistically meaningless).

use std::time::Instant;

use pss_types::{Instance, OnlineAlgorithm, ScheduleError};

use crate::engine::{StreamReport, StreamingSimulation};

/// Drives one run per shard instance across worker threads and merges the
/// shard reports into a fleet-level view.
#[derive(Debug, Clone, Copy, Default)]
pub struct ParallelStreamingSimulation {
    /// Burst-coalescing window applied within every shard (see
    /// [`StreamingSimulation::coalesce_window`]).
    pub coalesce_window: f64,
    /// Maximum number of worker threads; `None` uses
    /// [`std::thread::available_parallelism`].  The effective worker count
    /// is additionally clamped to the shard count.
    pub workers: Option<usize>,
}

impl ParallelStreamingSimulation {
    /// A harness with the given coalescing window and the default worker
    /// clamp (available parallelism).
    pub fn with_coalescing(window: f64) -> Self {
        Self {
            coalesce_window: window.max(0.0),
            workers: None,
        }
    }

    /// The number of worker threads used for `shards` shard instances.
    pub fn effective_workers(&self, shards: usize) -> usize {
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        self.workers
            .unwrap_or(hw)
            .clamp(1, hw.max(1))
            .min(shards.max(1))
    }

    /// Runs one fresh stream of `algo` per shard instance, in parallel, and
    /// merges the per-shard reports (in shard-index order) into a
    /// [`FleetReport`].
    ///
    /// Shard `k`'s report is identical to
    /// `StreamingSimulation::with_coalescing(w).run(algo, &shards[k])` —
    /// the parallelism is across shards only, never within a run.
    pub fn run<A: OnlineAlgorithm + Sync + ?Sized>(
        &self,
        algo: &A,
        shards: &[Instance],
    ) -> Result<FleetReport, ScheduleError> {
        let started = Instant::now();
        let sim = StreamingSimulation::with_coalescing(self.coalesce_window);
        let workers = self.effective_workers(shards.len());
        let mut slots: Vec<Option<Result<StreamReport, ScheduleError>>> =
            (0..shards.len()).map(|_| None).collect();
        if workers <= 1 {
            for (slot, shard) in slots.iter_mut().zip(shards) {
                *slot = Some(sim.run(algo, shard));
            }
        } else {
            // Contiguous chunks keep the partition deterministic (it only
            // affects wall-clock, but determinism everywhere is cheaper to
            // reason about than determinism almost everywhere).
            let chunk = shards.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (slot_chunk, shard_chunk) in slots.chunks_mut(chunk).zip(shards.chunks(chunk)) {
                    scope.spawn(move || {
                        for (slot, shard) in slot_chunk.iter_mut().zip(shard_chunk) {
                            *slot = Some(sim.run(algo, shard));
                        }
                    });
                }
            });
        }
        let mut reports = Vec::with_capacity(shards.len());
        for slot in slots {
            reports.push(slot.expect("every shard slot is filled")?);
        }
        Ok(FleetReport {
            shards: reports,
            workers,
            wall_clock_secs: started.elapsed().as_secs_f64(),
        })
    }
}

/// The merged result of a sharded streaming run.
///
/// All pooled statistics are recomputed from the per-shard event traces in
/// shard-index order; nothing is averaged across shards.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Per-shard stream reports, in shard-index order.
    pub shards: Vec<StreamReport>,
    /// Worker threads actually used.
    pub workers: usize,
    /// Wall-clock duration of the whole parallel run (includes `finish`,
    /// validation and replay of every shard, not only arrival handling).
    pub wall_clock_secs: f64,
}

impl FleetReport {
    /// Total number of arrivals across all shards.
    pub fn total_arrivals(&self) -> usize {
        self.shards.iter().map(|s| s.events.len()).sum()
    }

    /// Total number of ingestion calls (coalesced bursts) across shards.
    pub fn total_batches(&self) -> usize {
        self.shards.iter().map(|s| s.batches).sum()
    }

    /// Accepted arrivals across all shards.
    pub fn accepted_jobs(&self) -> usize {
        self.shards.iter().map(|s| s.accepted_jobs()).sum()
    }

    /// Pooled acceptance rate (1 for an empty fleet, matching
    /// [`StreamReport::acceptance_rate`]).
    pub fn acceptance_rate(&self) -> f64 {
        let total = self.total_arrivals();
        if total == 0 {
            return 1.0;
        }
        self.accepted_jobs() as f64 / total as f64
    }

    /// Sum of per-arrival handling times across every shard (the serial
    /// work; compare against [`wall_clock_secs`](Self::wall_clock_secs) for
    /// the parallel utilisation).
    pub fn total_arrival_secs(&self) -> f64 {
        self.shards.iter().map(|s| s.total_arrival_secs()).sum()
    }

    /// Fleet ingestion throughput: total arrivals per wall-clock second of
    /// the parallel run (0 for an empty fleet).
    pub fn arrivals_per_sec(&self) -> f64 {
        if self.wall_clock_secs <= 0.0 {
            return 0.0;
        }
        self.total_arrivals() as f64 / self.wall_clock_secs
    }

    /// Pooled mean per-arrival latency (0 for an empty fleet).
    pub fn mean_latency_secs(&self) -> f64 {
        let total = self.total_arrivals();
        if total == 0 {
            return 0.0;
        }
        self.total_arrival_secs() / total as f64
    }

    /// The `p`-th percentile (nearest-rank, like
    /// [`StreamReport::latency_percentile_secs`]) of the per-arrival
    /// latency over the **pooled** samples of every shard; 0 for an empty
    /// fleet.
    ///
    /// Percentiles do not compose: the pooled p99 is recomputed from the
    /// pooled multiset, never averaged from per-shard p99s (an average of
    /// percentiles over unequal shards is not a percentile of anything).
    pub fn latency_percentile_secs(&self, p: f64) -> f64 {
        let mut lat: Vec<f64> = self
            .shards
            .iter()
            .flat_map(|s| s.events.iter().map(|e| e.latency_secs))
            .collect();
        lat.sort_by(f64::total_cmp);
        crate::engine::nearest_rank(&lat, p)
    }

    /// Summed schedule cost (energy + lost value) across shards.
    pub fn total_cost(&self) -> f64 {
        self.shards.iter().map(|s| s.total_cost()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_baselines::{AvrScheduler, CllScheduler};
    use pss_workloads::{ArrivalModel, RandomConfig, SmallRng, ValueModel};

    fn shard_instances(shards: usize, n: usize, seed: u64) -> Vec<Instance> {
        let base = SmallRng::seed_from_u64(seed);
        let cfg = RandomConfig {
            n_jobs: n,
            machines: 1,
            alpha: 2.0,
            arrival: ArrivalModel::BurstyPoisson {
                rate: 1.0,
                burst_size: 4,
                jitter: 1e-4,
            },
            value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
            ..RandomConfig::standard(seed)
        };
        (0..shards)
            .map(|k| cfg.generate_with(&mut base.split_stream(k as u64)))
            .collect()
    }

    #[test]
    fn merged_fleet_report_is_deterministic_for_a_fixed_seed() {
        let shards = shard_instances(3, 40, 777);
        let sim = ParallelStreamingSimulation::with_coalescing(1e-3);
        let a = sim.run(&CllScheduler, &shards).unwrap();
        let b = sim.run(&CllScheduler, &shards).unwrap();
        assert_eq!(a.total_arrivals(), 120);
        assert_eq!(a.total_arrivals(), b.total_arrivals());
        assert_eq!(a.accepted_jobs(), b.accepted_jobs());
        assert_eq!(a.total_batches(), b.total_batches());
        assert!((a.total_cost() - b.total_cost()).abs() == 0.0);
        for (x, y) in a.shards.iter().zip(&b.shards) {
            assert_eq!(x.schedule.segments, y.schedule.segments);
            let dx: Vec<(bool, f64)> = x.events.iter().map(|e| (e.accepted, e.dual)).collect();
            let dy: Vec<(bool, f64)> = y.events.iter().map(|e| (e.accepted, e.dual)).collect();
            assert_eq!(dx, dy);
        }
    }

    #[test]
    fn shard_reports_match_the_sequential_simulator() {
        let shards = shard_instances(2, 30, 555);
        let fleet = ParallelStreamingSimulation::with_coalescing(1e-3)
            .run(&AvrScheduler, &shards)
            .unwrap();
        for (shard, inst) in fleet.shards.iter().zip(&shards) {
            let solo = StreamingSimulation::with_coalescing(1e-3)
                .run(&AvrScheduler, inst)
                .unwrap();
            assert_eq!(shard.schedule.segments, solo.schedule.segments);
            assert_eq!(shard.batches, solo.batches);
        }
    }

    #[test]
    fn worker_count_clamps_to_parallelism_and_shards() {
        let sim = ParallelStreamingSimulation {
            coalesce_window: 0.0,
            workers: Some(64),
        };
        let hw = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        assert!(sim.effective_workers(8) <= hw);
        assert_eq!(sim.effective_workers(1), 1);
        assert_eq!(
            ParallelStreamingSimulation::default().effective_workers(0),
            1
        );
    }

    #[test]
    fn pooled_percentiles_are_recomputed_not_averaged() {
        // Two shards with very different latency distributions: the pooled
        // p50 must be the median of the pooled multiset (2.0), not the
        // average of the per-shard medians ((1 + 100)/2 = 50.5).
        let shards = shard_instances(2, 3, 99);
        let mut fleet = ParallelStreamingSimulation::default()
            .run(&AvrScheduler, &shards)
            .unwrap();
        let fake = [[1.0, 1.0, 2.0], [2.0, 100.0, 100.0]];
        for (shard, lats) in fleet.shards.iter_mut().zip(fake) {
            for (e, l) in shard.events.iter_mut().zip(lats) {
                e.latency_secs = l;
            }
        }
        assert_eq!(fleet.latency_percentile_secs(50.0), 2.0);
        let avg_of_medians = (fleet.shards[0].latency_percentile_secs(50.0)
            + fleet.shards[1].latency_percentile_secs(50.0))
            / 2.0;
        assert!((avg_of_medians - 50.5).abs() < 1e-12);
        assert_eq!(fleet.latency_percentile_secs(100.0), 100.0);
        assert_eq!(fleet.latency_percentile_secs(0.0), 1.0);
        // Pooled mean is the pooled sum over the pooled count.
        assert!((fleet.mean_latency_secs() - 206.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn empty_fleet_has_safe_defaults() {
        let fleet = FleetReport {
            shards: Vec::new(),
            workers: 1,
            wall_clock_secs: 0.0,
        };
        assert_eq!(fleet.total_arrivals(), 0);
        assert_eq!(fleet.acceptance_rate(), 1.0);
        assert_eq!(fleet.latency_percentile_secs(99.0), 0.0);
        assert_eq!(fleet.mean_latency_secs(), 0.0);
        assert_eq!(fleet.arrivals_per_sec(), 0.0);
        assert_eq!(fleet.total_cost(), 0.0);
    }
}
