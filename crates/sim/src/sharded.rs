//! Sharding *one* logical stream: routing policies, the in-process
//! sharded stream driver, and the sharding-cost oracle.
//!
//! The parallel harness ([`crate::parallel`]) scales across *independent*
//! streams; production traffic is one logical stream.  This module
//! partitions a single arrival sequence across `S` independent scheduler
//! runs and reassembles one logical answer:
//!
//! * [`RoutePolicy`] — the pluggable routing decision, a *pure function*
//!   of the submission sequence number and the published per-shard prices
//!   (`route(seq, prices)`): deterministic hash-by-id, round-robin, or
//!   **cheapest-price** (argmin of the rolling dual-price EWMAs, ties
//!   broken by shard index — the paper's own congestion signal turned into
//!   a router, exactly the duals PD publishes).
//! * [`ShardedStream`] — a stateful driver holding one
//!   [`OnlineScheduler`] run per shard: bursts are routed job by job,
//!   relabelled to each shard's dense local ids, fed through
//!   `on_arrivals`, and priced with the same per-batch EWMA rule as the
//!   serving daemon.  [`ShardedStream::merged_frontier`] zips the
//!   per-shard committed frontiers into one logical schedule
//!   ([`pss_types::merge_frontiers`]) at any point mid-stream.
//! * [`ShardedStreaming`] — the one-call harness (the sharded sibling of
//!   [`StreamingSimulation`]): drives
//!   a whole instance through a sharded stream and reports the merged
//!   schedule, per-event decisions, latencies and price traces.  With
//!   `shards = 1` it is bit-identical to the unsharded simulator — the
//!   pin that makes drift measurements meaningful.
//! * [`sharding_drift`] — the sharding-cost oracle: the same workload run
//!   unsharded and sharded, with the decision-quality drift (value
//!   accepted, energy, total cost) reported side by side.
//!
//! Everything here is single-threaded and deterministic: same instance,
//! same configuration ⇒ bit-identical reports ([`sharded_fields_equal`]).
//! The *throughput* story (real queues, worker threads, admission gates)
//! lives in `pss-serve`'s `StreamRouter`, which reuses [`RoutePolicy`]
//! unchanged.

use std::time::Instant;

use pss_types::{
    fold_price, merge_frontiers, Decision, Instance, Job, JobId, OnlineAlgorithm, OnlineScheduler,
    Schedule, ScheduleError, ShardPiece,
};

use crate::engine::{coalesce_arrivals, nearest_rank, StreamingSimulation};

/// How the router picks a shard for each submission.
///
/// Routing is a pure function `(seq, prices) -> shard`: the submission's
/// sequence number in the logical stream and the shards' published rolling
/// dual prices fully determine the choice, so a replay with the same
/// sequence and the same price trajectory routes identically — the
/// determinism pin of the sharded suites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutePolicy {
    /// Deterministic hash of the submission sequence number (SplitMix64
    /// finalizer), ignoring prices: a job's shard never changes across
    /// runs for a fixed shard count.
    HashById,
    /// `seq mod S`: perfectly balanced arrival counts, ignoring prices.
    RoundRobin,
    /// Route to the shard with the lowest published rolling dual price —
    /// cross-shard admission driven by the paper's own congestion signal.
    /// Exact price ties rotate by sequence number (`seq mod #tied`), so a
    /// cold start with every price at 0.0 degrades to round-robin instead
    /// of herding the whole stream onto shard 0.
    CheapestPrice,
}

impl RoutePolicy {
    /// All policies, in a fixed sweep order.
    pub fn all() -> [RoutePolicy; 3] {
        [
            RoutePolicy::HashById,
            RoutePolicy::RoundRobin,
            RoutePolicy::CheapestPrice,
        ]
    }

    /// Display name used in tables.
    pub fn name(&self) -> &'static str {
        match self {
            RoutePolicy::HashById => "hash",
            RoutePolicy::RoundRobin => "round-robin",
            RoutePolicy::CheapestPrice => "cheapest-price",
        }
    }

    /// Routes submission number `seq` given the shards' published prices.
    /// Total: an empty price slice routes to shard 0.
    pub fn route(&self, seq: u64, prices: &[f64]) -> usize {
        let shards = prices.len().max(1);
        match self {
            RoutePolicy::HashById => (splitmix64(seq) % shards as u64) as usize,
            RoutePolicy::RoundRobin => (seq % shards as u64) as usize,
            RoutePolicy::CheapestPrice => {
                if prices.is_empty() {
                    return 0;
                }
                let cheapest = prices
                    .iter()
                    .copied()
                    .min_by(f64::total_cmp)
                    .expect("non-empty price slice");
                // Rotate across exact ties by sequence number: still a
                // pure function of (seq, prices), so replay with the same
                // price trajectory routes identically, but an all-tied
                // cold start spreads like round-robin instead of pinning
                // every submission on the lowest index.
                let tied: Vec<usize> = prices
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.total_cmp(&cheapest).is_eq())
                    .map(|(i, _)| i)
                    .collect();
                tied[(seq % tied.len() as u64) as usize]
            }
        }
    }
}

/// SplitMix64 finalizer: the avalanche mix used to spread sequence numbers
/// across shards (same mixer the workspace RNG uses for seeding).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One logical arrival's outcome in a sharded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedEvent {
    /// The logical stream's job id.
    pub job: JobId,
    /// The shard the router picked.
    pub shard: usize,
    /// The time the job was fed to its shard's run.
    pub feed_time: f64,
    /// Whether the shard's scheduler accepted the job.
    pub accepted: bool,
    /// The decision's dual value (λ_j accepted, lost value rejected).
    pub dual: f64,
    /// Wall-clock handling latency, amortised over the job's sub-burst.
    pub latency_secs: f64,
    /// Size of the sub-burst the job rode in on its shard.
    pub burst: usize,
}

/// A live sharded stream: one [`OnlineScheduler`] run per shard plus the
/// routing and pricing state.  Created by [`ShardedStream::start`]; driven
/// by [`on_burst`](ShardedStream::on_burst); observed mid-stream through
/// [`merged_frontier`](ShardedStream::merged_frontier); consumed by
/// [`finish`](ShardedStream::finish).
#[derive(Debug)]
pub struct ShardedStream<R: OnlineScheduler> {
    policy: RoutePolicy,
    machines_per_shard: usize,
    smoothing: f64,
    runs: Vec<R>,
    prices: Vec<f64>,
    price_traces: Vec<Vec<f64>>,
    batches: Vec<usize>,
    job_maps: Vec<Vec<JobId>>,
    assignments: Vec<usize>,
    events: Vec<ShardedEvent>,
    next_seq: u64,
}

impl<R: OnlineScheduler> ShardedStream<R> {
    /// Starts one fresh run per shard (each over `machines_per_shard`
    /// machines) with all published prices at zero.
    pub fn start<A: OnlineAlgorithm<Run = R> + ?Sized>(
        algo: &A,
        shards: usize,
        machines_per_shard: usize,
        alpha: f64,
        policy: RoutePolicy,
        smoothing: f64,
    ) -> Result<Self, ScheduleError> {
        if shards == 0 {
            return Err(ScheduleError::Internal(
                "a sharded stream needs at least one shard".into(),
            ));
        }
        if !(smoothing > 0.0 && smoothing <= 1.0) {
            return Err(ScheduleError::Internal(format!(
                "price_smoothing must lie in (0, 1], got {smoothing}"
            )));
        }
        let runs = (0..shards)
            .map(|_| algo.start(machines_per_shard, alpha))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            policy,
            machines_per_shard,
            smoothing,
            runs,
            prices: vec![0.0; shards],
            price_traces: vec![Vec::new(); shards],
            batches: vec![0; shards],
            job_maps: vec![Vec::new(); shards],
            assignments: Vec::new(),
            events: Vec::new(),
            next_seq: 0,
        })
    }

    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.runs.len()
    }

    /// The shards' current rolling dual prices (what the router reads).
    pub fn prices(&self) -> &[f64] {
        &self.prices
    }

    /// The shard each logical arrival was routed to, in sequence order.
    pub fn assignments(&self) -> &[usize] {
        &self.assignments
    }

    /// Routes and feeds one burst of simultaneous arrivals at time `now`,
    /// returning one decision per job in slice order.
    ///
    /// Each job is routed individually (`route(seq, prices)` with `seq`
    /// advancing per job), the burst is partitioned into per-shard
    /// sub-bursts preserving arrival order, each sub-burst is relabelled
    /// to the shard's dense local ids and fed through `on_arrivals`, and
    /// each fed shard's price folds the sub-burst's duals with the same
    /// EWMA-per-decision, priced-only-if-any-accepted rule as the serving
    /// daemon's `feed_batch`.
    pub fn on_burst(&mut self, jobs: &[Job], now: f64) -> Result<Vec<Decision>, ScheduleError> {
        let shards = self.runs.len();
        // Route first: every job's shard is fixed by (seq, prices) before
        // any feeding updates the prices — within a burst the router sees
        // one consistent price snapshot, mirroring a paused daemon wave.
        let mut routed: Vec<usize> = Vec::with_capacity(jobs.len());
        for _ in jobs {
            let shard = self.policy.route(self.next_seq, &self.prices);
            self.next_seq += 1;
            routed.push(shard);
        }
        let mut subs: Vec<Vec<Job>> = vec![Vec::new(); shards];
        for (job, &shard) in jobs.iter().zip(&routed) {
            let mut local = *job;
            local.id = JobId(self.job_maps[shard].len());
            self.job_maps[shard].push(job.id);
            subs[shard].push(local);
        }
        let mut per_shard: Vec<std::vec::IntoIter<(Decision, f64, usize)>> = Vec::new();
        for (shard, sub) in subs.iter().enumerate() {
            if sub.is_empty() {
                per_shard.push(Vec::new().into_iter());
                continue;
            }
            let started = Instant::now();
            let decisions = self.runs[shard].on_arrivals(sub, now)?;
            let amortised = started.elapsed().as_secs_f64() / sub.len() as f64;
            if decisions.len() != sub.len() {
                return Err(ScheduleError::Internal(format!(
                    "on_arrivals contract violation on shard {shard}: {} decisions for {} jobs",
                    decisions.len(),
                    sub.len()
                )));
            }
            // Every decision prices in through the shared `fold_price`
            // rule: acceptances fold λ_j symmetrically, rejections only
            // ratchet the price *up* toward the lost value v_j — so a
            // congested shard's price rises under a rejection flood
            // instead of freezing (the E17 starvation bug) and a stream
            // of cheap hopeless jobs cannot drag it down and keep the
            // shard the argmin.  A decision-free burst (admission
            // bounced everything upstream) leaves the price
            // bit-unchanged, never NaN — the surviving PR-8 guard.
            // Mirrors the daemon's `feed_batch` exactly.
            for d in &decisions {
                self.prices[shard] = fold_price(self.prices[shard], self.smoothing, d);
            }
            self.price_traces[shard].push(self.prices[shard]);
            self.batches[shard] += 1;
            let burst = sub.len();
            per_shard.push(
                decisions
                    .into_iter()
                    .map(|d| (d, amortised, burst))
                    .collect::<Vec<_>>()
                    .into_iter(),
            );
        }
        let mut out = Vec::with_capacity(jobs.len());
        for (job, &shard) in jobs.iter().zip(&routed) {
            let (decision, latency_secs, burst) = per_shard[shard]
                .next()
                .expect("one decision per routed job");
            self.assignments.push(shard);
            self.events.push(ShardedEvent {
                job: job.id,
                shard,
                feed_time: now,
                accepted: decision.accepted,
                dual: decision.dual,
                latency_secs,
                burst,
            });
            out.push(decision);
        }
        Ok(out)
    }

    /// The merged logical frontier: the per-shard committed frontiers
    /// zipped into one schedule over `shards · machines_per_shard` lanes
    /// (see [`pss_types::merge_frontiers`]).  Inherits prefix stability
    /// from the shards — segments present in one merge reappear unchanged
    /// in every later merge.
    pub fn merged_frontier(&self) -> Result<Schedule, ScheduleError> {
        let pieces: Vec<ShardPiece<'_>> = self
            .runs
            .iter()
            .zip(&self.job_maps)
            .map(|(run, jobs)| ShardPiece {
                schedule: run.frontier(),
                jobs,
            })
            .collect();
        merge_frontiers(self.machines_per_shard, &pieces)
    }

    /// Finishes every shard run and reassembles the logical outcome.
    pub fn finish(self, algorithm: String) -> Result<ShardedReport, ScheduleError> {
        let shard_schedules = self
            .runs
            .into_iter()
            .map(|r| r.finish())
            .collect::<Result<Vec<_>, _>>()?;
        let pieces: Vec<ShardPiece<'_>> = shard_schedules
            .iter()
            .zip(&self.job_maps)
            .map(|(schedule, jobs)| ShardPiece {
                schedule,
                jobs: jobs.as_slice(),
            })
            .collect();
        let merged = merge_frontiers(self.machines_per_shard, &pieces)?;
        Ok(ShardedReport {
            algorithm,
            policy: self.policy,
            machines_per_shard: self.machines_per_shard,
            events: self.events,
            assignments: self.assignments,
            batches: self.batches,
            price_traces: self.price_traces,
            shard_schedules,
            merged,
        })
    }
}

/// What a sharded run of one logical stream produced.
#[derive(Debug, Clone)]
pub struct ShardedReport {
    /// The algorithm's display name.
    pub algorithm: String,
    /// The routing policy that produced the assignment.
    pub policy: RoutePolicy,
    /// Machines per shard run (the merged schedule spans
    /// `shards · machines_per_shard` lanes).
    pub machines_per_shard: usize,
    /// One record per logical arrival, in sequence order.
    pub events: Vec<ShardedEvent>,
    /// The shard each arrival was routed to, in sequence order.
    pub assignments: Vec<usize>,
    /// Ingestion batches per shard.
    pub batches: Vec<usize>,
    /// The rolling dual price after each batch, per shard.
    pub price_traces: Vec<Vec<f64>>,
    /// Each shard's finished schedule (shard-local machine lanes and ids).
    pub shard_schedules: Vec<Schedule>,
    /// The merged logical schedule (lane-offset machines, logical ids).
    pub merged: Schedule,
}

impl ShardedReport {
    /// The number of shards.
    pub fn shards(&self) -> usize {
        self.shard_schedules.len()
    }

    /// Logical arrivals accepted by their shard's scheduler.
    pub fn accepted_jobs(&self) -> usize {
        self.events.iter().filter(|e| e.accepted).count()
    }

    /// Total value of the accepted arrivals under `instance`'s values.
    pub fn value_accepted(&self, instance: &Instance) -> f64 {
        self.events
            .iter()
            .filter(|e| e.accepted)
            .map(|e| instance.job(e.job).value)
            .sum()
    }

    /// Energy of the merged logical schedule — by the merge identity,
    /// equal to the sum of the shard energies.
    pub fn merged_energy(&self, alpha: f64) -> f64 {
        self.merged.energy(alpha)
    }

    /// Total cost (energy + lost value) of the merged schedule against the
    /// logical instance.
    pub fn total_cost(&self, instance: &Instance) -> f64 {
        self.merged.cost(instance).total()
    }

    /// Arrival counts per shard — the load-balance view.
    pub fn shard_loads(&self) -> Vec<usize> {
        let mut loads = vec![0usize; self.shards()];
        for e in &self.events {
            loads[e.shard] += 1;
        }
        loads
    }

    /// Max/mean ratio of the per-shard arrival counts (1.0 is perfectly
    /// balanced; `S` means one shard took everything).
    pub fn load_imbalance(&self) -> f64 {
        let loads = self.shard_loads();
        let max = loads.iter().copied().max().unwrap_or(0) as f64;
        let mean = self.events.len() as f64 / self.shards().max(1) as f64;
        if mean > 0.0 {
            max / mean
        } else {
            1.0
        }
    }

    /// Nearest-rank percentile of the per-event handling latencies,
    /// pooled across shards.
    pub fn latency_percentile_secs(&self, p: f64) -> f64 {
        let mut sorted: Vec<f64> = self.events.iter().map(|e| e.latency_secs).collect();
        sorted.sort_by(f64::total_cmp);
        nearest_rank(&sorted, p)
    }
}

/// Bit-compares the deterministic fields of two sharded reports:
/// assignments, per-event decisions (shard, id, accepted, dual and feed
/// time as bits), price traces, shard schedules and the merged schedule.
/// Wall-clock latencies are excluded.
pub fn sharded_fields_equal(a: &ShardedReport, b: &ShardedReport) -> bool {
    let events = a.events.len() == b.events.len()
        && a.events.iter().zip(&b.events).all(|(x, y)| {
            x.job == y.job
                && x.shard == y.shard
                && x.accepted == y.accepted
                && x.dual.to_bits() == y.dual.to_bits()
                && x.feed_time.to_bits() == y.feed_time.to_bits()
                && x.burst == y.burst
        });
    let prices = a.price_traces.len() == b.price_traces.len()
        && a.price_traces.iter().zip(&b.price_traces).all(|(x, y)| {
            x.len() == y.len() && x.iter().zip(y).all(|(p, q)| p.to_bits() == q.to_bits())
        });
    let schedules_eq = |x: &Schedule, y: &Schedule| {
        x.machines == y.machines
            && x.segments.len() == y.segments.len()
            && x.segments.iter().zip(&y.segments).all(|(s, t)| {
                s.machine == t.machine
                    && s.start.to_bits() == t.start.to_bits()
                    && s.end.to_bits() == t.end.to_bits()
                    && s.speed.to_bits() == t.speed.to_bits()
                    && s.job == t.job
            })
    };
    events
        && prices
        && a.assignments == b.assignments
        && a.batches == b.batches
        && a.shard_schedules.len() == b.shard_schedules.len()
        && a.shard_schedules
            .iter()
            .zip(&b.shard_schedules)
            .all(|(x, y)| schedules_eq(x, y))
        && schedules_eq(&a.merged, &b.merged)
}

/// One-call harness: drives a whole instance through a sharded stream
/// with burst coalescing, the sharded sibling of
/// [`StreamingSimulation`].
#[derive(Debug, Clone, Copy)]
pub struct ShardedStreaming {
    /// Number of shards `S` (each gets its own scheduler run over the
    /// instance's machine count).
    pub shards: usize,
    /// The routing policy.
    pub policy: RoutePolicy,
    /// Burst-coalescing window, exactly as in `StreamingSimulation`.
    pub coalesce_window: f64,
    /// EWMA weight β of each shard's rolling dual price.
    pub price_smoothing: f64,
}

impl Default for ShardedStreaming {
    fn default() -> Self {
        Self {
            shards: 1,
            policy: RoutePolicy::CheapestPrice,
            coalesce_window: 0.0,
            price_smoothing: 0.1,
        }
    }
}

impl ShardedStreaming {
    /// Feeds the instance's coalesced arrival bursts through a sharded
    /// stream (each shard run over `instance.machines` machines) and
    /// returns the logical report.
    pub fn run<A: OnlineAlgorithm + ?Sized>(
        &self,
        algo: &A,
        instance: &Instance,
    ) -> Result<ShardedReport, ScheduleError> {
        let mut stream = ShardedStream::start(
            algo,
            self.shards,
            instance.machines,
            instance.alpha,
            self.policy,
            self.price_smoothing,
        )?;
        let mut burst_jobs = Vec::new();
        for (feed_time, ids) in coalesce_arrivals(instance, self.coalesce_window.max(0.0)) {
            burst_jobs.clear();
            burst_jobs.extend(ids.iter().map(|&id| *instance.job(id)));
            stream.on_burst(&burst_jobs, feed_time)?;
        }
        stream.finish(algo.algorithm_name())
    }
}

/// The sharding-cost oracle's verdict: the same workload unsharded vs
/// sharded, decision quality side by side.
#[derive(Debug, Clone, Copy)]
pub struct ShardingDrift {
    /// Total value the unsharded (S = 1) run accepted.
    pub unsharded_value: f64,
    /// Total value the sharded run accepted.
    pub sharded_value: f64,
    /// Energy of the unsharded schedule.
    pub unsharded_energy: f64,
    /// Energy of the merged sharded schedule.
    pub sharded_energy: f64,
    /// Total cost (energy + lost value) of the unsharded run.
    pub unsharded_cost: f64,
    /// Total cost of the merged sharded run.
    pub sharded_cost: f64,
}

/// Runs the sharding-cost oracle: the same instance through the plain
/// unsharded simulator and through `sharded`, reporting the drift.  The
/// caller turns the costs into competitive ratios against its lower
/// bound of choice.
pub fn sharding_drift<A: OnlineAlgorithm + ?Sized>(
    algo: &A,
    instance: &Instance,
    sharded: &ShardedStreaming,
) -> Result<(ShardedReport, ShardingDrift), ScheduleError> {
    let unsharded =
        StreamingSimulation::with_coalescing(sharded.coalesce_window).run(algo, instance)?;
    let unsharded_value: f64 = unsharded
        .events
        .iter()
        .filter(|e| e.accepted)
        .map(|e| instance.job(e.job).value)
        .sum();
    let report = sharded.run(algo, instance)?;
    let drift = ShardingDrift {
        unsharded_value,
        sharded_value: report.value_accepted(instance),
        unsharded_energy: unsharded.schedule.energy(instance.alpha),
        sharded_energy: report.merged_energy(instance.alpha),
        unsharded_cost: unsharded.schedule.cost(instance).total(),
        sharded_cost: report.total_cost(instance),
    };
    Ok((report, drift))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_a_pure_total_function() {
        let prices = [0.5, 0.2, 0.2, 0.9];
        for policy in RoutePolicy::all() {
            for seq in 0..64 {
                let a = policy.route(seq, &prices);
                let b = policy.route(seq, &prices);
                assert_eq!(a, b);
                assert!(a < prices.len());
            }
            // Total on the empty fleet.
            assert_eq!(policy.route(7, &[]), 0);
        }
        // Cheapest price: argmin, exact ties rotated by sequence number
        // (indices 1 and 2 are tied at 0.2 here).
        assert_eq!(RoutePolicy::CheapestPrice.route(0, &prices), 1);
        assert_eq!(RoutePolicy::CheapestPrice.route(1, &prices), 2);
        assert_eq!(RoutePolicy::CheapestPrice.route(2, &prices), 1);
        // An all-tied cold start degrades to round-robin.
        let cold = [0.0; 4];
        for seq in 0..8 {
            assert_eq!(
                RoutePolicy::CheapestPrice.route(seq, &cold),
                RoutePolicy::RoundRobin.route(seq, &cold)
            );
        }
        assert_eq!(RoutePolicy::RoundRobin.route(6, &prices), 2);
        // Hash ignores prices entirely.
        let other = [9.0, 0.0, 1.0, 2.0];
        for seq in 0..64 {
            assert_eq!(
                RoutePolicy::HashById.route(seq, &prices),
                RoutePolicy::HashById.route(seq, &other)
            );
        }
    }

    #[test]
    fn hash_routing_spreads_across_shards() {
        let prices = vec![0.0; 8];
        let mut hits = [0usize; 8];
        for seq in 0..4096 {
            hits[RoutePolicy::HashById.route(seq, &prices)] += 1;
        }
        for (shard, &h) in hits.iter().enumerate() {
            assert!(
                h > 4096 / 16,
                "shard {shard} starved by the hash mixer: {h} of 4096"
            );
        }
    }
}
