//! Criterion bench: burst-batched ingestion (`on_arrivals` fed per
//! coalesced burst) vs the per-event `on_arrival` loop, for every online
//! algorithm in the workspace.
//!
//! The workload is a bursty Poisson stream: bursts of `b`
//! near-simultaneous jobs (distinct timestamps within a 1e-4 jitter — the
//! shape "simultaneous" traffic actually has) at a fixed overall job rate.
//! The loop baseline pays one replan / index update per *arrival*; the
//! batch path coalesces each burst into one `on_arrivals` call, so the
//! shared per-burst work collapses `b`-fold.  The replanning executors
//! (OA, qOA, OA(m)) show the collapse directly (one planning solve per
//! burst); CLL is bounded by its per-job admission rule, and PD by its
//! per-job water-fill, so their batch gains are the smaller
//! partition/commit savings — E13 tabulates the same numbers with replan
//! counts.
//!
//! Set `BURST_SMOKE=1` to shrink every size for CI smoke runs — the smoke
//! step covers every algorithm group, so a regression in any batch
//! ingestion path fails CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_bench::experiments::burst::{
    burst_instance, feed_coalesced, feed_per_event, COALESCE_WINDOW,
};
use pss_core::baselines::oa::{MultiOaPlanner, OaPlanner};
use pss_core::baselines::replan::{AdmitAll, OnlineEnv, ReplanState};
use pss_core::prelude::*;

fn smoke() -> bool {
    std::env::var_os("BURST_SMOKE").is_some()
}

fn burst_sizes() -> &'static [usize] {
    if smoke() {
        &[16]
    } else {
        &[4, 16]
    }
}

/// Benches the per-event loop and the coalesced batch feed of fresh runs
/// produced by `make_run`, over bursts of each configured size.
fn bench_ingest<R, F>(c: &mut Criterion, group: &str, n: usize, mut make_run: F)
where
    R: OnlineScheduler,
    F: FnMut(&Instance) -> R,
{
    let n = if smoke() { n.min(192) } else { n };
    let mut group = c.benchmark_group(format!("burst_ingest/{group}"));
    group.sample_size(10);
    for &b in burst_sizes() {
        let inst = burst_instance(1, n, b, 8200 + b as u64);
        group.bench_with_input(
            BenchmarkId::new(format!("loop/b{b}"), n),
            &inst,
            |be, inst| {
                be.iter(|| {
                    let mut run = make_run(inst);
                    std::hint::black_box(feed_per_event(&mut run, inst))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new(format!("batch/b{b}"), n),
            &inst,
            |be, inst| {
                be.iter(|| {
                    let mut run = make_run(inst);
                    std::hint::black_box(feed_coalesced(&mut run, inst, COALESCE_WINDOW))
                })
            },
        );
    }
    group.finish();
}

fn env_for(inst: &Instance) -> OnlineEnv {
    OnlineEnv {
        machines: inst.machines,
        alpha: inst.alpha,
    }
}

fn bench_oa(c: &mut Criterion) {
    bench_ingest(c, "oa", 2048, |inst| {
        ReplanState::new(OaPlanner { speed_factor: 1.0 }, AdmitAll, env_for(inst))
    });
}

fn bench_qoa(c: &mut Criterion) {
    bench_ingest(c, "qoa", 2048, |inst| {
        ReplanState::new(
            OaPlanner::with_factor(2.0 - 1.0 / inst.alpha),
            AdmitAll,
            env_for(inst),
        )
    });
}

fn bench_cll(c: &mut Criterion) {
    bench_ingest(c, "cll", 2048, |inst| {
        CllScheduler.start_for(inst).expect("CLL run")
    });
}

fn bench_multi_oa(c: &mut Criterion) {
    bench_ingest(c, "multi_oa", 512, |inst| {
        ReplanState::new(
            MultiOaPlanner {
                options: Default::default(),
            },
            AdmitAll,
            env_for(inst),
        )
    });
}

fn bench_pd(c: &mut Criterion) {
    bench_ingest(c, "pd", 600, |inst| {
        PdScheduler::coarse().start_for(inst).expect("PD run")
    });
}

fn bench_avr(c: &mut Criterion) {
    bench_ingest(c, "avr", 2048, |inst| {
        AvrScheduler.start_for(inst).expect("AVR run")
    });
}

fn bench_bkp(c: &mut Criterion) {
    bench_ingest(c, "bkp", 600, |inst| {
        BkpScheduler::default().start_for(inst).expect("BKP run")
    });
}

criterion_group!(
    benches,
    bench_oa,
    bench_qoa,
    bench_cll,
    bench_multi_oa,
    bench_pd,
    bench_avr,
    bench_bkp
);
criterion_main!(benches);
