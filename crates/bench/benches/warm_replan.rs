//! Criterion bench: warm-started / indexed incremental arrivals vs the
//! rebuild-or-rescan-per-arrival baselines, for every algorithm with a fast
//! arrival path — OA and OA(m) (the replanning executor), PD (the
//! persistent planning context), AVR (the active-set index) and BKP (the
//! resident speed index + lazy EDF heap).
//!
//! The workload is a Poisson stream with a bounded active set, so the
//! per-arrival cost of the warm paths stays flat as the stream grows while
//! the rebuild paths degrade with the history size.  The measured quantity
//! is the *total arrival-processing time* of feeding the whole stream to a
//! fresh run (no `finish`, no validation) — the serving-path metric.
//!
//! The rebuild/rescan baselines are quadratic (or worse) per stream and
//! cannot reasonably run at `n = 10_000`; they are benched at smaller sizes
//! where the comparison is already decisive (the E12 experiment tabulates
//! the same speedups).  Set `WARM_REPLAN_SMOKE=1` to shrink every size for
//! CI smoke runs — the smoke step covers all five algorithm groups, so a
//! regression in any fast arrival path fails CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_bench::experiments::streaming::{stream_instance, stream_instance_on};
use pss_core::baselines::oa::{MultiOaPlanner, OaPlanner};
use pss_core::baselines::replan::{AdmitAll, OnlineEnv, ReplanState};
use pss_core::prelude::*;

fn smoke() -> bool {
    std::env::var_os("WARM_REPLAN_SMOKE").is_some()
}

/// Feeds every arrival to the run and returns the frontier size (to keep the
/// work observable).
fn feed_all<R: OnlineScheduler>(mut run: R, instance: &Instance) -> usize {
    for id in instance.arrival_order() {
        let job = instance.job(id);
        run.on_arrival(job, job.release).expect("arrival");
    }
    run.frontier().segments.len()
}

fn oa_run(alpha: f64, warm: bool) -> ReplanState<OaPlanner, AdmitAll> {
    ReplanState::new(
        OaPlanner { speed_factor: 1.0 },
        AdmitAll,
        OnlineEnv { machines: 1, alpha },
    )
    .with_warm_start(warm)
}

fn bench_oa_arrivals(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() { &[200] } else { &[2000, 10000] };
    let mut group = c.benchmark_group("oa_arrivals");
    group.sample_size(10);
    for &n in sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("warm", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(oa_run(inst.alpha, true), inst)))
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(oa_run(inst.alpha, false), inst)))
        });
    }
    group.finish();
}

fn pd_run(inst: &Instance, warm: bool) -> OnlinePd {
    let scheduler = PdScheduler::coarse();
    let pd = OnlinePd::with_options(
        inst.machines,
        inst.alpha,
        scheduler.effective_delta(inst.alpha),
        scheduler.tol,
    );
    if warm {
        pd
    } else {
        pd.with_rebuild_engine()
    }
}

fn bench_pd_arrivals(c: &mut Criterion) {
    let warm_sizes: &[usize] = if smoke() { &[200] } else { &[2000, 10000] };
    let rebuild_sizes: &[usize] = if smoke() { &[200] } else { &[500, 1000] };
    let mut group = c.benchmark_group("pd_arrivals");
    group.sample_size(10);
    for &n in warm_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("warm", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(pd_run(inst, true), inst)))
        });
    }
    for &n in rebuild_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("rebuild", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(pd_run(inst, false), inst)))
        });
    }
    group.finish();
}

fn bench_avr_arrivals(c: &mut Criterion) {
    let indexed_sizes: &[usize] = if smoke() { &[200] } else { &[2000, 10000] };
    let scan_sizes: &[usize] = if smoke() { &[200] } else { &[1000, 2000] };
    let mut group = c.benchmark_group("avr_arrivals");
    group.sample_size(10);
    for &n in indexed_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("indexed", n), &inst, |b, inst| {
            b.iter(|| {
                let run = AvrScheduler.start_for(inst).expect("AVR run");
                std::hint::black_box(feed_all(run, inst))
            })
        });
    }
    for &n in scan_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("full_scan", n), &inst, |b, inst| {
            b.iter(|| {
                let run = AvrScheduler
                    .start_for(inst)
                    .expect("AVR run")
                    .with_active_index(false);
                std::hint::black_box(feed_all(run, inst))
            })
        });
    }
    group.finish();
}

fn bench_bkp_arrivals(c: &mut Criterion) {
    let indexed_sizes: &[usize] = if smoke() { &[200] } else { &[2000, 10000] };
    let scan_sizes: &[usize] = if smoke() { &[200] } else { &[500, 1000] };
    let algo = BkpScheduler::default();
    let mut group = c.benchmark_group("bkp_arrivals");
    group.sample_size(10);
    for &n in indexed_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("indexed", n), &inst, |b, inst| {
            b.iter(|| {
                let run = algo.start_for(inst).expect("BKP run");
                std::hint::black_box(feed_all(run, inst))
            })
        });
    }
    for &n in scan_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("full_scan", n), &inst, |b, inst| {
            b.iter(|| {
                let run = algo
                    .start_for(inst)
                    .expect("BKP run")
                    .with_indexed_events(false);
                std::hint::black_box(feed_all(run, inst))
            })
        });
    }
    group.finish();
}

fn multi_oa_run(machines: usize, alpha: f64, warm: bool) -> ReplanState<MultiOaPlanner, AdmitAll> {
    ReplanState::new(
        MultiOaPlanner {
            options: Default::default(),
        },
        AdmitAll,
        OnlineEnv { machines, alpha },
    )
    .with_warm_start(warm)
}

fn bench_multi_oa_arrivals(c: &mut Criterion) {
    // The convex replanner is much heavier per arrival than the
    // single-machine planners, so the sizes are smaller; warm and
    // from-scratch run the same sizes — the speedup is per-replan (descent
    // passes), not asymptotic in the history.
    let sizes: &[usize] = if smoke() { &[60] } else { &[300, 600] };
    let mut group = c.benchmark_group("multi_oa_arrivals");
    group.sample_size(10);
    for &machines in &[1usize, 2] {
        for &n in sizes {
            let inst = stream_instance_on(machines, n, 7100 + n as u64);
            let label = |kind: &str| format!("{kind}/m{machines}");
            group.bench_with_input(BenchmarkId::new(label("warm"), n), &inst, |b, inst| {
                b.iter(|| {
                    std::hint::black_box(feed_all(multi_oa_run(machines, inst.alpha, true), inst))
                })
            });
            group.bench_with_input(
                BenchmarkId::new(label("from_scratch"), n),
                &inst,
                |b, inst| {
                    b.iter(|| {
                        std::hint::black_box(feed_all(
                            multi_oa_run(machines, inst.alpha, false),
                            inst,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_oa_arrivals,
    bench_pd_arrivals,
    bench_avr_arrivals,
    bench_bkp_arrivals,
    bench_multi_oa_arrivals
);
criterion_main!(benches);
