//! Criterion bench: warm-started incremental arrivals vs the
//! rebuild-per-arrival baseline, for OA (the replanning executor) and PD
//! (the persistent planning context).
//!
//! The workload is a Poisson stream with a bounded active set, so the
//! per-arrival cost of the warm paths stays flat as the stream grows while
//! the rebuild paths degrade with the history size.  The measured quantity
//! is the *total arrival-processing time* of feeding the whole stream to a
//! fresh run (no `finish`, no validation) — the serving-path metric.
//!
//! The rebuild-per-arrival PD baseline is quadratic per arrival and cannot
//! reasonably run at `n = 10_000`; it is benched at a smaller size where the
//! comparison is already decisive (the E12 experiment tabulates the same
//! speedup).  Set `WARM_REPLAN_SMOKE=1` to shrink every size for CI smoke
//! runs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_bench::experiments::streaming::stream_instance;
use pss_core::baselines::oa::OaPlanner;
use pss_core::baselines::replan::{AdmitAll, OnlineEnv, ReplanState};
use pss_core::prelude::*;

fn smoke() -> bool {
    std::env::var_os("WARM_REPLAN_SMOKE").is_some()
}

/// Feeds every arrival to the run and returns the frontier size (to keep the
/// work observable).
fn feed_all<R: OnlineScheduler>(mut run: R, instance: &Instance) -> usize {
    for id in instance.arrival_order() {
        let job = instance.job(id);
        run.on_arrival(job, job.release).expect("arrival");
    }
    run.frontier().segments.len()
}

fn oa_run(alpha: f64, warm: bool) -> ReplanState<OaPlanner, AdmitAll> {
    ReplanState::new(
        OaPlanner { speed_factor: 1.0 },
        AdmitAll,
        OnlineEnv { machines: 1, alpha },
    )
    .with_warm_start(warm)
}

fn bench_oa_arrivals(c: &mut Criterion) {
    let sizes: &[usize] = if smoke() { &[200] } else { &[2000, 10000] };
    let mut group = c.benchmark_group("oa_arrivals");
    group.sample_size(10);
    for &n in sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("warm", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(oa_run(inst.alpha, true), inst)))
        });
        group.bench_with_input(BenchmarkId::new("from_scratch", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(oa_run(inst.alpha, false), inst)))
        });
    }
    group.finish();
}

fn pd_run(inst: &Instance, warm: bool) -> OnlinePd {
    let scheduler = PdScheduler::coarse();
    let pd = OnlinePd::with_options(
        inst.machines,
        inst.alpha,
        scheduler.effective_delta(inst.alpha),
        scheduler.tol,
    );
    if warm {
        pd
    } else {
        pd.with_rebuild_engine()
    }
}

fn bench_pd_arrivals(c: &mut Criterion) {
    let warm_sizes: &[usize] = if smoke() { &[200] } else { &[2000, 10000] };
    let rebuild_sizes: &[usize] = if smoke() { &[200] } else { &[500, 1000] };
    let mut group = c.benchmark_group("pd_arrivals");
    group.sample_size(10);
    for &n in warm_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("warm", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(pd_run(inst, true), inst)))
        });
    }
    for &n in rebuild_sizes {
        let inst = stream_instance(n, 7100 + n as u64);
        group.bench_with_input(BenchmarkId::new("rebuild", n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(feed_all(pd_run(inst, false), inst)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oa_arrivals, bench_pd_arrivals);
criterion_main!(benches);
