//! Criterion bench: end-to-end comparison of PD against the online
//! baselines on the same profitable instance (runtime counterpart of the
//! E5/E9 quality tables).

use criterion::{criterion_group, criterion_main, Criterion};

use pss_core::prelude::*;
use pss_sim::Simulation;
use pss_workloads::{staircase_instance, RandomConfig, ValueModel};

fn profitable_instance(n: usize) -> Instance {
    RandomConfig {
        n_jobs: n,
        machines: 1,
        alpha: 2.0,
        horizon: n as f64 / 4.0,
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(23)
    }
    .generate()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_profitable_n40");
    group.sample_size(10);
    let inst = profitable_instance(40);
    let algos: Vec<(&str, Box<dyn Scheduler>)> = vec![
        ("pd", Box::new(PdScheduler::coarse())),
        ("cll", Box::new(CllScheduler)),
        ("oa", Box::new(OaScheduler)),
        ("avr", Box::new(AvrScheduler)),
    ];
    for (name, algo) in &algos {
        group.bench_function(*name, |b| {
            b.iter(|| std::hint::black_box(algo.schedule(&inst).unwrap().cost(&inst).total()))
        });
    }
    group.finish();
}

fn bench_staircase_and_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_staircase");
    group.sample_size(10);
    let inst = staircase_instance(40, 2.0, 1e9);
    group.bench_function("pd_staircase_n40", |b| {
        b.iter(|| {
            std::hint::black_box(
                PdScheduler::coarse()
                    .schedule(&inst)
                    .unwrap()
                    .cost(&inst)
                    .total(),
            )
        })
    });
    let run = PdScheduler::coarse().run(&inst).unwrap();
    group.bench_function("simulate_pd_schedule", |b| {
        b.iter(|| std::hint::black_box(Simulation.run(&inst, &run.schedule).unwrap().total_cost()))
    });
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_staircase_and_sim);
criterion_main!(benches);
