//! Criterion bench: the YDS offline optimum and the brute-force optimum
//! (the competitive-ratio denominators of E3–E5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_offline::{brute_force_optimum, yds::yds_schedule};
use pss_workloads::{RandomConfig, ValueModel};

fn bench_yds(c: &mut Criterion) {
    let mut group = c.benchmark_group("yds_offline");
    group.sample_size(25);
    for &n in &[10usize, 40, 100] {
        let inst = RandomConfig {
            n_jobs: n,
            machines: 1,
            alpha: 2.0,
            horizon: n as f64 / 4.0,
            value: ValueModel::Mandatory,
            ..RandomConfig::standard(11)
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(yds_schedule(&inst.jobs, inst.alpha).unwrap().energy))
        });
    }
    group.finish();
}

fn bench_brute_force(c: &mut Criterion) {
    let mut group = c.benchmark_group("brute_force_optimum");
    group.sample_size(10);
    for &n in &[8usize, 12] {
        let inst = RandomConfig {
            n_jobs: n,
            machines: 1,
            alpha: 2.0,
            value: ValueModel::ProportionalToEnergy { min: 0.3, max: 3.0 },
            ..RandomConfig::standard(13)
        }
        .generate();
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(brute_force_optimum(inst).unwrap().cost.total()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_yds, bench_brute_force);
criterion_main!(benches);
