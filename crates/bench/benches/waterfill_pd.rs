//! Criterion bench: the water-filling arrival step and full PD runs
//! (experiments E3/E10 runtime counterpart).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_convex::{waterfill_job, ProgramContext, WaterfillOptions};
use pss_core::prelude::*;
use pss_workloads::{RandomConfig, ValueModel};

fn instance(n: usize, m: usize) -> Instance {
    RandomConfig {
        n_jobs: n,
        machines: m,
        alpha: 2.5,
        horizon: n as f64 / 4.0,
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 5.0 },
        ..RandomConfig::standard(7)
    }
    .generate()
}

fn bench_single_arrival(c: &mut Criterion) {
    let mut group = c.benchmark_group("waterfill_single_arrival");
    group.sample_size(30);
    for &n in &[20usize, 100] {
        let inst = instance(n, 4);
        let ctx = ProgramContext::new(&inst);
        // Pre-fill all but the last job with PD, then measure the last
        // arrival's water-filling step.
        let run = PdScheduler::coarse().run(&inst).unwrap();
        let mut x = run.assignment.clone();
        let last = n - 1;
        x.clear_job(last);
        let opts = WaterfillOptions::default();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(waterfill_job(&ctx, &x, last, &opts).total))
        });
    }
    group.finish();
}

fn bench_full_pd(c: &mut Criterion) {
    let mut group = c.benchmark_group("pd_full_run");
    group.sample_size(15);
    for &(n, m) in &[(20usize, 1usize), (50, 4), (100, 8)] {
        let inst = instance(n, m);
        group.bench_with_input(BenchmarkId::new(format!("m{m}"), n), &inst, |b, inst| {
            b.iter(|| std::hint::black_box(PdScheduler::coarse().run(inst).unwrap().cost().total()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_arrival, bench_full_pd);
criterion_main!(benches);
