//! Criterion bench: the coordinate-descent offline solver and the dual
//! bound evaluation (the multiprocessor lower-bound machinery).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_convex::{dual_bound, solve_min_energy_with, ProgramContext, SolverOptions};
use pss_core::prelude::*;
use pss_workloads::{RandomConfig, ValueModel};

fn instance(n: usize, m: usize) -> Instance {
    RandomConfig {
        n_jobs: n,
        machines: m,
        alpha: 2.5,
        horizon: n as f64 / 4.0,
        value: ValueModel::Mandatory,
        ..RandomConfig::standard(17)
    }
    .generate()
}

fn bench_solver(c: &mut Criterion) {
    let mut group = c.benchmark_group("convex_min_energy");
    group.sample_size(10);
    for &(n, m) in &[(15usize, 2usize), (30, 4), (60, 8)] {
        let inst = instance(n, m);
        let ctx = ProgramContext::new(&inst);
        let opts = SolverOptions::coarse();
        group.bench_with_input(BenchmarkId::new(format!("m{m}"), n), &ctx, |b, ctx| {
            b.iter(|| std::hint::black_box(solve_min_energy_with(ctx, &opts).energy))
        });
    }
    group.finish();
}

fn bench_dual_bound(c: &mut Criterion) {
    let mut group = c.benchmark_group("dual_bound");
    group.sample_size(30);
    for &n in &[50usize, 200] {
        let inst = instance(n, 4);
        let run = PdScheduler::coarse().run(&inst).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &run, |b, run| {
            b.iter(|| std::hint::black_box(dual_bound(&run.context, &run.lambda).value))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solver, bench_dual_bound);
criterion_main!(benches);
