//! Criterion bench: Chen et al.'s per-interval algorithm (substrate of
//! every per-interval energy evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use pss_workloads::SmallRng;

use pss_chen::ChenInterval;
use pss_power::AlphaPower;

fn bench_chen_solve(c: &mut Criterion) {
    let mut group = c.benchmark_group("chen_interval_solve");
    group.sample_size(40);
    for &n_jobs in &[8usize, 64, 512] {
        for &machines in &[4usize, 32] {
            let mut rng = SmallRng::seed_from_u64(1);
            let works: Vec<f64> = (0..n_jobs).map(|_| rng.f64_range(0.0, 5.0)).collect();
            let chen = ChenInterval::new(1.0, machines, AlphaPower::new(2.5));
            group.bench_with_input(
                BenchmarkId::new(format!("m{machines}"), n_jobs),
                &works,
                |b, works| b.iter(|| std::hint::black_box(chen.solve(works).energy)),
            );
        }
    }
    group.finish();
}

fn bench_chen_loads(c: &mut Criterion) {
    let mut group = c.benchmark_group("chen_interval_machine_loads");
    group.sample_size(40);
    let mut rng = SmallRng::seed_from_u64(2);
    let works: Vec<f64> = (0..256).map(|_| rng.f64_range(0.0, 5.0)).collect();
    let chen = ChenInterval::new(1.0, 16, AlphaPower::new(3.0));
    let sol = chen.solve(&works);
    group.bench_function("loads_256_jobs_16_machines", |b| {
        b.iter(|| std::hint::black_box(sol.machine_loads()))
    });
    group.finish();
}

criterion_group!(benches, bench_chen_solve, bench_chen_loads);
criterion_main!(benches);
