//! # pss-bench
//!
//! The experiment harness: one module per experiment of `DESIGN.md`'s
//! experiment index (E1–E11), each regenerating the corresponding
//! table/figure of `EXPERIMENTS.md`, plus shared helpers for lower bounds
//! and sweeps.
//!
//! Two entry points use this library:
//!
//! * the `experiments` binary (`cargo run -p pss-bench --release --bin
//!   experiments -- all`) prints every table and writes Markdown/JSON
//!   results under `results/`,
//! * the Criterion benches (`cargo bench`) measure the runtime of the
//!   substrates and of end-to-end scheduling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod support;

pub use experiments::{all_experiments, ExperimentOutput};
