//! The experiment runner.
//!
//! Usage:
//!
//! ```text
//! cargo run -p pss-bench --release --bin experiments -- all          # every experiment
//! cargo run -p pss-bench --release --bin experiments -- E3 E4       # a subset
//! cargo run -p pss-bench --release --bin experiments -- all --quick # reduced sweeps
//! ```
//!
//! Each experiment prints its tables to stdout and writes Markdown and JSON
//! files under `results/`.

use std::fs;
use std::path::Path;

use pss_bench::experiments::{all_experiments, run_experiment, ExperimentOutput};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let outputs: Vec<ExperimentOutput> =
        if requested.is_empty() || requested.iter().any(|a| a.eq_ignore_ascii_case("all")) {
            all_experiments(quick)
        } else {
            requested
                .iter()
                .filter_map(|id| {
                    let out = run_experiment(id, quick);
                    if out.is_none() {
                        eprintln!("unknown experiment id: {id} (expected E1..E18 or 'all')");
                    }
                    out
                })
                .collect()
        };

    let results_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(results_dir) {
        eprintln!("warning: could not create results/: {e}");
    }

    let mut combined_md = String::from("# Experiment results\n\n");
    for out in &outputs {
        println!("{}", out.to_text());
        combined_md.push_str(&out.to_markdown());
        combined_md.push('\n');

        for (i, table) in out.tables.iter().enumerate() {
            let csv_path =
                results_dir.join(format!("{}_table{}.csv", out.id.to_lowercase(), i + 1));
            if let Err(e) = fs::write(&csv_path, pss_metrics::table_to_csv(table)) {
                eprintln!("warning: could not write {}: {e}", csv_path.display());
            }
        }
        let json_path = results_dir.join(format!("{}.json", out.id.to_lowercase()));
        if let Err(e) = fs::write(&json_path, out.to_json()) {
            eprintln!("warning: could not write {}: {e}", json_path.display());
        }
    }

    let md_path = results_dir.join("experiments.md");
    if let Err(e) = fs::write(&md_path, &combined_md) {
        eprintln!("warning: could not write {}: {e}", md_path.display());
    } else {
        println!("wrote {}", md_path.display());
    }
}
