//! Shared helpers for the experiment modules.

use pss_core::prelude::*;
use pss_core::PdRun;
use pss_offline::brute_force_optimum;
use pss_types::ScheduleError;

/// A lower bound on the optimal cost of an instance together with its
/// provenance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LowerBound {
    /// The bound value.
    pub value: f64,
    /// `true` if the bound is the exact optimum (brute force), `false` if it
    /// is the dual bound `g(λ̃)`.
    pub exact: bool,
}

/// Computes the best available lower bound on the optimal cost: the exact
/// brute-force optimum when the instance is small enough, otherwise the dual
/// bound evaluated at PD's duals.
pub fn best_lower_bound(instance: &Instance, run: &PdRun) -> Result<LowerBound, ScheduleError> {
    if instance.len() <= 14 {
        let opt = brute_force_optimum(instance)?;
        Ok(LowerBound {
            value: opt.cost.total(),
            exact: true,
        })
    } else {
        let dual = pss_convex::dual_bound(&run.context, &run.lambda);
        Ok(LowerBound {
            value: dual.value.max(0.0),
            exact: false,
        })
    }
}

/// Ratio of a cost to a lower bound, with the usual conventions for
/// degenerate denominators.
pub fn safe_ratio(cost: f64, bound: f64) -> f64 {
    if bound <= 1e-12 {
        if cost <= 1e-12 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        (cost / bound).max(1.0)
    }
}

/// Formats a boolean as a check mark for tables.
pub fn check(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "NO"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn safe_ratio_conventions() {
        assert_eq!(safe_ratio(0.0, 0.0), 1.0);
        assert_eq!(safe_ratio(1.0, 0.0), f64::INFINITY);
        assert!((safe_ratio(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert_eq!(safe_ratio(0.5, 1.0), 1.0); // clamped: cost below a lower bound is round-off
    }

    #[test]
    fn lower_bound_prefers_exact_for_small_instances() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 10.0)]).unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        let lb = best_lower_bound(&inst, &run).unwrap();
        assert!(lb.exact);
        assert!((lb.value - 1.0).abs() < 1e-6);
    }
}
