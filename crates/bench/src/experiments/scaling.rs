//! E10 — multiprocessor scaling: cost quality, runtime and machine
//! utilisation of PD as the machine count and instance size grow.

use std::time::Instant;

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_sim::Simulation;
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::{check, safe_ratio};

/// Runs E10.
pub fn run(quick: bool) -> ExperimentOutput {
    let machine_counts: Vec<usize> = if quick {
        vec![1, 2, 4]
    } else {
        vec![1, 2, 4, 8, 16]
    };
    let sizes: Vec<usize> = if quick { vec![30] } else { vec![50, 200] };
    let alpha = 2.5;

    let mut table = Table::new(
        "PD scaling with machines and jobs",
        &[
            "m",
            "n",
            "runtime (ms)",
            "jobs/s",
            "cost(PD)",
            "dual bound",
            "certified ratio",
            "accepted",
            "mean utilisation",
            "preemptions",
            "migrations",
        ],
    );
    let mut all_within = true;
    let bound = AlphaPower::new(alpha).competitive_ratio_pd();

    for &n in &sizes {
        for &m in &machine_counts {
            let cfg = RandomConfig {
                n_jobs: n,
                machines: m,
                alpha,
                horizon: n as f64 / 4.0,
                value: ValueModel::ProportionalToEnergy { min: 0.3, max: 5.0 },
                ..RandomConfig::standard(5000 + m as u64)
            };
            let instance = cfg.generate();
            let scheduler = PdScheduler::coarse();
            let start = Instant::now();
            let run = scheduler.run(&instance).expect("PD run");
            let elapsed = start.elapsed().as_secs_f64();
            let analysis = analyze_run(&run);
            let ratio = safe_ratio(analysis.cost.total(), analysis.dual.value);
            all_within &= ratio <= bound + 1e-6;
            let sim = Simulation
                .run(&instance, &run.schedule)
                .expect("simulation");
            let accepted = run.accepted.iter().filter(|a| **a).count();
            table.push_row(vec![
                m.to_string(),
                n.to_string(),
                fmt_f64(elapsed * 1e3),
                fmt_f64(n as f64 / elapsed),
                fmt_f64(analysis.cost.total()),
                fmt_f64(analysis.dual.value),
                fmt_f64(ratio),
                format!("{accepted}/{n}"),
                fmt_f64(sim.mean_utilization()),
                sim.preemptions.to_string(),
                sim.migrations.to_string(),
            ]);
        }
    }

    ExperimentOutput {
        id: "E10".into(),
        title: "Multiprocessor scaling of PD (quality, throughput, utilisation)".into(),
        tables: vec![table],
        notes: vec![format!(
            "the certified ratio stayed below alpha^alpha = {} in every configuration: {}",
            fmt_f64(bound),
            check(all_within)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e10_quick_scaling_within_bound() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
