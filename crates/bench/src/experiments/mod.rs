//! The experiment registry (E1–E11 of DESIGN.md, plus the streaming
//! latency experiment E12, the burst-ingestion/sharding experiment E13,
//! the checkpoint/failover experiment E14, the multi-tenant ingestion
//! soak E15, the chaos soak E16, the stream-sharding experiment E17 and
//! the O(active)-checkpoint experiment E18).

use pss_metrics::Table;

pub mod burst;
pub mod chaos;
pub mod checkpoint;
pub mod classical;
pub mod competitive;
pub mod delta_ablation;
pub mod dual_bound;
pub mod fig2_chen;
pub mod fig3_profiles;
pub mod lower_bound;
pub mod pd_vs_cll;
pub mod prop2;
pub mod rejection_policy;
pub mod route;
pub mod scaling;
pub mod seglog;
pub mod serve;
pub mod streaming;

/// The output of one experiment: its identifier, a short description, the
/// generated tables and free-form notes (observations recorded in
/// EXPERIMENTS.md).
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Experiment id (e.g. "E3").
    pub id: String,
    /// One-line description.
    pub title: String,
    /// The generated tables.
    pub tables: Vec<Table>,
    /// Observations / pass-fail notes.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Renders the whole experiment as plain text.
    pub fn to_text(&self) -> String {
        let mut out = format!("#### {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_text());
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Renders the whole experiment as a JSON object (hand-rolled; the
    /// workspace has no serialisation dependency).
    pub fn to_json(&self) -> String {
        use pss_metrics::table::json_string;
        let tables: Vec<String> = self.tables.iter().map(|t| t.to_json()).collect();
        let notes: Vec<String> = self.notes.iter().map(|n| json_string(n)).collect();
        format!(
            "{{\"id\":{},\"title\":{},\"tables\":[{}],\"notes\":[{}]}}",
            json_string(&self.id),
            json_string(&self.title),
            tables.join(","),
            notes.join(",")
        )
    }

    /// Renders the whole experiment as Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.to_markdown());
            out.push('\n');
        }
        if !self.notes.is_empty() {
            out.push_str("**Observations**\n\n");
            for n in &self.notes {
                out.push_str(&format!("* {n}\n"));
            }
        }
        out
    }
}

/// Runs every experiment.  `quick` reduces sweep sizes (used by the smoke
/// tests); the recorded EXPERIMENTS.md numbers use `quick = false`.
pub fn all_experiments(quick: bool) -> Vec<ExperimentOutput> {
    vec![
        fig2_chen::run(quick),
        fig3_profiles::run(quick),
        competitive::run(quick),
        lower_bound::run(quick),
        pd_vs_cll::run(quick),
        rejection_policy::run(quick),
        prop2::run(quick),
        dual_bound::run(quick),
        classical::run(quick),
        scaling::run(quick),
        delta_ablation::run(quick),
        streaming::run(quick),
        burst::run(quick),
        checkpoint::run(quick),
        serve::run(quick),
        chaos::run(quick),
        route::run(quick),
        seglog::run(quick),
    ]
}

/// Runs a single experiment by id (`"E1"`, …, `"E18"`), if it exists.
pub fn run_experiment(id: &str, quick: bool) -> Option<ExperimentOutput> {
    match id.to_ascii_uppercase().as_str() {
        "E1" => Some(fig2_chen::run(quick)),
        "E2" => Some(fig3_profiles::run(quick)),
        "E3" => Some(competitive::run(quick)),
        "E4" => Some(lower_bound::run(quick)),
        "E5" => Some(pd_vs_cll::run(quick)),
        "E6" => Some(rejection_policy::run(quick)),
        "E7" => Some(prop2::run(quick)),
        "E8" => Some(dual_bound::run(quick)),
        "E9" => Some(classical::run(quick)),
        "E10" => Some(scaling::run(quick)),
        "E11" => Some(delta_ablation::run(quick)),
        "E12" => Some(streaming::run(quick)),
        "E13" => Some(burst::run(quick)),
        "E14" => Some(checkpoint::run(quick)),
        "E15" => Some(serve::run(quick)),
        "E16" => Some(chaos::run(quick)),
        "E17" => Some(route::run(quick)),
        "E18" => Some(seglog::run(quick)),
        _ => None,
    }
}
