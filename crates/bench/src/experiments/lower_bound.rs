//! E4 — Theorem 3 lower bound (tightness): on the Bansal–Kimbrel–Pruhs
//! staircase with huge values, PD's ratio to the optimum grows towards
//! `α^α` as `n` increases.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_workloads::staircase_instance;

use super::ExperimentOutput;
use crate::support::check;

/// Runs E4.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![5, 10, 20]
    } else {
        vec![5, 10, 20, 40, 80]
    };
    let alphas = [2.0, 3.0];

    let mut table = Table::new(
        "PD on the staircase lower-bound instance (values forbid rejection)",
        &[
            "alpha",
            "n",
            "cost(PD)",
            "cost(OPT=YDS)",
            "ratio",
            "alpha^alpha",
        ],
    );
    let mut monotone = true;
    let mut within = true;

    for &alpha in &alphas {
        let mut prev_ratio = 0.0;
        for &n in &sizes {
            let instance = staircase_instance(n, alpha, 1e9);
            let pd = PdScheduler::default()
                .schedule(&instance)
                .expect("PD schedules the staircase");
            let opt = YdsScheduler
                .schedule(&instance)
                .expect("YDS schedules the staircase");
            let pd_cost = pd.cost(&instance).total();
            let opt_cost = opt.cost(&instance).total();
            let ratio = pd_cost / opt_cost;
            let bound = AlphaPower::new(alpha).competitive_ratio_pd();
            monotone &= ratio >= prev_ratio - 1e-6;
            within &= ratio <= bound + 1e-6;
            prev_ratio = ratio;
            table.push_row(vec![
                fmt_f64(alpha),
                n.to_string(),
                fmt_f64(pd_cost),
                fmt_f64(opt_cost),
                fmt_f64(ratio),
                fmt_f64(bound),
            ]);
        }
    }

    ExperimentOutput {
        id: "E4".into(),
        title: "Theorem 3 tightness: staircase ratio grows towards alpha^alpha".into(),
        tables: vec![table],
        notes: vec![
            format!("the ratio is nondecreasing in n (approaches the bound from below): {}", check(monotone)),
            format!("the ratio never exceeds alpha^alpha: {}", check(within)),
            "on this instance every value is huge, so PD accepts every job and behaves like OA; the paper's lower-bound argument applies verbatim".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e4_ratio_grows_with_n_and_stays_below_bound() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
        assert!(out.notes[1].contains("yes"), "{:?}", out.notes);
    }
}
