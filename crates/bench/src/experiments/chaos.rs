//! E16 — the chaos soak: the adversarial scenario fleet crossed with
//! deterministic fault plans.
//!
//! Every scenario in `pss_workloads::scenarios` (flash crowd, diurnal,
//! heavy-tailed, overload, staircase adversary, grid-resonant) is driven
//! through the serving layer three times under the same seeded
//! [`FaultPlan`]: once fault-free (the reference), once with every fault
//! class injected (worker kills, checkpoint-blob corruption, transient
//! feed faults, queue-full storms with retry give-ups, dead-on-arrival
//! floods), and once more to pin replay.  The regression gate is the
//! tentpole invariant: **chaos is invisible on every deterministic field**
//! ([`deterministic_fields_equal`]), and the same plan seed reproduces the
//! same report *and* the same injection counters.
//!
//! Alongside the soak, each scenario instance is measured on its own:
//! competitive ratio of PD against the best available lower bound, tail
//! latency percentiles through `StreamingSimulation`, and the
//! toggle-matrix differential oracle (warm-started vs from-scratch
//! replans must agree on every decision and on cost).

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_serve::{deterministic_fields_equal, ChaosDriver, ChaosRun, FaultPlan};
use pss_sim::StreamingSimulation;
use pss_workloads::ScenarioConfig;

use super::ExperimentOutput;
use crate::support::{best_lower_bound, check, safe_ratio};

/// Everything one scenario cell produces.
struct Cell {
    name: &'static str,
    jobs: usize,
    noisy: ChaosRun,
    /// Fault-injected == fault-free on every deterministic field.
    invisible: bool,
    /// Same plan, second injected run == first, report and counters.
    replays: bool,
    /// Dense feed-order ids, one price per batch, bounded queue depths, a
    /// schedule that validates offline, and tenant counters that partition
    /// every submission attempt.
    consistent: bool,
    /// Warm-started and from-scratch replans agree on the scenario.
    toggles_agree: bool,
    ratio: f64,
    lb_exact: bool,
    p50_us: f64,
    p99_us: f64,
}

/// The toggle-matrix differential oracle on one instance: CLL driven
/// warm-started vs from-scratch must emit identical decisions (accepted
/// flags and dual bits) and agree on total cost.
fn warm_vs_cold_agree(instance: &Instance) -> bool {
    let drive = |warm: bool| -> (Vec<(bool, u64)>, Schedule) {
        let mut run = CllScheduler
            .start(instance.machines, instance.alpha)
            .expect("CLL start")
            .with_warm_start(warm);
        let decisions = instance
            .jobs
            .iter()
            .map(|job| {
                let d = run.on_arrival(job, job.release).expect("arrival");
                (d.accepted, d.dual.to_bits())
            })
            .collect();
        (decisions, run.finish().expect("finish"))
    };
    let (warm_decisions, warm_schedule) = drive(true);
    let (cold_decisions, cold_schedule) = drive(false);
    let warm_cost = warm_schedule.cost(instance).total();
    let cold_cost = cold_schedule.cost(instance).total();
    warm_decisions == cold_decisions && (warm_cost - cold_cost).abs() <= 1e-9 * warm_cost.max(1.0)
}

/// Runs one scenario cell: the three chaos runs plus the stand-alone
/// instance measurements.
fn run_cell(config: &ScenarioConfig, driver: &ChaosDriver, waves: usize, idx: usize) -> Cell {
    let instance = config.generate();
    let plan = FaultPlan::generate(config.seed + idx as u64, waves, driver.checkpoint_chain);

    let free = driver
        .run(PdScheduler::coarse(), &instance, &plan, false)
        .expect("fault-free chaos run");
    let noisy = driver
        .run(PdScheduler::coarse(), &instance, &plan, true)
        .expect("fault-injected chaos run");
    let replay = driver
        .run(PdScheduler::coarse(), &instance, &plan, true)
        .expect("replayed chaos run");

    let invisible = deterministic_fields_equal(&free.report, &noisy.report);
    let n = &noisy.stats;
    let r = &replay.stats;
    let replays = deterministic_fields_equal(&noisy.report, &replay.report)
        && n.kills == r.kills
        && n.feed_faults == r.feed_faults
        && n.corruptions == r.corruptions
        && n.chain_skipped == r.chain_skipped
        && n.cold_restarts == r.cold_restarts
        && n.recoveries == r.recoveries
        && n.replayed_batches == r.replayed_batches
        && n.priced_out == r.priced_out
        && n.storm_bounces == r.storm_bounces
        && n.retry_give_ups == r.retry_give_ups
        && n.flood_bounces == r.flood_bounces;
    let report = &noisy.report;
    let consistent = report.shards.iter().all(|s| {
        s.jobs.iter().enumerate().all(|(i, j)| j.id == JobId(i))
            && s.events.len() == s.jobs.len()
            && s.price_trace.len() == s.batches
            && s.max_queue_depth() <= driver.queue_capacity.next_power_of_two()
            && s.instance(report.machines, report.alpha)
                .is_ok_and(|inst| validate_schedule(&inst, &s.schedule).is_ok())
    }) && report.tenants.iter().all(|t| {
        t.submitted
            == t.accepted
                + t.rejected_by_scheduler
                + t.rejected_by_price
                + t.rejected_invalid
                + t.rejected_stale
                + t.deferred
                + t.queue_full
                + t.quota_exceeded
    });

    let pd = PdScheduler::coarse().run(&instance).expect("PD batch run");
    let lb = best_lower_bound(&instance, &pd).expect("lower bound");
    let stream = StreamingSimulation::default()
        .run(&PdScheduler::coarse(), &instance)
        .expect("streaming run");

    Cell {
        name: config.name(),
        jobs: instance.len(),
        noisy,
        invisible,
        replays,
        consistent,
        toggles_agree: warm_vs_cold_agree(&instance),
        ratio: safe_ratio(pd.cost().total(), lb.value),
        lb_exact: lb.exact,
        p50_us: stream.latency_percentile_secs(50.0) * 1e6,
        p99_us: stream.latency_percentile_secs(99.0) * 1e6,
    }
}

/// Runs E16.
pub fn run(quick: bool) -> ExperimentOutput {
    // `SOAK_N` overrides the full-mode soak length (jobs per scenario) so
    // CI and long-running soaks can stretch or shrink E16 without a code
    // edit; the recorded EXPERIMENTS.md numbers use the 320-job default.
    let (n_jobs, waves, wave_size, capacity) = if quick {
        (48, 8, 6, 8)
    } else {
        let n_jobs = std::env::var("SOAK_N")
            .ok()
            .and_then(|n| n.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(320);
        (n_jobs, 24, 13, 16)
    };
    let driver = ChaosDriver {
        wave_size,
        queue_capacity: capacity,
        price_smoothing: 0.2,
        checkpoint_chain: 3,
    };
    let fleet = ScenarioConfig::all(n_jobs, 1, 2.5, 1600);
    let cells: Vec<Cell> = fleet
        .iter()
        .enumerate()
        .map(|(idx, config)| run_cell(config, &driver, waves, idx))
        .collect();

    // ---- Table 1: what each scenario's fault plan injected and how the
    // service recovered.
    let mut faults = Table::new(
        "Injected faults and supervised recovery per scenario",
        &[
            "scenario",
            "jobs",
            "waves",
            "kills",
            "feed faults",
            "corrupted",
            "chain skips",
            "cold restarts",
            "recoveries",
            "replayed",
            "recovery (ms)",
            "storm bounce",
            "give-ups",
            "flood bounce",
            "priced out",
        ],
    );
    for c in &cells {
        let s = &c.noisy.stats;
        faults.push_row(vec![
            c.name.into(),
            c.jobs.to_string(),
            s.waves.to_string(),
            s.kills.to_string(),
            s.feed_faults.to_string(),
            s.corruptions.to_string(),
            s.chain_skipped.to_string(),
            s.cold_restarts.to_string(),
            s.recoveries.to_string(),
            s.replayed_batches.to_string(),
            fmt_f64(s.recovery_secs * 1e3),
            s.storm_bounces.to_string(),
            s.retry_give_ups.to_string(),
            s.flood_bounces.to_string(),
            s.priced_out.to_string(),
        ]);
    }

    // ---- Table 2: determinism gates and per-scenario quality.
    let mut quality = Table::new(
        "Determinism gates, competitive ratio and tail latency per scenario",
        &[
            "scenario",
            "injected == fault-free",
            "replay identical",
            "invariants green",
            "toggle oracle",
            "PD ratio",
            "bound source",
            "p50 (us)",
            "p99 (us)",
        ],
    );
    for c in &cells {
        quality.push_row(vec![
            c.name.into(),
            check(c.invisible).into(),
            check(c.replays).into(),
            check(c.consistent).into(),
            check(c.toggles_agree).into(),
            fmt_f64(c.ratio),
            if c.lb_exact {
                "exact OPT"
            } else {
                "dual bound"
            }
            .into(),
            fmt_f64(c.p50_us),
            fmt_f64(c.p99_us),
        ]);
    }

    let invisible = cells.iter().all(|c| c.invisible);
    let replays = cells.iter().all(|c| c.replays);
    let consistent = cells.iter().all(|c| c.consistent);
    let toggles = cells.iter().all(|c| c.toggles_agree);
    let recovered = cells.iter().all(|c| {
        let s = &c.noisy.stats;
        s.recoveries == s.kills + s.feed_faults
    });
    // Kills with blob corruption and chain fallback are guaranteed per
    // scenario.  Feed faults degrade to no-ops on waves the price gate
    // emptied (a fault on a batch that never forms cannot fire), and
    // storms/floods need a full ring / a positive watermark — those
    // classes are gated fleet-wide instead.
    let every_class = cells.iter().all(|c| {
        let s = &c.noisy.stats;
        s.kills >= 1 && s.corruptions >= 1 && s.chain_skipped >= 1
    }) && cells
        .iter()
        .map(|c| c.noisy.stats.feed_faults)
        .sum::<usize>()
        >= 1
        && cells
            .iter()
            .map(|c| c.noisy.stats.storm_bounces)
            .sum::<usize>()
            >= 1
        && cells
            .iter()
            .map(|c| c.noisy.stats.flood_bounces)
            .sum::<usize>()
            >= 1;
    let ratios_finite = cells.iter().all(|c| c.ratio.is_finite());
    let cold_restarts: usize = cells.iter().map(|c| c.noisy.stats.cold_restarts).sum();
    let give_ups: usize = cells.iter().map(|c| c.noisy.stats.retry_give_ups).sum();

    ExperimentOutput {
        id: "E16".into(),
        title: "Chaos soak: scenario fleet x deterministic fault plans, recovery, regression gates"
            .into(),
        tables: vec![faults, quality],
        notes: vec![
            format!(
                "every fault-injected soak equals its fault-free reference on every \
                 deterministic field (events, prices, schedules, bit-compared): {}",
                check(invisible)
            ),
            format!(
                "the same FaultPlan seed reproduces the same report and the same \
                 injection/recovery counters: {}",
                check(replays)
            ),
            format!(
                "every injected lifecycle fault was healed by exactly one supervised \
                 recovery (no watchdog give-ups): {}",
                check(recovered)
            ),
            format!(
                "every scenario was killed and recovered through a corrupted \
                 checkpoint chain, and the fleet saw every fault class (feed \
                 faults, queue-full storms, expiry floods): {}",
                check(every_class)
            ),
            format!(
                "invariants stay green under chaos (dense ids, one price per batch, \
                 bounded queue depths, schedules validate offline, tenant counters \
                 partition every attempt): {}",
                check(consistent)
            ),
            format!(
                "toggle-matrix differential oracle: warm-started and from-scratch \
                 replans agree on every scenario: {}",
                check(toggles)
            ),
            format!(
                "PD competitive ratios stay finite on every scenario (overload and \
                 adversaries included): {}",
                check(ratios_finite)
            ),
            format!(
                "full-chain corruption forced {cold_restarts} cold restart(s); storms \
                 drove {give_ups} retry loop(s) to a typed give-up"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e16_quick_produces_both_tables_and_passing_notes() {
        let out = run(true);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows.len(), 6, "six scenarios");
        assert_eq!(out.tables[1].rows.len(), 6);
        for note in &out.notes[..7] {
            assert!(note.contains("yes"), "failing E16 note: {note}");
        }
    }
}
