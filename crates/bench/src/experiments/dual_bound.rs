//! E8 — the duality machinery of Section 4: the inequality
//! `g(λ̃) ≥ α^{-α}·cost(PD)` behind Theorem 3 and the per-category
//! decomposition of Section 4.3.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::check;

/// Runs E8.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 4 } else { 12 };
    let settings = [(1usize, 2.0), (2, 2.0), (2, 3.0), (4, 2.5)];

    let mut table = Table::new(
        "Dual bound vs PD cost",
        &[
            "m",
            "alpha",
            "seed",
            "cost(PD)",
            "g(lambda)",
            "alpha^-alpha * cost",
            "inequality holds",
            "|J1|",
            "|J2|",
            "|J3|",
        ],
    );
    let mut all_hold = true;

    for &(m, alpha) in &settings {
        for seed in 0..seeds {
            let cfg = RandomConfig {
                n_jobs: 16,
                machines: m,
                alpha,
                value: ValueModel::ProportionalToEnergy { min: 0.2, max: 4.0 },
                ..RandomConfig::standard(3000 + seed)
            };
            let instance = cfg.generate();
            let run = PdScheduler::default().run(&instance).expect("PD run");
            let analysis = analyze_run(&run);
            let scaled_cost = analysis.cost.total() / analysis.competitive_bound;
            let holds = analysis.dual.value + 1e-6 * analysis.cost.total().max(1.0) >= scaled_cost;
            all_hold &= holds;
            let (j1, j2, j3) = analysis.category_counts();
            table.push_row(vec![
                m.to_string(),
                fmt_f64(alpha),
                seed.to_string(),
                fmt_f64(analysis.cost.total()),
                fmt_f64(analysis.dual.value),
                fmt_f64(scaled_cost),
                check(holds).into(),
                j1.to_string(),
                j2.to_string(),
                j3.to_string(),
            ]);
        }
    }

    ExperimentOutput {
        id: "E8".into(),
        title: "Lemmas 9–11 composite: g(λ̃) ≥ α^{-α}·cost(PD) on every run".into(),
        tables: vec![table],
        notes: vec![format!(
            "the certified inequality held on every instance: {}",
            check(all_hold)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_inequality_holds() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
