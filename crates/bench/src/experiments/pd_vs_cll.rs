//! E5 — PD vs Chan–Lam–Li on single-machine profitable instances.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{RatioSummary, Table};
use pss_offline::brute_force_optimum;
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::{check, safe_ratio};

/// Runs E5.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 3 } else { 8 };
    let alpha = 2.0;
    // Three value regimes: stingy (most jobs not worth finishing), balanced,
    // and generous (nearly mandatory).
    let regimes: [(&str, f64, f64); 3] = [
        ("stingy", 0.1, 1.0),
        ("balanced", 0.5, 4.0),
        ("generous", 2.0, 20.0),
    ];

    let mut table = Table::new(
        "PD vs CLL vs OPT (single machine, alpha = 2)",
        &[
            "value regime",
            "instances",
            "mean PD/OPT",
            "max PD/OPT",
            "mean CLL/OPT",
            "max CLL/OPT",
            "PD bound",
            "CLL bound",
            "PD <= CLL (mean)",
        ],
    );
    let mut pd_always_within = true;

    for (name, vmin, vmax) in regimes {
        let mut pd_ratios = Vec::new();
        let mut cll_ratios = Vec::new();
        for seed in 0..seeds {
            let cfg = RandomConfig {
                n_jobs: 12,
                machines: 1,
                alpha,
                value: ValueModel::ProportionalToEnergy {
                    min: vmin,
                    max: vmax,
                },
                ..RandomConfig::standard(1000 + seed)
            };
            let instance = cfg.generate();
            let opt = brute_force_optimum(&instance)
                .expect("brute force")
                .cost
                .total();
            let pd = PdScheduler::default()
                .schedule(&instance)
                .expect("PD")
                .cost(&instance)
                .total();
            let cll = CllScheduler
                .schedule(&instance)
                .expect("CLL")
                .cost(&instance)
                .total();
            pd_ratios.push(safe_ratio(pd, opt));
            cll_ratios.push(safe_ratio(cll, opt));
        }
        let pd_summary = RatioSummary::from_ratios(&pd_ratios).unwrap();
        let cll_summary = RatioSummary::from_ratios(&cll_ratios).unwrap();
        let power = AlphaPower::new(alpha);
        pd_always_within &= pd_summary.max <= power.competitive_ratio_pd() + 1e-6;
        table.push_row(vec![
            name.into(),
            pd_summary.count.to_string(),
            fmt_f64(pd_summary.mean),
            fmt_f64(pd_summary.max),
            fmt_f64(cll_summary.mean),
            fmt_f64(cll_summary.max),
            fmt_f64(power.competitive_ratio_pd()),
            fmt_f64(power.competitive_ratio_cll()),
            check(pd_summary.mean <= cll_summary.mean + 1e-9).into(),
        ]);
    }

    ExperimentOutput {
        id: "E5".into(),
        title: "Improvement over Chan–Lam–Li: PD vs CLL against the exact optimum".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "PD stayed within its alpha^alpha guarantee on every instance: {}",
                check(pd_always_within)
            ),
            "the paper's improvement is in the *guarantee* (alpha^alpha vs alpha^alpha + 2e^alpha); on typical random instances both algorithms are far below their bounds and PD's rejection rule coincides with CLL's, so average costs are close"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e5_pd_within_guarantee() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
        assert_eq!(out.tables[0].rows.len(), 3);
    }
}
