//! E18 — O(active) checkpoints over the realised-segment log.
//!
//! PR 10 splits the committed frontier out of checkpoint blobs into an
//! append-only segment log: blobs hold only live state plus a log cursor,
//! so their size stops growing with the stream.  This experiment measures
//! the claim and drills the recovery path:
//!
//! 1. **Live blob size vs stream length** — every algorithm streamed at
//!    two lengths with a checkpoint after *every* burst (the cadence the
//!    log is built for), against the legacy full-frontier blobs of
//!    [`run_checkpointed`](pss_sim::StreamingSimulation::run_checkpointed)
//!    as the differential baseline.  For the replanning family (OA, qOA,
//!    OA(m), CLL) the live blob must stay flat while the legacy blob grows
//!    linearly; AVR/PD/BKP still carry O(events) job-history tables, so
//!    the log removes only the frontier term of their growth.
//! 2. **Recovery from the `(log, blob)` pair** — a mid-stream kill for
//!    every algorithm: truncate the surviving log to the checkpoint's
//!    cursor, restore through `restore_with_log`, replay the delta, and
//!    require the result to equal the uninterrupted run on every
//!    deterministic field.

use std::time::Instant;

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{seglog_to_json, Table};
use pss_sim::StreamingSimulation;
use pss_types::LogCheckpointable;

use super::burst::{burst_instance, COALESCE_WINDOW};
use super::checkpoint::{streams_agree, streams_agree_tol};
use super::ExperimentOutput;
use crate::support::check;

/// Retained chain depth, mirroring the daemon's default.
const CHAIN: usize = 4;

/// Final live and legacy blob sizes of one (algorithm, length) cell, for
/// the flatness gates computed after the sweep.
struct SizeSample {
    algorithm: String,
    live_bytes: usize,
    legacy_bytes: usize,
}

/// Streams one algorithm with per-burst O(active) checkpoints and with the
/// legacy full-frontier path, pushes the size row, and returns whether the
/// logged stream matched the plain one plus the two final blob sizes.
fn size_row<A>(algo: &A, instance: &Instance, table: &mut Table) -> (bool, SizeSample)
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: LogCheckpointable,
{
    let sim = StreamingSimulation::with_coalescing(COALESCE_WINDOW);
    let plain = sim.run(algo, instance).expect("plain stream");
    // Per-burst cadence: a checkpoint after every ingested batch — the
    // worst case for capture cost and exactly what the log makes cheap.
    let (stream, chain, log) = sim
        .run_checkpointed_logged(algo, instance, 1, CHAIN)
        .expect("logged stream");
    // Legacy baseline at the same cadence, so both final blobs sit at the
    // same cut (full-frontier capture is where the quadratic cost shows).
    let (_, legacy_chain) = sim
        .run_checkpointed(algo, instance, 1)
        .expect("legacy stream");
    let ok = streams_agree(&plain, &stream);

    let last = chain.last().expect("at least the initial checkpoint");
    let legacy_last = legacy_chain.last().expect("legacy chain nonempty");
    let wire = last.blob.to_bytes();
    let started = Instant::now();
    let decoded = StateBlob::from_bytes(&wire).expect("wire decode");
    let _restored =
        <A::Run as LogCheckpointable>::restore_with_log(&decoded, &log).expect("restore with log");
    let restore_secs = started.elapsed().as_secs_f64();
    let mean_capture = chain.iter().map(|c| c.capture_secs).sum::<f64>() / chain.len() as f64;
    table.push_row(vec![
        stream.algorithm.clone(),
        instance.len().to_string(),
        stream.batches.to_string(),
        wire.len().to_string(),
        fmt_f64(legacy_last.blob.size_bytes() as f64 / 1024.0),
        fmt_f64(log.to_bytes().len() as f64 / 1024.0),
        fmt_f64(seglog_to_json(&log).len() as f64 / 1024.0),
        log.record_count().to_string(),
        fmt_f64(mean_capture * 1e6),
        fmt_f64(restore_secs * 1e6),
    ]);
    (
        ok,
        SizeSample {
            algorithm: stream.algorithm.clone(),
            live_bytes: wire.len(),
            legacy_bytes: legacy_last.blob.size_bytes(),
        },
    )
}

/// Runs the `(log, blob)` crash drill for one algorithm and pushes its
/// recovery row; returns whether the recovered stream equals the
/// uninterrupted one.
fn recovery_row<A>(algo: &A, instance: &Instance, table: &mut Table, exact: bool) -> bool
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: LogCheckpointable,
{
    let sim = StreamingSimulation::with_coalescing(COALESCE_WINDOW);
    let plain = sim.run(algo, instance).expect("plain stream");
    let kill_at = plain.batches / 2;
    let (recovered, stats, log) = sim
        .run_with_failover_logged(algo, instance, 1, kill_at)
        .expect("logged failover");
    let ok = if exact {
        streams_agree(&plain, &recovered)
    } else {
        streams_agree_tol(&plain, &recovered, 1e-9)
    } && log.reassemble(log.cursor()).is_ok();
    table.push_row(vec![
        recovered.algorithm.clone(),
        instance.len().to_string(),
        stats.killed_at_batch.to_string(),
        stats.replayed_events.to_string(),
        stats.checkpoint_bytes.to_string(),
        fmt_f64(stats.restore_secs * 1e6),
        fmt_f64(stats.replay_secs * 1e3),
        fmt_f64(stats.recovery_secs() * 1e3),
    ]);
    ok
}

/// Runs E18.
pub fn run(quick: bool) -> ExperimentOutput {
    let (n_small, n_large) = if quick { (96, 384) } else { (1000, 4000) };
    let burst = 8usize;

    // ---- Table 1: live blob size vs stream length, legacy baseline.
    let mut size = Table::new(
        "O(active) blob size vs stream length (per-burst cadence; legacy full-frontier baseline)",
        &[
            "algorithm",
            "n",
            "bursts",
            "live blob (B)",
            "legacy blob (KiB)",
            "log (KiB)",
            "log JSON (KiB)",
            "records",
            "capture mean (us)",
            "restore (us)",
        ],
    );
    let mut equivalent = true;
    let mut samples: Vec<SizeSample> = Vec::new();
    for &n in &[n_small, n_large] {
        let instance = burst_instance(1, n, burst, 18_000 + n as u64);
        let moa_instance = burst_instance(1, n / 4, burst, 18_100 + n as u64);
        let mut push = |ok: bool, sample: SizeSample| {
            equivalent &= ok;
            samples.push(sample);
        };
        let (ok, s) = size_row(&OaScheduler, &instance, &mut size);
        push(ok, s);
        let (ok, s) = size_row(&QoaScheduler::default(), &instance, &mut size);
        push(ok, s);
        let (ok, s) = size_row(&MultiOaScheduler::default(), &moa_instance, &mut size);
        push(ok, s);
        let (ok, s) = size_row(&CllScheduler, &instance, &mut size);
        push(ok, s);
        let (ok, s) = size_row(&PdScheduler::coarse(), &instance, &mut size);
        push(ok, s);
        let (ok, s) = size_row(&AvrScheduler, &instance, &mut size);
        push(ok, s);
        let (ok, s) = size_row(&BkpScheduler::default(), &instance, &mut size);
        push(ok, s);
    }

    // The flatness gate: for every replanning-family algorithm, the live
    // blob at the long stream stays within 1.5x of the short one while the
    // legacy full-frontier blob at least doubles; and every live blob
    // undercuts its legacy counterpart at the same cut.
    let replan_family = ["OA", "qOA", "OA(m)", "CLL"];
    let mut flat = true;
    let mut grew = true;
    let (mut live_ratio, mut legacy_ratio) = (0f64, f64::INFINITY);
    for name in replan_family {
        let per_algo: Vec<&SizeSample> = samples.iter().filter(|s| s.algorithm == name).collect();
        let (small, large) = (per_algo[0], per_algo[1]);
        let lr = large.live_bytes as f64 / small.live_bytes as f64;
        let gr = large.legacy_bytes as f64 / small.legacy_bytes as f64;
        flat &= lr <= 1.5;
        grew &= gr >= 2.0;
        live_ratio = live_ratio.max(lr);
        legacy_ratio = legacy_ratio.min(gr);
    }
    let undercut = samples.iter().all(|s| s.live_bytes < s.legacy_bytes);

    // ---- Table 2: recovery from the (log, blob) pair.
    let mut recovery = Table::new(
        "Recovery from (log, blob): kill at half the stream, truncate the log to the \
         checkpoint cursor, restore with the log, replay the delta",
        &[
            "algorithm",
            "n",
            "killed at batch",
            "replayed events",
            "live blob (B)",
            "restore (us)",
            "replay (ms)",
            "recovery total (ms)",
        ],
    );
    let mut recovered_identical = true;
    {
        let instance = burst_instance(1, n_small, burst, 18_200);
        let moa_instance = burst_instance(1, n_small / 4, burst, 18_300);
        recovered_identical &= recovery_row(&OaScheduler, &instance, &mut recovery, true);
        recovered_identical &=
            recovery_row(&QoaScheduler::default(), &instance, &mut recovery, true);
        recovered_identical &= recovery_row(
            &MultiOaScheduler::default(),
            &moa_instance,
            &mut recovery,
            false,
        );
        recovered_identical &= recovery_row(&CllScheduler, &instance, &mut recovery, true);
        recovered_identical &= recovery_row(&PdScheduler::coarse(), &instance, &mut recovery, true);
        recovered_identical &= recovery_row(&AvrScheduler, &instance, &mut recovery, true);
        recovered_identical &=
            recovery_row(&BkpScheduler::default(), &instance, &mut recovery, true);
    }

    ExperimentOutput {
        id: "E18".into(),
        title: "O(active) checkpoints: blob size flat vs stream length, (log, blob) recovery"
            .into(),
        tables: vec![size, recovery],
        notes: vec![
            format!(
                "logged checkpoint streams match the plain runs bit-for-bit \
                 (decisions, duals, schedules, costs): {}",
                check(equivalent)
            ),
            format!(
                "(log, blob) recovery equals the uninterrupted run on every deterministic \
                 field (exact; solver accuracy for OA(m)): {}",
                check(recovered_identical)
            ),
            format!(
                "replanning-family live blobs stay flat over a {}x longer stream (worst \
                 growth {:.2}x) while legacy full-frontier blobs grow (least growth {:.2}x): {}",
                n_large / n_small,
                live_ratio,
                legacy_ratio,
                check(flat && grew)
            ),
            format!(
                "every live blob undercuts the legacy full-frontier blob at the same cut: {}",
                check(undercut)
            ),
            "AVR, PD and BKP blobs still carry O(events) job-history tables — the segment \
             log removes only the committed-frontier term of their growth; shrinking those \
             tables to live-only is future work"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e18_quick_produces_both_tables_and_passing_notes() {
        let out = run(true);
        assert_eq!(out.tables.len(), 2);
        // 7 algorithms x 2 lengths; 7 recovery rows.
        assert_eq!(out.tables[0].rows.len(), 14);
        assert_eq!(out.tables[1].rows.len(), 7);
        for note in &out.notes[..4] {
            assert!(note.contains("yes"), "failing E18 note: {note}");
        }
    }
}
