//! E12 — streaming arrival latency: per-arrival handling time percentiles
//! (p50/p95/p99) versus stream length for the event-driven online
//! algorithms, driven through [`StreamingSimulation`], plus the
//! warm-started-vs-rebuild arrival-processing speedup.
//!
//! The workload is a Poisson arrival stream with a bounded active set (the
//! regime a long-running scheduler actually serves), so the stream length
//! `n` grows while the instantaneous load stays fixed — per-arrival latency
//! then measures how the *history* size affects the arrival step.  With the
//! persistent planning contexts this cost is flat; the rebuild-per-arrival
//! baselines degrade with `n`.

use std::time::Instant;

use pss_core::baselines::replan::{AdmitAll, OnlineEnv, ReplanState};
use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_sim::StreamingSimulation;
use pss_workloads::{ArrivalModel, RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::check;

/// A Poisson stream of `n` jobs with a bounded active set (~10 jobs).
pub fn stream_instance(n: usize, seed: u64) -> Instance {
    RandomConfig {
        n_jobs: n,
        machines: 1,
        alpha: 2.5,
        arrival: ArrivalModel::Poisson { rate: 4.0 },
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(seed)
    }
    .generate()
}

/// Feeds every arrival of `instance` to `run` and returns the wall-clock
/// time spent in `on_arrival` calls.
fn drive_arrivals<R: OnlineScheduler>(run: &mut R, instance: &Instance) -> f64 {
    let start = Instant::now();
    for id in instance.arrival_order() {
        let job = instance.job(id);
        run.on_arrival(job, job.release).expect("arrival");
    }
    start.elapsed().as_secs_f64()
}

/// Runs E12.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![150, 400]
    } else {
        vec![1000, 4000, 10000]
    };

    let mut latency = Table::new(
        "Per-arrival latency percentiles (Poisson stream, bounded active set)",
        &[
            "algorithm",
            "n",
            "accepted",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "max (us)",
            "total (ms)",
            "arrivals/s",
            "cost",
        ],
    );
    let mut percentiles_ordered = true;
    for &n in &sizes {
        let instance = stream_instance(n, 9100 + n as u64);
        let pd = PdScheduler::coarse();
        let oa = OaScheduler;
        let cll = CllScheduler;
        let avr = AvrScheduler;
        let runs: Vec<pss_sim::StreamReport> = vec![
            StreamingSimulation.run(&pd, &instance).expect("PD stream"),
            StreamingSimulation.run(&oa, &instance).expect("OA stream"),
            StreamingSimulation
                .run(&cll, &instance)
                .expect("CLL stream"),
            StreamingSimulation
                .run(&avr, &instance)
                .expect("AVR stream"),
        ];
        for stream in runs {
            let (p50, p95, p99) = (
                stream.latency_percentile_secs(50.0),
                stream.latency_percentile_secs(95.0),
                stream.latency_percentile_secs(99.0),
            );
            percentiles_ordered &= p50 <= p95 + 1e-12 && p95 <= p99 + 1e-12;
            let total = stream.total_arrival_secs();
            latency.push_row(vec![
                stream.algorithm.clone(),
                n.to_string(),
                format!("{}/{n}", stream.accepted_jobs()),
                fmt_f64(p50 * 1e6),
                fmt_f64(p95 * 1e6),
                fmt_f64(p99 * 1e6),
                fmt_f64(stream.max_latency_secs() * 1e6),
                fmt_f64(total * 1e3),
                fmt_f64(n as f64 / total.max(1e-12)),
                fmt_f64(stream.total_cost()),
            ]);
        }
    }

    // Warm-started vs rebuild-per-arrival total arrival-processing time, at
    // a size the (quadratic-per-arrival) rebuild paths can still handle.
    let (oa_n, pd_n) = if quick { (120, 100) } else { (1500, 600) };
    let mut speedup = Table::new(
        "Warm-started vs rebuild-per-arrival arrival processing",
        &[
            "algorithm",
            "n",
            "warm total (ms)",
            "from-scratch total (ms)",
            "speedup",
        ],
    );
    let mut all_speedups = Vec::new();

    let oa_inst = stream_instance(oa_n, 9300);
    let env = OnlineEnv {
        machines: 1,
        alpha: oa_inst.alpha,
    };
    let planner = pss_core::baselines::oa::OaPlanner { speed_factor: 1.0 };
    let mut warm_run = ReplanState::new(planner, AdmitAll, env);
    let warm = drive_arrivals(&mut warm_run, &oa_inst);
    let mut cold_run = ReplanState::new(planner, AdmitAll, env).with_warm_start(false);
    let cold = drive_arrivals(&mut cold_run, &oa_inst);
    all_speedups.push(cold / warm.max(1e-12));
    speedup.push_row(vec![
        "OA".into(),
        oa_n.to_string(),
        fmt_f64(warm * 1e3),
        fmt_f64(cold * 1e3),
        fmt_f64(cold / warm.max(1e-12)),
    ]);

    let pd_inst = stream_instance(pd_n, 9400);
    let scheduler = PdScheduler::coarse();
    let mut warm_run = scheduler.start_for(&pd_inst).expect("PD run");
    let warm = drive_arrivals(&mut warm_run, &pd_inst);
    let mut cold_run = OnlinePd::with_options(
        pd_inst.machines,
        pd_inst.alpha,
        scheduler.effective_delta(pd_inst.alpha),
        scheduler.tol,
    )
    .with_rebuild_engine();
    let cold = drive_arrivals(&mut cold_run, &pd_inst);
    all_speedups.push(cold / warm.max(1e-12));
    speedup.push_row(vec![
        "PD".into(),
        pd_n.to_string(),
        fmt_f64(warm * 1e3),
        fmt_f64(cold * 1e3),
        fmt_f64(cold / warm.max(1e-12)),
    ]);

    let min_speedup = all_speedups.iter().copied().fold(f64::INFINITY, f64::min);
    ExperimentOutput {
        id: "E12".into(),
        title: "Streaming arrival latency (percentiles vs n, warm-start speedup)".into(),
        tables: vec![latency, speedup],
        notes: vec![
            format!(
                "latency percentiles are ordered p50 <= p95 <= p99 in every row: {}",
                check(percentiles_ordered)
            ),
            format!(
                "warm-started arrival processing is faster than rebuild-per-arrival \
                 (min speedup {}x across OA and PD)",
                fmt_f64(min_speedup)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_produces_ordered_percentiles() {
        let out = run(true);
        assert_eq!(out.tables.len(), 2);
        // 4 algorithms x 2 sizes latency rows, 2 speedup rows.
        assert_eq!(out.tables[0].rows.len(), 8);
        assert_eq!(out.tables[1].rows.len(), 2);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
