//! E12 — streaming arrival latency: per-arrival handling time percentiles
//! (p50/p95/p99) versus stream length for *all* the event-driven online
//! algorithms (PD, OA, qOA, OA(m), CLL, AVR, BKP), driven through
//! [`StreamingSimulation`], plus the warm-started/indexed-vs-rebuild
//! arrival-processing speedups and the OA(m) coordinate-descent
//! convergence statistics.
//!
//! The workload is a Poisson arrival stream with a bounded active set (the
//! regime a long-running scheduler actually serves), so the stream length
//! `n` grows while the instantaneous load stays fixed — per-arrival latency
//! then measures how the *history* size affects the arrival step.  With the
//! persistent planning contexts and the AVR/BKP event indices this cost is
//! flat; the rebuild/rescan-per-arrival baselines degrade with `n`.

use std::time::Instant;

use pss_core::baselines::oa::MultiOaPlanner;
use pss_core::baselines::replan::{AdmitAll, OnlineEnv, ReplanState};
use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_sim::StreamingSimulation;
use pss_workloads::{ArrivalModel, RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::check;

/// A Poisson stream of `n` jobs with a bounded active set (~10 jobs).
pub fn stream_instance(n: usize, seed: u64) -> Instance {
    stream_instance_on(1, n, seed)
}

/// [`stream_instance`] over an explicit machine count (the multiprocessor
/// planner is benched on `m > 1` too, where the convex program's
/// cross-machine coupling makes warm convergence genuinely harder).
pub fn stream_instance_on(machines: usize, n: usize, seed: u64) -> Instance {
    RandomConfig {
        n_jobs: n,
        machines,
        alpha: 2.5,
        arrival: ArrivalModel::Poisson { rate: 4.0 },
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(seed)
    }
    .generate()
}

/// Feeds every arrival of `instance` to `run` and returns the wall-clock
/// time spent in `on_arrival` calls.
fn drive_arrivals<R: OnlineScheduler>(run: &mut R, instance: &Instance) -> f64 {
    let start = Instant::now();
    for id in instance.arrival_order() {
        let job = instance.job(id);
        run.on_arrival(job, job.release).expect("arrival");
    }
    start.elapsed().as_secs_f64()
}

/// Runs E12.
pub fn run(quick: bool) -> ExperimentOutput {
    let sizes: Vec<usize> = if quick {
        vec![150, 400]
    } else {
        vec![1000, 4000, 10000]
    };

    let mut latency = Table::new(
        "Per-arrival latency percentiles (Poisson stream, bounded active set)",
        &[
            "algorithm",
            "n",
            "accepted",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "max (us)",
            "total (ms)",
            "arrivals/s",
            "cost",
        ],
    );
    let mut percentiles_ordered = true;
    for &n in &sizes {
        let instance = stream_instance(n, 9100 + n as u64);
        let pd = PdScheduler::coarse();
        let oa = OaScheduler;
        let qoa = QoaScheduler::default();
        let multi_oa = MultiOaScheduler::default();
        let cll = CllScheduler;
        let avr = AvrScheduler;
        let bkp = BkpScheduler::default();
        let runs: Vec<pss_sim::StreamReport> = vec![
            StreamingSimulation::default()
                .run(&pd, &instance)
                .expect("PD stream"),
            StreamingSimulation::default()
                .run(&oa, &instance)
                .expect("OA stream"),
            StreamingSimulation::default()
                .run(&qoa, &instance)
                .expect("qOA stream"),
            StreamingSimulation::default()
                .run(&multi_oa, &instance)
                .expect("OA(m) stream"),
            StreamingSimulation::default()
                .run(&cll, &instance)
                .expect("CLL stream"),
            StreamingSimulation::default()
                .run(&avr, &instance)
                .expect("AVR stream"),
            StreamingSimulation::default()
                .run(&bkp, &instance)
                .expect("BKP stream"),
        ];
        for stream in runs {
            let (p50, p95, p99) = (
                stream.latency_percentile_secs(50.0),
                stream.latency_percentile_secs(95.0),
                stream.latency_percentile_secs(99.0),
            );
            percentiles_ordered &= p50 <= p95 + 1e-12 && p95 <= p99 + 1e-12;
            let total = stream.total_arrival_secs();
            latency.push_row(vec![
                stream.algorithm.clone(),
                n.to_string(),
                format!("{}/{n}", stream.accepted_jobs()),
                fmt_f64(p50 * 1e6),
                fmt_f64(p95 * 1e6),
                fmt_f64(p99 * 1e6),
                fmt_f64(stream.max_latency_secs() * 1e6),
                fmt_f64(total * 1e3),
                fmt_f64(n as f64 / total.max(1e-12)),
                fmt_f64(stream.total_cost()),
            ]);
        }
    }

    // Warm-started/indexed vs rebuild-per-arrival total arrival-processing
    // time, at sizes the (quadratic-per-arrival or worse) rebuild paths can
    // still handle.
    // OA(m)'s warm-start overhead (remap + seed pricing) only amortises
    // once the pending sets reach their steady-state size, so its quick
    // size is not scaled down as aggressively as the others.
    let (oa_n, pd_n, avr_n, bkp_n, moa_n) = if quick {
        (120, 100, 120, 80, 150)
    } else {
        (1500, 600, 1500, 600, 400)
    };
    let mut speedup = Table::new(
        "Warm-started/indexed vs rebuild-per-arrival arrival processing",
        &[
            "algorithm",
            "n",
            "warm total (ms)",
            "from-scratch total (ms)",
            "speedup",
        ],
    );
    let mut all_speedups = Vec::new();
    let mut speedup_row = |table: &mut Table, label: &str, n: usize, warm: f64, cold: f64| {
        all_speedups.push(cold / warm.max(1e-12));
        table.push_row(vec![
            label.into(),
            n.to_string(),
            fmt_f64(warm * 1e3),
            fmt_f64(cold * 1e3),
            fmt_f64(cold / warm.max(1e-12)),
        ]);
    };

    let oa_inst = stream_instance(oa_n, 9300);
    let env = OnlineEnv {
        machines: 1,
        alpha: oa_inst.alpha,
    };
    let planner = pss_core::baselines::oa::OaPlanner { speed_factor: 1.0 };
    let mut warm_run = ReplanState::new(planner, AdmitAll, env);
    let warm = drive_arrivals(&mut warm_run, &oa_inst);
    let mut cold_run = ReplanState::new(planner, AdmitAll, env).with_warm_start(false);
    let cold = drive_arrivals(&mut cold_run, &oa_inst);
    speedup_row(&mut speedup, "OA", oa_n, warm, cold);

    let pd_inst = stream_instance(pd_n, 9400);
    let scheduler = PdScheduler::coarse();
    let mut warm_run = scheduler.start_for(&pd_inst).expect("PD run");
    let warm = drive_arrivals(&mut warm_run, &pd_inst);
    let mut cold_run = OnlinePd::with_options(
        pd_inst.machines,
        pd_inst.alpha,
        scheduler.effective_delta(pd_inst.alpha),
        scheduler.tol,
    )
    .with_rebuild_engine();
    let cold = drive_arrivals(&mut cold_run, &pd_inst);
    speedup_row(&mut speedup, "PD", pd_n, warm, cold);

    let avr_inst = stream_instance(avr_n, 9500);
    let mut warm_run = AvrScheduler.start_for(&avr_inst).expect("AVR run");
    let warm = drive_arrivals(&mut warm_run, &avr_inst);
    let mut cold_run = AvrScheduler
        .start_for(&avr_inst)
        .expect("AVR run")
        .with_active_index(false);
    let cold = drive_arrivals(&mut cold_run, &avr_inst);
    speedup_row(&mut speedup, "AVR", avr_n, warm, cold);

    let bkp_inst = stream_instance(bkp_n, 9600);
    let bkp = BkpScheduler::default();
    let mut warm_run = bkp.start_for(&bkp_inst).expect("BKP run");
    let warm = drive_arrivals(&mut warm_run, &bkp_inst);
    let mut cold_run = bkp
        .start_for(&bkp_inst)
        .expect("BKP run")
        .with_indexed_events(false);
    let cold = drive_arrivals(&mut cold_run, &bkp_inst);
    speedup_row(&mut speedup, "BKP", bkp_n, warm, cold);

    // OA(m): warm-started coordinate descent, with convergence statistics
    // read back from the run's plan cache so the pass counts are visible.
    let moa_inst = stream_instance(moa_n, 9700);
    let env = OnlineEnv {
        machines: 1,
        alpha: moa_inst.alpha,
    };
    let moa_planner = MultiOaPlanner {
        options: Default::default(),
    };
    let mut warm_run = ReplanState::new(moa_planner, AdmitAll, env);
    let warm = drive_arrivals(&mut warm_run, &moa_inst);
    let mut cold_run = ReplanState::new(moa_planner, AdmitAll, env).with_warm_start(false);
    let cold = drive_arrivals(&mut cold_run, &moa_inst);
    speedup_row(&mut speedup, "OA(m)", moa_n, warm, cold);

    // OA(m) on two machines: the cross-machine coupling makes the seeded
    // descent converge in more passes than the effectively-single-machine
    // case, so the speedup is smaller — benched so a regression below 1x
    // cannot hide behind the m = 1 number.
    let moa2_inst = stream_instance_on(2, moa_n, 9800);
    let env2 = OnlineEnv {
        machines: 2,
        alpha: moa2_inst.alpha,
    };
    let mut warm2_run = ReplanState::new(moa_planner, AdmitAll, env2);
    let warm2 = drive_arrivals(&mut warm2_run, &moa2_inst);
    let mut cold2_run = ReplanState::new(moa_planner, AdmitAll, env2).with_warm_start(false);
    let cold2 = drive_arrivals(&mut cold2_run, &moa2_inst);
    speedup_row(&mut speedup, "OA(m) m=2", moa_n, warm2, cold2);

    let mut convergence = Table::new(
        "OA(m) warm-started coordinate-descent convergence",
        &[
            "machines",
            "n",
            "replans",
            "seeded",
            "converged",
            "total passes",
            "passes/replan",
        ],
    );
    let moa_stats = warm_run.plan_cache().multi.clone().unwrap_or_default();
    for (machines, stats) in [
        (1usize, &moa_stats),
        (
            2usize,
            &warm2_run.plan_cache().multi.clone().unwrap_or_default(),
        ),
    ] {
        convergence.push_row(vec![
            machines.to_string(),
            moa_n.to_string(),
            stats.replans.to_string(),
            stats.seeded_replans.to_string(),
            stats.converged_replans.to_string(),
            stats.total_passes.to_string(),
            fmt_f64(stats.mean_passes()),
        ]);
    }

    let min_speedup = all_speedups.iter().copied().fold(f64::INFINITY, f64::min);
    ExperimentOutput {
        id: "E12".into(),
        title: "Streaming arrival latency (percentiles vs n, warm-start speedup)".into(),
        tables: vec![latency, speedup, convergence],
        notes: vec![
            format!(
                "latency percentiles are ordered p50 <= p95 <= p99 in every row: {}",
                check(percentiles_ordered)
            ),
            format!(
                "warm-started/indexed arrival processing is faster than \
                 rebuild-per-arrival (min speedup {}x across OA, PD, AVR, BKP \
                 and OA(m) at m = 1 and m = 2)",
                fmt_f64(min_speedup)
            ),
            format!(
                "OA(m) warm coordinate descent converged on {}/{} replans at \
                 {} passes per replan on average",
                moa_stats.converged_replans,
                moa_stats.replans,
                fmt_f64(moa_stats.mean_passes())
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e12_quick_produces_ordered_percentiles() {
        let out = run(true);
        assert_eq!(out.tables.len(), 3);
        // 7 algorithms x 2 sizes latency rows, 6 speedup rows (OA(m) at
        // m = 1 and m = 2), 2 convergence rows.
        assert_eq!(out.tables[0].rows.len(), 14);
        assert_eq!(out.tables[1].rows.len(), 6);
        assert_eq!(out.tables[2].rows.len(), 2);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
