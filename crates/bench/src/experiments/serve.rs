//! E15 — the multi-tenant ingestion soak: dual-driven backpressure, bounded
//! queues and the crash/hand-off lifecycle of the `pss-serve` daemon.
//!
//! The daemon (PR 6) promises that the paper's online model survives being
//! turned into a *service*: concurrent tenants blasting bounded lock-free
//! queues, admission priced by the scheduler's own duals, and a
//! checkpointed lifecycle that can lose a worker mid-soak without losing a
//! decision.  This experiment soaks exactly that:
//!
//! 1. **Per-tenant admission accounting** — a mixed tenant population
//!    (best-effort `Defer` tenants, a quota-capped bulk tenant, a
//!    zero-ceiling throttled tenant and a zero-ceiling `Reject` "spot"
//!    tenant) drives an overloaded service; the per-tenant counters must
//!    partition every submission attempt exactly.
//! 2. **Per-shard ingestion** — queue depths stay bounded under overload,
//!    burst coalescing collapses the backlog into few replans, and the
//!    rolling dual price ends positive (the congestion signal is live).
//! 3. **Lifecycle latencies** — a graceful hand-off of shard 0 and an
//!    injected crash + journal-replay recovery of shard 1, both *during*
//!    the soak, with drain latency and end-to-end throughput at shutdown.
//!
//! The notes also pin the service against the offline replay: a
//! single-tenant, single-shard daemon must be bit-identical to
//! `StreamingSimulation::with_coalescing` on the same stream.

use pss_check::sync::Counter;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{ServiceSummary, Table};
use pss_serve::{Daemon, RecoveryReport, ServeConfig, ServiceReport, TenantHandle, TenantSpec};
use pss_sim::StreamingSimulation;
use pss_types::{IngressError, JobEnvelope, LogCheckpointable, TenantId};
use pss_workloads::{ArrivalModel, RandomConfig, ValueModel, WindowModel, WorkModel};

use super::ExperimentOutput;
use crate::support::check;

/// An overloaded bursty stream for one tenant: far more work per unit time
/// than one machine can profitably absorb, with values spread around the
/// stand-alone energy so the scheduler rejects freely and its duals (the
/// backpressure signal) stay alive.
fn tenant_stream(per_tenant: usize, alpha: f64, seed: u64) -> Vec<JobEnvelope> {
    let config = RandomConfig {
        n_jobs: per_tenant,
        machines: 1,
        alpha,
        horizon: 0.0, // ignored by BurstyPoisson
        arrival: ArrivalModel::BurstyPoisson {
            rate: 4.0,
            burst_size: 4,
            jitter: 1e-4,
        },
        // Windows comfortably wider than the producers' pacing lead, so a
        // job submitted near the watermark still has a live deadline.
        window: WindowModel::Uniform { min: 1.0, max: 4.0 },
        work: WorkModel::Uniform { min: 0.5, max: 2.0 },
        value: ValueModel::ProportionalToEnergy { min: 0.2, max: 3.0 },
        seed,
    };
    let mut jobs = config.generate().jobs;
    jobs.sort_by(|a, b| a.release.total_cmp(&b.release));
    jobs.iter()
        .enumerate()
        .map(|(tag, j)| {
            // The tenant is overwritten by the submitting handle.
            JobEnvelope::new(
                TenantId(0),
                tag as u64,
                j.release,
                j.deadline,
                j.work,
                j.value,
            )
        })
        .collect()
}

/// The price-seeding primer pair for one shard: an easy anchor the
/// algorithm is certain to accept, plus a job no algorithm can profitably
/// run (huge work in a sliver of a window).  Submitted back-to-back into a
/// paused shard they coalesce into one batch; the anchor's acceptance
/// folds λ and the hopeless job's rejection dual (its value) drags the
/// published price positive — the backpressure gates only engage once the
/// price is positive.  (Since the rejection-starvation fix, every decision
/// prices in, so a lone rejected batch would also lift the price; the
/// anchor is kept so the soak still exercises a mixed batch.)
fn primer_pair() -> [JobEnvelope; 2] {
    [
        JobEnvelope::new(TenantId(0), u64::MAX - 1, 0.0, 4.0, 0.2, 8.0),
        JobEnvelope::new(TenantId(0), u64::MAX, 0.0, 0.1, 50.0, 8.0),
    ]
}

/// How far ahead of the shard's feed watermark a producer lets its
/// releases run.  Pacing keeps the interleaved tenants near the shard's
/// virtual time, so expiry-based load shedding stays the exception.
const PACE_LEAD: f64 = 2.0;

/// One producer: submits its stream in release order, pacing against the
/// shard's feed watermark, spinning politely on the retryable gates (full
/// queue, quota) and accepting the terminal ones.
fn produce(handle: TenantHandle, stream: Vec<JobEnvelope>, progress: Arc<Counter>) {
    for envelope in stream {
        // Pace: wait (bounded — the watermark freezes during a shard
        // crash) until the shard's virtual time approaches this release.
        let pace = Instant::now() + Duration::from_millis(20);
        while handle.watermark().is_finite()
            && envelope.release > handle.watermark() + PACE_LEAD
            && Instant::now() < pace
        {
            std::thread::yield_now();
        }
        loop {
            match handle.submit(envelope) {
                Ok(_) => break,
                Err(IngressError::QueueFull { .. }) | Err(IngressError::QuotaExceeded { .. }) => {
                    std::thread::yield_now();
                }
                Err(IngressError::ShuttingDown) => return,
                // Deferred by backpressure, or expired behind the
                // watermark: the submission is dropped, its attempt stays
                // in the tenant's counters.
                Err(_) => break,
            }
        }
        progress.incr();
    }
}

/// Everything one soak produces, for the tables and notes.
struct SoakOutcome {
    report: ServiceReport,
    policies: Vec<&'static str>,
    queue_capacity: usize,
    handoff: RecoveryReport,
    crash: Option<RecoveryReport>,
    wall_secs: f64,
}

/// Drives one algorithm through the full multi-tenant soak: primed dual
/// prices, concurrent producers, a mid-soak hand-off of shard 0 and a
/// mid-soak crash + recovery of shard 1, then a draining shutdown.
fn soak<A>(
    algorithm: A,
    shards: usize,
    per_tenant: usize,
    queue_capacity: usize,
    quota: usize,
    seed: u64,
) -> SoakOutcome
where
    A: OnlineAlgorithm,
    A::Run: LogCheckpointable + Send + 'static,
{
    let config = ServeConfig {
        machines: 1,
        alpha: 2.0,
        shards,
        queue_capacity,
        coalesce_window: 1e-3,
        max_batch: 64,
        checkpoint_every: 16,
        price_smoothing: 0.1,
        start_paused: true,
        ..ServeConfig::default()
    };
    // One best-effort tenant per shard, plus the three special tenants on
    // shard 0: quota-capped bulk, a zero-ceiling Defer tenant (throttled)
    // and a zero-ceiling Reject tenant (spot).
    let mut specs: Vec<TenantSpec> = (0..shards)
        .map(|s| TenantSpec::new(format!("svc-{s}")).on_shard(s))
        .collect();
    let mut policies: Vec<&'static str> = vec!["defer"; shards];
    specs.push(TenantSpec::new("bulk").on_shard(0).with_quota(quota));
    policies.push("defer, quota");
    specs.push(
        TenantSpec::new("throttled")
            .on_shard(0)
            .with_price_ceiling(0.0),
    );
    policies.push("defer, ceiling 0");
    specs.push(
        TenantSpec::new("spot")
            .on_shard(0)
            .with_price_ceiling(0.0)
            .rejecting_on_price(),
    );
    policies.push("reject, ceiling 0");
    let tenant_count = specs.len();

    let started = Instant::now();
    let (mut daemon, handles) = Daemon::spawn(algorithm, config, specs).expect("daemon spawn");

    // Prime every shard's dual price while the feeds are still paused, so
    // the price gates are live before the special tenants start submitting.
    for handle in handles.iter().take(shards) {
        for envelope in primer_pair() {
            handle.submit(envelope).expect("primer queued");
        }
    }
    daemon.resume();
    let deadline = Instant::now() + Duration::from_secs(10);
    while (0..shards).any(|s| daemon.shard_price(s) <= 0.0) && Instant::now() < deadline {
        std::thread::yield_now();
    }

    let progress = Arc::new(Counter::new());
    let total = tenant_count * per_tenant;
    let mut producers = Vec::with_capacity(tenant_count);
    for (i, handle) in handles.into_iter().enumerate() {
        let stream = tenant_stream(per_tenant, config.alpha, seed + i as u64);
        let progress = Arc::clone(&progress);
        producers.push(std::thread::spawn(move || {
            produce(handle, stream, progress)
        }));
    }

    // Mid-soak lifecycle: a graceful hand-off of shard 0 and an injected
    // crash + journal-replay recovery of shard 1, under live producers.
    let half = Instant::now() + Duration::from_secs(120);
    while progress.get() < (total / 2) as u64 && Instant::now() < half {
        std::thread::yield_now();
    }
    let handoff = daemon.handoff_shard(0).expect("hand-off shard 0");
    let crash = (shards > 1).then(|| {
        daemon.crash_shard(1, 0).expect("crash shard 1");
        daemon.recover_shard(1).expect("recover shard 1")
    });

    for p in producers {
        p.join().expect("producer thread");
    }
    let report = daemon.shutdown().expect("drained shutdown");
    let wall_secs = started.elapsed().as_secs_f64();
    SoakOutcome {
        report,
        policies,
        queue_capacity,
        handoff,
        crash,
        wall_secs,
    }
}

/// The per-tenant counters must partition every submission attempt: each
/// attempt ends in exactly one bucket.
fn accounting_partitions(outcome: &SoakOutcome) -> bool {
    outcome.report.tenants.iter().all(|t| {
        t.submitted
            == t.accepted
                + t.rejected_by_scheduler
                + t.rejected_by_price
                + t.rejected_invalid
                + t.rejected_stale
                + t.deferred
                + t.queue_full
                + t.quota_exceeded
    })
}

/// Queue depths under overload: backlogs really formed (some sample > 0)
/// and never exceeded the bounded queue's capacity.
fn depths_bounded(outcome: &SoakOutcome) -> bool {
    outcome.report.shards.iter().all(|s| {
        let max = s.max_queue_depth();
        max > 0 && max <= outcome.queue_capacity.next_power_of_two()
    })
}

/// Internal consistency of each shard's artefacts: dense feed-order ids,
/// one event per fed job, one price per ingestion batch, and a finished
/// schedule that validates offline against the shard's reassembled stream.
fn shards_consistent(outcome: &SoakOutcome) -> bool {
    let report = &outcome.report;
    report.shards.iter().all(|s| {
        s.jobs.iter().enumerate().all(|(i, j)| j.id == JobId(i))
            && s.events.len() == s.jobs.len()
            && s.price_trace.len() == s.batches
            && s.instance(report.machines, report.alpha)
                .is_ok_and(|inst| validate_schedule(&inst, &s.schedule).is_ok())
    })
}

/// The differential pin, inline: a single-tenant, single-shard daemon fed a
/// pre-queued stream must match `StreamingSimulation::with_coalescing`
/// bit-for-bit (ids, decisions, duals, batch structure, schedule).
fn daemon_matches_streaming<A>(algorithm: A, window: f64, seed: u64) -> bool
where
    A: OnlineAlgorithm + Clone,
    A::Run: LogCheckpointable + Send + 'static,
{
    let config = RandomConfig {
        n_jobs: 48,
        machines: 1,
        alpha: 2.0,
        horizon: 0.0,
        arrival: ArrivalModel::BurstyPoisson {
            rate: 3.0,
            burst_size: 4,
            jitter: 1e-4,
        },
        window: WindowModel::Uniform { min: 0.5, max: 2.0 },
        work: WorkModel::Uniform { min: 0.5, max: 2.0 },
        value: ValueModel::ProportionalToEnergy { min: 0.2, max: 3.0 },
        seed,
    };
    let instance = config.generate();
    // Re-densify ids in arrival order so daemon feed-order ids match.
    let instance = instance.restrict(&instance.arrival_order());
    let serve = ServeConfig {
        machines: instance.machines,
        alpha: instance.alpha,
        shards: 1,
        queue_capacity: instance.len().max(2),
        coalesce_window: window,
        max_batch: instance.len().max(1),
        checkpoint_every: 0,
        start_paused: true,
        ..ServeConfig::default()
    };
    let (daemon, handles) =
        Daemon::spawn(algorithm.clone(), serve, vec![TenantSpec::new("pin")]).expect("pin daemon");
    for j in &instance.jobs {
        handles[0]
            .submit(JobEnvelope::new(
                TenantId(0),
                j.id.0 as u64,
                j.release,
                j.deadline,
                j.work,
                j.value,
            ))
            .expect("pin submission");
    }
    daemon.resume();
    let report = daemon.shutdown().expect("pin shutdown");
    let stream = StreamingSimulation::with_coalescing(window)
        .run(&algorithm, &instance)
        .expect("offline stream");
    let shard = &report.shards[0];
    shard.events.len() == stream.events.len()
        && shard.batches == stream.batches
        && shard.events.iter().zip(&stream.events).all(|(a, b)| {
            a.job == b.job && a.accepted == b.accepted && a.dual.to_bits() == b.dual.to_bits()
        })
        && shard.schedule.segments == stream.schedule.segments
}

/// Runs E15.
pub fn run(quick: bool) -> ExperimentOutput {
    // Full mode: 4 shards x (4 + 3) tenants x 15k jobs = 105k arrivals.
    let (shards, per_tenant, capacity, quota) = if quick {
        (2, 150, 128, 4)
    } else {
        (4, 15_000, 512, 8)
    };
    let (pd_shards, pd_per_tenant) = if quick { (2, 60) } else { (2, 1_500) };

    let outcomes = vec![
        soak(CllScheduler, shards, per_tenant, capacity, quota, 15_000),
        soak(
            PdScheduler::coarse(),
            pd_shards,
            pd_per_tenant,
            capacity,
            quota,
            15_100,
        ),
    ];

    // ---- Table 1: per-tenant admission accounting.
    let mut tenants = Table::new(
        "Per-tenant admission accounting under overload",
        &[
            "algorithm",
            "tenant",
            "policy",
            "submitted",
            "accepted",
            "rej sched",
            "rej price",
            "stale/exp",
            "deferred",
            "queue full",
            "quota exc",
            "lost value",
        ],
    );
    for o in &outcomes {
        for (t, policy) in o.report.tenants.iter().zip(&o.policies) {
            tenants.push_row(vec![
                o.report.algorithm.clone(),
                t.tenant.clone(),
                (*policy).into(),
                t.submitted.to_string(),
                t.accepted.to_string(),
                t.rejected_by_scheduler.to_string(),
                t.rejected_by_price.to_string(),
                t.rejected_stale.to_string(),
                t.deferred.to_string(),
                t.queue_full.to_string(),
                t.quota_exceeded.to_string(),
                fmt_f64(t.lost_value),
            ]);
        }
    }

    // ---- Table 2: per-shard ingestion under overload.
    let mut ingestion = Table::new(
        "Per-shard ingestion: bounded queues, burst coalescing and the dual price",
        &[
            "algorithm",
            "shard",
            "arrivals",
            "batches",
            "coalesce x",
            "max depth",
            "p99 depth",
            "final price",
            "checkpoints",
            "handoffs",
        ],
    );
    for o in &outcomes {
        for s in &o.report.shards {
            let coalesce = s.events.len() as f64 / s.batches.max(1) as f64;
            ingestion.push_row(vec![
                o.report.algorithm.clone(),
                s.shard.to_string(),
                s.events.len().to_string(),
                s.batches.to_string(),
                fmt_f64(coalesce),
                s.max_queue_depth().to_string(),
                fmt_f64(s.queue_depth_percentile(99.0)),
                fmt_f64(s.final_price),
                s.checkpoints.to_string(),
                s.handoffs.to_string(),
            ]);
        }
    }

    // ---- Table 3: lifecycle latencies and end-to-end throughput.
    let mut lifecycle = Table::new(
        "Mid-soak lifecycle (hand-off of shard 0, crash + replay of shard 1) and throughput",
        &[
            "algorithm",
            "shards",
            "tenants",
            "arrivals",
            "handoff replay",
            "handoff (ms)",
            "crash replay",
            "recovery (ms)",
            "drain max (ms)",
            "wall (s)",
            "jobs/s",
        ],
    );
    for o in &outcomes {
        let drain_max = o
            .report
            .drain
            .drain_secs
            .iter()
            .copied()
            .fold(0.0, f64::max);
        let arrivals = o.report.total_arrivals();
        lifecycle.push_row(vec![
            o.report.algorithm.clone(),
            o.report.shards.len().to_string(),
            o.report.tenants.len().to_string(),
            arrivals.to_string(),
            o.handoff.replayed_batches.to_string(),
            fmt_f64(o.handoff.recovery_secs * 1e3),
            o.crash
                .map_or("-".into(), |c| c.replayed_batches.to_string()),
            o.crash
                .map_or("-".into(), |c| fmt_f64(c.recovery_secs * 1e3)),
            fmt_f64(drain_max * 1e3),
            fmt_f64(o.wall_secs),
            fmt_f64(arrivals as f64 / o.wall_secs.max(1e-12)),
        ]);
    }

    let backpressure = outcomes.iter().all(|o| {
        o.report
            .tenants
            .iter()
            .map(|t| t.deferred + t.rejected_by_price)
            .sum::<u64>()
            > 0
    });
    let partitions = outcomes.iter().all(accounting_partitions);
    let bounded = outcomes.iter().all(depths_bounded);
    let consistent = outcomes.iter().all(shards_consistent);
    let pinned = daemon_matches_streaming(CllScheduler, 0.0, 15_200)
        && daemon_matches_streaming(CllScheduler, 1e-3, 15_201)
        && daemon_matches_streaming(PdScheduler::coarse(), 1e-3, 15_202);
    let round_trips = outcomes.iter().all(|o| {
        let summary = o.report.summary();
        ServiceSummary::from_json(&summary.to_json()).is_ok_and(|back| back == summary)
    });
    let queue_full_total: u64 = outcomes
        .iter()
        .flat_map(|o| &o.report.tenants)
        .map(|t| t.queue_full)
        .sum();

    ExperimentOutput {
        id: "E15".into(),
        title: "Multi-tenant ingestion soak: dual-price backpressure, bounded queues, lifecycle"
            .into(),
        tables: vec![tenants, ingestion, lifecycle],
        notes: vec![
            format!(
                "dual-price backpressure engaged in every soak \
                 (deferred + price-rejected submissions > 0): {}",
                check(backpressure)
            ),
            format!(
                "per-tenant counters partition every submission attempt exactly \
                 (submitted = accepted + rejected + deferred + bounced): {}",
                check(partitions)
            ),
            format!(
                "arrival queues backed up under overload yet never exceeded their \
                 bounded capacity on any shard: {}",
                check(bounded)
            ),
            format!(
                "shard artefacts are internally consistent (dense feed-order ids, one \
                 price per batch, schedules validate offline): {}",
                check(consistent)
            ),
            format!(
                "a single-tenant single-shard daemon is bit-identical to \
                 StreamingSimulation::with_coalescing (CLL and PD, windows 0 and 1e-3): {}",
                check(pinned)
            ),
            format!(
                "ServiceSummary round-trips through its JSON export: {}",
                check(round_trips)
            ),
            format!(
                "producers bounced off full queues {queue_full_total} time(s) and retried; \
                 a bounce is the outermost backpressure layer, ahead of the price gate"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e15_quick_produces_all_three_tables_and_passing_notes() {
        let out = run(true);
        assert_eq!(out.tables.len(), 3);
        // CLL soak: 2 shards -> 5 tenants; PD soak: 2 shards -> 5 tenants.
        assert_eq!(out.tables[0].rows.len(), 10);
        assert_eq!(out.tables[1].rows.len(), 4);
        assert_eq!(out.tables[2].rows.len(), 2);
        for note in &out.notes[..6] {
            assert!(note.contains("yes"), "failing E15 note: {note}");
        }
    }
}
