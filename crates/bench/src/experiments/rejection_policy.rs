//! E6 — rejection-policy equivalence (Section 3, "Relation to the OA
//! Algorithm"): with `δ = α^{1-α}`, PD's accept/reject decision coincides
//! with the closed-form threshold rule of Chan–Lam–Li.

use pss_core::analysis::rejection_policy_report;
use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::check;

/// Runs E6.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 3 } else { 12 };
    let alphas = [1.5, 2.0, 3.0];

    let mut table = Table::new(
        "PD decisions vs the closed-form threshold rule (m = 1)",
        &[
            "alpha",
            "instances",
            "jobs",
            "accepted",
            "rejected",
            "mismatches",
            "all match",
        ],
    );
    let mut all_match = true;

    for &alpha in &alphas {
        let mut jobs = 0usize;
        let mut accepted = 0usize;
        let mut rejected = 0usize;
        let mut mismatches = 0usize;
        for seed in 0..seeds {
            let cfg = RandomConfig {
                n_jobs: 15,
                machines: 1,
                alpha,
                value: ValueModel::ProportionalToEnergy { min: 0.2, max: 3.0 },
                ..RandomConfig::standard(2000 + seed)
            };
            let instance = cfg.generate();
            let report = rejection_policy_report(&PdScheduler::default(), &instance)
                .expect("rejection policy report");
            for d in &report.decisions {
                jobs += 1;
                if d.pd_accepted {
                    accepted += 1;
                } else {
                    rejected += 1;
                }
                let borderline =
                    (d.forced_speed - d.threshold_speed).abs() <= 1e-6 * d.threshold_speed.max(1.0);
                if d.pd_accepted != d.threshold_accepts && !borderline {
                    mismatches += 1;
                }
            }
        }
        let ok = mismatches == 0;
        all_match &= ok;
        table.push_row(vec![
            fmt_f64(alpha),
            seeds.to_string(),
            jobs.to_string(),
            accepted.to_string(),
            rejected.to_string(),
            mismatches.to_string(),
            check(ok).into(),
        ]);
    }

    ExperimentOutput {
        id: "E6".into(),
        title: "Rejection-policy equivalence: PD (δ = α^{1-α}) vs the α^{α-2}·v threshold".into(),
        tables: vec![table],
        notes: vec![format!(
            "PD's decisions matched the threshold rule on every non-borderline job: {}",
            check(all_match)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e6_decisions_match_threshold_rule() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
