//! E13 — burst-batched ingestion and parallel sharded streaming.
//!
//! The ingestion-grain experiment: arrivals come in bursts of `b`
//! near-simultaneous jobs (distinct microsecond-scale timestamps — the shape
//! real "simultaneous" traffic has), and the streaming simulator's
//! **coalescing window** turns each burst back into one
//! [`OnlineScheduler::on_arrivals`] batch, so the burst costs one replan /
//! one index merge instead of one per job.  Three tables:
//!
//! 1. per-algorithm ingestion metrics over the burst sweep
//!    `b ∈ {1, 4, 16, 64}` (arrivals/s, batches, latency percentiles),
//! 2. the replanning executor's batch-vs-loop comparison (replans per
//!    arrival collapse `b`-fold; total arrival-processing speedup),
//! 3. fleet throughput of [`ParallelStreamingSimulation`] over the shard
//!    sweep `s ∈ {1, 2, 4, 8}` (worker threads clamped to the machine's
//!    available parallelism; shard workloads drawn from provably disjoint
//!    `SmallRng::split_stream` substreams; merged percentiles recomputed
//!    from pooled samples).
//!
//! The `burst_ingest` criterion bench pins the same batch-vs-loop speedups
//! as a CI regression gate (`BURST_SMOKE=1`).

use std::time::Instant;

use pss_core::baselines::cll::CllAdmission;
use pss_core::baselines::oa::{MultiOaPlanner, OaPlanner};
use pss_core::baselines::replan::{AdmissionPolicy, AdmitAll, OnlineEnv, Planner, ReplanState};
use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_sim::{coalesce_arrivals, ParallelStreamingSimulation, StreamingSimulation};
use pss_workloads::{ArrivalModel, RandomConfig, SmallRng, ValueModel};

use super::ExperimentOutput;
use crate::support::check;

/// Width of the intra-burst timestamp jitter (the "same millisecond,
/// different microsecond" regime).
pub const BURST_JITTER: f64 = 1e-4;

/// Coalescing window used throughout E13 and the `burst_ingest` bench:
/// comfortably above the jitter, far below the inter-burst gap and the
/// jobs' time scale.
pub const COALESCE_WINDOW: f64 = 1e-3;

/// A bursty Poisson stream of `n` jobs in bursts of `b`, with the *job*
/// arrival rate held at ~4 jobs per unit time (so the active set stays
/// bounded and comparable across burst sizes).
pub fn burst_instance(machines: usize, n: usize, b: usize, seed: u64) -> Instance {
    RandomConfig {
        n_jobs: n,
        machines,
        alpha: 2.5,
        arrival: ArrivalModel::BurstyPoisson {
            rate: 4.0 / b.max(1) as f64,
            burst_size: b.max(1),
            jitter: BURST_JITTER,
        },
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(seed)
    }
    .generate()
}

/// Shard instances for the fleet sweep: shard `k` draws from substream `k`
/// of one base generator.
pub fn shard_instances(shards: usize, n: usize, b: usize, seed: u64) -> Vec<Instance> {
    let base = SmallRng::seed_from_u64(seed);
    let cfg = RandomConfig {
        n_jobs: n,
        machines: 1,
        alpha: 2.5,
        arrival: ArrivalModel::BurstyPoisson {
            rate: 4.0 / b.max(1) as f64,
            burst_size: b.max(1),
            jitter: BURST_JITTER,
        },
        value: ValueModel::ProportionalToEnergy { min: 0.3, max: 4.0 },
        ..RandomConfig::standard(seed)
    };
    (0..shards)
        .map(|k| cfg.generate_with(&mut base.split_stream(k as u64)))
        .collect()
}

/// Feeds every arrival one event at a time (the loop baseline) and returns
/// the wall-clock total of the `on_arrival` calls.
pub fn feed_per_event<R: OnlineScheduler>(run: &mut R, instance: &Instance) -> f64 {
    let started = Instant::now();
    for id in instance.arrival_order() {
        let job = instance.job(id);
        run.on_arrival(job, job.release).expect("arrival");
    }
    started.elapsed().as_secs_f64()
}

/// Feeds the stream as coalesced bursts through `on_arrivals` and returns
/// the wall-clock total of the batch calls.
pub fn feed_coalesced<R: OnlineScheduler>(run: &mut R, instance: &Instance, window: f64) -> f64 {
    let bursts = coalesce_arrivals(instance, window);
    let mut burst_jobs: Vec<Job> = Vec::new();
    let started = Instant::now();
    for (feed_time, ids) in bursts {
        burst_jobs.clear();
        burst_jobs.extend(ids.iter().map(|&id| *instance.job(id)));
        run.on_arrivals(&burst_jobs, feed_time).expect("burst");
    }
    started.elapsed().as_secs_f64()
}

/// The replan-executor algorithms of the batch-vs-loop table.
enum ExecutorKind {
    Oa(OaPlanner),
    Cll,
    MultiOa,
}

fn executor_row(
    kind: &ExecutorKind,
    label: &str,
    instance: &Instance,
    table: &mut Table,
    b: usize,
    speedups: &mut Vec<(String, usize, f64)>,
) {
    fn drive<P: Planner + Clone, A: AdmissionPolicy + Clone>(
        planner: P,
        admission: A,
        instance: &Instance,
    ) -> (f64, usize, f64, usize) {
        let env = OnlineEnv {
            machines: instance.machines,
            alpha: instance.alpha,
        };
        let mut looped = ReplanState::new(planner.clone(), admission.clone(), env);
        let loop_secs = feed_per_event(&mut looped, instance);
        let loop_replans = looped.replans();
        let mut batched = ReplanState::new(planner, admission, env);
        let batch_secs = feed_coalesced(&mut batched, instance, COALESCE_WINDOW);
        let batch_replans = batched.replans();
        (loop_secs, loop_replans, batch_secs, batch_replans)
    }

    let (loop_secs, loop_replans, batch_secs, batch_replans) = match kind {
        ExecutorKind::Oa(planner) => drive(*planner, AdmitAll, instance),
        ExecutorKind::Cll => drive(OaPlanner { speed_factor: 1.0 }, CllAdmission, instance),
        ExecutorKind::MultiOa => drive(
            MultiOaPlanner {
                options: Default::default(),
            },
            AdmitAll,
            instance,
        ),
    };
    let n = instance.len() as f64;
    let speedup = loop_secs / batch_secs.max(1e-12);
    speedups.push((label.to_string(), b, speedup));
    table.push_row(vec![
        label.into(),
        b.to_string(),
        instance.len().to_string(),
        fmt_f64(loop_replans as f64 / n),
        fmt_f64(batch_replans as f64 / n),
        fmt_f64(loop_secs * 1e3),
        fmt_f64(batch_secs * 1e3),
        fmt_f64(speedup),
    ]);
}

/// Runs E13.
pub fn run(quick: bool) -> ExperimentOutput {
    let burst_sizes: &[usize] = &[1, 4, 16, 64];
    // OA(m)'s batch speedup needs the pending sets at their steady-state
    // size before it amortises (the burst solve costs ~3x a warm
    // incremental one in descent passes), so its size is not scaled down
    // below 256 even in quick mode.
    let (n, moa_n) = if quick { (256, 256) } else { (2048, 512) };

    // ---- Table 1: coalesced ingestion per algorithm over the burst sweep.
    let mut ingest = Table::new(
        "Burst-coalesced ingestion (bursty Poisson stream, amortised per-arrival latency)",
        &[
            "algorithm",
            "b",
            "n",
            "batches",
            "accepted",
            "p50 (us)",
            "p95 (us)",
            "p99 (us)",
            "arrivals/s",
            "cost",
        ],
    );
    let mut percentiles_ordered = true;
    for &b in burst_sizes {
        let instance = burst_instance(1, n, b, 13_000 + b as u64);
        let moa_instance = burst_instance(1, moa_n, b, 13_100 + b as u64);
        let sim = StreamingSimulation::with_coalescing(COALESCE_WINDOW);
        let runs: Vec<pss_sim::StreamReport> = vec![
            sim.run(&PdScheduler::coarse(), &instance).expect("PD"),
            sim.run(&OaScheduler, &instance).expect("OA"),
            sim.run(&QoaScheduler::default(), &instance).expect("qOA"),
            sim.run(&MultiOaScheduler::default(), &moa_instance)
                .expect("OA(m)"),
            sim.run(&CllScheduler, &instance).expect("CLL"),
            sim.run(&AvrScheduler, &instance).expect("AVR"),
            sim.run(&BkpScheduler::default(), &instance).expect("BKP"),
        ];
        for stream in runs {
            let rows = stream.events.len();
            let (p50, p95, p99) = (
                stream.latency_percentile_secs(50.0),
                stream.latency_percentile_secs(95.0),
                stream.latency_percentile_secs(99.0),
            );
            percentiles_ordered &= p50 <= p95 + 1e-12 && p95 <= p99 + 1e-12;
            let total = stream.total_arrival_secs();
            ingest.push_row(vec![
                stream.algorithm.clone(),
                b.to_string(),
                rows.to_string(),
                stream.batches.to_string(),
                format!("{}/{rows}", stream.accepted_jobs()),
                fmt_f64(p50 * 1e6),
                fmt_f64(p95 * 1e6),
                fmt_f64(p99 * 1e6),
                fmt_f64(rows as f64 / total.max(1e-12)),
                fmt_f64(stream.total_cost()),
            ]);
        }
    }

    // ---- Table 2: the replanning executor's batch-vs-loop collapse.
    let mut collapse = Table::new(
        "Replan collapse: coalesced on_arrivals vs per-event on_arrival",
        &[
            "algorithm",
            "b",
            "n",
            "loop replans/arrival",
            "batch replans/arrival",
            "loop total (ms)",
            "batch total (ms)",
            "speedup",
        ],
    );
    let mut speedups: Vec<(String, usize, f64)> = Vec::new();
    for &b in burst_sizes {
        let instance = burst_instance(1, n, b, 13_200 + b as u64);
        let moa_instance = burst_instance(1, moa_n, b, 13_300 + b as u64);
        executor_row(
            &ExecutorKind::Oa(OaPlanner { speed_factor: 1.0 }),
            "OA",
            &instance,
            &mut collapse,
            b,
            &mut speedups,
        );
        executor_row(
            &ExecutorKind::Oa(OaPlanner::with_factor(2.0 - 1.0 / instance.alpha)),
            "qOA",
            &instance,
            &mut collapse,
            b,
            &mut speedups,
        );
        executor_row(
            &ExecutorKind::Cll,
            "CLL",
            &instance,
            &mut collapse,
            b,
            &mut speedups,
        );
        executor_row(
            &ExecutorKind::MultiOa,
            "OA(m)",
            &moa_instance,
            &mut collapse,
            b,
            &mut speedups,
        );
    }

    // ---- Table 3: sharded fleet throughput.
    let shard_counts: &[usize] = &[1, 2, 4, 8];
    let fleet_b = 16usize;
    let shard_n = if quick { 96 } else { 768 };
    let parallelism = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let mut fleet = Table::new(
        "Parallel sharded streaming (fixed b = 16, workers clamped to available parallelism)",
        &[
            "algorithm",
            "shards",
            "workers",
            "arrivals",
            "batches",
            "wall (ms)",
            "arrivals/s (wall)",
            "merged p50 (us)",
            "merged p95 (us)",
            "merged p99 (us)",
            "accept rate",
        ],
    );
    let mut deterministic = true;
    for &s in shard_counts {
        let shards = shard_instances(s, shard_n, fleet_b, 13_400 + s as u64);
        let moa_shards = shard_instances(s, shard_n / 4, fleet_b, 13_500 + s as u64);
        let sim = ParallelStreamingSimulation::with_coalescing(COALESCE_WINDOW);
        let fleets: Vec<pss_sim::FleetReport> = vec![
            sim.run(&PdScheduler::coarse(), &shards).expect("PD fleet"),
            sim.run(&OaScheduler, &shards).expect("OA fleet"),
            sim.run(&QoaScheduler::default(), &shards)
                .expect("qOA fleet"),
            sim.run(&MultiOaScheduler::default(), &moa_shards)
                .expect("OA(m) fleet"),
            sim.run(&CllScheduler, &shards).expect("CLL fleet"),
            sim.run(&AvrScheduler, &shards).expect("AVR fleet"),
            sim.run(&BkpScheduler::default(), &shards)
                .expect("BKP fleet"),
        ];
        // Determinism pin: a second run over the same shard set must make
        // identical decisions at identical cost (only wall-clock varies).
        let again = sim.run(&CllScheduler, &shards).expect("CLL fleet again");
        let cll = &fleets[4];
        deterministic &= cll.accepted_jobs() == again.accepted_jobs()
            && cll.total_batches() == again.total_batches()
            && cll.total_cost() == again.total_cost();
        for report in &fleets {
            let algorithm = report
                .shards
                .first()
                .map(|r| r.algorithm.clone())
                .unwrap_or_default();
            fleet.push_row(vec![
                algorithm,
                s.to_string(),
                report.workers.to_string(),
                report.total_arrivals().to_string(),
                report.total_batches().to_string(),
                fmt_f64(report.wall_clock_secs * 1e3),
                fmt_f64(report.arrivals_per_sec()),
                fmt_f64(report.latency_percentile_secs(50.0) * 1e6),
                fmt_f64(report.latency_percentile_secs(95.0) * 1e6),
                fmt_f64(report.latency_percentile_secs(99.0) * 1e6),
                fmt_f64(report.acceptance_rate()),
            ]);
        }
    }

    let b16_oa_speedup = speedups
        .iter()
        .filter(|(label, b, _)| *b == 16 && (label == "OA" || label == "OA(m)"))
        .map(|&(_, _, s)| s)
        .fold(f64::INFINITY, f64::min);
    let b16_min = speedups
        .iter()
        .filter(|(_, b, _)| *b == 16)
        .map(|&(_, _, s)| s)
        .fold(f64::INFINITY, f64::min);
    ExperimentOutput {
        id: "E13".into(),
        title: "Burst-batched arrivals + parallel sharded streaming throughput".into(),
        tables: vec![ingest, collapse, fleet],
        notes: vec![
            format!(
                "latency percentiles are ordered p50 <= p95 <= p99 in every row: {}",
                check(percentiles_ordered)
            ),
            format!(
                "batch ingestion at b = 16 is at least 3x the per-event loop for OA and OA(m): \
                 {} (min {}x; min across OA/qOA/CLL/OA(m) {}x)",
                check(b16_oa_speedup >= 3.0),
                fmt_f64(b16_oa_speedup),
                fmt_f64(b16_min)
            ),
            format!(
                "merged fleet reports are deterministic across runs for a fixed \
                 seed and shard count: {}",
                check(deterministic)
            ),
            format!(
                "shard workers clamped to available parallelism ({parallelism} on this host); \
                 shard workloads drawn from disjoint SmallRng::split_stream substreams"
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e13_quick_produces_all_three_tables() {
        let out = run(true);
        assert_eq!(out.tables.len(), 3);
        // 7 algorithms x 4 burst sizes; 4 executors x 4 burst sizes;
        // 7 algorithms x 4 shard counts.
        assert_eq!(out.tables[0].rows.len(), 28);
        assert_eq!(out.tables[1].rows.len(), 16);
        assert_eq!(out.tables[2].rows.len(), 28);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
        assert!(out.notes[2].contains("yes"), "{:?}", out.notes);
    }

    #[test]
    fn replan_collapse_is_b_fold_on_coalesced_streams() {
        let b = 16usize;
        let instance = burst_instance(1, 192, b, 4242);
        let env = OnlineEnv {
            machines: 1,
            alpha: instance.alpha,
        };
        let mut looped = ReplanState::new(OaPlanner { speed_factor: 1.0 }, AdmitAll, env);
        feed_per_event(&mut looped, &instance);
        let mut batched = ReplanState::new(OaPlanner { speed_factor: 1.0 }, AdmitAll, env);
        feed_coalesced(&mut batched, &instance, COALESCE_WINDOW);
        // The loop replans roughly once per arrival; the coalesced feed
        // roughly once per burst.
        assert!(looped.replans() >= instance.len() / 2);
        assert!(
            batched.replans() <= instance.len() / b + instance.len() / (2 * b) + 2,
            "batched replans {} not collapsed (n = {}, b = {b})",
            batched.replans(),
            instance.len()
        );
    }
}
