//! E17 — sharding one logical stream: price-routed partitioning across
//! daemon shards, parallel frontier merge, and the sharding-cost oracle.
//!
//! Three questions, one per table:
//!
//! 1. **What does sharding buy?**  Every scenario in the PR-8 fleet is
//!    ingested free-running through [`StreamRouter`] at S ∈ {1, 2, 4, 8}
//!    under each routing policy, measuring end-to-end arrivals/sec
//!    (submission through drained shutdown), the speedup over S = 1, the
//!    per-shard load imbalance (max/mean queued arrivals) and the true
//!    push-side peak queue depth.  On this host the speedup is *work*
//!    reduction, not parallelism: PD's per-arrival replan cost grows
//!    with the active set, so routing a stream across S independent runs
//!    cuts the single-threaded work superlinearly.
//! 2. **What does sharding cost?**  The sharding-cost oracle
//!    ([`pss_sim::sharding_drift`]) replays the same workload unsharded
//!    and sharded through the single-threaded harness and reports the
//!    decision-quality drift: total value accepted, merged energy, and
//!    the competitive ratio of each against the best available lower
//!    bound, alongside merged per-decision latency percentiles — under
//!    hash routing (a true partition) and cheapest-price routing (which
//!    spreads even rejection-dominated streams now that rejected duals
//!    fold into the price signal).
//! 3. **Is routing deterministic?**  Per policy: a wave-stepped replay
//!    must be bit-identical ([`routed_fields_equal`]), the assignment
//!    law must hold (hash routing never moves a job when wave structure
//!    or prices change; round-robin is `seq mod S`; cheapest-price is
//!    pinned by replay), S = 1 must be bit-identical to the unsharded
//!    simulator, and the merged energy must equal the sum of the shard
//!    energies in every cell.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_serve::{routed_fields_equal, RoutedReport, StreamRouter};
use pss_sim::{sharding_drift, RoutePolicy, ShardedStreaming, StreamingSimulation};
use pss_workloads::{ScenarioConfig, ScenarioKind};

use super::ExperimentOutput;
use crate::support::{best_lower_bound, check, safe_ratio};

/// The shard counts E17 sweeps.
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Relative tolerance for the merged-energy identity (stable summation
/// over concatenated segments vs per-shard sums may differ in the last
/// few ulps).
const ENERGY_TOL: f64 = 1e-9;

fn router_for(instance: &Instance, shards: usize, policy: RoutePolicy) -> StreamRouter {
    StreamRouter {
        shards,
        policy,
        machines_per_shard: instance.machines,
        alpha: instance.alpha,
        ..StreamRouter::default()
    }
}

/// Merged energy equals the sum of the shard energies, to `ENERGY_TOL`.
fn energy_identity(report: &RoutedReport, alpha: f64) -> bool {
    let shard_sum: f64 = report
        .service
        .shards
        .iter()
        .map(|s| s.schedule.energy(alpha))
        .sum();
    let merged = report.merged_energy(alpha);
    (merged - shard_sum).abs() <= ENERGY_TOL * shard_sum.max(1.0)
}

/// One scenario × policy row of the throughput sweep.
struct Throughput {
    scenario: &'static str,
    policy: RoutePolicy,
    jobs: usize,
    /// Arrivals/sec per entry of [`SHARDS`].
    rates: [f64; 4],
    imbalance4: f64,
    peak4: usize,
    energy_ok: bool,
}

impl Throughput {
    fn speedup4(&self) -> f64 {
        if self.rates[0] > 0.0 {
            self.rates[2] / self.rates[0]
        } else {
            0.0
        }
    }
}

/// Best arrivals/sec over `trials` free-running ingests (wall-clock rates
/// on a contended host are noisy downward — worker threads time-slice
/// against the producer — so the best trial is the least-noise estimate
/// of capability), plus the last report for the derived columns.
fn best_rate(
    config: &ScenarioConfig,
    instance: &Instance,
    shards: usize,
    policy: RoutePolicy,
    trials: usize,
) -> (f64, RoutedReport) {
    let mut best = 0.0f64;
    let mut last = None;
    for trial in 0..trials.max(1) {
        let report = router_for(instance, shards, policy)
            .run_free(PdScheduler::coarse(), instance, config.seed + trial as u64)
            .expect("free-running routed ingest");
        best = best.max(report.arrivals_per_sec());
        last = Some(report);
    }
    (best, last.expect("at least one trial"))
}

/// Free-running ingest of one scenario under one policy across the shard
/// sweep.  S = 1 is policy-independent (there is only one shard to pick),
/// so the caller runs it once and passes the rate in.
fn throughput_row(
    config: &ScenarioConfig,
    instance: &Instance,
    policy: RoutePolicy,
    base_rate: f64,
    trials: usize,
) -> Throughput {
    let mut rates = [base_rate, 0.0, 0.0, 0.0];
    let mut imbalance4 = 1.0;
    let mut peak4 = 0usize;
    let mut energy_ok = true;
    for (i, &shards) in SHARDS.iter().enumerate().skip(1) {
        let (rate, report) = best_rate(config, instance, shards, policy, trials);
        rates[i] = rate;
        energy_ok &= energy_identity(&report, instance.alpha);
        if shards == 4 {
            imbalance4 = report.load_imbalance();
            peak4 = report.peak_queue_depth();
        }
    }
    Throughput {
        scenario: config.name(),
        policy,
        jobs: instance.len(),
        rates,
        imbalance4,
        peak4,
        energy_ok,
    }
}

/// One scenario × policy × S row of the sharding-cost oracle.
struct Drift {
    scenario: &'static str,
    policy: RoutePolicy,
    shards: usize,
    value_ratio: f64,
    energy_ratio: f64,
    ratio_unsharded: f64,
    ratio_sharded: f64,
    p50_us: f64,
    p99_us: f64,
    imbalance: f64,
    energy_ok: bool,
}

fn drift_row(
    config: &ScenarioConfig,
    instance: &Instance,
    shards: usize,
    policy: RoutePolicy,
) -> Drift {
    let harness = ShardedStreaming {
        shards,
        policy,
        coalesce_window: 1e-3,
        price_smoothing: 0.1,
    };
    let (report, drift) =
        sharding_drift(&PdScheduler::coarse(), instance, &harness).expect("sharding drift");
    let pd = PdScheduler::coarse().run(instance).expect("PD batch run");
    let lb = best_lower_bound(instance, &pd).expect("lower bound");
    let shard_sum: f64 = report
        .shard_schedules
        .iter()
        .map(|s| s.energy(instance.alpha))
        .sum();
    let energy_ok = (drift.sharded_energy - shard_sum).abs() <= ENERGY_TOL * shard_sum.max(1.0);
    let ratio = |num: f64, den: f64| if den > 0.0 { num / den } else { 1.0 };
    Drift {
        scenario: config.name(),
        policy,
        shards,
        value_ratio: ratio(drift.sharded_value, drift.unsharded_value),
        energy_ratio: ratio(drift.sharded_energy, drift.unsharded_energy),
        ratio_unsharded: safe_ratio(drift.unsharded_cost, lb.value),
        ratio_sharded: safe_ratio(drift.sharded_cost, lb.value),
        p50_us: report.latency_percentile_secs(50.0) * 1e6,
        p99_us: report.latency_percentile_secs(99.0) * 1e6,
        imbalance: report.load_imbalance(),
        energy_ok,
    }
}

/// One policy row of the determinism gates.
struct Gate {
    policy: RoutePolicy,
    replay: bool,
    law: bool,
    pin: bool,
    energy: bool,
}

/// S = 1 through the sharded harness is bit-identical to the unsharded
/// streaming simulator: same decisions, same dual bits, same schedule.
fn s1_pin(policy: RoutePolicy, instance: &Instance) -> bool {
    let sharded = ShardedStreaming {
        shards: 1,
        policy,
        coalesce_window: 1e-3,
        price_smoothing: 0.1,
    }
    .run(&PdScheduler::coarse(), instance)
    .expect("S=1 sharded run");
    let plain = StreamingSimulation::with_coalescing(1e-3)
        .run(&PdScheduler::coarse(), instance)
        .expect("unsharded streaming run");
    sharded.events.len() == plain.events.len()
        && sharded.events.iter().zip(&plain.events).all(|(s, p)| {
            s.job == p.job && s.accepted == p.accepted && s.dual.to_bits() == p.dual.to_bits()
        })
        && sharded.merged == plain.schedule
}

fn gate_row(policy: RoutePolicy, instance: &Instance) -> Gate {
    let stepped = router_for(instance, 4, policy);
    let a = stepped
        .run_stepped(PdScheduler::coarse(), instance)
        .expect("stepped routed run");
    let b = stepped
        .run_stepped(PdScheduler::coarse(), instance)
        .expect("stepped routed replay");
    let replay = routed_fields_equal(&a, &b);
    let law = match policy {
        RoutePolicy::HashById => {
            // Wave structure changes the price trajectory and batch
            // boundaries; the hash assignment must not move — and it must
            // equal the advertised pure function of the sequence number.
            let wide = StreamRouter {
                wave_size: stepped.wave_size * 2,
                ..stepped
            };
            let c = wide
                .run_stepped(PdScheduler::coarse(), instance)
                .expect("wide-wave routed run");
            let pinned = a
                .submissions
                .iter()
                .zip(&c.submissions)
                .all(|(x, y)| x.job == y.job && x.shard == y.shard);
            let zeros = vec![0.0; 4];
            pinned
                && a.submissions
                    .iter()
                    .enumerate()
                    .all(|(seq, s)| s.shard == policy.route(seq as u64, &zeros))
        }
        RoutePolicy::RoundRobin => a
            .submissions
            .iter()
            .enumerate()
            .all(|(seq, s)| s.shard == seq % 4),
        // Cheapest-price depends on the observed price trajectory by
        // design; its law *is* the bit-identical replay above.
        RoutePolicy::CheapestPrice => a.submissions == b.submissions,
    };
    Gate {
        policy,
        replay,
        law,
        pin: s1_pin(policy, instance),
        energy: energy_identity(&a, instance.alpha),
    }
}

/// Runs E17.
pub fn run(quick: bool) -> ExperimentOutput {
    let (n_throughput, n_drift, n_gate, trials) = if quick {
        (96, 48, 48, 1)
    } else {
        (4000, 400, 64, 3)
    };

    // ---- Table 1: free-running throughput, scenario × policy × S.
    let fleet = ScenarioConfig::all(n_throughput, 1, 2.5, 1700);
    let mut throughput_rows: Vec<Throughput> = Vec::new();
    for config in &fleet {
        let instance = config.generate();
        let (base_rate, _) = best_rate(config, &instance, 1, RoutePolicy::CheapestPrice, trials);
        for policy in RoutePolicy::all() {
            throughput_rows.push(throughput_row(config, &instance, policy, base_rate, trials));
        }
    }
    let mut throughput = Table::new(
        "Free-running ingest throughput by scenario, routing policy and shard count (best of 3)",
        &[
            "scenario",
            "policy",
            "jobs",
            "S=1 (arr/s)",
            "S=2 (arr/s)",
            "S=4 (arr/s)",
            "S=8 (arr/s)",
            "S=4 speedup",
            "S=4 imbalance",
            "S=4 peak depth",
        ],
    );
    for r in &throughput_rows {
        throughput.push_row(vec![
            r.scenario.into(),
            r.policy.name().into(),
            r.jobs.to_string(),
            fmt_f64(r.rates[0]),
            fmt_f64(r.rates[1]),
            fmt_f64(r.rates[2]),
            fmt_f64(r.rates[3]),
            fmt_f64(r.speedup4()),
            fmt_f64(r.imbalance4),
            r.peak4.to_string(),
        ]);
    }

    // ---- Table 2: the sharding-cost oracle, scenario × policy × S.
    // Hash partitions for real (every shard sees a slice); cheapest-price
    // follows the per-shard dual prices, so its drift doubles as a
    // routing-behaviour probe.
    let drift_fleet = ScenarioConfig::all(n_drift, 1, 2.5, 1700);
    let mut drift_rows: Vec<Drift> = Vec::new();
    for config in &drift_fleet {
        let instance = config.generate();
        for policy in [RoutePolicy::HashById, RoutePolicy::CheapestPrice] {
            for &shards in &SHARDS[1..] {
                drift_rows.push(drift_row(config, &instance, shards, policy));
            }
        }
    }
    let mut drift = Table::new(
        "Sharding-cost oracle: decision-quality drift vs the unsharded run",
        &[
            "scenario",
            "policy",
            "S",
            "value ratio",
            "energy ratio",
            "ratio (S=1)",
            "ratio (sharded)",
            "p50 (us)",
            "p99 (us)",
            "imbalance",
        ],
    );
    for r in &drift_rows {
        drift.push_row(vec![
            r.scenario.into(),
            r.policy.name().into(),
            r.shards.to_string(),
            fmt_f64(r.value_ratio),
            fmt_f64(r.energy_ratio),
            fmt_f64(r.ratio_unsharded),
            fmt_f64(r.ratio_sharded),
            fmt_f64(r.p50_us),
            fmt_f64(r.p99_us),
            fmt_f64(r.imbalance),
        ]);
    }

    // ---- Table 3: determinism gates per policy.
    let gate_instance = ScenarioConfig {
        n_jobs: n_gate,
        ..ScenarioConfig::new(ScenarioKind::FlashCrowd, 1701)
    }
    .generate();
    let gates: Vec<Gate> = RoutePolicy::all()
        .into_iter()
        .map(|policy| gate_row(policy, &gate_instance))
        .collect();
    let mut determinism = Table::new(
        "Routing determinism gates per policy (wave-stepped, S=4)",
        &[
            "policy",
            "replay bit-identical",
            "assignment law",
            "S=1 pin",
            "energy identity",
        ],
    );
    for g in &gates {
        determinism.push_row(vec![
            g.policy.name().into(),
            check(g.replay).into(),
            check(g.law).into(),
            check(g.pin).into(),
            check(g.energy).into(),
        ]);
    }

    let replay_ok = gates.iter().all(|g| g.replay);
    let law_ok = gates.iter().all(|g| g.law);
    let pin_ok = gates.iter().all(|g| g.pin);
    let energy_ok = gates.iter().all(|g| g.energy)
        && throughput_rows.iter().all(|r| r.energy_ok)
        && drift_rows.iter().all(|r| r.energy_ok);
    let ratios_finite = drift_rows
        .iter()
        .all(|r| r.ratio_unsharded.is_finite() && r.ratio_sharded.is_finite());
    // Per-scenario hash-routed S=4 speedups.  The gate asks for >=2x on at
    // least two fleet scenarios: on scenarios whose S=1 baseline is cheap
    // (flash-crowd's compressed releases coalesce into large bursts that
    // amortise the replan) there is little work for sharding to shave, and
    // the residual speedup is wall-clock noise on a contended host.
    let hash_speedups: Vec<(&'static str, f64)> = throughput_rows
        .iter()
        .filter(|r| r.policy == RoutePolicy::HashById)
        .map(|r| (r.scenario, r.speedup4()))
        .collect();
    let at_2x = hash_speedups.iter().filter(|(_, s)| *s >= 2.0).count();
    let speedup_list = hash_speedups
        .iter()
        .map(|(name, s)| format!("{name} {s:.2}x"))
        .collect::<Vec<_>>()
        .join(", ");
    // Cheapest-price can only spread load when the price EWMA moves.
    // Since the rejection-starvation fix, every decision prices in —
    // rejected duals included — so rejection-dominated streams no longer
    // herd onto the argmin shard.  The gate reads the drift harness,
    // where routing is synchronous with price publication (each burst is
    // fed before the next routes); the free-running throughput ingest
    // routes against whatever the workers have published so far, and on
    // this host the producer outruns them, so its imbalance column stays
    // near S by construction and is reported, not gated.
    let worst_imbalance = drift_rows
        .iter()
        .filter(|r| r.policy == RoutePolicy::CheapestPrice && r.shards == 4)
        .map(|r| r.imbalance)
        .fold(1.0, f64::max);
    let spread_ok = worst_imbalance < 2.0;
    let overload_speedup = throughput_rows
        .iter()
        .find(|r| r.policy == RoutePolicy::CheapestPrice && r.scenario == "overload")
        .map(|r| r.speedup4())
        .unwrap_or(0.0);

    let mut notes = vec![
        format!(
            "wave-stepped replay is bit-identical for every routing policy at S=4 \
             (routing log, events, prices, schedules, merged frontier): {}",
            check(replay_ok)
        ),
        format!(
            "assignment laws hold (hash never moves a job under wave/price changes and \
             matches the pure sequence function; round-robin is seq mod S; \
             cheapest-price is replay-pinned): {}",
            check(law_ok)
        ),
        format!(
            "S=1 through the sharded harness is bit-identical to the unsharded \
             streaming simulator for every policy: {}",
            check(pin_ok)
        ),
        format!(
            "merged logical energy equals the sum of the shard energies in every \
             throughput, drift and gate cell: {}",
            check(energy_ok)
        ),
        format!(
            "sharded and unsharded competitive ratios stay finite against the best \
             lower bound on every scenario: {}",
            check(ratios_finite)
        ),
        format!(
            "cheapest-price routing spreads rejection-dominated load now that rejected \
             duals ratchet the price up (and cold-start ties rotate): synchronous-harness \
             S=4 imbalance < 2.0 on every scenario (worst {worst_imbalance:.2}; it was ~4 \
             — total herding — while all-rejected batches were not pricing events, and \
             2.25 while below-price rejections could drag the price back down): {}",
            check(spread_ok)
        ),
    ];
    notes.push(
        "the free-running throughput ingest routes each submission against the prices \
         published so far; exact price ties rotate by sequence number, so even when the \
         producer outruns the workers (prices still cold) the stream spreads like \
         round-robin instead of pinning shard 0 into queue-full backoff — balance under \
         live prices is the drift table's imbalance column"
            .into(),
    );
    if quick {
        notes.push(format!(
            "S=4 hash-routed speedup over S=1, quick sweep (informational — the \
             >=2x gate runs in the full sweep): {speedup_list}"
        ));
    } else {
        notes.push(format!(
            "arrivals/sec at S=4 (hash) is >=2x S=1 on at least two fleet \
             scenarios: {} ({at_2x}/6 at >=2x: {speedup_list})",
            check(at_2x >= 2)
        ));
    }
    if quick {
        notes.push(format!(
            "cheapest-price S=4 overload speedup over S=1, quick sweep (informational — \
             the >1x gate runs in the full sweep): {overload_speedup:.2}x"
        ));
    } else {
        notes.push(format!(
            "cheapest-price S=4 ingest on the rejection-dominated overload scenario beats \
             S=1 ({overload_speedup:.2}x) — un-starving the price signal bought back the \
             sharding speedup: {}",
            check(overload_speedup > 1.0)
        ));
    }

    ExperimentOutput {
        id: "E17".into(),
        title: "Sharding one stream: routed partitioning, frontier merge, sharding-cost oracle"
            .into(),
        tables: vec![throughput, drift, determinism],
        notes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e17_quick_produces_three_tables_and_passing_notes() {
        let out = run(true);
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].rows.len(), 18, "6 scenarios x 3 policies");
        assert_eq!(
            out.tables[1].rows.len(),
            36,
            "6 scenarios x 2 policies x 3 shard counts"
        );
        assert_eq!(out.tables[2].rows.len(), 3, "one row per policy");
        for note in &out.notes[..6] {
            assert!(note.contains("yes"), "failing E17 note: {note}");
        }
    }
}
