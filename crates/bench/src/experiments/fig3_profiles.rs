//! E2 — Figure 3: the speed profiles of PD and OA on the nested two-job
//! example; PD is the more conservative of the two.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_workloads::figure3_instance;

use super::ExperimentOutput;
use crate::support::check;

/// Runs E2.
pub fn run(_quick: bool) -> ExperimentOutput {
    let instance = figure3_instance();
    let pd = PdScheduler::default()
        .schedule(&instance)
        .expect("PD schedules the figure 3 instance");
    let oa = OaScheduler
        .schedule(&instance)
        .expect("OA schedules the figure 3 instance");

    let (lo, hi) = instance.horizon();
    let samples = 8;
    let pd_profile = pd.sample_total_speed(lo, hi, samples);
    let oa_profile = oa.sample_total_speed(lo, hi, samples);

    let mut profile = Table::new(
        "Speed profiles (single machine)",
        &["t", "PD speed", "OA speed"],
    );
    for i in 0..samples {
        profile.push_row(vec![
            fmt_f64(pd_profile[i].0),
            fmt_f64(pd_profile[i].1),
            fmt_f64(oa_profile[i].1),
        ]);
    }

    let pd_cost = pd.cost(&instance);
    let oa_cost = oa.cost(&instance);
    let mut costs = Table::new(
        "Cost on the Figure 3 instance",
        &["algorithm", "energy", "lost value", "total"],
    );
    for (name, c) in [("PD", pd_cost), ("OA", oa_cost)] {
        costs.push_row(vec![
            name.into(),
            fmt_f64(c.energy),
            fmt_f64(c.lost_value),
            fmt_f64(c.total()),
        ]);
    }

    // The paper's point: after the last arrival, PD leaves more head-room
    // (lower speed) in the final stretch of the horizon than OA does before
    // the critical work, because PD never re-spreads earlier jobs.
    let last_quarter_start = lo + 0.75 * (hi - lo);
    let pd_tail = pd.sample_total_speed(last_quarter_start, hi, 4);
    let oa_tail = oa.sample_total_speed(last_quarter_start, hi, 4);
    let pd_tail_max = pd_tail.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
    let oa_tail_max = oa_tail.iter().map(|(_, s)| *s).fold(0.0_f64, f64::max);
    let conservative = pd_tail_max <= oa_tail_max + 1e-9;

    ExperimentOutput {
        id: "E2".into(),
        title: "PD vs OA speed profiles on the nested-jobs example (paper Figure 3)".into(),
        tables: vec![profile, costs],
        notes: vec![
            format!(
                "PD's speed in the last quarter of the horizon ({}) does not exceed OA's ({}): {}",
                fmt_f64(pd_tail_max),
                fmt_f64(oa_tail_max),
                check(conservative)
            ),
            "both algorithms finish both jobs (values are set high enough to forbid rejection)"
                .into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e2_produces_profiles_and_costs() {
        let out = run(true);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].rows.len(), 8);
        assert!(out.notes[0].contains("yes"));
    }
}
