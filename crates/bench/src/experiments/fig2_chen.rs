//! E1 — Figure 2: Chen et al. schedule structure before and after the
//! arrival of a new job.

use pss_chen::ChenInterval;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_power::AlphaPower;
use pss_workloads::figure2_instance;

use super::ExperimentOutput;
use crate::support::check;

/// Runs E1.
pub fn run(_quick: bool) -> ExperimentOutput {
    let instance = figure2_instance();
    let alpha = instance.alpha;
    let chen = ChenInterval::new(1.0, instance.machines, AlphaPower::new(alpha));

    // Work vector before the arrival of the last job and after it.
    let all_works: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
    let mut before_works = all_works.clone();
    let new_job = before_works.len() - 1;
    let z = before_works[new_job];
    before_works[new_job] = 0.0;

    let before = chen.solve(&before_works);
    let after = chen.solve(&all_works);

    let mut structure = Table::new(
        "Dedicated/pool structure (Figure 2)",
        &[
            "state",
            "dedicated jobs",
            "pool jobs",
            "pool speed",
            "energy",
        ],
    );
    for (label, sol) in [("before", &before), ("after", &after)] {
        structure.push_row(vec![
            label.to_string(),
            format!(
                "{:?}",
                sol.dedicated.iter().map(|(j, _)| *j).collect::<Vec<_>>()
            ),
            format!("{:?}", sol.pool.iter().map(|(j, _)| *j).collect::<Vec<_>>()),
            fmt_f64(sol.pool_speed),
            fmt_f64(sol.energy),
        ]);
    }

    let loads_before = before.machine_loads();
    let loads_after = after.machine_loads();
    let mut loads = Table::new(
        format!("Machine loads before/after arrival of work z = {z}"),
        &[
            "machine (fastest first)",
            "load before",
            "load after",
            "delta",
            "0 <= delta <= z",
        ],
    );
    let mut prop2_ok = true;
    for i in 0..loads_before.len() {
        let delta = loads_after[i] - loads_before[i];
        let ok = delta >= -1e-9 && delta <= z + 1e-9;
        prop2_ok &= ok;
        loads.push_row(vec![
            format!("{i}"),
            fmt_f64(loads_before[i]),
            fmt_f64(loads_after[i]),
            fmt_f64(delta),
            check(ok).to_string(),
        ]);
    }

    let demoted = before.dedicated.len() > after.dedicated.len()
        || before
            .dedicated
            .iter()
            .any(|(j, _)| after.pool.iter().any(|(p, _)| p == j));

    ExperimentOutput {
        id: "E1".into(),
        title: "Chen et al. per-interval structure before/after a new arrival (paper Figure 2)".into(),
        tables: vec![structure, loads],
        notes: vec![
            format!("Proposition 2 bounds hold on every machine: {}", check(prop2_ok)),
            format!(
                "a previously dedicated job is demoted into the pool by the arrival (as in Figure 2): {}",
                check(demoted)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e1_reports_prop2_holds_and_a_demotion() {
        let out = run(true);
        assert_eq!(out.id, "E1");
        assert_eq!(out.tables.len(), 2);
        assert!(
            out.notes.iter().all(|n| n.contains("yes")),
            "{:?}",
            out.notes
        );
    }
}
