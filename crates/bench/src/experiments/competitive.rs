//! E3 — Theorem 3 upper bound: the empirical competitive ratio of PD stays
//! below `α^α` across random instance families.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{RatioSummary, Table};
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::{best_lower_bound, check, safe_ratio};

/// Runs E3.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 3 } else { 10 };
    let alphas = [1.5, 2.0, 2.5, 3.0];
    let machine_counts = [1usize, 2, 4];

    let mut table = Table::new(
        "Empirical competitive ratio of PD vs lower bound",
        &[
            "alpha",
            "m",
            "n",
            "instances",
            "bound source",
            "mean ratio",
            "max ratio",
            "alpha^alpha",
            "within bound",
        ],
    );
    let mut all_within = true;

    for &alpha in &alphas {
        for &m in &machine_counts {
            // Exact optimum (brute force) is affordable only on one machine
            // with few jobs; larger settings use the certified dual bound.
            let n_jobs = if m == 1 { 10 } else { 18 };
            let mut ratios = Vec::new();
            let mut exact = true;
            for seed in 0..seeds {
                let cfg = RandomConfig {
                    n_jobs,
                    machines: m,
                    alpha,
                    value: ValueModel::ProportionalToEnergy { min: 0.3, max: 5.0 },
                    ..RandomConfig::standard(seed)
                };
                let instance = cfg.generate();
                let run = PdScheduler::default().run(&instance).expect("PD run");
                let lb = best_lower_bound(&instance, &run).expect("lower bound");
                exact &= lb.exact;
                ratios.push(safe_ratio(run.cost().total(), lb.value));
            }
            let summary = RatioSummary::from_ratios(&ratios).expect("nonempty sweep");
            let bound = AlphaPower::new(alpha).competitive_ratio_pd();
            let within = summary.max <= bound + 1e-6;
            all_within &= within;
            table.push_row(vec![
                fmt_f64(alpha),
                m.to_string(),
                n_jobs.to_string(),
                summary.count.to_string(),
                if exact { "exact OPT" } else { "dual bound" }.into(),
                fmt_f64(summary.mean),
                fmt_f64(summary.max),
                fmt_f64(bound),
                check(within).into(),
            ]);
        }
    }

    ExperimentOutput {
        id: "E3".into(),
        title: "Theorem 3 upper bound: cost(PD) / LB stays below alpha^alpha".into(),
        tables: vec![table],
        notes: vec![format!(
            "every sweep stayed within the proven bound: {}",
            check(all_within)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_quick_sweep_respects_the_bound() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
