//! E11 — δ-ablation: the analysed parameter `δ = α^{1-α}` should be a good
//! (near-minimising) choice of PD's only tuning knob.

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{RatioSummary, Table};
use pss_offline::brute_force_optimum;
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::safe_ratio;

/// Runs E11.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 3 } else { 8 };
    let alpha = 2.5;
    let delta_star = AlphaPower::new(alpha).delta_star();
    let multipliers = [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

    // Pre-generate the instances and their optima once (shared across δ).
    let mut instances = Vec::new();
    for seed in 0..seeds {
        let cfg = RandomConfig {
            n_jobs: 12,
            machines: 1,
            alpha,
            value: ValueModel::ProportionalToEnergy { min: 0.2, max: 3.0 },
            ..RandomConfig::standard(6000 + seed)
        };
        let instance = cfg.generate();
        let opt = brute_force_optimum(&instance)
            .expect("brute force")
            .cost
            .total();
        instances.push((instance, opt));
    }

    let mut table = Table::new(
        format!(
            "Ablation of PD's parameter δ (α = {alpha}, δ* = {})",
            fmt_f64(delta_star)
        ),
        &["δ / δ*", "δ", "mean ratio", "max ratio", "mean rejected"],
    );

    let mut best_max = f64::INFINITY;
    let mut best_multiplier = 1.0;
    let mut star_max = f64::INFINITY;

    for &mult in &multipliers {
        let delta = delta_star * mult;
        let scheduler = PdScheduler::with_delta(delta);
        let mut ratios = Vec::new();
        let mut rejected = 0usize;
        for (instance, opt) in &instances {
            let run = scheduler.run(instance).expect("PD run");
            ratios.push(safe_ratio(run.cost().total(), *opt));
            rejected += run.rejected_jobs().len();
        }
        let summary = RatioSummary::from_ratios(&ratios).unwrap();
        if summary.max < best_max {
            best_max = summary.max;
            best_multiplier = mult;
        }
        if (mult - 1.0).abs() < 1e-12 {
            star_max = summary.max;
        }
        table.push_row(vec![
            fmt_f64(mult),
            fmt_f64(delta),
            fmt_f64(summary.mean),
            fmt_f64(summary.max),
            fmt_f64(rejected as f64 / instances.len() as f64),
        ]);
    }

    ExperimentOutput {
        id: "E11".into(),
        title: "δ-ablation: the analysed δ = α^{1-α} is a near-optimal choice".into(),
        tables: vec![table],
        notes: vec![
            format!(
                "worst-case ratio at δ* is {} vs {} at the empirically best multiplier {}",
                fmt_f64(star_max),
                fmt_f64(best_max),
                fmt_f64(best_multiplier)
            ),
            "very small δ accepts too much (pays energy), very large δ rejects too much (pays value); the analysed δ* balances the two".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e11_produces_one_row_per_multiplier() {
        let out = run(true);
        assert_eq!(out.tables[0].rows.len(), 7);
    }
}
