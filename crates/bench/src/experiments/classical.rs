//! E9 — classical (mandatory-completion) substrate sanity: OA, AVR, BKP and
//! qOA against the exact YDS optimum, and Chen et al.'s per-interval
//! algorithm against a naive split.

use pss_chen::ChenInterval;
use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{evaluate_scheduler, RatioSummary, Table};
use pss_power::AlphaPower;
use pss_workloads::{RandomConfig, ValueModel};

use super::ExperimentOutput;
use crate::support::check;

/// Runs E9.
pub fn run(quick: bool) -> ExperimentOutput {
    let seeds: u64 = if quick { 3 } else { 8 };
    let alpha = 2.0;

    // -- Online algorithms vs YDS ------------------------------------------
    let algorithms: Vec<Box<dyn Scheduler>> = vec![
        Box::new(OaScheduler),
        Box::new(AvrScheduler),
        Box::new(QoaScheduler::default()),
        Box::new(BkpScheduler::default()),
        Box::new(PdScheduler::default()),
    ];
    let mut ratios: Vec<Vec<f64>> = vec![Vec::new(); algorithms.len()];

    for seed in 0..seeds {
        let cfg = RandomConfig {
            n_jobs: 12,
            machines: 1,
            alpha,
            value: ValueModel::Mandatory,
            ..RandomConfig::standard(4000 + seed)
        };
        let instance = cfg.generate();
        let opt = YdsScheduler
            .schedule(&instance)
            .expect("YDS")
            .cost(&instance)
            .energy;
        for (i, algo) in algorithms.iter().enumerate() {
            let result = evaluate_scheduler(algo.as_ref(), &instance).expect("baseline run");
            ratios[i].push(result.cost.total() / opt);
        }
    }

    let mut table = Table::new(
        "Mandatory-completion baselines vs YDS (m = 1, alpha = 2)",
        &["algorithm", "mean ratio", "max ratio", "guarantee"],
    );
    let oa_bound = AlphaPower::new(alpha).competitive_ratio_pd();
    let mut oa_within = true;
    for (i, algo) in algorithms.iter().enumerate() {
        let summary = RatioSummary::from_ratios(&ratios[i]).unwrap();
        let guarantee = match algo.name().as_str() {
            "OA" | "PD" => fmt_f64(oa_bound),
            "AVR" => fmt_f64((2.0 * alpha).powf(alpha) / 2.0),
            _ => "-".into(),
        };
        if algo.name() == "OA" || algo.name() == "PD" {
            oa_within &= summary.max <= oa_bound + 1e-6;
        }
        table.push_row(vec![
            algo.name(),
            fmt_f64(summary.mean),
            fmt_f64(summary.max),
            guarantee,
        ]);
    }

    // -- Chen et al. vs a naive per-interval split --------------------------
    let mut chen_table = Table::new(
        "Chen et al. per-interval energy vs naive splits (one interval, alpha = 2)",
        &[
            "machines",
            "jobs",
            "chen energy",
            "one-machine energy",
            "per-job-machine energy",
        ],
    );
    let works = [4.0, 2.0, 1.5, 1.0, 0.5, 0.25];
    let power = AlphaPower::new(alpha);
    for m in [2usize, 4, 6] {
        let chen = ChenInterval::new(1.0, m, power).solve(&works);
        // Naive A: everything on one machine.
        let total: f64 = works.iter().sum();
        let single = power.energy_for_work(total, 1.0);
        // Naive B: each job on its own machine when possible (needs >= 6).
        let per_job: f64 = works.iter().map(|w| power.energy_for_work(*w, 1.0)).sum();
        chen_table.push_row(vec![
            m.to_string(),
            works.len().to_string(),
            fmt_f64(chen.energy),
            fmt_f64(single),
            fmt_f64(per_job),
        ]);
    }

    ExperimentOutput {
        id: "E9".into(),
        title: "Classical substrate sanity: OA/AVR/BKP/qOA vs YDS and Chen vs naive splits".into(),
        tables: vec![table, chen_table],
        notes: vec![
            format!("OA and PD stayed within alpha^alpha of YDS: {}", check(oa_within)),
            "with mandatory values PD degenerates to an OA-like algorithm, as described in Section 3 of the paper".into(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e9_oa_and_pd_within_bound() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
        assert_eq!(out.tables.len(), 2);
    }
}
