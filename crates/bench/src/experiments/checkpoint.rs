//! E14 — checkpoint size/cost vs stream length, and recovery latency.
//!
//! The checkpoint subsystem (PR 5) promises that a long-running stream can
//! be suspended and resumed without perturbing a single decision.  This
//! experiment measures what that costs:
//!
//! 1. **Checkpoint size and capture/restore cost vs stream length** — every
//!    algorithm streamed at two lengths with periodic snapshots, reporting
//!    blob bytes mid-stream and at the end (the committed frontier is part
//!    of a blob, so size grows with the stream), bytes per ingested event,
//!    the JSON envelope's size, mean capture cost and the final blob's
//!    wire-decode + restore cost.
//! 2. **Recovery latency** — a mid-stream kill for every algorithm: restore
//!    from the last periodic checkpoint, replay the delta, and compare with
//!    the failure-free run (identical decisions and cost, checked in the
//!    notes).
//! 3. **Fleet failover** — `ParallelStreamingSimulation::run_with_failover`
//!    with one shard killed and rebalanced onto a fresh worker; the merged
//!    report must equal the no-failure fleet on every deterministic field.

use std::time::Instant;

use pss_core::prelude::*;
use pss_metrics::table::fmt_f64;
use pss_metrics::{blob_to_json, Table};
use pss_sim::{ParallelStreamingSimulation, ShardFailover, StreamReport, StreamingSimulation};
use pss_types::snapshot::Checkpointable;

use super::burst::{burst_instance, shard_instances, COALESCE_WINDOW};
use super::ExperimentOutput;
use crate::support::check;

/// Drives one algorithm through the checkpointed stream and pushes its
/// size/cost row; returns whether the checkpointed stream matched the plain
/// one on decisions and cost.
fn size_row<A>(algo: &A, instance: &Instance, every: usize, table: &mut Table) -> bool
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: Checkpointable,
{
    let sim = StreamingSimulation::with_coalescing(COALESCE_WINDOW);
    let plain = sim.run(algo, instance).expect("plain stream");
    let (stream, checkpoints) = sim
        .run_checkpointed(algo, instance, every)
        .expect("checkpointed stream");
    let ok = streams_agree(&plain, &stream);

    let mid = &checkpoints[checkpoints.len() / 2];
    let last = checkpoints.last().expect("at least the initial checkpoint");
    let wire = last.blob.to_bytes();
    let started = Instant::now();
    let decoded = StateBlob::from_bytes(&wire).expect("wire decode");
    let _restored = <A::Run as Checkpointable>::restore(&decoded).expect("restore");
    let restore_secs = started.elapsed().as_secs_f64();
    let mean_capture =
        checkpoints.iter().map(|c| c.capture_secs).sum::<f64>() / checkpoints.len() as f64;
    let events = stream.events.len().max(1);
    table.push_row(vec![
        stream.algorithm.clone(),
        instance.len().to_string(),
        (checkpoints.len() - 1).to_string(),
        fmt_f64(mid.blob.size_bytes() as f64 / 1024.0),
        fmt_f64(last.blob.size_bytes() as f64 / 1024.0),
        fmt_f64(last.blob.size_bytes() as f64 / events as f64),
        fmt_f64(blob_to_json(&last.blob).len() as f64 / 1024.0),
        fmt_f64(mean_capture * 1e6),
        fmt_f64(restore_secs * 1e6),
    ]);
    ok
}

/// Deterministic-field equality of two stream reports (latencies excluded).
pub(super) fn streams_agree(a: &StreamReport, b: &StreamReport) -> bool {
    a.batches == b.batches
        && a.schedule.segments == b.schedule.segments
        && a.events.len() == b.events.len()
        && a.events.iter().zip(&b.events).all(|(x, y)| {
            x.job == y.job && x.accepted == y.accepted && x.dual.to_bits() == y.dual.to_bits()
        })
        && a.report.total_cost().to_bits() == b.report.total_cost().to_bits()
}

/// OA(m)'s schedules come from an iterative solver; its recovered run is
/// compared at solver tolerance with exact decisions instead of bitwise.
pub(super) fn streams_agree_tol(a: &StreamReport, b: &StreamReport, tol: f64) -> bool {
    a.batches == b.batches
        && a.events.len() == b.events.len()
        && a.events
            .iter()
            .zip(&b.events)
            .all(|(x, y)| x.job == y.job && x.accepted == y.accepted)
        && (a.report.total_cost() - b.report.total_cost()).abs()
            <= tol * a.report.total_cost().max(1.0)
}

/// Runs the mid-stream kill for one algorithm and pushes its recovery row;
/// returns whether the recovered stream equals the failure-free one.
fn recovery_row<A>(
    algo: &A,
    instance: &Instance,
    every: usize,
    table: &mut Table,
    exact: bool,
) -> bool
where
    A: OnlineAlgorithm + ?Sized,
    A::Run: Checkpointable,
{
    let sim = StreamingSimulation::with_coalescing(COALESCE_WINDOW);
    let plain = sim.run(algo, instance).expect("plain stream");
    let kill_at = plain.batches / 2;
    let (recovered, stats) = sim
        .run_with_failover(algo, instance, every, kill_at)
        .expect("failover stream");
    let ok = if exact {
        streams_agree(&plain, &recovered)
    } else {
        streams_agree_tol(&plain, &recovered, 1e-9)
    };
    table.push_row(vec![
        recovered.algorithm.clone(),
        instance.len().to_string(),
        stats.killed_at_batch.to_string(),
        stats.restored_batches.to_string(),
        stats.replayed_events.to_string(),
        fmt_f64(stats.checkpoint_bytes as f64 / 1024.0),
        fmt_f64(stats.restore_secs * 1e6),
        fmt_f64(stats.replay_secs * 1e3),
        fmt_f64(stats.recovery_secs() * 1e3),
    ]);
    ok
}

/// Runs E14.
pub fn run(quick: bool) -> ExperimentOutput {
    let (n_small, n_large, every) = if quick {
        (96, 256, 4)
    } else {
        (1000, 4000, 32)
    };
    let burst = 8usize;

    // ---- Table 1: checkpoint size and capture/restore cost vs length.
    let mut size = Table::new(
        "Checkpoint size and capture/restore cost vs stream length",
        &[
            "algorithm",
            "n",
            "checkpoints",
            "mid blob (KiB)",
            "final blob (KiB)",
            "bytes/event",
            "final JSON (KiB)",
            "capture mean (us)",
            "restore (us)",
        ],
    );
    let mut equivalent = true;
    for &n in &[n_small, n_large] {
        let instance = burst_instance(1, n, burst, 14_000 + n as u64);
        let moa_instance = burst_instance(1, n / 4, burst, 14_100 + n as u64);
        equivalent &= size_row(&PdScheduler::coarse(), &instance, every, &mut size);
        equivalent &= size_row(&OaScheduler, &instance, every, &mut size);
        equivalent &= size_row(&QoaScheduler::default(), &instance, every, &mut size);
        equivalent &= size_row(
            &MultiOaScheduler::default(),
            &moa_instance,
            every,
            &mut size,
        );
        equivalent &= size_row(&CllScheduler, &instance, every, &mut size);
        equivalent &= size_row(&AvrScheduler, &instance, every, &mut size);
        equivalent &= size_row(&BkpScheduler::default(), &instance, every, &mut size);
    }

    // ---- Table 2: recovery latency after a mid-stream kill.
    let mut recovery = Table::new(
        "Recovery latency: kill at half the stream, restore from the last checkpoint, replay the delta",
        &[
            "algorithm",
            "n",
            "killed at batch",
            "restored batch",
            "replayed events",
            "checkpoint (KiB)",
            "restore (us)",
            "replay (ms)",
            "recovery total (ms)",
        ],
    );
    let mut recovered_identical = true;
    {
        let instance = burst_instance(1, n_small, burst, 14_200);
        let moa_instance = burst_instance(1, n_small / 4, burst, 14_300);
        recovered_identical &= recovery_row(
            &PdScheduler::coarse(),
            &instance,
            every,
            &mut recovery,
            true,
        );
        recovered_identical &= recovery_row(&OaScheduler, &instance, every, &mut recovery, true);
        recovered_identical &= recovery_row(
            &QoaScheduler::default(),
            &instance,
            every,
            &mut recovery,
            true,
        );
        recovered_identical &= recovery_row(
            &MultiOaScheduler::default(),
            &moa_instance,
            every,
            &mut recovery,
            false,
        );
        recovered_identical &= recovery_row(&CllScheduler, &instance, every, &mut recovery, true);
        recovered_identical &= recovery_row(&AvrScheduler, &instance, every, &mut recovery, true);
        recovered_identical &= recovery_row(
            &BkpScheduler::default(),
            &instance,
            every,
            &mut recovery,
            true,
        );
    }

    // ---- Table 3: fleet failover with rebalancing.
    let shard_count = if quick { 2 } else { 4 };
    let shard_n = if quick { 64 } else { 512 };
    let mut fleet = Table::new(
        "Fleet failover: one shard killed mid-stream, restored and rebalanced onto a fresh worker",
        &[
            "algorithm",
            "shards",
            "killed shard",
            "killed at batch",
            "replayed events",
            "restore (us)",
            "recovery (ms)",
            "fleet wall (ms)",
            "merged == no-failure",
        ],
    );
    let mut fleet_identical = true;
    for (label, run_one) in fleet_algorithms() {
        let shards = shard_instances(shard_count, shard_n, burst, 14_400);
        let (ok, row) = run_one(&shards, every);
        fleet_identical &= ok;
        let mut cells = vec![label.to_string(), shard_count.to_string()];
        cells.extend(row);
        cells.push(check(ok).into());
        fleet.push_row(cells);
    }

    ExperimentOutput {
        id: "E14".into(),
        title: "Checkpoint size/cost vs stream length and failover recovery latency".into(),
        tables: vec![size, recovery, fleet],
        notes: vec![
            format!(
                "checkpointed streams match the plain runs bit-for-bit \
                 (decisions, duals, schedules, costs): {}",
                check(equivalent)
            ),
            format!(
                "killed-and-restored streams equal the failure-free runs \
                 (exact; solver accuracy for OA(m)): {}",
                check(recovered_identical)
            ),
            format!(
                "killed-and-rebalanced shards yield merged fleet reports identical to the \
                 no-failure run on every deterministic field: {}",
                check(fleet_identical)
            ),
            "a legacy full-frontier blob holds the complete dynamic state including the \
             committed frontier, so its size grows linearly with the stream — E18 \
             measures the (log, blob) split that keeps the live blob O(active) at \
             per-burst cadence (see the recipe in src/README.md)"
                .into(),
        ],
    }
}

/// The fleet-failover sweep, one closure per algorithm (the generic bound
/// `A::Run: Checkpointable` cannot be expressed with trait objects).
#[allow(clippy::type_complexity)]
fn fleet_algorithms() -> Vec<(
    &'static str,
    Box<dyn Fn(&[Instance], usize) -> (bool, Vec<String>)>,
)> {
    fn drill<A>(algo: &A, shards: &[Instance], every: usize) -> (bool, Vec<String>)
    where
        A: OnlineAlgorithm + Sync + ?Sized,
        A::Run: Checkpointable,
    {
        let sim = ParallelStreamingSimulation::with_coalescing(COALESCE_WINDOW);
        let clean = sim.run(algo, shards).expect("no-failure fleet");
        let victim = shards.len() / 2;
        let kill_at = clean.shards[victim].batches / 2;
        let (fleet, stats) = sim
            .run_with_failover(
                algo,
                shards,
                &[ShardFailover {
                    shard: victim,
                    kill_at_batch: kill_at,
                    checkpoint_every: every,
                }],
            )
            .expect("failover fleet");
        let ok = clean.shards.len() == fleet.shards.len()
            && clean
                .shards
                .iter()
                .zip(&fleet.shards)
                .all(|(a, b)| streams_agree(a, b));
        let s = &stats[0];
        (
            ok,
            vec![
                victim.to_string(),
                s.killed_at_batch.to_string(),
                s.replayed_events.to_string(),
                fmt_f64(s.restore_secs * 1e6),
                fmt_f64(s.recovery_secs() * 1e3),
                fmt_f64(fleet.wall_clock_secs * 1e3),
            ],
        )
    }
    vec![
        (
            "CLL",
            Box::new(|shards: &[Instance], every| drill(&CllScheduler, shards, every)),
        ),
        (
            "AVR",
            Box::new(|shards: &[Instance], every| drill(&AvrScheduler, shards, every)),
        ),
        (
            "BKP",
            Box::new(|shards: &[Instance], every| drill(&BkpScheduler::default(), shards, every)),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e14_quick_produces_all_three_tables_and_passing_notes() {
        let out = run(true);
        assert_eq!(out.tables.len(), 3);
        // 7 algorithms x 2 lengths; 7 recovery rows; 3 fleet rows.
        assert_eq!(out.tables[0].rows.len(), 14);
        assert_eq!(out.tables[1].rows.len(), 7);
        assert_eq!(out.tables[2].rows.len(), 3);
        for note in &out.notes[..3] {
            assert!(note.contains("yes"), "failing E14 note: {note}");
        }
    }
}
