//! E7 — Proposition 2: load monotonicity of Chen et al.'s algorithm under
//! a single new arrival, measured over random work vectors.

use pss_chen::ChenInterval;
use pss_metrics::table::fmt_f64;
use pss_metrics::Table;
use pss_power::AlphaPower;
use pss_workloads::SmallRng;

use super::ExperimentOutput;
use crate::support::check;

/// Runs E7.
pub fn run(quick: bool) -> ExperimentOutput {
    let trials = if quick { 500 } else { 5000 };
    let mut rng = SmallRng::seed_from_u64(42);
    let alpha = 2.5;

    // Histogram of delta / z over all machines and trials, bucketed in
    // tenths, plus violation counters.
    let mut histogram = [0usize; 10];
    let mut violations = 0usize;
    let mut samples = 0usize;

    for _ in 0..trials {
        let m = rng.usize_range(1, 8);
        let n = rng.usize_range(0, 10);
        let mut works: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 5.0)).collect();
        let z: f64 = rng.f64_range(0.01, 5.0);
        let chen = ChenInterval::new(1.0, m, AlphaPower::new(alpha));
        let before = chen.solve(&works).machine_loads();
        works.push(z);
        let after = chen.solve(&works).machine_loads();
        for i in 0..m {
            let delta = after[i] - before[i];
            samples += 1;
            if delta < -1e-9 || delta > z + 1e-9 {
                violations += 1;
            }
            let bucket = ((delta / z).clamp(0.0, 0.999) * 10.0) as usize;
            histogram[bucket] += 1;
        }
    }

    let mut table = Table::new(
        format!("Distribution of (L'_i - L_i) / z over {samples} machine samples"),
        &["bucket", "count", "fraction"],
    );
    for (b, count) in histogram.iter().enumerate() {
        table.push_row(vec![
            format!("[{:.1}, {:.1})", b as f64 / 10.0, (b + 1) as f64 / 10.0),
            count.to_string(),
            fmt_f64(*count as f64 / samples as f64),
        ]);
    }

    ExperimentOutput {
        id: "E7".into(),
        title: "Proposition 2: per-machine load change after one arrival lies in [0, z]".into(),
        tables: vec![table],
        notes: vec![format!(
            "violations of 0 <= L'_i - L_i <= z over {} random trials: {} ({})",
            trials,
            violations,
            check(violations == 0)
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e7_no_violations() {
        let out = run(true);
        assert!(out.notes[0].contains("yes"), "{:?}", out.notes);
    }
}
