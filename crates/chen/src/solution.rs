//! The Chen et al. per-interval solver.

use pss_power::{AlphaPower, PowerFunction};
use pss_types::num;

/// Relative tolerance used when testing the dedicated-job condition.  A job
/// whose work is within this relative margin of the remaining average is
/// treated as satisfying the `≥` of Equation (5); the resulting schedules
/// (and energies) are identical either way because the job then runs at the
/// pool speed anyway.
const DEDICATED_REL_EPS: f64 = 1e-12;

/// The role of a job inside one atomic interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobRole {
    /// The job runs alone on its own machine at speed `u_j / l_k`.
    Dedicated,
    /// The job shares the pool machines at the common pool speed.
    Pool,
    /// The job has no work in this interval.
    Absent,
}

/// Solver for one atomic interval: interval length, machine count and power
/// function.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChenInterval {
    /// Length `l_k` of the atomic interval (must be positive).
    pub length: f64,
    /// Number of machines `m`.
    pub machines: usize,
    /// The power function `P_α`.
    pub power: AlphaPower,
}

/// The energy-optimal schedule structure Chen et al.'s algorithm produces
/// for one atomic interval and one fixed work assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalSolution {
    /// Interval length the solution was computed for.
    pub length: f64,
    /// Number of machines.
    pub machines: usize,
    /// Dedicated jobs as `(job, work)` pairs, sorted by decreasing work.
    /// Job `i` of this list runs alone on machine `i` at speed `work / length`.
    pub dedicated: Vec<(usize, f64)>,
    /// Pool jobs as `(job, work)` pairs (every listed job has positive work).
    pub pool: Vec<(usize, f64)>,
    /// Number of pool machines `m − |dedicated|`.
    pub pool_machines: usize,
    /// The common speed of the pool machines (0 if there is no pool work).
    pub pool_speed: f64,
    /// Total energy `P_k` of the interval under the given power function.
    pub energy: f64,
}

impl ChenInterval {
    /// Creates a solver for an interval of length `length` on `machines`
    /// machines.
    ///
    /// # Panics
    /// Panics if `length` is not positive and finite or `machines == 0`.
    pub fn new(length: f64, machines: usize, power: AlphaPower) -> Self {
        assert!(
            length.is_finite() && length > 0.0,
            "atomic interval length must be positive, got {length}"
        );
        assert!(machines > 0, "need at least one machine");
        Self {
            length,
            machines,
            power,
        }
    }

    /// Runs Chen et al.'s algorithm for the dense work vector `works`
    /// (`works[j]` = work of job `j` in this interval; zero entries are
    /// ignored).
    ///
    /// The total work may exceed what the machines could do at any fixed
    /// speed bound — speeds are unbounded in the model — so the solver never
    /// fails; it returns the unique energy-minimal structure.
    pub fn solve(&self, works: &[f64]) -> IntervalSolution {
        let mut positive: Vec<(usize, f64)> = works
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, u)| *u > 0.0)
            .collect();
        // Sort by decreasing work; ties broken by job id for determinism.
        positive.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));

        let total: f64 = num::stable_sum(positive.iter().map(|(_, u)| *u));
        let m = self.machines;

        // -- Dedicated prefix (Equation (5)) ------------------------------
        let mut dedicated: Vec<(usize, f64)> = Vec::new();
        let mut remaining = total;
        for (rank, &(job, u)) in positive.iter().enumerate() {
            if rank >= m {
                break;
            }
            let rest = remaining - u;
            let machines_left = m - rank - 1;
            let is_dedicated = if machines_left == 0 {
                // Last machine: only dedicated if nothing else remains.
                rest <= DEDICATED_REL_EPS * total.max(1.0)
            } else {
                u * machines_left as f64 >= rest * (1.0 - DEDICATED_REL_EPS)
            };
            if is_dedicated {
                dedicated.push((job, u));
                remaining = rest;
            } else {
                break;
            }
        }

        let pool: Vec<(usize, f64)> = positive.iter().copied().skip(dedicated.len()).collect();
        let pool_machines = m - dedicated.len();
        let pool_work: f64 = num::stable_sum(pool.iter().map(|(_, u)| *u));
        let pool_speed = if pool_machines > 0 && pool_work > 0.0 {
            pool_work / (pool_machines as f64 * self.length)
        } else {
            0.0
        };

        let energy = {
            let ded: f64 = num::stable_sum(
                dedicated
                    .iter()
                    .map(|(_, u)| self.power.energy_for_work(*u, self.length)),
            );
            let pool_e = if pool_machines > 0 {
                pool_machines as f64 * self.power.energy_at_speed(pool_speed, self.length)
            } else {
                0.0
            };
            ded + pool_e
        };

        IntervalSolution {
            length: self.length,
            machines: m,
            dedicated,
            pool,
            pool_machines,
            pool_speed,
            energy,
        }
    }
}

impl IntervalSolution {
    /// The role of job `j` in this interval.
    pub fn role(&self, job: usize) -> JobRole {
        if self.dedicated.iter().any(|(i, _)| *i == job) {
            JobRole::Dedicated
        } else if self.pool.iter().any(|(i, _)| *i == job) {
            JobRole::Pool
        } else {
            JobRole::Absent
        }
    }

    /// The speed at which job `j`'s work is processed: its own speed if
    /// dedicated, the pool speed if pooled, and 0 if absent.
    pub fn job_speed(&self, job: usize) -> f64 {
        if let Some((_, u)) = self.dedicated.iter().find(|(i, _)| *i == job) {
            u / self.length
        } else if self.pool.iter().any(|(i, _)| *i == job) {
            self.pool_speed
        } else {
            0.0
        }
    }

    /// The speed an *infinitesimal* amount of new work would be processed at
    /// if it were added to this interval for a job currently absent from it.
    ///
    /// A new infinitesimal job always enters as a pool job (it is the
    /// smallest); if all machines are currently dedicated, adding it demotes
    /// the slowest dedicated job to the pool, so the marginal speed is the
    /// slowest dedicated speed.  With no work at all the marginal speed is 0.
    pub fn marginal_speed_new_job(&self) -> f64 {
        if self.pool_machines > 0 {
            self.pool_speed
        } else {
            self.dedicated
                .last()
                .map(|(_, u)| u / self.length)
                .unwrap_or(0.0)
        }
    }

    /// The speed used for the marginal cost of job `j`: the job's current
    /// speed if it has work here, otherwise the marginal speed of a new job.
    pub fn marginal_speed(&self, job: usize) -> f64 {
        match self.role(job) {
            JobRole::Absent => self.marginal_speed_new_job(),
            _ => self.job_speed(job),
        }
    }

    /// The total work on each machine, sorted in decreasing order
    /// (`L_1 ≥ L_2 ≥ … ≥ L_m`), the quantity analysed in Proposition 2.
    pub fn machine_loads(&self) -> Vec<f64> {
        let mut loads: Vec<f64> = self.dedicated.iter().map(|(_, u)| *u).collect();
        let pool_load = self.pool_speed * self.length;
        loads.extend(std::iter::repeat_n(pool_load, self.pool_machines));
        // Dedicated loads are ≥ pool loads by construction, but sort anyway
        // to be robust against tolerance effects at the boundary.
        loads.sort_by(|a, b| b.total_cmp(a));
        loads
    }

    /// Number of jobs with positive work in this interval.
    pub fn active_jobs(&self) -> usize {
        self.dedicated.len() + self.pool.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solver(m: usize) -> ChenInterval {
        ChenInterval::new(1.0, m, AlphaPower::new(3.0))
    }

    fn dense(pairs: &[(usize, f64)], n: usize) -> Vec<f64> {
        let mut v = vec![0.0; n];
        for (j, u) in pairs {
            v[*j] = *u;
        }
        v
    }

    #[test]
    fn empty_interval_has_zero_energy() {
        let sol = solver(4).solve(&[0.0, 0.0]);
        assert_eq!(sol.energy, 0.0);
        assert_eq!(sol.active_jobs(), 0);
        assert_eq!(sol.machine_loads(), vec![0.0; 4]);
        assert_eq!(sol.marginal_speed_new_job(), 0.0);
        assert_eq!(sol.role(0), JobRole::Absent);
    }

    #[test]
    fn single_job_single_machine() {
        let sol = solver(1).solve(&[2.0]);
        assert_eq!(sol.dedicated, vec![(0, 2.0)]);
        assert_eq!(sol.pool_machines, 0);
        assert!((sol.energy - 8.0).abs() < 1e-12); // speed 2, alpha 3, time 1
        assert!((sol.job_speed(0) - 2.0).abs() < 1e-12);
        assert_eq!(sol.role(0), JobRole::Dedicated);
        // A new job would displace the dedicated one into the pool, so the
        // marginal speed is the dedicated speed.
        assert!((sol.marginal_speed_new_job() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn one_large_job_dominates_two_small_ones() {
        // m = 2: works 10, 1, 1.  Job 0 is dedicated (10 >= (1+1)/1);
        // jobs 1, 2 pool on one machine at speed 2.
        let sol = solver(2).solve(&dense(&[(0, 10.0), (1, 1.0), (2, 1.0)], 3));
        assert_eq!(sol.dedicated, vec![(0, 10.0)]);
        assert_eq!(sol.pool.len(), 2);
        assert_eq!(sol.pool_machines, 1);
        assert!((sol.pool_speed - 2.0).abs() < 1e-12);
        assert!((sol.energy - (1000.0 + 8.0)).abs() < 1e-9);
        assert_eq!(sol.role(1), JobRole::Pool);
        assert!((sol.job_speed(1) - 2.0).abs() < 1e-12);
        assert_eq!(sol.machine_loads(), vec![10.0, 2.0]);
    }

    #[test]
    fn equal_jobs_all_pool_when_more_jobs_than_machines() {
        // m = 2, three equal jobs of work 1: no job is dedicated
        // (1 < 2/1), all pool at speed 1.5.
        let sol = solver(2).solve(&[1.0, 1.0, 1.0]);
        assert!(sol.dedicated.is_empty());
        assert_eq!(sol.pool_machines, 2);
        assert!((sol.pool_speed - 1.5).abs() < 1e-12);
        assert_eq!(sol.machine_loads(), vec![1.5, 1.5]);
    }

    #[test]
    fn all_jobs_dedicated_when_fewer_jobs_than_machines_and_balanced() {
        // m = 3, works 3, 2, 1: job0: 3 >= 3/2, job1: 2 >= 1/1, job2: last
        // machine, nothing remains => all dedicated.
        let sol = solver(3).solve(&[3.0, 2.0, 1.0]);
        assert_eq!(sol.dedicated.len(), 3);
        assert_eq!(sol.pool_machines, 0);
        assert_eq!(sol.machine_loads(), vec![3.0, 2.0, 1.0]);
        let expected_energy = 27.0 + 8.0 + 1.0;
        assert!((sol.energy - expected_energy).abs() < 1e-9);
        // Marginal new work would run at the slowest dedicated speed.
        assert!((sol.marginal_speed_new_job() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn partial_dedication_mixed_case() {
        // m = 3, works 9, 2, 2, 2: job0 dedicated (9 >= 6/2 = 3); job1 not
        // (2 < 4/1); pool = {1, 2, 3} on 2 machines at speed 3.
        let sol = solver(3).solve(&[9.0, 2.0, 2.0, 2.0]);
        assert_eq!(sol.dedicated, vec![(0, 9.0)]);
        assert_eq!(sol.pool.len(), 3);
        assert_eq!(sol.pool_machines, 2);
        assert!((sol.pool_speed - 3.0).abs() < 1e-12);
        assert_eq!(sol.machine_loads(), vec![9.0, 3.0, 3.0]);
    }

    #[test]
    fn dedicated_boundary_case_is_consistent() {
        // m = 2, works 1, 1: job0: 1 >= 1/1 holds with equality, so job0 is
        // dedicated; job1 is then alone on the last machine and dedicated
        // too.  Either classification gives the same loads and energy.
        let sol = solver(2).solve(&[1.0, 1.0]);
        assert_eq!(sol.machine_loads(), vec![1.0, 1.0]);
        assert!((sol.energy - 2.0).abs() < 1e-12);
    }

    #[test]
    fn interval_length_scales_speeds() {
        let chen = ChenInterval::new(2.0, 2, AlphaPower::new(2.0));
        let sol = chen.solve(&[4.0, 1.0, 1.0]);
        // Job 0 dedicated at speed 2; pool speed (1+1)/(1*2) = 1.
        assert!((sol.job_speed(0) - 2.0).abs() < 1e-12);
        assert!((sol.pool_speed - 1.0).abs() < 1e-12);
        // Energy: 2^2*2 + 1^2*2 = 10.
        assert!((sol.energy - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sorting_is_by_work_not_job_id() {
        let sol = solver(2).solve(&dense(&[(3, 10.0), (0, 1.0), (1, 1.0)], 4));
        assert_eq!(sol.dedicated, vec![(3, 10.0)]);
    }

    #[test]
    #[should_panic(expected = "length must be positive")]
    fn zero_length_interval_rejected() {
        ChenInterval::new(0.0, 1, AlphaPower::new(2.0));
    }

    #[test]
    fn more_dedicated_than_pool_never_happens_beyond_m() {
        // With 5 equal jobs and 3 machines, at most 3 machines are used.
        let sol = solver(3).solve(&[1.0; 5]);
        assert!(sol.dedicated.len() <= 3);
        assert_eq!(sol.machine_loads().len(), 3);
        let total: f64 = sol.machine_loads().iter().sum();
        assert!((total - 5.0).abs() < 1e-9);
    }
}
