//! Conversion of an [`IntervalSolution`] into concrete machine-level
//! segments.
//!
//! Dedicated jobs occupy their own machine for the whole interval.  Pool
//! jobs are placed on the pool machines with **McNaughton's wrap-around
//! rule**: jobs are laid out back to back at the common pool speed; when a
//! job crosses the end of the interval on one machine it "wraps" onto the
//! next machine starting at the beginning of the interval.  Because every
//! pool job's processing time at the pool speed is at most the interval
//! length, the two pieces of a wrapped job never overlap in time, so the
//! nonparallelism constraint of the model is respected.

use pss_types::{num, JobId, Segment};

use crate::solution::IntervalSolution;

/// Places the solution into the absolute time window `[start, start + length)`
/// using machines `machine_offset..machine_offset + solution.machines`,
/// returning the machine-level segments.
///
/// The caller chooses `machine_offset` (normally 0) and guarantees that the
/// window corresponds to the atomic interval the solution was computed for.
pub fn place_interval(
    solution: &IntervalSolution,
    start: f64,
    machine_offset: usize,
    job_id_of: impl Fn(usize) -> JobId,
) -> Vec<Segment> {
    let l = solution.length;
    let end = start + l;
    let mut segments = Vec::new();

    // Dedicated jobs: machine i runs job i of the dedicated list alone.
    for (i, (job, work)) in solution.dedicated.iter().enumerate() {
        let speed = work / l;
        if speed <= 0.0 {
            continue;
        }
        segments.push(Segment::work(
            machine_offset + i,
            start,
            end,
            speed,
            job_id_of(*job),
        ));
    }

    // Pool jobs: McNaughton wrap-around on the remaining machines.
    if solution.pool_speed > 0.0 && solution.pool_machines > 0 {
        let first_pool_machine = machine_offset + solution.dedicated.len();
        let mut machine = first_pool_machine;
        let mut offset = 0.0_f64; // time offset within the interval
        for (job, work) in &solution.pool {
            let mut duration = work / solution.pool_speed;
            debug_assert!(
                duration <= l * (1.0 + 1e-9),
                "pool job longer than the interval: {duration} > {l}"
            );
            duration = duration.min(l);
            let mut remaining = duration;
            while remaining > 0.0 {
                let available = l - offset;
                let piece = remaining.min(available);
                if piece > 0.0 && !num::approx_zero(piece) {
                    segments.push(Segment::work(
                        machine,
                        start + offset,
                        start + offset + piece,
                        solution.pool_speed,
                        job_id_of(*job),
                    ));
                }
                remaining -= piece;
                offset += piece;
                if num::approx_ge(offset, l) {
                    machine += 1;
                    offset = 0.0;
                }
                if remaining <= 1e-15 {
                    break;
                }
            }
        }
    }

    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::ChenInterval;
    use pss_power::AlphaPower;
    use pss_types::num::stable_sum;

    fn place(works: &[f64], m: usize, length: f64) -> (IntervalSolution, Vec<Segment>) {
        let chen = ChenInterval::new(length, m, AlphaPower::new(3.0));
        let sol = chen.solve(works);
        let segs = place_interval(&sol, 10.0, 0, JobId);
        (sol, segs)
    }

    fn work_of_job(segments: &[Segment], job: usize) -> f64 {
        stable_sum(
            segments
                .iter()
                .filter(|s| s.job == Some(JobId(job)))
                .map(|s| s.work_amount()),
        )
    }

    #[test]
    fn dedicated_jobs_get_their_own_machine() {
        let (_, segs) = place(&[3.0, 2.0, 1.0], 3, 1.0);
        // Every job fully processed.
        for (j, w) in [(0, 3.0), (1, 2.0), (2, 1.0)] {
            assert!((work_of_job(&segs, j) - w).abs() < 1e-9, "job {j}");
        }
        // Each on a distinct machine, spanning the whole interval.
        let machines: Vec<usize> = segs.iter().map(|s| s.machine).collect();
        let mut sorted = machines.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3);
        for s in &segs {
            assert_eq!((s.start, s.end), (10.0, 11.0));
        }
    }

    #[test]
    fn pool_jobs_are_wrapped_without_time_overlap() {
        // m = 2, three equal jobs: all pool at speed 1.5, each takes 2/3 of
        // the interval, so one of them wraps across machines.
        let (sol, segs) = place(&[1.0, 1.0, 1.0], 2, 1.0);
        assert_eq!(sol.pool_machines, 2);
        for j in 0..3 {
            assert!((work_of_job(&segs, j) - 1.0).abs() < 1e-9, "job {j}");
        }
        // No overlapping segments on a machine.
        for m in 0..2 {
            let mut on_m: Vec<&Segment> = segs.iter().filter(|s| s.machine == m).collect();
            on_m.sort_by(|a, b| a.start.total_cmp(&b.start));
            for pair in on_m.windows(2) {
                assert!(pair[0].end <= pair[1].start + 1e-9);
            }
        }
        // The wrapped job's two pieces must not overlap in time.
        for j in 0..3 {
            let pieces: Vec<&Segment> = segs.iter().filter(|s| s.job == Some(JobId(j))).collect();
            if pieces.len() == 2 {
                assert!(!pieces[0].overlaps(pieces[1]), "job {j} overlaps itself");
            }
        }
    }

    #[test]
    fn placement_energy_matches_solution_energy() {
        let alpha = 3.0;
        let (sol, segs) = place(&[9.0, 2.0, 2.0, 2.0], 3, 1.0);
        let seg_energy = stable_sum(segs.iter().map(|s| s.energy(alpha)));
        assert!((seg_energy - sol.energy).abs() < 1e-9 * sol.energy.max(1.0));
    }

    #[test]
    fn machine_offset_shifts_machines() {
        let chen = ChenInterval::new(1.0, 2, AlphaPower::new(2.0));
        let sol = chen.solve(&[1.0, 1.0, 1.0]);
        let segs = place_interval(&sol, 0.0, 5, JobId);
        assert!(segs.iter().all(|s| s.machine >= 5 && s.machine < 7));
    }

    #[test]
    fn empty_solution_produces_no_segments() {
        let (_, segs) = place(&[0.0, 0.0], 2, 1.0);
        assert!(segs.is_empty());
    }

    #[test]
    fn pool_job_exactly_filling_interval_is_single_piece() {
        // m = 2, works 2, 1, 1: job0 dedicated (2 >= 2/1), jobs 1 and 2 pool
        // at speed 2 on one machine; each takes 0.5 of the interval.
        let (sol, segs) = place(&[2.0, 1.0, 1.0], 2, 1.0);
        assert_eq!(sol.dedicated.len(), 1);
        let pieces: Vec<&Segment> = segs.iter().filter(|s| s.job == Some(JobId(1))).collect();
        assert_eq!(pieces.len(), 1);
    }
}
