//! # pss-chen
//!
//! The per-interval multiprocessor substrate of the paper: an implementation
//! of the energy-optimal algorithm of **Chen et al. (ECRTS 2004)** for
//! scheduling a fixed work assignment on `m` speed-scalable processors
//! within one atomic interval, as described in Section 2.2 of Kling &
//! Pietrzyk and in Bingham & Greenstreet (ISPA 2008), Section 3.1.
//!
//! Given the amounts of work `u_j = x_{jk} · w_j` that each job places in an
//! atomic interval `T_k` of length `l_k`, the algorithm
//!
//! 1. sorts the jobs by decreasing work,
//! 2. declares the maximal prefix of "large" jobs *dedicated* — a job is
//!    dedicated when its work is at least the average of the remaining work
//!    over the remaining machines (Equation (5) of the paper) — and runs
//!    each dedicated job alone on its own machine at the minimal feasible
//!    constant speed `u_j / l_k`,
//! 3. runs all remaining (*pool*) jobs on the remaining machines at one
//!    common speed, placed with McNaughton's wrap-around rule.
//!
//! The crate exposes:
//!
//! * [`ChenInterval`] / [`IntervalSolution`] — the solver and its result
//!   (dedicated set, pool speed, machine loads, energy),
//! * [`interval_power`] and [`interval_power_derivative`] — the per-interval
//!   power function `P_k` of the convex program and its partial derivatives
//!   (Proposition 1 of the paper),
//! * [`placement`] — conversion of an [`IntervalSolution`] into concrete
//!   machine-level [`Segment`](pss_types::Segment)s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod placement;
pub mod power_fn;
pub mod solution;

pub use power_fn::{interval_power, interval_power_derivative};
pub use solution::{ChenInterval, IntervalSolution, JobRole};
