//! The per-interval power function `P_k` of the convex program and its
//! partial derivatives (Proposition 1 of the paper).

use pss_power::{AlphaPower, PowerFunction};

use crate::solution::ChenInterval;

/// Evaluates the per-interval power (energy) function
/// `P_k(x_{1k}, …, x_{nk})` of Equation (6): the energy Chen et al.'s
/// algorithm spends in an atomic interval of length `length` on `machines`
/// machines when job `j` places `fractions[j] · workloads[j]` units of work
/// in the interval.
///
/// `P_k` is convex with `P_k(0) = 0` (Proposition 1(a)).
pub fn interval_power(
    power: AlphaPower,
    length: f64,
    machines: usize,
    fractions: &[f64],
    workloads: &[f64],
) -> f64 {
    let works = to_works(fractions, workloads);
    ChenInterval::new(length, machines, power)
        .solve(&works)
        .energy
}

/// Evaluates the partial derivative `∂P_k/∂x_{jk}` at the given assignment:
/// `w_j · P'_α(s_{jk})`, where `s_{jk}` is the speed Chen et al.'s algorithm
/// uses for job `j`'s work in this interval (Proposition 1(b)).
///
/// For a job with no work in the interval this is the right derivative, i.e.
/// the marginal cost of giving it its first infinitesimal piece of work —
/// exactly the quantity `λ_{jk}/δ` the paper's PD algorithm evaluates on
/// arrival (Listing 1, line 3).
pub fn interval_power_derivative(
    power: AlphaPower,
    length: f64,
    machines: usize,
    fractions: &[f64],
    workloads: &[f64],
    job: usize,
) -> f64 {
    let works = to_works(fractions, workloads);
    let sol = ChenInterval::new(length, machines, power).solve(&works);
    let speed = sol.marginal_speed(job);
    workloads.get(job).copied().unwrap_or(0.0) * power.marginal(speed)
}

fn to_works(fractions: &[f64], workloads: &[f64]) -> Vec<f64> {
    assert_eq!(
        fractions.len(),
        workloads.len(),
        "fractions and workloads must have the same length"
    );
    fractions
        .iter()
        .zip(workloads)
        .map(|(x, w)| x * w)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-7;

    fn numeric_derivative(
        power: AlphaPower,
        length: f64,
        machines: usize,
        fractions: &[f64],
        workloads: &[f64],
        job: usize,
    ) -> f64 {
        // Central difference where possible, forward difference at 0.
        let h = 1e-6;
        let mut up = fractions.to_vec();
        up[job] += h;
        let f_up = interval_power(power, length, machines, &up, workloads);
        if fractions[job] >= h {
            let mut down = fractions.to_vec();
            down[job] -= h;
            let f_down = interval_power(power, length, machines, &down, workloads);
            (f_up - f_down) / (2.0 * h)
        } else {
            let f0 = interval_power(power, length, machines, fractions, workloads);
            (f_up - f0) / h
        }
    }

    #[test]
    fn power_at_zero_is_zero() {
        let p = AlphaPower::new(2.5);
        assert_eq!(interval_power(p, 1.0, 3, &[0.0, 0.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn power_matches_hand_computation() {
        let p = AlphaPower::new(2.0);
        // One machine, one job: fraction 0.5 of workload 4 = work 2 in a
        // length-2 interval => speed 1, energy 1^2 * 2 = 2.
        let e = interval_power(p, 2.0, 1, &[0.5], &[4.0]);
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn derivative_matches_finite_differences_dedicated_and_pool() {
        let p = AlphaPower::new(3.0);
        let workloads = [4.0, 2.0, 2.0, 1.0];
        let fractions = [0.9, 0.5, 0.5, 0.8];
        for m in [1usize, 2, 3, 4] {
            for job in 0..4 {
                let analytic = interval_power_derivative(p, 1.5, m, &fractions, &workloads, job);
                let numeric = numeric_derivative(p, 1.5, m, &fractions, &workloads, job);
                assert!(
                    (analytic - numeric).abs() <= TOL * numeric.abs().max(1.0),
                    "m={m}, job={job}: analytic {analytic} vs numeric {numeric}"
                );
            }
        }
    }

    #[test]
    fn derivative_for_absent_job_is_marginal_cost_of_first_work() {
        let p = AlphaPower::new(2.0);
        let workloads = [2.0, 3.0];
        let fractions = [0.5, 0.0];
        // Job 1 has no work yet; its marginal cost equals w_1 * P'(pool speed).
        let d = interval_power_derivative(p, 1.0, 2, &fractions, &workloads, 1);
        let numeric = numeric_derivative(p, 1.0, 2, &fractions, &workloads, 1);
        assert!(
            (d - numeric).abs() < 1e-4,
            "analytic {d} vs numeric {numeric}"
        );
    }

    #[test]
    fn convexity_along_random_lines() {
        // P_k restricted to a segment between two assignments must satisfy
        // the midpoint convexity inequality (Proposition 1(a)).
        let p = AlphaPower::new(2.5);
        let workloads = [3.0, 1.0, 2.0];
        let a = [0.2, 0.9, 0.1];
        let b = [0.8, 0.1, 0.7];
        for m in [1usize, 2, 3] {
            let mid: Vec<f64> = a.iter().zip(&b).map(|(x, y)| 0.5 * (x + y)).collect();
            let fa = interval_power(p, 1.0, m, &a, &workloads);
            let fb = interval_power(p, 1.0, m, &b, &workloads);
            let fm = interval_power(p, 1.0, m, &mid, &workloads);
            assert!(fm <= 0.5 * (fa + fb) + 1e-9, "m={m}");
        }
    }
}
