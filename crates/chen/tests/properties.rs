//! Property-based tests of the Chen et al. substrate.
//!
//! These verify the structural results the paper's analysis relies on:
//!
//! * Proposition 1(a): `P_k` is convex with `P_k(0) = 0`;
//! * Proposition 1(b): the analytic partial derivatives match finite
//!   differences;
//! * Proposition 2: when a single job's work grows from 0 to `z`, the load
//!   of the i-th fastest machine changes by some amount in `[0, z]`;
//! * energy optimality: Chen's split never does worse than natural
//!   alternative feasible splits.

use proptest::prelude::*;

use pss_chen::{interval_power, interval_power_derivative, ChenInterval};
use pss_power::{AlphaPower, PowerFunction};

fn alpha_strategy() -> impl Strategy<Value = f64> {
    prop_oneof![Just(1.5), Just(2.0), Just(2.5), Just(3.0), Just(4.0)]
}

fn works_strategy(max_jobs: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0f64..5.0, 1..=max_jobs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Proposition 2: adding a new job with work `z` to an interval moves
    /// every (sorted) machine load up by at most `z` and never down.
    #[test]
    fn prop2_load_monotonicity(
        alpha in alpha_strategy(),
        mut works in works_strategy(8),
        z in 0.01f64..8.0,
        m in 1usize..6,
        length in 0.1f64..4.0,
    ) {
        let chen = ChenInterval::new(length, m, AlphaPower::new(alpha));
        let before = chen.solve(&works).machine_loads();
        works.push(z);
        let after = chen.solve(&works).machine_loads();
        prop_assert_eq!(before.len(), after.len());
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            prop_assert!(a - b >= -1e-9 * (1.0 + b.abs()),
                "load of machine {} decreased: {} -> {}", i, b, a);
            prop_assert!(a - b <= z + 1e-9 * (1.0 + z),
                "load of machine {} grew by more than z={}: {} -> {}", i, z, b, a);
        }
    }

    /// Proposition 1(a): P_k is convex along random lines and P_k(0) = 0.
    #[test]
    fn prop1_convexity(
        alpha in alpha_strategy(),
        a in prop::collection::vec(0.0f64..1.0, 1..6),
        b_seed in prop::collection::vec(0.0f64..1.0, 1..6),
        workloads_seed in prop::collection::vec(0.1f64..4.0, 1..6),
        m in 1usize..5,
        t in 0.0f64..1.0,
    ) {
        let n = a.len().min(b_seed.len()).min(workloads_seed.len());
        let a = &a[..n];
        let b = &b_seed[..n];
        let w = &workloads_seed[..n];
        let p = AlphaPower::new(alpha);
        let mix: Vec<f64> = a.iter().zip(b).map(|(x, y)| t * x + (1.0 - t) * y).collect();
        let fa = interval_power(p, 1.0, m, a, w);
        let fb = interval_power(p, 1.0, m, b, w);
        let fmix = interval_power(p, 1.0, m, &mix, w);
        prop_assert!(fmix <= t * fa + (1.0 - t) * fb + 1e-7 * (1.0 + fa + fb));
        prop_assert_eq!(interval_power(p, 1.0, m, &vec![0.0; n], w), 0.0);
    }

    /// Proposition 1(b): the closed-form derivative matches a finite
    /// difference of P_k.
    #[test]
    fn prop1_derivative(
        alpha in alpha_strategy(),
        fractions in prop::collection::vec(0.05f64..1.0, 1..5),
        workloads_seed in prop::collection::vec(0.2f64..4.0, 1..5),
        m in 1usize..5,
    ) {
        let n = fractions.len().min(workloads_seed.len());
        let fractions = &fractions[..n];
        let w = &workloads_seed[..n];
        let p = AlphaPower::new(alpha);
        let h = 1e-6;
        for job in 0..n {
            let analytic = interval_power_derivative(p, 1.0, m, fractions, w, job);
            let mut up = fractions.to_vec();
            up[job] += h;
            let mut down = fractions.to_vec();
            down[job] -= h;
            let numeric = (interval_power(p, 1.0, m, &up, w)
                - interval_power(p, 1.0, m, &down, w)) / (2.0 * h);
            prop_assert!((analytic - numeric).abs() <= 1e-3 * numeric.abs().max(1.0),
                "job {}: analytic {} vs numeric {}", job, analytic, numeric);
        }
    }

    /// Chen's schedule never uses more energy than two natural feasible
    /// alternatives: (a) every job on its own machine whenever that is
    /// feasible, and (b) the work order reversed (the optimum is unique in
    /// terms of loads, so solving with any permutation gives the same energy).
    #[test]
    fn chen_energy_is_no_worse_than_alternatives(
        alpha in alpha_strategy(),
        works in works_strategy(6),
        m in 1usize..5,
    ) {
        let p = AlphaPower::new(alpha);
        let chen = ChenInterval::new(1.0, m, p);
        let sol = chen.solve(&works);

        // (a) one machine per job, if enough machines exist.
        let positive: Vec<f64> = works.iter().copied().filter(|u| *u > 0.0).collect();
        if positive.len() <= m {
            let per_job: f64 = positive.iter().map(|u| p.energy_for_work(*u, 1.0)).sum();
            prop_assert!(sol.energy <= per_job + 1e-9 * (1.0 + per_job));
        }

        // (b) permutation invariance.
        let mut reversed = works.clone();
        reversed.reverse();
        let sol_rev = chen.solve(&reversed);
        prop_assert!((sol.energy - sol_rev.energy).abs() <= 1e-9 * (1.0 + sol.energy));
    }

    /// The total work across machine loads always equals the total input
    /// work (nothing is lost or duplicated).
    #[test]
    fn loads_conserve_work(
        alpha in alpha_strategy(),
        works in works_strategy(8),
        m in 1usize..6,
    ) {
        let chen = ChenInterval::new(1.0, m, AlphaPower::new(alpha));
        let sol = chen.solve(&works);
        let total_in: f64 = works.iter().sum();
        let total_loads: f64 = sol.machine_loads().iter().sum();
        prop_assert!((total_in - total_loads).abs() <= 1e-9 * (1.0 + total_in));
    }
}
