//! Randomised property tests of the Chen et al. substrate.
//!
//! These verify the structural results the paper's analysis relies on:
//!
//! * Proposition 1(a): `P_k` is convex with `P_k(0) = 0`;
//! * Proposition 1(b): the analytic partial derivatives match finite
//!   differences;
//! * Proposition 2: when a single job's work grows from 0 to `z`, the load
//!   of the i-th fastest machine changes by some amount in `[0, z]`;
//! * energy optimality: Chen's split never does worse than natural
//!   alternative feasible splits.
//!
//! The cases are drawn from the workspace's seeded [`SmallRng`] (the build
//! environment has no crates.io access, so `proptest` is unavailable); equal
//! seeds make every failure reproducible.

use pss_chen::{interval_power, interval_power_derivative, ChenInterval};
use pss_power::{AlphaPower, PowerFunction};
use pss_workloads::SmallRng;

const ALPHAS: [f64; 5] = [1.5, 2.0, 2.5, 3.0, 4.0];

fn sample_alpha(rng: &mut SmallRng) -> f64 {
    ALPHAS[rng.usize_range(0, ALPHAS.len() - 1)]
}

fn sample_works(rng: &mut SmallRng, max_jobs: usize) -> Vec<f64> {
    let n = rng.usize_range(1, max_jobs);
    (0..n).map(|_| rng.f64_range(0.0, 5.0)).collect()
}

/// Proposition 2: adding a new job with work `z` to an interval moves
/// every (sorted) machine load up by at most `z` and never down.
#[test]
fn prop2_load_monotonicity() {
    let mut rng = SmallRng::seed_from_u64(0xC4E4_0001);
    for _ in 0..128 {
        let alpha = sample_alpha(&mut rng);
        let mut works = sample_works(&mut rng, 8);
        let z = rng.f64_range(0.01, 8.0);
        let m = rng.usize_range(1, 5);
        let length = rng.f64_range(0.1, 4.0);
        let chen = ChenInterval::new(length, m, AlphaPower::new(alpha));
        let before = chen.solve(&works).machine_loads();
        works.push(z);
        let after = chen.solve(&works).machine_loads();
        assert_eq!(before.len(), after.len());
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            assert!(
                a - b >= -1e-9 * (1.0 + b.abs()),
                "load of machine {i} decreased: {b} -> {a}"
            );
            assert!(
                a - b <= z + 1e-9 * (1.0 + z),
                "load of machine {i} grew by more than z={z}: {b} -> {a}"
            );
        }
    }
}

/// Proposition 1(a): P_k is convex along random lines and P_k(0) = 0.
#[test]
fn prop1_convexity() {
    let mut rng = SmallRng::seed_from_u64(0xC4E4_0002);
    for _ in 0..128 {
        let alpha = sample_alpha(&mut rng);
        let n = rng.usize_range(1, 5);
        let a: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 1.0)).collect();
        let b: Vec<f64> = (0..n).map(|_| rng.f64_range(0.0, 1.0)).collect();
        let w: Vec<f64> = (0..n).map(|_| rng.f64_range(0.1, 4.0)).collect();
        let m = rng.usize_range(1, 4);
        let t = rng.f64_range(0.0, 1.0);
        let p = AlphaPower::new(alpha);
        let mix: Vec<f64> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| t * x + (1.0 - t) * y)
            .collect();
        let fa = interval_power(p, 1.0, m, &a, &w);
        let fb = interval_power(p, 1.0, m, &b, &w);
        let fmix = interval_power(p, 1.0, m, &mix, &w);
        assert!(
            fmix <= t * fa + (1.0 - t) * fb + 1e-7 * (1.0 + fa + fb),
            "convexity violated: {fmix} vs combination of {fa}, {fb}"
        );
        assert_eq!(interval_power(p, 1.0, m, &vec![0.0; n], &w), 0.0);
    }
}

/// Proposition 1(b): the closed-form derivative matches a finite
/// difference of P_k.
#[test]
fn prop1_derivative() {
    let mut rng = SmallRng::seed_from_u64(0xC4E4_0003);
    for _ in 0..128 {
        let alpha = sample_alpha(&mut rng);
        let n = rng.usize_range(1, 4);
        let fractions: Vec<f64> = (0..n).map(|_| rng.f64_range(0.05, 1.0)).collect();
        let w: Vec<f64> = (0..n).map(|_| rng.f64_range(0.2, 4.0)).collect();
        let m = rng.usize_range(1, 4);
        let p = AlphaPower::new(alpha);
        let h = 1e-6;
        for job in 0..n {
            let analytic = interval_power_derivative(p, 1.0, m, &fractions, &w, job);
            let mut up = fractions.clone();
            up[job] += h;
            let mut down = fractions.clone();
            down[job] -= h;
            let numeric = (interval_power(p, 1.0, m, &up, &w)
                - interval_power(p, 1.0, m, &down, &w))
                / (2.0 * h);
            assert!(
                (analytic - numeric).abs() <= 1e-3 * numeric.abs().max(1.0),
                "job {job}: analytic {analytic} vs numeric {numeric}"
            );
        }
    }
}

/// Chen's schedule never uses more energy than two natural feasible
/// alternatives: (a) every job on its own machine whenever that is
/// feasible, and (b) the work order reversed (the optimum is unique in
/// terms of loads, so solving with any permutation gives the same energy).
#[test]
fn chen_energy_is_no_worse_than_alternatives() {
    let mut rng = SmallRng::seed_from_u64(0xC4E4_0004);
    for _ in 0..128 {
        let alpha = sample_alpha(&mut rng);
        let works = sample_works(&mut rng, 6);
        let m = rng.usize_range(1, 4);
        let p = AlphaPower::new(alpha);
        let chen = ChenInterval::new(1.0, m, p);
        let sol = chen.solve(&works);

        // (a) one machine per job, if enough machines exist.
        let positive: Vec<f64> = works.iter().copied().filter(|u| *u > 0.0).collect();
        if positive.len() <= m {
            let per_job: f64 = positive.iter().map(|u| p.energy_for_work(*u, 1.0)).sum();
            assert!(
                sol.energy <= per_job + 1e-9 * (1.0 + per_job),
                "Chen {} worse than one-machine-per-job {per_job}",
                sol.energy
            );
        }

        // (b) permutation invariance.
        let mut reversed = works.clone();
        reversed.reverse();
        let sol_rev = chen.solve(&reversed);
        assert!(
            (sol.energy - sol_rev.energy).abs() <= 1e-9 * (1.0 + sol.energy),
            "permutation changed energy: {} vs {}",
            sol.energy,
            sol_rev.energy
        );
    }
}

/// The total work across machine loads always equals the total input
/// work (nothing is lost or duplicated).
#[test]
fn loads_conserve_work() {
    let mut rng = SmallRng::seed_from_u64(0xC4E4_0005);
    for _ in 0..128 {
        let alpha = sample_alpha(&mut rng);
        let works = sample_works(&mut rng, 8);
        let m = rng.usize_range(1, 5);
        let chen = ChenInterval::new(1.0, m, AlphaPower::new(alpha));
        let sol = chen.solve(&works);
        let total_in: f64 = works.iter().sum();
        let total_loads: f64 = sol.machine_loads().iter().sum();
        assert!(
            (total_in - total_loads).abs() <= 1e-9 * (1.0 + total_in),
            "work not conserved: in {total_in}, loads {total_loads}"
        );
    }
}
