//! Randomised property tests of the PD algorithm itself: feasibility, the
//! certified Theorem 3 inequality, monotonicity in the job values, and
//! consistency between the batch and online variants.
//!
//! Cases are drawn from the workspace's seeded [`SmallRng`] (no crates.io
//! access, so `proptest` is unavailable); equal seeds make every failure
//! reproducible.

use pss_core::prelude::*;
use pss_types::Instance;
use pss_workloads::SmallRng;

const ALPHAS: [f64; 3] = [1.5, 2.0, 3.0];

fn random_instance(rng: &mut SmallRng, max_jobs: usize, max_machines: usize) -> Instance {
    let n = rng.usize_range(1, max_jobs);
    let machines = rng.usize_range(1, max_machines);
    let alpha = ALPHAS[rng.usize_range(0, ALPHAS.len() - 1)];
    let jobs: Vec<(f64, f64, f64, f64)> = (0..n)
        .map(|_| {
            let r = rng.f64_range(0.0, 6.0);
            let window = rng.f64_range(0.3, 4.0);
            let w = rng.f64_range(0.1, 2.5);
            let v = rng.f64_range(0.0, 6.0);
            (r, r + window, w, v)
        })
        .collect();
    Instance::from_tuples(machines, alpha, jobs).expect("valid random instance")
}

/// Every PD schedule is feasible, finishes exactly the accepted jobs,
/// and satisfies the certified Theorem 3 inequality.
#[test]
fn pd_is_feasible_and_certified() {
    let mut rng = SmallRng::seed_from_u64(0xBD + 1);
    for _ in 0..40 {
        let inst = random_instance(&mut rng, 7, 4);
        let run = PdScheduler::default().run(&inst).expect("PD run");
        let report = validate_schedule(&inst, &run.schedule).expect("feasible");
        for (j, accepted) in run.accepted.iter().enumerate() {
            assert_eq!(*accepted, report.finished[j], "job {j} mismatch");
        }
        let analysis = analyze_run(&run);
        assert!(
            analysis.guarantee_holds(),
            "cost {} vs bound {} * dual {}",
            analysis.cost.total(),
            analysis.competitive_bound,
            analysis.dual.value
        );
        // The dual bound is also sane: nonnegative and at most the total value.
        assert!(analysis.dual.value >= -1e-9);
        assert!(analysis.dual.value <= inst.total_value() + 1e-6);
    }
}

/// Raising every job's value to something enormous makes PD accept
/// everything (the mandatory-completion regime of Section 3).
#[test]
fn pd_accepts_everything_when_values_are_huge() {
    let mut rng = SmallRng::seed_from_u64(0xBD + 2);
    for _ in 0..40 {
        let inst = random_instance(&mut rng, 6, 3);
        let boosted = Instance::from_jobs(
            inst.machines,
            inst.alpha,
            inst.jobs
                .iter()
                .map(|j| {
                    let mut j = *j;
                    j.value = 1e12;
                    j
                })
                .collect(),
        )
        .expect("boosted instance");
        let run = PdScheduler::default().run(&boosted).expect("PD run");
        assert!(run.accepted.iter().all(|a| *a));
    }
}

/// Setting every job's value to zero makes PD reject everything and pay
/// exactly zero cost.
#[test]
fn pd_rejects_everything_when_values_are_zero() {
    let mut rng = SmallRng::seed_from_u64(0xBD + 3);
    for _ in 0..40 {
        let inst = random_instance(&mut rng, 6, 3);
        let zeroed = Instance::from_jobs(
            inst.machines,
            inst.alpha,
            inst.jobs
                .iter()
                .map(|j| {
                    let mut j = *j;
                    j.value = 0.0;
                    j
                })
                .collect(),
        )
        .expect("zeroed instance");
        let run = PdScheduler::default().run(&zeroed).expect("PD run");
        assert!(run.accepted.iter().all(|a| !a));
        assert!(run.cost().total() < 1e-9);
    }
}

/// The event-driven OnlinePd agrees with the batch scheduler on both
/// decisions and (up to numeric tolerance) cost.
#[test]
fn online_pd_matches_batch() {
    let mut rng = SmallRng::seed_from_u64(0xBD + 4);
    for _ in 0..40 {
        let inst = random_instance(&mut rng, 6, 3);
        let batch = PdScheduler::default().run(&inst).expect("batch");
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for id in inst.arrival_order() {
            let accepted = online.arrive(inst.job(id)).expect("arrive");
            assert_eq!(accepted, batch.accepted[id.index()]);
        }
        let oc = online.schedule().expect("schedule").cost(&inst).total();
        let bc = batch.schedule.cost(&inst).total();
        assert!(
            (oc - bc).abs() <= 1e-4 * bc.max(1.0),
            "online {oc} vs batch {bc}"
        );
    }
}

/// PD's cost never exceeds alpha^alpha times the cost of either trivial
/// strategy (reject everything; finish everything optimally), both of
/// which upper-bound the optimum.
#[test]
fn pd_within_bound_of_trivial_strategies() {
    let mut rng = SmallRng::seed_from_u64(0xBD + 5);
    for _ in 0..40 {
        let inst = random_instance(&mut rng, 6, 2);
        let run = PdScheduler::default().run(&inst).expect("PD run");
        let bound = AlphaPower::new(inst.alpha).competitive_ratio_pd();
        let reject_all = inst.total_value();
        let finish_all = MinEnergyScheduler::default()
            .schedule(&inst)
            .expect("finish all")
            .cost(&inst)
            .total();
        let best_trivial = reject_all.min(finish_all);
        assert!(
            run.cost().total() <= bound * best_trivial + 1e-5 * best_trivial.max(1.0),
            "PD {} vs {bound} * trivial {best_trivial}",
            run.cost().total()
        );
    }
}
