//! Property-based tests of the PD algorithm itself: feasibility, the
//! certified Theorem 3 inequality, monotonicity in the job values, and
//! consistency between the batch and online variants.

use proptest::prelude::*;

use pss_core::prelude::*;
use pss_types::Instance;

fn instance_strategy(max_jobs: usize, max_machines: usize) -> impl Strategy<Value = Instance> {
    let job = (0.0f64..6.0, 0.3f64..4.0, 0.1f64..2.5, 0.0f64..6.0);
    (
        prop::collection::vec(job, 1..=max_jobs),
        1..=max_machines,
        prop_oneof![Just(1.5f64), Just(2.0), Just(3.0)],
    )
        .prop_map(|(tuples, machines, alpha)| {
            let jobs = tuples
                .into_iter()
                .map(|(r, window, w, v)| (r, r + window, w, v))
                .collect::<Vec<_>>();
            Instance::from_tuples(machines, alpha, jobs).expect("valid random instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every PD schedule is feasible, finishes exactly the accepted jobs,
    /// and satisfies the certified Theorem 3 inequality.
    #[test]
    fn pd_is_feasible_and_certified(inst in instance_strategy(7, 4)) {
        let run = PdScheduler::default().run(&inst).expect("PD run");
        let report = validate_schedule(&inst, &run.schedule).expect("feasible");
        for (j, accepted) in run.accepted.iter().enumerate() {
            prop_assert_eq!(*accepted, report.finished[j], "job {} mismatch", j);
        }
        let analysis = analyze_run(&run);
        prop_assert!(analysis.guarantee_holds(),
            "cost {} vs bound {} * dual {}",
            analysis.cost.total(), analysis.competitive_bound, analysis.dual.value);
        // The dual bound is also sane: nonnegative and at most the total value.
        prop_assert!(analysis.dual.value >= -1e-9);
        prop_assert!(analysis.dual.value <= inst.total_value() + 1e-6);
    }

    /// Raising every job's value to something enormous makes PD accept
    /// everything (the mandatory-completion regime of Section 3).
    #[test]
    fn pd_accepts_everything_when_values_are_huge(inst in instance_strategy(6, 3)) {
        let boosted = Instance::from_jobs(
            inst.machines,
            inst.alpha,
            inst.jobs.iter().map(|j| {
                let mut j = *j;
                j.value = 1e12;
                j
            }).collect(),
        ).expect("boosted instance");
        let run = PdScheduler::default().run(&boosted).expect("PD run");
        prop_assert!(run.accepted.iter().all(|a| *a));
    }

    /// Setting every job's value to zero makes PD reject everything and pay
    /// exactly zero cost.
    #[test]
    fn pd_rejects_everything_when_values_are_zero(inst in instance_strategy(6, 3)) {
        let zeroed = Instance::from_jobs(
            inst.machines,
            inst.alpha,
            inst.jobs.iter().map(|j| {
                let mut j = *j;
                j.value = 0.0;
                j
            }).collect(),
        ).expect("zeroed instance");
        let run = PdScheduler::default().run(&zeroed).expect("PD run");
        prop_assert!(run.accepted.iter().all(|a| !a));
        prop_assert!(run.cost().total() < 1e-9);
    }

    /// The event-driven OnlinePd agrees with the batch scheduler on both
    /// decisions and (up to numeric tolerance) cost.
    #[test]
    fn online_pd_matches_batch(inst in instance_strategy(6, 3)) {
        let batch = PdScheduler::default().run(&inst).expect("batch");
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for id in inst.arrival_order() {
            let accepted = online.arrive(inst.job(id)).expect("arrive");
            prop_assert_eq!(accepted, batch.accepted[id.index()]);
        }
        let oc = online.schedule().expect("schedule").cost(&inst).total();
        let bc = batch.schedule.cost(&inst).total();
        prop_assert!((oc - bc).abs() <= 1e-4 * bc.max(1.0), "online {} vs batch {}", oc, bc);
    }

    /// PD's cost never exceeds alpha^alpha times the cost of either trivial
    /// strategy (reject everything; finish everything optimally), both of
    /// which upper-bound the optimum.
    #[test]
    fn pd_within_bound_of_trivial_strategies(inst in instance_strategy(6, 2)) {
        let run = PdScheduler::default().run(&inst).expect("PD run");
        let bound = AlphaPower::new(inst.alpha).competitive_ratio_pd();
        let reject_all = inst.total_value();
        let finish_all = MinEnergyScheduler::default()
            .schedule(&inst)
            .expect("finish all")
            .cost(&inst)
            .total();
        let best_trivial = reject_all.min(finish_all);
        prop_assert!(run.cost().total() <= bound * best_trivial + 1e-5 * best_trivial.max(1.0),
            "PD {} vs {} * trivial {}", run.cost().total(), bound, best_trivial);
    }
}
