//! The duality-based analysis of Section 4, made executable.
//!
//! Given a [`PdRun`], this module evaluates the dual function `g(λ̃)` at the
//! duals PD produced, classifies jobs into the three categories of
//! Section 4.3 (finished, unfinished low-yield, unfinished high-yield), and
//! checks the certified inequality behind Theorem 3:
//!
//! ```text
//! g(λ̃) ≥ α^{-α} · cost(PD)        (so cost(PD) ≤ α^α · OPT).
//! ```
//!
//! It also provides the rejection-policy equivalence check of Section 3
//! ("Relation to the OA Algorithm"): with `δ = α^{1-α}`, PD rejects a job
//! exactly when fully scheduling it would require a planned speed above
//! `(α^{α-2}·v_j/w_j)^{1/(α-1)}` — the threshold of Chan, Lam & Li.

use pss_convex::{dual_bound, waterfill_job, DualSolution, ProgramContext, WaterfillOptions};
use pss_intervals::WorkAssignment;
use pss_power::AlphaPower;
use pss_types::{Cost, Instance, ScheduleError};

use crate::pd::{PdRun, PdScheduler};

/// The analysis categories of Section 4.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobCategory {
    /// `J1`: jobs finished by PD.
    Finished,
    /// `J2`: jobs rejected by PD of which the optimal infeasible solution
    /// schedules only a small fraction (`x̂_j ≤ (α − α^{1-α})/(α − 1)`).
    LowYield,
    /// `J3`: jobs rejected by PD of which the optimal infeasible solution
    /// schedules a large fraction.
    HighYield,
}

/// The result of analysing a PD run.
#[derive(Debug, Clone)]
pub struct PdAnalysis {
    /// The dual solution at PD's duals `λ̃` — `dual.value` is a lower bound
    /// on the optimal cost.
    pub dual: DualSolution,
    /// The cost of PD's schedule.
    pub cost: Cost,
    /// The energy exponent.
    pub alpha: f64,
    /// The proven competitive ratio `α^α`.
    pub competitive_bound: f64,
    /// The certified ratio `cost / g(λ̃)` (an upper bound on the true ratio
    /// `cost / OPT`); `1.0` when both are zero.
    pub certified_ratio: f64,
    /// Per-job category (J1 / J2 / J3).
    pub categories: Vec<JobCategory>,
}

impl PdAnalysis {
    /// Returns `true` if the certified inequality `cost ≤ α^α·g(λ̃)` holds
    /// (up to numeric tolerance), which implies the paper's guarantee
    /// `cost ≤ α^α · OPT`.
    pub fn guarantee_holds(&self) -> bool {
        self.cost.total()
            <= self.competitive_bound * self.dual.value.max(0.0) + 1e-6 * self.cost.total().max(1.0)
    }

    /// Number of jobs in each category, as `(finished, low_yield, high_yield)`.
    pub fn category_counts(&self) -> (usize, usize, usize) {
        let mut counts = (0, 0, 0);
        for c in &self.categories {
            match c {
                JobCategory::Finished => counts.0 += 1,
                JobCategory::LowYield => counts.1 += 1,
                JobCategory::HighYield => counts.2 += 1,
            }
        }
        counts
    }
}

/// Analyses a PD run: evaluates the dual bound, the certified ratio and the
/// job categories.
pub fn analyze_run(run: &PdRun) -> PdAnalysis {
    let ctx = &run.context;
    let instance = ctx.instance();
    let alpha = instance.alpha;
    let power = AlphaPower::new(alpha);
    let competitive_bound = power.competitive_ratio_pd();

    let dual = dual_bound(ctx, &run.lambda);
    let cost = run.cost();

    // Category threshold (α − α^{1-α}) / (α − 1) from Section 4.3.
    let threshold = (alpha - alpha.powf(1.0 - alpha)) / (alpha - 1.0);
    let categories: Vec<JobCategory> = (0..instance.len())
        .map(|j| {
            if run.accepted[j] {
                JobCategory::Finished
            } else if dual.assigned_fraction(ctx, j) <= threshold {
                JobCategory::LowYield
            } else {
                JobCategory::HighYield
            }
        })
        .collect();

    let certified_ratio = if cost.total() <= 1e-12 {
        1.0
    } else if dual.value <= 1e-12 {
        f64::INFINITY
    } else {
        cost.total() / dual.value
    };

    PdAnalysis {
        dual,
        cost,
        alpha,
        competitive_bound,
        certified_ratio,
        categories,
    }
}

/// Per-job outcome of the rejection-policy comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RejectionDecision {
    /// Whether PD accepted the job.
    pub pd_accepted: bool,
    /// Whether the closed-form threshold rule of Section 3 accepts the job
    /// (planned speed for the full job at arrival ≤ `(α^{α-2}·v/w)^{1/(α-1)}`).
    pub threshold_accepts: bool,
    /// The speed PD would need to fully schedule the job at its arrival.
    pub forced_speed: f64,
    /// The closed-form threshold speed.
    pub threshold_speed: f64,
}

/// The rejection-policy equivalence report (experiment E6).
#[derive(Debug, Clone)]
pub struct RejectionPolicyReport {
    /// Decision pair per job, in job-id order.
    pub decisions: Vec<RejectionDecision>,
}

impl RejectionPolicyReport {
    /// `true` if PD's decision matches the threshold rule for every job
    /// whose forced speed is not borderline (within `1e-6` of the
    /// threshold, where either decision is legitimate).
    pub fn all_match(&self) -> bool {
        self.decisions.iter().all(|d| {
            d.pd_accepted == d.threshold_accepts
                || (d.forced_speed - d.threshold_speed).abs() <= 1e-6 * d.threshold_speed.max(1.0)
        })
    }
}

/// Replays PD on the instance, recording for every job both PD's decision
/// and the decision of the closed-form threshold rule evaluated on the same
/// arrival state.  With `δ = α^{1-α}` (the scheduler default) the two must
/// agree — this is the Section 3 claim verified by experiment E6.
pub fn rejection_policy_report(
    scheduler: &PdScheduler,
    instance: &Instance,
) -> Result<RejectionPolicyReport, ScheduleError> {
    let ctx = ProgramContext::new(instance);
    let power = AlphaPower::new(instance.alpha);
    let delta = scheduler.effective_delta(instance.alpha);
    let n = instance.len();
    let mut assignment = WorkAssignment::zeros(n, ctx.partition().len());
    let mut decisions = vec![
        RejectionDecision {
            pd_accepted: false,
            threshold_accepts: false,
            forced_speed: 0.0,
            threshold_speed: 0.0,
        };
        n
    ];

    for id in instance.arrival_order() {
        let j = id.index();
        let job = instance.job(id);

        // The speed needed to schedule the *whole* job at its arrival.
        let forced = waterfill_job(
            &ctx,
            &assignment,
            j,
            &WaterfillOptions {
                max_fraction: 1.0,
                max_marginal: None,
                tol: scheduler.tol,
            },
        );
        let threshold_speed = power.rejection_speed_threshold(job.value, job.work);

        // PD's own decision (capped fill), which also updates the state.
        let capped = waterfill_job(
            &ctx,
            &assignment,
            j,
            &WaterfillOptions {
                max_fraction: 1.0,
                max_marginal: Some(job.value / delta),
                tol: scheduler.tol,
            },
        );
        if capped.saturated {
            for (k, f) in &capped.added {
                assignment.set(j, *k, *f);
            }
        }
        decisions[j] = RejectionDecision {
            pd_accepted: capped.saturated,
            threshold_accepts: forced.level_speed <= threshold_speed * (1.0 + 1e-9),
            forced_speed: forced.level_speed,
            threshold_speed,
        };
    }

    Ok(RejectionPolicyReport { decisions })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::brute_force_optimum;
    use pss_types::Instance;

    fn mixed_instance(m: usize, alpha: f64) -> Instance {
        Instance::from_tuples(
            m,
            alpha,
            vec![
                (0.0, 2.0, 1.0, 5.0),
                (0.5, 1.5, 2.0, 0.2),
                (1.0, 4.0, 1.5, 3.0),
                (2.0, 3.0, 2.5, 0.4),
                (2.5, 5.0, 1.0, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn dual_bound_lower_bounds_brute_force_optimum() {
        for (m, alpha) in [(1usize, 2.0), (1, 3.0), (2, 2.0), (3, 2.5)] {
            let inst = mixed_instance(m, alpha);
            let run = PdScheduler::default().run(&inst).unwrap();
            let analysis = analyze_run(&run);
            let opt = brute_force_optimum(&inst).unwrap();
            assert!(
                analysis.dual.value <= opt.cost.total() + 1e-6,
                "m={m}, alpha={alpha}: dual {} exceeds OPT {}",
                analysis.dual.value,
                opt.cost.total()
            );
        }
    }

    #[test]
    fn theorem3_certified_on_mixed_instances() {
        for (m, alpha) in [(1usize, 1.5), (1, 2.0), (2, 2.0), (2, 3.0), (4, 2.5)] {
            let inst = mixed_instance(m, alpha);
            let run = PdScheduler::default().run(&inst).unwrap();
            let analysis = analyze_run(&run);
            assert!(
                analysis.guarantee_holds(),
                "m={m}, alpha={alpha}: cost {} vs bound {} * dual {}",
                analysis.cost.total(),
                analysis.competitive_bound,
                analysis.dual.value
            );
        }
    }

    #[test]
    fn categories_partition_the_jobs() {
        let inst = mixed_instance(2, 2.0);
        let run = PdScheduler::default().run(&inst).unwrap();
        let analysis = analyze_run(&run);
        let (f, l, h) = analysis.category_counts();
        assert_eq!(f + l + h, inst.len());
        // Finished category must match the run's accepted flags.
        for (j, cat) in analysis.categories.iter().enumerate() {
            assert_eq!(*cat == JobCategory::Finished, run.accepted[j]);
        }
    }

    #[test]
    fn rejection_policy_equivalence_single_machine() {
        // Sweep values across the threshold for a couple of workloads.
        for alpha in [2.0, 3.0] {
            let mut tuples = Vec::new();
            for i in 0..6 {
                let w = 0.5 + i as f64 * 0.5;
                for v in [0.05, 0.5, 2.0, 10.0] {
                    tuples.push((i as f64 * 0.7, i as f64 * 0.7 + 1.5, w, v));
                }
            }
            let inst = Instance::from_tuples(1, alpha, tuples).unwrap();
            let report = rejection_policy_report(&PdScheduler::default(), &inst).unwrap();
            assert!(
                report.all_match(),
                "alpha={alpha}: decisions diverge: {:?}",
                report
                    .decisions
                    .iter()
                    .filter(|d| d.pd_accepted != d.threshold_accepts)
                    .collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn certified_ratio_is_finite_and_above_one_for_nontrivial_runs() {
        let inst = mixed_instance(1, 2.0);
        let run = PdScheduler::default().run(&inst).unwrap();
        let analysis = analyze_run(&run);
        assert!(analysis.certified_ratio >= 1.0 - 1e-9);
        assert!(analysis.certified_ratio.is_finite());
        assert!(analysis.certified_ratio <= analysis.competitive_bound + 1e-6);
    }

    #[test]
    fn empty_instance_analysis_is_trivial() {
        let inst = Instance::from_tuples(1, 2.0, vec![]).unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        let analysis = analyze_run(&run);
        assert_eq!(analysis.certified_ratio, 1.0);
        assert!(analysis.guarantee_holds());
    }
}
