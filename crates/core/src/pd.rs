//! The paper's primal-dual algorithm PD (Listing 1 of Section 3).
//!
//! For every arriving job `j`, PD greedily raises the primal variables
//! `x_{jk}` of the convex program: it pours the job's workload into the
//! atomic intervals of its availability window, always into the intervals
//! with the currently smallest marginal cost `λ_{jk} = δ·∂P_k/∂x_{jk}`,
//! keeping all used intervals at a common level.  The pour stops when
//!
//! * the whole job is assigned (`Σ_k x_{jk} = 1`): the job is **accepted**,
//!   its dual variable is set to the final level `λ_j = δ·∂P_k/∂x_{jk}`, or
//! * the level reaches the job's value (`λ_{jk} = v_j`): the planned
//!   fractions are reset to zero, the job is **rejected**, and `λ_j = v_j`.
//!
//! Work assigned by earlier jobs is never moved — unlike OA, PD only adds
//! speed where it is needed (the conservatism illustrated by Figure 3 of
//! the paper).  The actual machine-level schedule is obtained by running
//! Chen et al.'s algorithm on the final per-interval work assignment.
//!
//! With `δ = α^{1-α}` (the default), Theorem 3 shows PD is exactly
//! `α^α`-competitive; [`crate::analysis`] certifies the bound on every run
//! via the dual function.

use pss_convex::{waterfill_job, ProgramContext, WaterfillOptions};
use pss_intervals::WorkAssignment;
use pss_types::num::Tolerance;
use pss_types::{Instance, OnlineAlgorithm, Schedule, ScheduleError};

use crate::online::OnlinePd;

/// The PD scheduler.
///
/// The two knobs are the primal-dual parameter `δ` (defaults to the analysed
/// optimum `α^{1-α}`) and the numeric tolerance of the water-level search.
#[derive(Debug, Clone, Copy, Default)]
pub struct PdScheduler {
    /// The parameter `δ` of Listing 1; `None` selects `δ* = α^{1-α}`.
    pub delta: Option<f64>,
    /// Numeric tolerance of the water-filling level search.
    pub tol: Tolerance,
}

impl PdScheduler {
    /// PD with an explicit `δ` (used by the δ-ablation experiment).
    pub fn with_delta(delta: f64) -> Self {
        assert!(delta.is_finite() && delta > 0.0, "delta must be positive");
        Self {
            delta: Some(delta),
            tol: Tolerance::default(),
        }
    }

    /// PD with a coarser numeric tolerance for large benchmark sweeps.
    pub fn coarse() -> Self {
        Self {
            delta: None,
            tol: Tolerance::coarse(),
        }
    }

    /// The effective `δ` for an instance with the given `α`.
    pub fn effective_delta(&self, alpha: f64) -> f64 {
        self.delta
            .unwrap_or_else(|| pss_power::AlphaPower::new(alpha).delta_star())
    }

    /// Runs PD and returns the full run record (assignment, duals,
    /// accept/reject decisions and the realised schedule).
    pub fn run(&self, instance: &Instance) -> Result<PdRun, ScheduleError> {
        let ctx = ProgramContext::new(instance);
        let delta = self.effective_delta(instance.alpha);
        let n = instance.len();
        let n_intervals = ctx.partition().len();

        let mut assignment = WorkAssignment::zeros(n, n_intervals);
        let mut lambda = vec![0.0_f64; n];
        let mut accepted = vec![false; n];
        let mut planned_fraction = vec![0.0_f64; n];
        let mut decision_speed = vec![0.0_f64; n];

        for id in instance.arrival_order() {
            let j = id.index();
            let job = instance.job(id);
            // Level cap: λ_{jk} = δ·marginal may rise to at most v_j, i.e.
            // the marginal may rise to v_j / δ.
            let opts = WaterfillOptions {
                max_fraction: 1.0,
                max_marginal: Some(job.value / delta),
                tol: self.tol,
            };
            let fill = waterfill_job(&ctx, &assignment, j, &opts);
            planned_fraction[j] = fill.total;
            decision_speed[j] = fill.level_speed;
            if fill.saturated {
                for (k, f) in &fill.added {
                    assignment.set(j, *k, *f);
                }
                lambda[j] = delta * fill.level_marginal;
                accepted[j] = true;
            } else {
                // Listing 1, line 12: reset the planned fractions, remember
                // the value as the dual variable.
                lambda[j] = job.value;
            }
        }

        let schedule = ctx.realize_schedule(&assignment);
        Ok(PdRun {
            context: ctx,
            delta,
            assignment,
            lambda,
            accepted,
            planned_fraction,
            decision_speed,
            schedule,
        })
    }
}

/// PD is event-driven: a run is an [`OnlinePd`] fed one arrival at a time.
/// The batch [`Scheduler`](pss_types::Scheduler) impl is recovered by the
/// blanket adapter in `pss-types`; [`PdScheduler::run`] remains the
/// independent batch reference (whole-instance partition, no refinement)
/// that the equivalence tests compare against.
impl OnlineAlgorithm for PdScheduler {
    type Run = OnlinePd;

    fn algorithm_name(&self) -> String {
        "PD".into()
    }

    fn start(&self, machines: usize, alpha: f64) -> Result<Self::Run, ScheduleError> {
        if machines == 0 {
            return Err(ScheduleError::Internal(
                "PD needs at least one machine".into(),
            ));
        }
        Ok(OnlinePd::with_options(
            machines,
            alpha,
            self.effective_delta(alpha),
            self.tol,
        ))
    }
}

/// The complete record of one PD run: everything the analysis of Section 4
/// needs, plus the realised schedule.
#[derive(Debug, Clone)]
pub struct PdRun {
    /// The program context (instance, partition, power function).
    pub context: ProgramContext,
    /// The effective `δ` used for the run.
    pub delta: f64,
    /// The final primal variables `x̃` (zero rows for rejected jobs).
    pub assignment: WorkAssignment,
    /// The dual variables `λ̃` (level reached for accepted jobs, `v_j` for
    /// rejected jobs).
    pub lambda: Vec<f64>,
    /// The indicator `ỹ`: whether each job was accepted (finished).
    pub accepted: Vec<bool>,
    /// The fraction `x̌_j` PD had planned at the moment the decision was
    /// made (equal to 1 for accepted jobs, `< 1` for rejected ones).
    pub planned_fraction: Vec<f64>,
    /// The common speed level of the job's water-fill at decision time
    /// (the planned speed `s̃_j` of Section 4.2, before any later arrival).
    pub decision_speed: Vec<f64>,
    /// The realised machine-level schedule (Chen et al. per interval).
    pub schedule: Schedule,
}

impl PdRun {
    /// Ids of the jobs PD rejected.
    pub fn rejected_jobs(&self) -> Vec<usize> {
        self.accepted
            .iter()
            .enumerate()
            .filter_map(|(j, a)| if *a { None } else { Some(j) })
            .collect()
    }

    /// The cost of the run's schedule on its instance.
    pub fn cost(&self) -> pss_types::Cost {
        self.schedule.cost(self.context.instance())
    }

    /// Total value of the jobs PD rejected.
    pub fn lost_value(&self) -> f64 {
        pss_types::num::stable_sum(
            self.rejected_jobs()
                .iter()
                .map(|&j| self.context.instance().jobs[j].value),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_offline::brute_force_optimum;
    use pss_power::AlphaPower;
    use pss_types::{validate_schedule, JobId, Scheduler};

    #[test]
    fn lone_valuable_job_is_accepted_and_spread_optimally() {
        let inst = Instance::from_tuples(1, 3.0, vec![(0.0, 4.0, 2.0, 100.0)]).unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        assert!(run.accepted[0]);
        // Optimal energy 0.5 (speed 0.5 for 4 units).
        assert!((run.cost().energy - 0.5).abs() < 1e-6);
        assert!(validate_schedule(&inst, &run.schedule)
            .unwrap()
            .rejected
            .is_empty());
    }

    #[test]
    fn worthless_expensive_job_is_rejected() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 0.01)]).unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        assert!(!run.accepted[0]);
        assert_eq!(run.lambda[0], 0.01);
        // The schedule does nothing; the cost is the lost value.
        assert!((run.cost().total() - 0.01).abs() < 1e-12);
        assert!(run.assignment.total_fraction(0) == 0.0);
    }

    #[test]
    fn rejection_threshold_matches_closed_form_single_job() {
        // For a single job on an empty machine the planned speed is w / window,
        // and PD (with δ*) rejects exactly when that exceeds
        // (α^{α-2}·v/w)^{1/(α-1)}.
        let alpha = 3.0;
        let power = AlphaPower::new(alpha);
        let (w, window): (f64, f64) = (2.0, 1.0);
        let planned_speed = w / window;
        // Value exactly at the threshold: planned energy = α^{α-2}·v.
        let v_threshold = w * planned_speed.powf(alpha - 1.0) / power.rejection_energy_factor();
        for (v, should_accept) in [(v_threshold * 1.05, true), (v_threshold * 0.95, false)] {
            let inst = Instance::from_tuples(1, alpha, vec![(0.0, window, w, v)]).unwrap();
            let run = PdScheduler::default().run(&inst).unwrap();
            assert_eq!(
                run.accepted[0], should_accept,
                "value {v}, threshold {v_threshold}"
            );
        }
    }

    #[test]
    fn accepted_jobs_are_always_finished_and_valid() {
        let inst = Instance::from_tuples(
            2,
            2.5,
            vec![
                (0.0, 3.0, 1.5, 10.0),
                (0.5, 2.0, 1.0, 8.0),
                (1.0, 4.0, 2.0, 0.05),
                (1.5, 3.5, 0.5, 3.0),
                (2.0, 5.0, 1.0, 6.0),
            ],
        )
        .unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        let report = validate_schedule(&inst, &run.schedule).unwrap();
        for (j, acc) in run.accepted.iter().enumerate() {
            if *acc {
                assert!(report.finished[j], "accepted job {j} not finished");
            } else {
                assert!(!report.finished[j], "rejected job {j} was finished anyway");
            }
        }
    }

    #[test]
    fn pd_never_exceeds_alpha_alpha_times_brute_force_optimum() {
        let cases = vec![
            (
                1,
                2.0,
                vec![
                    (0.0, 1.0, 1.0, 0.5),
                    (0.0, 2.0, 1.0, 3.0),
                    (1.0, 3.0, 1.5, 1.0),
                ],
            ),
            (
                2,
                3.0,
                vec![
                    (0.0, 2.0, 1.0, 2.0),
                    (0.0, 2.0, 1.0, 2.0),
                    (1.0, 3.0, 2.0, 0.3),
                ],
            ),
            (1, 1.5, vec![(0.0, 1.0, 2.0, 1.0), (0.5, 2.0, 1.0, 4.0)]),
        ];
        for (m, alpha, tuples) in cases {
            let inst = Instance::from_tuples(m, alpha, tuples).unwrap();
            let run = PdScheduler::default().run(&inst).unwrap();
            let opt = brute_force_optimum(&inst).unwrap();
            let bound = AlphaPower::new(alpha).competitive_ratio_pd();
            assert!(
                run.cost().total() <= bound * opt.cost.total() + 1e-6,
                "m={m}, alpha={alpha}: PD {} vs bound {} * OPT {}",
                run.cost().total(),
                bound,
                opt.cost.total()
            );
        }
    }

    #[test]
    fn later_jobs_do_not_move_earlier_assignments() {
        // PD never reassigns earlier jobs: job 0's per-interval fractions
        // must be identical whether or not job 1 exists.
        let base = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 100.0)]).unwrap();
        let both =
            Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 1.0, 100.0), (1.0, 2.0, 1.0, 100.0)])
                .unwrap();
        let run_base = PdScheduler::default().run(&base).unwrap();
        let run_both = PdScheduler::default().run(&both).unwrap();
        // In the base run there is a single interval [0,2); in the refined
        // run it is split into [0,1) and [1,2).  Job 0's work per unit time
        // must be unchanged (0.5 in both halves).
        let w0 = base.jobs[0].work;
        let base_total = run_base.assignment.total_fraction(0) * w0;
        let both_total = run_both.assignment.total_fraction(0) * w0;
        assert!((base_total - both_total).abs() < 1e-9);
        let first_half = run_both.assignment.get(0, 0) * w0;
        let second_half = run_both.assignment.get(0, 1) * w0;
        assert!((first_half - 0.5).abs() < 1e-6, "first half {first_half}");
        assert!(
            (second_half - 0.5).abs() < 1e-6,
            "second half {second_half}"
        );
    }

    #[test]
    fn multiprocessor_run_uses_all_machines_when_beneficial() {
        // Two identical heavy jobs, two machines: each should get (almost)
        // a dedicated machine and both be accepted.
        let inst =
            Instance::from_tuples(2, 2.0, vec![(0.0, 1.0, 1.0, 50.0), (0.0, 1.0, 1.0, 50.0)])
                .unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        assert!(run.accepted.iter().all(|a| *a));
        assert!((run.cost().energy - 2.0).abs() < 1e-6);
        let report = validate_schedule(&inst, &run.schedule).unwrap();
        assert!(report.rejected.is_empty());
        // Both machines are actually used.
        let machines_used: std::collections::BTreeSet<usize> =
            run.schedule.segments.iter().map(|s| s.machine).collect();
        assert_eq!(machines_used.len(), 2);
    }

    #[test]
    fn scheduler_trait_name_and_schedule() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 0.5, 5.0)]).unwrap();
        let s: &dyn Scheduler = &PdScheduler::default();
        assert_eq!(s.name(), "PD");
        let schedule = s.schedule(&inst).unwrap();
        assert!(validate_schedule(&inst, &schedule)
            .unwrap()
            .rejected
            .is_empty());
    }

    #[test]
    fn run_helpers_report_rejections() {
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 10.0, 0.5), (0.0, 2.0, 0.5, 10.0)])
                .unwrap();
        let run = PdScheduler::default().run(&inst).unwrap();
        assert_eq!(run.rejected_jobs(), vec![0]);
        assert!((run.lost_value() - 0.5).abs() < 1e-12);
        assert!(run.planned_fraction[0] < 1.0);
        assert!(run.accepted[1]);
        let _ = JobId(0);
    }

    #[test]
    fn custom_delta_changes_rejection_behaviour() {
        // A job near the default threshold: a tiny delta makes PD much more
        // willing to reject (level cap v/δ is higher, but λ rises slower...
        // concretely, larger δ means the cap v/δ is reached sooner).
        let alpha = 2.0;
        let inst = Instance::from_tuples(1, alpha, vec![(0.0, 1.0, 2.0, 4.5)]).unwrap();
        // Planned energy = w·s^{α-1} = 2·2 = 4. With δ* = 1/2 the threshold
        // is α^{α-2}·v = v = 4.5 > 4, so default PD accepts.
        let default_run = PdScheduler::default().run(&inst).unwrap();
        assert!(default_run.accepted[0]);
        // With δ = 2 the cap on the marginal is v/δ = 2.25, i.e. a maximal
        // speed of (2.25/(2·2))^{1} ≈ 0.56 < 2, so the job is rejected.
        let strict_run = PdScheduler::with_delta(2.0).run(&inst).unwrap();
        assert!(!strict_run.accepted[0]);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn with_delta_rejects_nonpositive_values() {
        PdScheduler::with_delta(0.0);
    }
}
