//! # pss-core — Profitable Scheduling on Multiple Speed-Scalable Processors
//!
//! This crate implements the primary contribution of Kling & Pietrzyk
//! (SPAA 2013): the online greedy **primal-dual algorithm PD** for
//! profit-oriented deadline scheduling on `m` speed-scalable processors with
//! power function `P_α(s) = s^α`, together with the duality-based analysis
//! machinery used to certify its `α^α` competitive ratio.
//!
//! It also acts as the **facade crate** of the workspace: the substrates the
//! algorithm is built on (model types, the power algebra, atomic intervals,
//! Chen et al.'s per-interval algorithm, the convex program, the offline and
//! online baselines) are re-exported so that downstream users only need a
//! single dependency.
//!
//! ## Quick start
//!
//! ```
//! use pss_core::prelude::*;
//!
//! // Two machines, cube-law power, three valuable jobs.
//! let instance = Instance::from_tuples(
//!     2,
//!     3.0,
//!     vec![
//!         // (release, deadline, work, value)
//!         (0.0, 4.0, 2.0, 8.0),
//!         (1.0, 3.0, 1.0, 5.0),
//!         (2.0, 6.0, 3.0, 0.1), // cheap job: PD may sacrifice it
//!     ],
//! )
//! .unwrap();
//!
//! let run = PdScheduler::default().run(&instance).unwrap();
//! let cost = run.schedule.cost(&instance);
//! let analysis = analyze_run(&run);
//!
//! // The paper's Theorem 3: cost(PD) is at most α^α times the optimum,
//! // certified here against the dual lower bound g(λ̃).
//! assert!(analysis.guarantee_holds());
//! println!("cost = {cost}, lower bound = {}", analysis.dual.value);
//! ```
//!
//! ## Crate map
//!
//! | Module | Contents |
//! |--------|----------|
//! | [`pd`] | The PD algorithm ([`PdScheduler`]) and its run record ([`PdRun`]) |
//! | [`online`] | The event-driven form ([`OnlinePd`], the [`OnlineScheduler`](pss_types::OnlineScheduler) run behind `PdScheduler`) that refines atomic intervals and commits the elapsed frontier as jobs arrive |
//! | [`analysis`] | Dual bound, job categories (J1/J2/J3), Lemma 9–11 checks, rejection-policy equivalence |
//! | re-exports | `types`, `power`, `intervals`, `chen`, `convex`, `offline`, `baselines` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod online;
pub mod pd;

pub use analysis::{analyze_run, JobCategory, PdAnalysis};
pub use online::OnlinePd;
pub use pd::{PdRun, PdScheduler};

// -- Substrate re-exports -------------------------------------------------

pub use pss_baselines as baselines;
pub use pss_chen as chen;
pub use pss_convex as convex;
pub use pss_intervals as intervals;
pub use pss_offline as offline;
pub use pss_power as power;
pub use pss_types as types;

/// Convenience prelude pulling in the types most programs need.
pub mod prelude {
    pub use crate::analysis::{analyze_run, JobCategory, PdAnalysis};
    pub use crate::online::OnlinePd;
    pub use crate::pd::{PdRun, PdScheduler};
    pub use pss_baselines::{
        AvrScheduler, BkpScheduler, CllScheduler, MultiOaScheduler, OaScheduler, QoaScheduler,
    };
    pub use pss_convex::{dual_bound, ProgramContext};
    pub use pss_offline::{BruteForceScheduler, MinEnergyScheduler, YdsScheduler};
    pub use pss_power::{AlphaPower, PowerFunction};
    pub use pss_types::{
        run_online, validate_schedule, Checkpointable, Cost, Decision, Instance, Job, JobId,
        OnlineAlgorithm, OnlineScheduler, Schedule, Scheduler, Segment, StateBlob,
    };
}
