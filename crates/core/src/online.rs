//! The truly online, event-driven variant of PD.
//!
//! [`PdScheduler`](crate::pd::PdScheduler) runs over the atomic-interval
//! partition induced by the *whole* instance, which is convenient for
//! experiments but assumes the partition is known upfront.  The paper argues
//! ("Concerning the Time Partitioning", Section 3) that this is without loss
//! of generality: running the algorithm on the coarser partition known at
//! each arrival and splitting assigned work proportionally whenever a new
//! boundary refines an interval produces the identical schedule.
//!
//! [`OnlinePd`] implements that online version literally: jobs are fed one
//! by one via [`OnlinePd::arrive`], the partition grows by refinement, and
//! previously assigned work is split proportionally.  The equivalence with
//! the batch scheduler is verified by tests and by the `online_equivalence`
//! integration test.
//!
//! ## The persistent planning context
//!
//! The arrival step is **incremental**: the run keeps a persistent sparse
//! planning context — the current partition plus, per atomic interval, the
//! list of `(job, fraction)` loads assigned there — and updates it in place
//! on every arrival (partition refinement splits load entries
//! proportionally; an accepted fill appends its entries).  The water-filling
//! step reads its per-interval capacities straight from these lists, so an
//! arrival costs time proportional to the *locally* affected intervals, not
//! to the whole history: no job list is cloned, no `Instance` is rebuilt,
//! and no dense `n × N` assignment is materialised.
//!
//! The pre-existing rebuild-from-scratch arrival step is retained behind
//! [`OnlinePd::with_rebuild_engine`] as an independently coded cross-check
//! (both engines must produce identical schedules; the
//! `incremental_equivalence` integration tests verify this) and as the
//! baseline of the `warm_replan` benchmark.

use pss_chen::{placement::place_interval, ChenInterval};
use pss_convex::{
    waterfill_candidates, waterfill_job, ProgramContext, WaterfillCandidate, WaterfillOptions,
};
use pss_intervals::{BoundaryInsert, IntervalPartition, WorkAssignment};
use pss_power::AlphaPower;
use pss_types::num::Tolerance;
use pss_types::seglog::{FrontierPart, LogCheckpointable, SegmentLog};
use pss_types::snapshot::{
    BlobReader, BlobWriter, Checkpointable, SnapshotError, SnapshotPart, StateBlob,
};
use pss_types::{
    check_arrival, Decision, Instance, Job, JobId, OnlineScheduler, Schedule, ScheduleError,
    Segment, ARRIVAL_ORDER_TOLERANCE,
};

/// The persistent sparse planning context of the incremental engine: the
/// partition known so far and, per atomic interval, the `(dense job,
/// fraction)` loads assigned there.  This is the "cached instance +
/// partition updated in place" replacing the per-arrival rebuild.
#[derive(Debug, Clone)]
struct PlanState {
    partition: IntervalPartition,
    /// `loads[k]` lists the jobs with positive fraction in interval `k`.
    loads: Vec<Vec<(usize, f64)>>,
}

impl PlanState {
    fn new() -> Self {
        Self {
            partition: IntervalPartition::from_boundaries(std::iter::empty()),
            loads: Vec::new(),
        }
    }

    /// Refines the partition with the new job's window endpoints **in
    /// place** and splits the affected load lists proportionally.  Each
    /// endpoint is an `O(log N)` search plus an `O(tail)` insertion —
    /// boundaries arrive in nondecreasing time order, so the moved tail is
    /// short and the committed prefix keeps its indices (the caller clamps
    /// the points to the committed-frontier floor, so no committed interval
    /// can ever split).  No new partition and no full `Refinement` mapping
    /// is ever materialised.
    fn refine(&mut self, points: &[f64]) {
        for &p in points {
            match self.partition.insert_boundary(p) {
                BoundaryInsert::Existing => {}
                BoundaryInsert::Append { created_interval } => {
                    if created_interval {
                        self.loads.push(Vec::new());
                    }
                }
                BoundaryInsert::Prepend { created_interval } => {
                    // Releases are nondecreasing, so a point before the very
                    // first boundary can only occur before anything was
                    // committed; the committed prefix is unaffected.
                    if created_interval {
                        self.loads.insert(0, Vec::new());
                    }
                }
                BoundaryInsert::Split {
                    interval,
                    left_fraction,
                } => {
                    let entries = &mut self.loads[interval];
                    let right: Vec<(usize, f64)> = entries
                        .iter()
                        .map(|&(j, f)| (j, f * (1.0 - left_fraction)))
                        .collect();
                    for e in entries.iter_mut() {
                        e.1 *= left_fraction;
                    }
                    self.loads.insert(interval + 1, right);
                }
            }
        }
        debug_assert_eq!(self.loads.len(), self.partition.len());
    }
}

/// How a run maintains its planning context across arrivals.
#[derive(Debug, Clone)]
enum ArrivalEngine {
    /// Persistent sparse context updated in place (the default).
    Incremental(PlanState),
    /// Rebuild the dense context (`Instance` + `ProgramContext` +
    /// `WorkAssignment`) from scratch on every arrival — the pre-warm-start
    /// behaviour, kept as a cross-check and benchmark baseline.
    Rebuild {
        partition: IntervalPartition,
        assignment: WorkAssignment,
    },
}

/// Event-driven PD: feed jobs in release order, read out the schedule at any
/// point.
#[derive(Debug, Clone)]
pub struct OnlinePd {
    machines: usize,
    alpha: f64,
    power: AlphaPower,
    delta: f64,
    tol: Tolerance,
    engine: ArrivalEngine,
    /// Jobs in arrival order, re-indexed densely (`jobs[i].id == JobId(i)`).
    jobs: Vec<Job>,
    /// The original id of each arrived job.
    original_ids: Vec<JobId>,
    lambda: Vec<f64>,
    accepted: Vec<bool>,
    last_release: f64,
    /// Realised segments of every fully elapsed atomic interval (original
    /// job ids) — the committed frontier of the event-driven API.
    committed: Schedule,
    /// Number of leading partition intervals already realised into
    /// `committed`.  Refinement only ever adds boundaries at or after the
    /// current arrival time, so this prefix is stable.
    committed_prefix: usize,
}

impl OnlinePd {
    /// Creates an online PD instance for `machines` machines, exponent
    /// `alpha` and the default parameter `δ = α^{1-α}`.
    pub fn new(machines: usize, alpha: f64) -> Self {
        let delta = AlphaPower::new(alpha).delta_star();
        Self::with_delta(machines, alpha, delta)
    }

    /// Creates an online PD instance with an explicit `δ`.
    pub fn with_delta(machines: usize, alpha: f64, delta: f64) -> Self {
        Self::with_options(machines, alpha, delta, Tolerance::default())
    }

    /// Creates an online PD instance with an explicit `δ` and water-level
    /// search tolerance (the knobs of
    /// [`PdScheduler`](crate::pd::PdScheduler)).
    pub fn with_options(machines: usize, alpha: f64, delta: f64, tol: Tolerance) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        let power = AlphaPower::new(alpha);
        Self {
            machines,
            alpha,
            power,
            delta,
            tol,
            engine: ArrivalEngine::Incremental(PlanState::new()),
            jobs: Vec::new(),
            original_ids: Vec::new(),
            lambda: Vec::new(),
            accepted: Vec::new(),
            last_release: f64::NEG_INFINITY,
            committed: Schedule::empty(machines),
            committed_prefix: 0,
        }
    }

    /// Switches this (fresh) run to the rebuild-per-arrival engine: the
    /// planning context (`Instance`, partition coverage, dense assignment)
    /// is reconstructed from the full job history on every arrival, exactly
    /// as before the persistent context existed.  Kept as an independently
    /// coded reference — both engines must produce identical schedules — and
    /// as the baseline of the warm-start benchmarks.
    ///
    /// # Panics
    /// Panics if jobs have already arrived.
    pub fn with_rebuild_engine(mut self) -> Self {
        assert!(
            self.jobs.is_empty(),
            "the engine can only be chosen before the first arrival"
        );
        self.engine = ArrivalEngine::Rebuild {
            partition: IntervalPartition::from_boundaries(std::iter::empty()),
            assignment: WorkAssignment::new(0),
        };
        self
    }

    /// Number of jobs that have arrived so far.
    pub fn arrived(&self) -> usize {
        self.jobs.len()
    }

    /// The accept/reject decisions so far, in arrival order, paired with the
    /// jobs' original ids.
    pub fn decisions(&self) -> Vec<(JobId, bool)> {
        self.original_ids
            .iter()
            .copied()
            .zip(self.accepted.iter().copied())
            .collect()
    }

    /// Feeds the next arriving job.  Jobs must be fed in nondecreasing order
    /// of release time (the online model); the job keeps its original id for
    /// the final schedule.  Returns whether PD accepted the job.
    pub fn arrive(&mut self, job: &Job) -> Result<bool, ScheduleError> {
        check_arrival(job, self.last_release, job.release)?;
        self.last_release = self.last_release.max(job.release);

        // 1. Register the job under a dense arrival index.
        let dense = self.jobs.len();
        self.jobs.push(Job::new(
            dense,
            job.release,
            job.deadline,
            job.work,
            job.value,
        ));
        self.original_ids.push(job.id);

        // 2. Refine the partition with the new boundaries (splitting the
        //    existing loads proportionally) and run the greedy primal-dual
        //    step for the new job on the refined partition.  The boundary
        //    points are clamped to the committed-frontier floor: the arrival
        //    tolerance lets a release lie up to 1e-9 before the previous
        //    arrival, which could otherwise split an already-committed
        //    interval and double-realise the sliver.
        let floor = if self.committed_prefix > 0 {
            self.partition().boundaries()[self.committed_prefix]
        } else {
            f64::NEG_INFINITY
        };
        let boundary_points = [job.release.max(floor), job.deadline.max(floor)];
        let opts = WaterfillOptions {
            max_fraction: 1.0,
            max_marginal: Some(job.value / self.delta),
            tol: self.tol,
        };
        // The rebuild engine's dense context is built once per arrival and
        // reused for the commit step below, like the pre-warm-start code.
        let mut rebuild_ctx: Option<ProgramContext> = None;
        let fill = match &mut self.engine {
            ArrivalEngine::Incremental(state) => {
                state.refine(&boundary_points);
                let candidates: Vec<WaterfillCandidate> = state
                    .partition
                    .covered_intervals(&self.jobs[dense])
                    .into_iter()
                    .map(|k| WaterfillCandidate {
                        interval: k,
                        length: state.partition.length(k),
                        other_works: state.loads[k]
                            .iter()
                            .map(|&(j, f)| f * self.jobs[j].work)
                            .collect(),
                    })
                    .collect();
                waterfill_candidates(self.power, self.machines, job.work, candidates, &opts)
            }
            ArrivalEngine::Rebuild {
                partition,
                assignment,
            } => {
                let (refined, refinement) = partition.refine(boundary_points);
                assignment.apply_refinement(&refinement);
                *partition = refined;
                assignment.ensure_job(dense);
                let ctx = rebuild_context(self.machines, self.alpha, &self.jobs, partition)?;
                let fill = waterfill_job(&ctx, assignment, dense, &opts);
                rebuild_ctx = Some(ctx);
                fill
            }
        };

        // 3. Commit or reset the fill, following Listing 1.
        let accepted = fill.saturated;
        if accepted {
            match &mut self.engine {
                ArrivalEngine::Incremental(state) => {
                    for &(k, f) in &fill.added {
                        state.loads[k].push((dense, f));
                    }
                }
                ArrivalEngine::Rebuild { assignment, .. } => {
                    for &(k, f) in &fill.added {
                        assignment.set(dense, k, f);
                    }
                }
            }
            self.lambda.push(self.delta * fill.level_marginal);
        } else {
            self.lambda.push(job.value);
        }
        self.accepted.push(accepted);

        // 4. Commit every interval that has fully elapsed: its loads can
        //    never change again (later jobs are released at or after `now`
        //    and refinement only adds boundaries `>= now`), so its
        //    realisation is final.
        self.commit_elapsed(job.release, rebuild_ctx.as_ref())?;
        Ok(accepted)
    }

    /// Realises interval `k` of the current planning context, with the jobs'
    /// **original** ids.  `ctx` must be the rebuild engine's current dense
    /// context (ignored by the incremental engine).
    fn realize_interval(
        &self,
        k: usize,
        ctx: Option<&ProgramContext>,
    ) -> Result<Vec<Segment>, ScheduleError> {
        match &self.engine {
            ArrivalEngine::Incremental(state) => {
                let entries = &state.loads[k];
                if entries.is_empty() {
                    return Ok(Vec::new());
                }
                let iv = state.partition.interval(k);
                let works: Vec<f64> = entries
                    .iter()
                    .map(|&(j, f)| f * self.jobs[j].work)
                    .collect();
                if works.iter().all(|u| *u <= 0.0) {
                    return Ok(Vec::new());
                }
                let sol = ChenInterval::new(iv.length(), self.machines, self.power).solve(&works);
                Ok(place_interval(&sol, iv.start, 0, |i| {
                    self.original_ids[entries[i].0]
                }))
            }
            ArrivalEngine::Rebuild { assignment, .. } => {
                let ctx = ctx.ok_or_else(|| {
                    ScheduleError::Internal(
                        "rebuild engine: realisation needs the dense context".into(),
                    )
                })?;
                let mut segments = ctx.realize_interval(assignment, k);
                for seg in &mut segments {
                    if let Some(j) = seg.job {
                        seg.job = Some(self.original_ids[j.index()]);
                    }
                }
                Ok(segments)
            }
        }
    }

    /// The partition of the engine currently in use.
    fn partition(&self) -> &IntervalPartition {
        match &self.engine {
            ArrivalEngine::Incremental(state) => &state.partition,
            ArrivalEngine::Rebuild { partition, .. } => partition,
        }
    }

    /// Builds the rebuild engine's dense context (`None` for the incremental
    /// engine) — once per caller, not per interval.
    fn current_rebuild_context(&self) -> Result<Option<ProgramContext>, ScheduleError> {
        match &self.engine {
            ArrivalEngine::Incremental(_) => Ok(None),
            ArrivalEngine::Rebuild { partition, .. } => Ok(Some(rebuild_context(
                self.machines,
                self.alpha,
                &self.jobs,
                partition,
            )?)),
        }
    }

    /// Realises (and remembers) every not-yet-committed interval ending at
    /// or before `now`.  `ctx` is the rebuild engine's current dense context
    /// if the caller already built one this arrival (built here otherwise).
    fn commit_elapsed(
        &mut self,
        now: f64,
        ctx: Option<&ProgramContext>,
    ) -> Result<(), ScheduleError> {
        let built;
        let ctx = match ctx {
            Some(ctx) => Some(ctx),
            None => {
                built = self.current_rebuild_context()?;
                built.as_ref()
            }
        };
        while self.committed_prefix < self.partition().len() {
            let iv = self.partition().interval(self.committed_prefix);
            if iv.end > now + 1e-12 {
                break;
            }
            for seg in self.realize_interval(iv.index, ctx)? {
                self.committed.push(seg);
            }
            self.committed_prefix += 1;
        }
        Ok(())
    }

    /// The current schedule for everything that has arrived so far, with the
    /// jobs' original ids.
    pub fn schedule(&self) -> Result<Schedule, ScheduleError> {
        let mut schedule = Schedule::empty(self.machines);
        if self.jobs.is_empty() {
            return Ok(schedule);
        }
        let ctx = self.current_rebuild_context()?;
        for k in 0..self.partition().len() {
            for seg in self.realize_interval(k, ctx.as_ref())? {
                schedule.push(seg);
            }
        }
        Ok(schedule)
    }

    /// Feeds a burst of jobs arriving together: one pass over the
    /// persistent sparse planning context — per-job partition refinement +
    /// water-fill in slice order (the greedy primal-dual step is
    /// order-dependent, so the fills stay sequential — exactly Listing 1's
    /// semantics) — with the boundary floor resolved once and **one**
    /// frontier commit (the per-interval Chen realisations) at the end
    /// instead of one per arrival.
    ///
    /// Splitting an interval proportionally never changes any water level
    /// or realised speed (the paper's partition-refinement invariance,
    /// Section 3), so committing after the whole burst realises exactly
    /// what the one-at-a-time interleaving would have; the
    /// burst-equivalence integration tests (`tests/incremental_equivalence.rs`)
    /// pin this.  Returns the accept decision per job, like
    /// [`arrive`](Self::arrive).
    ///
    /// The rebuild reference engine has no batched context update and
    /// simply loops [`arrive`](Self::arrive).
    pub fn arrive_burst(&mut self, jobs: &[Job], now: f64) -> Result<Vec<bool>, ScheduleError> {
        if jobs.is_empty() {
            return Ok(Vec::new());
        }
        // Validate the whole burst (against the loop's sequential ordering
        // contract) before mutating any state.
        let mut last = self.last_release;
        for job in jobs {
            if now < job.release - ARRIVAL_ORDER_TOLERANCE {
                return Err(ScheduleError::Internal(format!(
                    "job {} fed before its release time ({} < {})",
                    job.id, now, job.release
                )));
            }
            check_arrival(job, last, job.release)?;
            last = last.max(job.release);
        }
        if matches!(self.engine, ArrivalEngine::Rebuild { .. }) {
            // The reference engine rebuilds its dense context per arrival
            // anyway; batching would change what it is a baseline for.
            return jobs.iter().map(|job| self.arrive(job)).collect();
        }

        // The committed frontier cannot advance inside the burst (the
        // commit below is deferred), so the boundary floor is fixed once.
        let floor = if self.committed_prefix > 0 {
            self.partition().boundaries()[self.committed_prefix]
        } else {
            f64::NEG_INFINITY
        };
        let ArrivalEngine::Incremental(state) = &mut self.engine else {
            unreachable!("rebuild engine handled above");
        };

        // The sequential greedy fills, job by job on the shared context.
        // Each job refines the partition with its own two boundaries just
        // before its fill (not all burst boundaries upfront: a fill's cost
        // scales with the candidate sub-intervals it sees, so refining
        // lazily keeps the burst's earlier fills on the coarser partition,
        // exactly like the one-at-a-time path — refinement invariance makes
        // either order produce the same fills).
        let mut accepted = Vec::with_capacity(jobs.len());
        for job in jobs {
            state.refine(&[job.release.max(floor), job.deadline.max(floor)]);
            let dense = self.jobs.len();
            self.jobs.push(Job::new(
                dense,
                job.release,
                job.deadline,
                job.work,
                job.value,
            ));
            self.original_ids.push(job.id);
            let opts = WaterfillOptions {
                max_fraction: 1.0,
                max_marginal: Some(job.value / self.delta),
                tol: self.tol,
            };
            let candidates: Vec<WaterfillCandidate> = state
                .partition
                .covered_intervals(&self.jobs[dense])
                .into_iter()
                .map(|k| WaterfillCandidate {
                    interval: k,
                    length: state.partition.length(k),
                    other_works: state.loads[k]
                        .iter()
                        .map(|&(j, f)| f * self.jobs[j].work)
                        .collect(),
                })
                .collect();
            let fill = waterfill_candidates(self.power, self.machines, job.work, candidates, &opts);
            if fill.saturated {
                for &(k, f) in &fill.added {
                    state.loads[k].push((dense, f));
                }
                self.lambda.push(self.delta * fill.level_marginal);
            } else {
                self.lambda.push(job.value);
            }
            self.accepted.push(fill.saturated);
            accepted.push(fill.saturated);
            self.last_release = self.last_release.max(job.release);
        }

        // One frontier commit for the whole burst: realising an atomic
        // interval (a Chen solve per interval) is the expensive part of an
        // arrival on a jittered burst, and deferring it until the burst's
        // loads are final does it once instead of per sliver.
        self.commit_elapsed(self.last_release, None)?;
        Ok(accepted)
    }

    /// Convenience: runs the online algorithm over a whole instance (feeding
    /// jobs in release order) and returns the schedule in the instance's
    /// original job ids.
    pub fn run_instance(instance: &Instance) -> Result<Schedule, ScheduleError> {
        let mut online = Self::new(instance.machines, instance.alpha);
        for id in instance.arrival_order() {
            online.arrive(instance.job(id))?;
        }
        online.schedule()
    }
}

impl SnapshotPart for PlanState {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_part(&self.partition);
        w.write_usize(self.loads.len());
        for entries in &self.loads {
            w.write_seq(entries);
        }
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        let partition: IntervalPartition = r.read_part()?;
        let n = r.read_len(8)?;
        let mut loads = Vec::with_capacity(n);
        for _ in 0..n {
            loads.push(r.read_seq::<(usize, f64)>()?);
        }
        if loads.len() != partition.len() {
            return Err(SnapshotError::Invalid(format!(
                "{} load lists for {} intervals",
                loads.len(),
                partition.len()
            )));
        }
        Ok(Self { partition, loads })
    }
}

impl SnapshotPart for ArrivalEngine {
    fn encode(&self, w: &mut BlobWriter) {
        match self {
            ArrivalEngine::Incremental(state) => {
                w.write_u8(0);
                w.write_part(state);
            }
            ArrivalEngine::Rebuild {
                partition,
                assignment,
            } => {
                w.write_u8(1);
                w.write_part(partition);
                w.write_part(assignment);
            }
        }
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        match r.read_u8()? {
            0 => Ok(ArrivalEngine::Incremental(r.read_part()?)),
            1 => Ok(ArrivalEngine::Rebuild {
                partition: r.read_part()?,
                assignment: r.read_part()?,
            }),
            other => Err(SnapshotError::Invalid(format!(
                "unknown PD arrival engine tag {other}"
            ))),
        }
    }
}

/// State version of [`OnlinePd`] snapshots.  Version 2 stores the
/// committed frontier as a [`FrontierPart`] (inline or a segment-log
/// cursor); version-1 blobs are rejected with a typed error.
const PD_STATE_VERSION: u16 = 2;

impl OnlinePd {
    fn encode_snapshot(&self, frontier: &FrontierPart) -> StateBlob {
        let mut w = BlobWriter::new();
        w.write_usize(self.machines);
        w.write_f64(self.alpha);
        w.write_f64(self.delta);
        w.write_part(&self.tol);
        w.write_part(&self.engine);
        w.write_seq(&self.jobs);
        w.write_seq(&self.original_ids);
        w.write_seq(&self.lambda);
        w.write_seq(&self.accepted);
        w.write_f64(self.last_release);
        w.write_part(frontier);
        w.write_usize(self.committed_prefix);
        StateBlob::new("pd", PD_STATE_VERSION, w.into_payload())
    }

    fn decode_snapshot(blob: &StateBlob, log: Option<&SegmentLog>) -> Result<Self, SnapshotError> {
        let mut r = blob.expect("pd", PD_STATE_VERSION)?;
        let machines = r.read_usize()?;
        let alpha = r.read_f64()?;
        let delta = r.read_f64()?;
        if machines == 0
            || !(delta > 0.0 && delta.is_finite())
            || !(alpha.is_finite() && alpha > 1.0)
        {
            return Err(SnapshotError::Invalid("PD parameters out of range".into()));
        }
        let state = Self {
            machines,
            alpha,
            power: AlphaPower::new(alpha),
            delta,
            tol: r.read_part()?,
            engine: r.read_part()?,
            jobs: r.read_seq()?,
            original_ids: r.read_seq()?,
            lambda: r.read_seq()?,
            accepted: r.read_seq()?,
            last_release: r.read_f64()?,
            committed: r.read_part::<FrontierPart>()?.resolve(log)?,
            committed_prefix: r.read_usize()?,
        };
        r.finish()?;
        let n = state.jobs.len();
        if state.original_ids.len() != n
            || state.lambda.len() != n
            || state.accepted.len() != n
            || state.committed_prefix > state.partition().len()
        {
            return Err(SnapshotError::Invalid(
                "PD job tables disagree in length".into(),
            ));
        }
        // The engine's load/assignment tables index into the job history;
        // restore must stay total, so a dangling index is an error here
        // rather than a panic at the next arrival.
        match &state.engine {
            ArrivalEngine::Incremental(plan) => {
                if plan
                    .loads
                    .iter()
                    .any(|entries| entries.iter().any(|&(j, _)| j >= n))
                {
                    return Err(SnapshotError::Invalid(
                        "PD planning context references unknown jobs".into(),
                    ));
                }
            }
            ArrivalEngine::Rebuild {
                partition,
                assignment,
            } => {
                if assignment.n_jobs() > n || assignment.n_intervals() != partition.len() {
                    return Err(SnapshotError::Invalid(
                        "PD rebuild assignment disagrees with the partition".into(),
                    ));
                }
            }
        }
        Ok(state)
    }
}

/// The snapshot holds PD's complete dynamic state: the persistent sparse
/// planning context (partition boundaries + per-interval `(job, fraction)`
/// load lists — or the rebuild engine's partition and dense assignment),
/// the dense job history with original ids, the duals and decisions so far,
/// the committed frontier with its realised prefix length, and the run
/// parameters (`m`, `α`, `δ`, water-level tolerance).  The power function is
/// re-derived from `α` on restore; continuation is bit-identical.
impl Checkpointable for OnlinePd {
    fn snapshot(&self) -> StateBlob {
        self.encode_snapshot(&FrontierPart::Inline(self.committed.clone()))
    }

    fn restore(blob: &StateBlob) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, None)
    }
}

/// O(active) checkpointing: the committed frontier lives in the run's
/// [`SegmentLog`]; the blob stores only a cursor (the realised-prefix
/// index `committed_prefix` is live state and stays in the blob).
impl LogCheckpointable for OnlinePd {
    fn snapshot_live(&self, log: &mut SegmentLog) -> Result<StateBlob, SnapshotError> {
        let cursor = log.sync_from(&self.committed)?;
        Ok(self.encode_snapshot(&FrontierPart::cursor_of(self.committed.machines, cursor)))
    }

    fn restore_with_log(blob: &StateBlob, log: &SegmentLog) -> Result<Self, SnapshotError> {
        Self::decode_snapshot(blob, Some(log))
    }
}

/// Builds the dense planning context of the rebuild engine: clones the full
/// job history into a fresh `Instance` and re-derives every job's interval
/// coverage — `O(n·N)` per call, which is exactly the per-arrival cost the
/// persistent context removes.
fn rebuild_context(
    machines: usize,
    alpha: f64,
    jobs: &[Job],
    partition: &IntervalPartition,
) -> Result<ProgramContext, ScheduleError> {
    let instance = Instance::from_jobs(machines, alpha, jobs.to_vec())
        .map_err(|e| ScheduleError::Internal(e.to_string()))?;
    Ok(ProgramContext::with_partition(&instance, partition.clone()))
}

impl OnlineScheduler for OnlinePd {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        // Only the `now`-specific half of the ingress contract is checked
        // here; `arrive` performs the full `check_arrival` (including the
        // one-time job validation) against the release time.
        if now < job.release - ARRIVAL_ORDER_TOLERANCE {
            return Err(ScheduleError::Internal(format!(
                "job {} fed before its release time ({} < {})",
                job.id, now, job.release
            )));
        }
        let accepted = self.arrive(job)?;
        // The Decision convention of `pss_types::scheduler`: accepted jobs
        // report their dual variable λ_j (the water level reached), rejected
        // jobs always report their lost value.
        Ok(if accepted {
            Decision::accept(self.lambda.last().copied().unwrap_or(0.0))
        } else {
            Decision::reject(job.value)
        })
    }

    /// Batch ingestion through [`arrive_burst`](OnlinePd::arrive_burst):
    /// one partition update and one frontier commit per burst, sequential
    /// (order-exact) water-fills, decisions under the workspace dual
    /// convention.
    fn on_arrivals(&mut self, jobs: &[Job], now: f64) -> Result<Vec<Decision>, ScheduleError> {
        let before = self.lambda.len();
        let accepted = self.arrive_burst(jobs, now)?;
        Ok(accepted
            .into_iter()
            .enumerate()
            .map(|(i, ok)| {
                if ok {
                    Decision::accept(self.lambda[before + i])
                } else {
                    Decision::reject(jobs[i].value)
                }
            })
            .collect())
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        if self.jobs.is_empty() {
            return Ok(Schedule::empty(self.machines));
        }
        self.commit_elapsed(f64::INFINITY, None)?;
        Ok(self.committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pd::PdScheduler;
    use pss_types::validate_schedule;

    fn instance() -> Instance {
        Instance::from_tuples(
            2,
            2.5,
            vec![
                (0.0, 3.0, 1.5, 6.0),
                (0.5, 2.0, 1.0, 0.2),
                (1.0, 4.0, 2.0, 5.0),
                (2.0, 3.5, 1.0, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn online_matches_batch_pd() {
        let inst = instance();
        let batch = PdScheduler::default().run(&inst).unwrap();
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for id in inst.arrival_order() {
            let accepted = online.arrive(inst.job(id)).unwrap();
            assert_eq!(
                accepted,
                batch.accepted[id.index()],
                "decision for {id} differs between online and batch PD"
            );
        }
        let online_cost = online.schedule().unwrap().cost(&inst).total();
        let batch_cost = batch.schedule.cost(&inst).total();
        assert!(
            (online_cost - batch_cost).abs() < 1e-6 * batch_cost.max(1.0),
            "online {online_cost} vs batch {batch_cost}"
        );
    }

    #[test]
    fn incremental_engine_matches_rebuild_engine() {
        let inst = instance();
        let mut warm = OnlinePd::new(inst.machines, inst.alpha);
        let mut cold = OnlinePd::new(inst.machines, inst.alpha).with_rebuild_engine();
        for id in inst.arrival_order() {
            let a = warm.arrive(inst.job(id)).unwrap();
            let b = cold.arrive(inst.job(id)).unwrap();
            assert_eq!(a, b, "decision for {id} differs between engines");
            assert!(
                (warm.lambda.last().unwrap() - cold.lambda.last().unwrap()).abs() < 1e-9,
                "duals differ for {id}"
            );
        }
        let sw = warm.schedule().unwrap();
        let sc = cold.schedule().unwrap();
        assert!(
            (sw.cost(&inst).total() - sc.cost(&inst).total()).abs()
                < 1e-9 * sc.cost(&inst).total().max(1.0)
        );
        for t in [0.25, 0.75, 1.5, 2.25, 3.25] {
            assert!(
                (sw.total_speed_at(t) - sc.total_speed_at(t)).abs() < 1e-9,
                "profiles differ at t={t}"
            );
        }
    }

    #[test]
    fn online_schedule_is_feasible_at_every_prefix() {
        let inst = instance();
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for (i, id) in inst.arrival_order().into_iter().enumerate() {
            online.arrive(inst.job(id)).unwrap();
            let schedule = online.schedule().unwrap();
            // Validate against the prefix instance (jobs released so far).
            let prefix_ids: Vec<JobId> = inst.arrival_order()[..=i].to_vec();
            let mut jobs: Vec<Job> = prefix_ids.iter().map(|j| *inst.job(*j)).collect();
            // Re-densify for validation.
            jobs.sort_by_key(|j| j.id);
            let dense: Vec<Job> = jobs
                .iter()
                .enumerate()
                .map(|(k, j)| Job::new(k, j.release, j.deadline, j.work, j.value))
                .collect();
            let id_map: std::collections::HashMap<usize, usize> = jobs
                .iter()
                .enumerate()
                .map(|(k, j)| (j.id.index(), k))
                .collect();
            let prefix_inst = Instance::from_jobs(inst.machines, inst.alpha, dense).unwrap();
            let mut remapped = Schedule::empty(inst.machines);
            for mut seg in schedule.segments {
                if let Some(j) = seg.job {
                    seg.job = Some(JobId(id_map[&j.index()]));
                }
                remapped.push(seg);
            }
            assert!(validate_schedule(&prefix_inst, &remapped).is_ok());
        }
    }

    #[test]
    fn out_of_order_arrivals_are_rejected() {
        let mut online = OnlinePd::new(1, 2.0);
        online.arrive(&Job::new(0, 5.0, 6.0, 1.0, 1.0)).unwrap();
        let err = online.arrive(&Job::new(1, 1.0, 2.0, 1.0, 1.0));
        assert!(err.is_err());
    }

    #[test]
    fn non_finite_jobs_are_rejected_at_ingress() {
        let mut online = OnlinePd::new(1, 2.0);
        let mut bad = Job::new(0, 0.0, 1.0, 1.0, 1.0);
        bad.work = f64::NAN;
        assert!(online.arrive(&bad).is_err());
        assert_eq!(online.arrived(), 0);
    }

    #[test]
    fn decisions_report_original_ids() {
        let inst = instance();
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for id in inst.arrival_order() {
            online.arrive(inst.job(id)).unwrap();
        }
        let decisions = online.decisions();
        assert_eq!(decisions.len(), inst.len());
        let ids: Vec<JobId> = decisions.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, inst.arrival_order());
    }

    #[test]
    fn run_instance_convenience_matches_batch_cost() {
        let inst = instance();
        let online = OnlinePd::run_instance(&inst).unwrap();
        let batch = PdScheduler::default().run(&inst).unwrap();
        let a = online.cost(&inst).total();
        let b = batch.schedule.cost(&inst).total();
        assert!((a - b).abs() < 1e-6 * b.max(1.0));
    }

    #[test]
    fn empty_online_schedule_is_empty() {
        let online = OnlinePd::new(3, 2.0);
        assert_eq!(online.arrived(), 0);
        assert!(online.schedule().unwrap().segments.is_empty());
    }

    #[test]
    fn rejected_jobs_follow_the_decision_convention() {
        // A hopeless job: huge work over a short window, negligible value.
        let job = Job::new(0, 0.0, 1.0, 10.0, 0.01);
        let mut online = OnlinePd::new(1, 2.0);
        let d = online.on_arrival(&job, 0.0).unwrap();
        assert!(!d.accepted);
        assert_eq!(d.dual, 0.01, "rejected jobs report their lost value");
    }
}
