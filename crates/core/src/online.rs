//! The truly online, event-driven variant of PD.
//!
//! [`PdScheduler`](crate::pd::PdScheduler) runs over the atomic-interval
//! partition induced by the *whole* instance, which is convenient for
//! experiments but assumes the partition is known upfront.  The paper argues
//! ("Concerning the Time Partitioning", Section 3) that this is without loss
//! of generality: running the algorithm on the coarser partition known at
//! each arrival and splitting assigned work proportionally whenever a new
//! boundary refines an interval produces the identical schedule.
//!
//! [`OnlinePd`] implements that online version literally: jobs are fed one
//! by one via [`OnlinePd::arrive`], the partition grows by refinement, and
//! previously assigned work is split proportionally (via
//! [`WorkAssignment::apply_refinement`]).  The equivalence with the batch
//! scheduler is verified by tests and by the `online_equivalence`
//! integration test.

use pss_convex::{waterfill_job, ProgramContext, WaterfillOptions};
use pss_intervals::{IntervalPartition, WorkAssignment};
use pss_power::AlphaPower;
use pss_types::num::Tolerance;
use pss_types::{
    check_arrival_order, Decision, Instance, Job, JobId, OnlineScheduler, Schedule, ScheduleError,
};

/// Event-driven PD: feed jobs in release order, read out the schedule at any
/// point.
#[derive(Debug, Clone)]
pub struct OnlinePd {
    machines: usize,
    alpha: f64,
    delta: f64,
    tol: Tolerance,
    partition: IntervalPartition,
    assignment: WorkAssignment,
    /// Jobs in arrival order, re-indexed densely (`jobs[i].id == JobId(i)`).
    jobs: Vec<Job>,
    /// The original id of each arrived job.
    original_ids: Vec<JobId>,
    lambda: Vec<f64>,
    accepted: Vec<bool>,
    last_release: f64,
    /// Realised segments of every fully elapsed atomic interval (original
    /// job ids) — the committed frontier of the event-driven API.
    committed: Schedule,
    /// Number of leading partition intervals already realised into
    /// `committed`.  Refinement only ever adds boundaries at or after the
    /// current arrival time, so this prefix is stable.
    committed_prefix: usize,
}

impl OnlinePd {
    /// Creates an online PD instance for `machines` machines, exponent
    /// `alpha` and the default parameter `δ = α^{1-α}`.
    pub fn new(machines: usize, alpha: f64) -> Self {
        let delta = AlphaPower::new(alpha).delta_star();
        Self::with_delta(machines, alpha, delta)
    }

    /// Creates an online PD instance with an explicit `δ`.
    pub fn with_delta(machines: usize, alpha: f64, delta: f64) -> Self {
        Self::with_options(machines, alpha, delta, Tolerance::default())
    }

    /// Creates an online PD instance with an explicit `δ` and water-level
    /// search tolerance (the knobs of
    /// [`PdScheduler`](crate::pd::PdScheduler)).
    pub fn with_options(machines: usize, alpha: f64, delta: f64, tol: Tolerance) -> Self {
        assert!(machines > 0, "need at least one machine");
        assert!(delta > 0.0 && delta.is_finite(), "delta must be positive");
        // Constructing the power function validates alpha.
        let _ = AlphaPower::new(alpha);
        Self {
            machines,
            alpha,
            delta,
            tol,
            partition: IntervalPartition::from_boundaries(std::iter::empty()),
            assignment: WorkAssignment::new(0),
            jobs: Vec::new(),
            original_ids: Vec::new(),
            lambda: Vec::new(),
            accepted: Vec::new(),
            last_release: f64::NEG_INFINITY,
            committed: Schedule::empty(machines),
            committed_prefix: 0,
        }
    }

    /// Number of jobs that have arrived so far.
    pub fn arrived(&self) -> usize {
        self.jobs.len()
    }

    /// The accept/reject decisions so far, in arrival order, paired with the
    /// jobs' original ids.
    pub fn decisions(&self) -> Vec<(JobId, bool)> {
        self.original_ids
            .iter()
            .copied()
            .zip(self.accepted.iter().copied())
            .collect()
    }

    /// Feeds the next arriving job.  Jobs must be fed in nondecreasing order
    /// of release time (the online model); the job keeps its original id for
    /// the final schedule.  Returns whether PD accepted the job.
    pub fn arrive(&mut self, job: &Job) -> Result<bool, ScheduleError> {
        job.validate()
            .map_err(|e| ScheduleError::Internal(e.to_string()))?;
        check_arrival_order(self.last_release, job.release)?;
        self.last_release = self.last_release.max(job.release);

        // 1. Refine the partition with the new boundaries and split the
        //    existing assignment proportionally.
        let (refined, refinement) = self.partition.refine([job.release, job.deadline]);
        self.assignment.apply_refinement(&refinement);
        self.partition = refined;

        // 2. Register the job under a dense arrival index.
        let dense = self.jobs.len();
        self.jobs.push(Job::new(
            dense,
            job.release,
            job.deadline,
            job.work,
            job.value,
        ));
        self.original_ids.push(job.id);
        self.assignment.ensure_job(dense);

        // 3. Greedy primal-dual step for the new job on the current
        //    partition.
        let ctx = self.context()?;
        let opts = WaterfillOptions {
            max_fraction: 1.0,
            max_marginal: Some(job.value / self.delta),
            tol: self.tol,
        };
        let fill = waterfill_job(&ctx, &self.assignment, dense, &opts);
        let accepted = if fill.saturated {
            for (k, f) in &fill.added {
                self.assignment.set(dense, *k, *f);
            }
            self.lambda.push(self.delta * fill.level_marginal);
            self.accepted.push(true);
            true
        } else {
            self.lambda.push(job.value);
            self.accepted.push(false);
            false
        };

        // 4. Commit every interval that has fully elapsed: its column of the
        //    assignment can never change again (later jobs are released at
        //    or after `now` and refinement only adds boundaries `>= now`),
        //    so its realisation is final.
        self.commit_elapsed(&ctx, job.release);
        Ok(accepted)
    }

    /// Realises (and remembers) every not-yet-committed interval ending at
    /// or before `now`.
    fn commit_elapsed(&mut self, ctx: &ProgramContext, now: f64) {
        while self.committed_prefix < ctx.partition().len() {
            let iv = ctx.partition().interval(self.committed_prefix);
            if iv.end > now + 1e-12 {
                break;
            }
            for mut seg in ctx.realize_interval(&self.assignment, iv.index) {
                if let Some(j) = seg.job {
                    seg.job = Some(self.original_ids[j.index()]);
                }
                self.committed.push(seg);
            }
            self.committed_prefix += 1;
        }
    }

    /// The current schedule for everything that has arrived so far, with the
    /// jobs' original ids.
    pub fn schedule(&self) -> Result<Schedule, ScheduleError> {
        if self.jobs.is_empty() {
            return Ok(Schedule::empty(self.machines));
        }
        let ctx = self.context()?;
        let dense_schedule = ctx.realize_schedule(&self.assignment);
        let mut schedule = Schedule::empty(self.machines);
        for mut seg in dense_schedule.segments {
            if let Some(job) = seg.job {
                seg.job = Some(self.original_ids[job.index()]);
            }
            schedule.push(seg);
        }
        Ok(schedule)
    }

    /// Convenience: runs the online algorithm over a whole instance (feeding
    /// jobs in release order) and returns the schedule in the instance's
    /// original job ids.
    pub fn run_instance(instance: &Instance) -> Result<Schedule, ScheduleError> {
        let mut online = Self::new(instance.machines, instance.alpha);
        for id in instance.arrival_order() {
            online.arrive(instance.job(id))?;
        }
        online.schedule()
    }

    fn context(&self) -> Result<ProgramContext, ScheduleError> {
        let instance = Instance::from_jobs(self.machines, self.alpha, self.jobs.clone())
            .map_err(|e| ScheduleError::Internal(e.to_string()))?;
        Ok(ProgramContext::with_partition(
            &instance,
            self.partition.clone(),
        ))
    }
}

impl OnlineScheduler for OnlinePd {
    fn on_arrival(&mut self, job: &Job, now: f64) -> Result<Decision, ScheduleError> {
        if now < job.release - 1e-9 {
            return Err(ScheduleError::Internal(format!(
                "job {} fed before its release time ({} < {})",
                job.id, now, job.release
            )));
        }
        let accepted = self.arrive(job)?;
        let dual = self.lambda.last().copied().unwrap_or(0.0);
        Ok(Decision { accepted, dual })
    }

    fn frontier(&self) -> &Schedule {
        &self.committed
    }

    fn finish(mut self) -> Result<Schedule, ScheduleError> {
        if self.jobs.is_empty() {
            return Ok(Schedule::empty(self.machines));
        }
        let ctx = self.context()?;
        self.commit_elapsed(&ctx, f64::INFINITY);
        Ok(self.committed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pd::PdScheduler;
    use pss_types::validate_schedule;

    fn instance() -> Instance {
        Instance::from_tuples(
            2,
            2.5,
            vec![
                (0.0, 3.0, 1.5, 6.0),
                (0.5, 2.0, 1.0, 0.2),
                (1.0, 4.0, 2.0, 5.0),
                (2.0, 3.5, 1.0, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn online_matches_batch_pd() {
        let inst = instance();
        let batch = PdScheduler::default().run(&inst).unwrap();
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for id in inst.arrival_order() {
            let accepted = online.arrive(inst.job(id)).unwrap();
            assert_eq!(
                accepted,
                batch.accepted[id.index()],
                "decision for {id} differs between online and batch PD"
            );
        }
        let online_cost = online.schedule().unwrap().cost(&inst).total();
        let batch_cost = batch.schedule.cost(&inst).total();
        assert!(
            (online_cost - batch_cost).abs() < 1e-6 * batch_cost.max(1.0),
            "online {online_cost} vs batch {batch_cost}"
        );
    }

    #[test]
    fn online_schedule_is_feasible_at_every_prefix() {
        let inst = instance();
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for (i, id) in inst.arrival_order().into_iter().enumerate() {
            online.arrive(inst.job(id)).unwrap();
            let schedule = online.schedule().unwrap();
            // Validate against the prefix instance (jobs released so far).
            let prefix_ids: Vec<JobId> = inst.arrival_order()[..=i].to_vec();
            let mut jobs: Vec<Job> = prefix_ids.iter().map(|j| *inst.job(*j)).collect();
            // Re-densify for validation.
            jobs.sort_by_key(|j| j.id);
            let dense: Vec<Job> = jobs
                .iter()
                .enumerate()
                .map(|(k, j)| Job::new(k, j.release, j.deadline, j.work, j.value))
                .collect();
            let id_map: std::collections::HashMap<usize, usize> = jobs
                .iter()
                .enumerate()
                .map(|(k, j)| (j.id.index(), k))
                .collect();
            let prefix_inst = Instance::from_jobs(inst.machines, inst.alpha, dense).unwrap();
            let mut remapped = Schedule::empty(inst.machines);
            for mut seg in schedule.segments {
                if let Some(j) = seg.job {
                    seg.job = Some(JobId(id_map[&j.index()]));
                }
                remapped.push(seg);
            }
            assert!(validate_schedule(&prefix_inst, &remapped).is_ok());
        }
    }

    #[test]
    fn out_of_order_arrivals_are_rejected() {
        let mut online = OnlinePd::new(1, 2.0);
        online.arrive(&Job::new(0, 5.0, 6.0, 1.0, 1.0)).unwrap();
        let err = online.arrive(&Job::new(1, 1.0, 2.0, 1.0, 1.0));
        assert!(err.is_err());
    }

    #[test]
    fn decisions_report_original_ids() {
        let inst = instance();
        let mut online = OnlinePd::new(inst.machines, inst.alpha);
        for id in inst.arrival_order() {
            online.arrive(inst.job(id)).unwrap();
        }
        let decisions = online.decisions();
        assert_eq!(decisions.len(), inst.len());
        let ids: Vec<JobId> = decisions.iter().map(|(id, _)| *id).collect();
        assert_eq!(ids, inst.arrival_order());
    }

    #[test]
    fn run_instance_convenience_matches_batch_cost() {
        let inst = instance();
        let online = OnlinePd::run_instance(&inst).unwrap();
        let batch = PdScheduler::default().run(&inst).unwrap();
        let a = online.cost(&inst).total();
        let b = batch.schedule.cost(&inst).total();
        assert!((a - b).abs() < 1e-6 * b.max(1.0));
    }

    #[test]
    fn empty_online_schedule_is_empty() {
        let online = OnlinePd::new(3, 2.0);
        assert_eq!(online.arrived(), 0);
        assert!(online.schedule().unwrap().segments.is_empty());
    }
}
