//! Property-based tests of the convex-program machinery: water-filling
//! invariants, duality (weak duality against explicitly constructed feasible
//! schedules), and solver optimality against per-job balance conditions.

use proptest::prelude::*;

use pss_convex::{dual_bound, solve_min_energy, waterfill_job, ProgramContext, WaterfillOptions};
use pss_intervals::WorkAssignment;
use pss_types::Instance;

/// Strategy producing small random instances with valid windows.
fn instance_strategy(max_jobs: usize, max_machines: usize) -> impl Strategy<Value = Instance> {
    let job = (0.0f64..5.0, 0.2f64..4.0, 0.1f64..3.0, 0.0f64..10.0);
    (
        prop::collection::vec(job, 1..=max_jobs),
        1..=max_machines,
        prop_oneof![Just(1.5f64), Just(2.0), Just(2.5), Just(3.0)],
    )
        .prop_map(|(tuples, machines, alpha)| {
            let jobs = tuples
                .into_iter()
                .map(|(r, window, w, v)| (r, r + window, w, v))
                .collect::<Vec<_>>();
            Instance::from_tuples(machines, alpha, jobs).expect("valid random instance")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Water filling a job with no level cap always places the whole job,
    /// only into intervals the job covers, with nonnegative fractions.
    #[test]
    fn waterfill_places_exactly_the_whole_job(inst in instance_strategy(6, 4), job_sel in 0usize..6) {
        let ctx = ProgramContext::new(&inst);
        let job = job_sel % inst.len();
        let x = WorkAssignment::zeros(inst.len(), ctx.partition().len());
        let fill = waterfill_job(&ctx, &x, job, &WaterfillOptions::default());
        prop_assert!(fill.saturated);
        prop_assert!((fill.total - 1.0).abs() < 1e-6);
        for (k, f) in &fill.added {
            prop_assert!(*f >= 0.0);
            prop_assert!(ctx.covered(job).contains(k), "interval {} not covered", k);
        }
    }

    /// A marginal cap never increases the amount placed, and the reported
    /// level never exceeds the cap.
    #[test]
    fn waterfill_cap_is_respected(inst in instance_strategy(5, 3), cap in 0.01f64..5.0) {
        let ctx = ProgramContext::new(&inst);
        let x = WorkAssignment::zeros(inst.len(), ctx.partition().len());
        let free = waterfill_job(&ctx, &x, 0, &WaterfillOptions::default());
        let capped = waterfill_job(
            &ctx,
            &x,
            0,
            &WaterfillOptions { max_marginal: Some(cap), ..Default::default() },
        );
        prop_assert!(capped.total <= free.total + 1e-9);
        prop_assert!(capped.level_marginal <= cap * (1.0 + 1e-6) + 1e-9);
    }

    /// Weak duality: for arbitrary nonnegative duals, g(λ) never exceeds the
    /// cost of the "finish everything optimally" schedule nor the cost of
    /// the "reject everything" schedule.
    #[test]
    fn dual_bound_respects_weak_duality(
        inst in instance_strategy(5, 3),
        lambda_seed in prop::collection::vec(0.0f64..8.0, 5),
    ) {
        let ctx = ProgramContext::new(&inst);
        let lambda: Vec<f64> = (0..inst.len()).map(|j| lambda_seed[j % lambda_seed.len()]).collect();
        let g = dual_bound(&ctx, &lambda).value;

        // Feasible schedule 1: reject everything.
        prop_assert!(g <= inst.total_value() + 1e-6);

        // Feasible schedule 2: finish everything with the offline solver.
        let sol = solve_min_energy(&ctx);
        prop_assert!(g <= sol.energy + 1e-5 * sol.energy.max(1.0) + 1e-6,
            "g = {} exceeds finish-all energy {}", g, sol.energy);
    }

    /// The offline solver's energy never exceeds the energy of the simple
    /// feasible solution that spreads every job uniformly over its window,
    /// and realising its assignment yields a schedule finishing every job.
    #[test]
    fn solver_beats_uniform_spreading(inst in instance_strategy(5, 3)) {
        let ctx = ProgramContext::new(&inst);
        let sol = solve_min_energy(&ctx);

        // Uniform spreading: x_{jk} = l_k / window_j for covered intervals.
        let mut uniform = WorkAssignment::zeros(inst.len(), ctx.partition().len());
        for job in &inst.jobs {
            let j = job.id.index();
            for &k in ctx.covered(j) {
                uniform.set(j, k, ctx.partition().length(k) / job.window());
            }
        }
        let uniform_energy = ctx.total_energy(&uniform);
        prop_assert!(sol.energy <= uniform_energy + 1e-5 * uniform_energy.max(1.0),
            "solver {} worse than uniform {}", sol.energy, uniform_energy);

        let schedule = ctx.realize_schedule(&sol.assignment);
        let report = pss_types::validate_schedule(&inst, &schedule).expect("feasible");
        prop_assert!(report.rejected.is_empty(), "solver failed to finish: {:?}", report.rejected);
    }
}
