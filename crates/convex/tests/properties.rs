//! Randomised property tests of the convex-program machinery: water-filling
//! invariants, duality (weak duality against explicitly constructed feasible
//! schedules), and solver optimality against per-job balance conditions.
//!
//! Cases are drawn from the workspace's seeded [`SmallRng`] (no crates.io
//! access, so `proptest` is unavailable); equal seeds make every failure
//! reproducible.

use pss_convex::{dual_bound, solve_min_energy, waterfill_job, ProgramContext, WaterfillOptions};
use pss_intervals::WorkAssignment;
use pss_types::Instance;
use pss_workloads::SmallRng;

const ALPHAS: [f64; 4] = [1.5, 2.0, 2.5, 3.0];

/// A small random instance with valid windows.
fn random_instance(rng: &mut SmallRng, max_jobs: usize, max_machines: usize) -> Instance {
    let n = rng.usize_range(1, max_jobs);
    let machines = rng.usize_range(1, max_machines);
    let alpha = ALPHAS[rng.usize_range(0, ALPHAS.len() - 1)];
    let jobs: Vec<(f64, f64, f64, f64)> = (0..n)
        .map(|_| {
            let r = rng.f64_range(0.0, 5.0);
            let window = rng.f64_range(0.2, 4.0);
            let w = rng.f64_range(0.1, 3.0);
            let v = rng.f64_range(0.0, 10.0);
            (r, r + window, w, v)
        })
        .collect();
    Instance::from_tuples(machines, alpha, jobs).expect("valid random instance")
}

/// Water filling a job with no level cap always places the whole job,
/// only into intervals the job covers, with nonnegative fractions.
#[test]
fn waterfill_places_exactly_the_whole_job() {
    let mut rng = SmallRng::seed_from_u64(0xC0 + 1);
    for _ in 0..48 {
        let inst = random_instance(&mut rng, 6, 4);
        let job = rng.usize_range(0, inst.len() - 1);
        let ctx = ProgramContext::new(&inst);
        let x = WorkAssignment::zeros(inst.len(), ctx.partition().len());
        let fill = waterfill_job(&ctx, &x, job, &WaterfillOptions::default());
        assert!(fill.saturated);
        assert!((fill.total - 1.0).abs() < 1e-6, "total {}", fill.total);
        for (k, f) in &fill.added {
            assert!(*f >= 0.0);
            assert!(ctx.covered(job).contains(k), "interval {k} not covered");
        }
    }
}

/// A marginal cap never increases the amount placed, and the reported
/// level never exceeds the cap.
#[test]
fn waterfill_cap_is_respected() {
    let mut rng = SmallRng::seed_from_u64(0xC0 + 2);
    for _ in 0..48 {
        let inst = random_instance(&mut rng, 5, 3);
        let cap = rng.f64_range(0.01, 5.0);
        let ctx = ProgramContext::new(&inst);
        let x = WorkAssignment::zeros(inst.len(), ctx.partition().len());
        let free = waterfill_job(&ctx, &x, 0, &WaterfillOptions::default());
        let capped = waterfill_job(
            &ctx,
            &x,
            0,
            &WaterfillOptions {
                max_marginal: Some(cap),
                ..Default::default()
            },
        );
        assert!(capped.total <= free.total + 1e-9);
        assert!(capped.level_marginal <= cap * (1.0 + 1e-6) + 1e-9);
    }
}

/// Weak duality: for arbitrary nonnegative duals, g(λ) never exceeds the
/// cost of the "finish everything optimally" schedule nor the cost of
/// the "reject everything" schedule.
#[test]
fn dual_bound_respects_weak_duality() {
    let mut rng = SmallRng::seed_from_u64(0xC0 + 3);
    for _ in 0..48 {
        let inst = random_instance(&mut rng, 5, 3);
        let ctx = ProgramContext::new(&inst);
        let lambda: Vec<f64> = (0..inst.len()).map(|_| rng.f64_range(0.0, 8.0)).collect();
        let g = dual_bound(&ctx, &lambda).value;

        // Feasible schedule 1: reject everything.
        assert!(g <= inst.total_value() + 1e-6);

        // Feasible schedule 2: finish everything with the offline solver.
        let sol = solve_min_energy(&ctx);
        assert!(
            g <= sol.energy + 1e-5 * sol.energy.max(1.0) + 1e-6,
            "g = {g} exceeds finish-all energy {}",
            sol.energy
        );
    }
}

/// The offline solver's energy never exceeds the energy of the simple
/// feasible solution that spreads every job uniformly over its window,
/// and realising its assignment yields a schedule finishing every job.
#[test]
fn solver_beats_uniform_spreading() {
    let mut rng = SmallRng::seed_from_u64(0xC0 + 4);
    for _ in 0..48 {
        let inst = random_instance(&mut rng, 5, 3);
        let ctx = ProgramContext::new(&inst);
        let sol = solve_min_energy(&ctx);

        // Uniform spreading: x_{jk} = l_k / window_j for covered intervals.
        let mut uniform = WorkAssignment::zeros(inst.len(), ctx.partition().len());
        for job in &inst.jobs {
            let j = job.id.index();
            for &k in ctx.covered(j) {
                uniform.set(j, k, ctx.partition().length(k) / job.window());
            }
        }
        let uniform_energy = ctx.total_energy(&uniform);
        assert!(
            sol.energy <= uniform_energy + 1e-5 * uniform_energy.max(1.0),
            "solver {} worse than uniform {uniform_energy}",
            sol.energy
        );

        let schedule = ctx.realize_schedule(&sol.assignment);
        let report = pss_types::validate_schedule(&inst, &schedule).expect("feasible");
        assert!(
            report.rejected.is_empty(),
            "solver failed to finish: {:?}",
            report.rejected
        );
    }
}
