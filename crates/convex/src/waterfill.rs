//! Marginal-cost-equalising allocation of one job's workload across its
//! atomic intervals ("water filling").
//!
//! This implements the continuous greedy increase of lines 5–12 of the
//! paper's Listing 1 in closed form.  The algorithm raises a common
//! *level* — the marginal cost `∂P_k/∂x_{jk}` — across all candidate
//! intervals, assigning work to each interval up to the amount it can absorb
//! at that level, until either the job is fully assigned or the level
//! reaches a cap (for PD: `v_j / δ`, the rejection threshold).
//!
//! ## How the per-interval capacity is computed
//!
//! Fix an interval of length `l` on `m` machines with the *other* jobs'
//! works `u_1, …, u_p` and a target speed `s` (the level expressed as a
//! speed via `λ = α w_j s^{α-1}`).  The maximum amount of work `z` job `j`
//! can place in the interval such that Chen et al.'s algorithm processes it
//! at speed at most `s` is
//!
//! ```text
//! z*(s) = min( s·l , max(0, q·s·l − B) )        with
//!         q = m − |{i : u_i > s·l}|,   B = Σ_{u_i ≤ s·l} u_i
//! ```
//!
//! The first term is the nonparallelism constraint (job `j` has only `l`
//! time units available), the second is the capacity of the machines not
//! permanently occupied by jobs that are too large to ever run at speed
//! `≤ s`.  `z*` is continuous and nondecreasing in `s` (when `s·l` crosses
//! some `u_i`, `q` gains one machine and `B` gains `u_i`, which cancel), so
//! an outer bisection on `s` finds the common level.

use pss_intervals::WorkAssignment;
use pss_types::num::{self, Tolerance};

use crate::program::ProgramContext;

/// Options controlling a water-filling run.
#[derive(Debug, Clone, Copy)]
pub struct WaterfillOptions {
    /// Total fraction of the job to place (1.0 = the whole job).
    pub max_fraction: f64,
    /// Optional cap on the marginal cost `∂P_k/∂x_{jk}`; the fill stops at
    /// this level even if the job is not fully placed.  PD uses `v_j / δ`.
    pub max_marginal: Option<f64>,
    /// Numeric tolerance of the level search.
    pub tol: Tolerance,
}

impl Default for WaterfillOptions {
    fn default() -> Self {
        Self {
            max_fraction: 1.0,
            max_marginal: None,
            tol: Tolerance::default(),
        }
    }
}

/// Result of a water-filling run for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfillResult {
    /// `(interval, fraction)` pairs with strictly positive fractions.
    pub added: Vec<(usize, f64)>,
    /// Total fraction placed, `Σ added`.
    pub total: f64,
    /// The common speed level `s*` reached by the fill.
    pub level_speed: f64,
    /// The corresponding marginal cost `α · w_j · (s*)^{α-1}`.
    pub level_marginal: f64,
    /// `true` if the job was fully placed (total reached `max_fraction`).
    pub saturated: bool,
}

impl WaterfillResult {
    fn empty() -> Self {
        Self {
            added: Vec::new(),
            total: 0.0,
            level_speed: 0.0,
            level_marginal: 0.0,
            saturated: false,
        }
    }
}

/// Per-interval data needed to evaluate the capacity function.
struct IntervalCapacity {
    interval: usize,
    length: f64,
    /// Other jobs' works, sorted in decreasing order.
    sorted_works: Vec<f64>,
    /// Prefix sums of `sorted_works`.
    prefix: Vec<f64>,
}

impl IntervalCapacity {
    fn new(interval: usize, length: f64, mut works: Vec<f64>) -> Self {
        works.retain(|u| *u > 0.0);
        works.sort_by(|a, b| b.total_cmp(a));
        let mut prefix = Vec::with_capacity(works.len() + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for u in &works {
            acc += u;
            prefix.push(acc);
        }
        Self {
            interval,
            length,
            sorted_works: works,
            prefix,
        }
    }

    /// Maximum work job `j` can place here with its speed staying `≤ speed`.
    fn capacity(&self, speed: f64, machines: usize) -> f64 {
        if speed <= 0.0 {
            return 0.0;
        }
        let threshold = speed * self.length;
        // Number of other jobs whose work exceeds the threshold; works are
        // sorted in decreasing order, so this is a partition point.
        let above = self.sorted_works.partition_point(|u| *u > threshold);
        if above >= machines {
            return 0.0;
        }
        let q = (machines - above) as f64;
        let b_small = self.prefix[self.sorted_works.len()] - self.prefix[above];
        let machine_cap = (q * threshold - b_small).max(0.0);
        threshold.min(machine_cap)
    }
}

/// One candidate interval of a water-filling run, described independently of
/// a [`ProgramContext`]: the interval's index (echoed back in the result's
/// `added` pairs), its length, and the works the *other* jobs already place
/// in it.  The incremental online context builds these directly from its
/// per-interval load lists instead of materialising a dense assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct WaterfillCandidate {
    /// Caller-chosen interval index reported back in
    /// [`WaterfillResult::added`].
    pub interval: usize,
    /// Length `l_k` of the interval.
    pub length: f64,
    /// Work every *other* job places in the interval (order irrelevant;
    /// non-positive entries are ignored).
    pub other_works: Vec<f64>,
}

/// Runs the water-filling allocation for `job` on top of the assignment `x`
/// (whose entries for `job` are ignored — callers wanting to *re*-allocate a
/// job should conceptually treat its old row as cleared; the base works are
/// always computed excluding `job`).
pub fn waterfill_job(
    ctx: &ProgramContext,
    x: &WorkAssignment,
    job: usize,
    opts: &WaterfillOptions,
) -> WaterfillResult {
    let candidates: Vec<WaterfillCandidate> = ctx
        .covered(job)
        .iter()
        .map(|&k| WaterfillCandidate {
            interval: k,
            length: ctx.partition().length(k),
            other_works: ctx.interval_works_excluding(x, k, job),
        })
        .collect();
    waterfill_candidates(
        ctx.power(),
        ctx.machines(),
        ctx.workloads()[job],
        candidates,
        opts,
    )
}

/// Runs the water-filling allocation for a job of workload `w_j` over the
/// given candidate intervals — the context-free core of [`waterfill_job`],
/// used by the persistent online-PD planning context (which keeps sparse
/// per-interval loads instead of a dense assignment).
pub fn waterfill_candidates(
    power: pss_power::AlphaPower,
    machines: usize,
    w_j: f64,
    candidates: Vec<WaterfillCandidate>,
    opts: &WaterfillOptions,
) -> WaterfillResult {
    if candidates.is_empty() || w_j <= 0.0 || opts.max_fraction <= 0.0 {
        return WaterfillResult::empty();
    }
    let m = machines;

    let caps: Vec<IntervalCapacity> = candidates
        .into_iter()
        .map(|c| IntervalCapacity::new(c.interval, c.length, c.other_works))
        .collect();

    let total_fraction_at =
        |speed: f64| -> f64 { num::stable_sum(caps.iter().map(|c| c.capacity(speed, m))) / w_j };

    // The speed corresponding to the marginal cap (if any).
    let speed_cap = opts.max_marginal.map(|mm| power.dual_speed(mm, w_j));

    // If even at the cap the job cannot be fully placed, the fill stops at
    // the cap (PD's rejection case).
    if let Some(cap) = speed_cap {
        if total_fraction_at(cap) < opts.max_fraction * (1.0 - 1e-12) {
            return build_result(&caps, m, w_j, cap, power, false, opts.max_fraction);
        }
    }

    // Find an upper bracket for the level: double until the job fits.
    let mut hi = initial_speed_guess(&caps, w_j, opts.max_fraction);
    let mut guard = 0;
    while total_fraction_at(hi) < opts.max_fraction && guard < 200 {
        hi *= 2.0;
        guard += 1;
    }
    if let Some(cap) = speed_cap {
        hi = hi.min(cap);
    }

    // Bisection on the speed level.
    let level = num::bisect_nondecreasing(0.0, hi, opts.max_fraction, opts.tol, |s| {
        total_fraction_at(s)
    });

    build_result(&caps, m, w_j, level, power, true, opts.max_fraction)
}

fn initial_speed_guess(caps: &[IntervalCapacity], w_j: f64, max_fraction: f64) -> f64 {
    let max_existing = caps
        .iter()
        .flat_map(|c| c.sorted_works.first().map(|u| u / c.length))
        .fold(0.0_f64, f64::max);
    let total_length: f64 = caps.iter().map(|c| c.length).sum();
    let spread_speed = if total_length > 0.0 {
        w_j * max_fraction / total_length
    } else {
        1.0
    };
    (max_existing + spread_speed).max(1e-9)
}

fn build_result(
    caps: &[IntervalCapacity],
    machines: usize,
    w_j: f64,
    level_speed: f64,
    power: pss_power::AlphaPower,
    saturated: bool,
    max_fraction: f64,
) -> WaterfillResult {
    let mut added: Vec<(usize, f64)> = caps
        .iter()
        .map(|c| (c.interval, c.capacity(level_speed, machines) / w_j))
        .filter(|(_, f)| *f > 0.0)
        .collect();
    let mut total = num::stable_sum(added.iter().map(|(_, f)| *f));
    if saturated && total > 0.0 {
        // The bisection leaves a relative error of ~tol; rescale so that a
        // fully placed job has an assigned fraction of exactly max_fraction.
        let scale = max_fraction / total;
        for (_, f) in &mut added {
            *f *= scale;
        }
        total = max_fraction;
    }
    WaterfillResult {
        added,
        total,
        level_speed,
        level_marginal: power.dual_value(level_speed, w_j),
        saturated: saturated && total >= max_fraction * (1.0 - 1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_chen::interval_power_derivative;
    use pss_types::Instance;

    fn single_job_ctx(
        machines: usize,
        alpha: f64,
        tuples: Vec<(f64, f64, f64, f64)>,
    ) -> ProgramContext {
        let inst = Instance::from_tuples(machines, alpha, tuples).unwrap();
        ProgramContext::new(&inst)
    }

    #[test]
    fn lone_job_spreads_evenly_over_its_window() {
        // One job, window [0, 4), work 2, one machine: the optimal fill is
        // speed 0.5 everywhere.
        let ctx = single_job_ctx(1, 3.0, vec![(0.0, 4.0, 2.0, 100.0)]);
        let x = WorkAssignment::zeros(1, ctx.partition().len());
        let r = waterfill_job(&ctx, &x, 0, &WaterfillOptions::default());
        assert!(r.saturated);
        assert!((r.total - 1.0).abs() < 1e-9);
        assert!((r.level_speed - 0.5).abs() < 1e-6);
        assert_eq!(r.added.len(), 1);
    }

    #[test]
    fn fill_prefers_empty_intervals() {
        // Job 0 occupies [0,1) heavily; job 1 has window [0,2) and should
        // put (almost) everything in [1,2).
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 3.0, 100.0), (0.0, 2.0, 1.0, 100.0)])
                .unwrap();
        let ctx = ProgramContext::new(&inst);
        let mut x = WorkAssignment::zeros(2, ctx.partition().len());
        // Place job 0 fully in its only interval [0,1).
        x.set(0, 0, 1.0);
        let r = waterfill_job(&ctx, &x, 1, &WaterfillOptions::default());
        assert!(r.saturated);
        let in_second: f64 = r
            .added
            .iter()
            .filter(|(k, _)| *k == 1)
            .map(|(_, f)| *f)
            .sum();
        // Interval [1,2) is empty and can absorb speed up to 1 without
        // exceeding the marginal of interval [0,1) (which has speed 3).
        assert!(
            in_second > 0.99,
            "expected job 1 in the empty interval, got {:?}",
            r.added
        );
    }

    #[test]
    fn fill_equalises_marginals_across_used_intervals() {
        // Two equal-length empty intervals: the job splits evenly and the
        // marginal costs agree with the Chen derivative.
        let ctx = single_job_ctx(2, 2.5, vec![(0.0, 2.0, 3.0, 100.0)]);
        // Introduce a second boundary by adding a second job that splits
        // [0, 2) into [0,1) and [1,2).
        let inst =
            Instance::from_tuples(2, 2.5, vec![(0.0, 2.0, 3.0, 100.0), (1.0, 2.0, 0.5, 100.0)])
                .unwrap();
        let ctx2 = ProgramContext::new(&inst);
        drop(ctx);
        let x = WorkAssignment::zeros(2, ctx2.partition().len());
        let r = waterfill_job(&ctx2, &x, 0, &WaterfillOptions::default());
        assert!(r.saturated);
        // Fractions should be equal (both intervals identical and empty).
        assert_eq!(r.added.len(), 2);
        assert!((r.added[0].1 - r.added[1].1).abs() < 1e-6);

        // Marginal from the Chen derivative should match the reported level.
        let mut x_after = x.clone();
        for (k, f) in &r.added {
            x_after.set(0, *k, *f);
        }
        for &(k, _) in &r.added {
            let d = interval_power_derivative(
                ctx2.power(),
                ctx2.partition().length(k),
                2,
                &x_after.column(k),
                ctx2.workloads(),
                0,
            );
            assert!(
                (d - r.level_marginal).abs() < 1e-4 * d.max(1.0),
                "interval {k}: derivative {d} vs level {}",
                r.level_marginal
            );
        }
    }

    #[test]
    fn marginal_cap_limits_the_fill() {
        // Single interval of length 1, one machine, job work 4: running the
        // whole job needs speed 4 and marginal alpha*w*s^{alpha-1} = 2*4*4 = 32.
        // Capping the marginal at the value for speed 2 (2*4*2 = 16) only
        // places half the job.
        let ctx = single_job_ctx(1, 2.0, vec![(0.0, 1.0, 4.0, 100.0)]);
        let x = WorkAssignment::zeros(1, 1);
        let opts = WaterfillOptions {
            max_marginal: Some(16.0),
            ..Default::default()
        };
        let r = waterfill_job(&ctx, &x, 0, &opts);
        assert!(!r.saturated);
        assert!((r.total - 0.5).abs() < 1e-9, "total = {}", r.total);
        assert!((r.level_speed - 2.0).abs() < 1e-9);
    }

    #[test]
    fn multi_machine_capacity_respects_nonparallelism() {
        // One job alone on 4 machines in a single interval: it can still use
        // only one machine's worth of time, so the level equals work/length
        // regardless of machine count.
        let ctx = single_job_ctx(4, 3.0, vec![(0.0, 2.0, 6.0, 100.0)]);
        let x = WorkAssignment::zeros(1, 1);
        let r = waterfill_job(&ctx, &x, 0, &WaterfillOptions::default());
        assert!(r.saturated);
        assert!((r.level_speed - 3.0).abs() < 1e-6);
    }

    #[test]
    fn zero_fraction_request_is_empty() {
        let ctx = single_job_ctx(1, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]);
        let x = WorkAssignment::zeros(1, 1);
        let opts = WaterfillOptions {
            max_fraction: 0.0,
            ..Default::default()
        };
        let r = waterfill_job(&ctx, &x, 0, &opts);
        assert_eq!(r.total, 0.0);
        assert!(r.added.is_empty());
    }

    #[test]
    fn capacity_function_is_monotone_and_continuous() {
        let cap = IntervalCapacity::new(0, 1.0, vec![2.0, 1.0, 0.5]);
        let m = 3;
        let mut prev = 0.0;
        let mut s = 0.0;
        while s < 5.0 {
            let c = cap.capacity(s, m);
            assert!(c + 1e-12 >= prev, "capacity decreased at s={s}");
            // Continuity check: small step, small change.
            let c2 = cap.capacity(s + 1e-6, m);
            assert!((c2 - c).abs() < 1e-4);
            prev = c;
            s += 0.01;
        }
    }
}
