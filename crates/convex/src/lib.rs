//! # pss-convex
//!
//! The convex-programming machinery of the paper (Sections 2.1, 4.1, 4.2):
//!
//! * [`ProgramContext`] — binds an instance to its atomic-interval partition
//!   and evaluates the objective of the (relaxed) program (CP): the sum of
//!   per-interval energies `P_k` plus the value of unfinished jobs,
//! * [`waterfill`] — the greedy marginal-cost-equalising allocation of one
//!   job's workload across its atomic intervals.  This is both the inner
//!   step of the paper's online primal-dual algorithm (`pss-core`) and the
//!   coordinate step of the offline solver,
//! * [`dual`] — the dual function `g(λ)` of Lemma 5/6 in closed form.  For
//!   any `λ ≥ 0`, `g(λ)` is a *rigorous lower bound* on the optimal cost,
//!   which is how the experiment harness measures empirical competitive
//!   ratios on instances too large for brute force,
//! * [`solver`] — an offline cyclic coordinate-descent solver for the
//!   "finish everything" relaxation, used as the multiprocessor offline
//!   baseline and as the replanning engine of multiprocessor Optimal
//!   Available.  [`solve_min_energy_warm`] is the warm-started entry point:
//!   it seeds the descent from a caller-provided assignment (the previous
//!   replanning solution, remapped onto the current partition), so a
//!   replanner that adds one job per arrival converges in a few passes
//!   instead of re-solving the program from zero,
//! * [`kkt`] — KKT stationarity residuals used to certify solver output
//!   (cold *and* warm-started) in tests.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dual;
pub mod kkt;
pub mod program;
pub mod solver;
pub mod waterfill;

pub use dual::{dual_bound, DualSolution};
pub use program::ProgramContext;
pub use solver::{
    solve_min_energy, solve_min_energy_warm, solve_min_energy_with, MinEnergySolution,
    SolverOptions,
};
pub use waterfill::{
    waterfill_candidates, waterfill_job, WaterfillCandidate, WaterfillOptions, WaterfillResult,
};
