//! Offline energy-minimal scheduling of a *mandatory* job set by cyclic
//! coordinate descent on the convex program.
//!
//! With the rejection decision fixed (all jobs must be finished), the
//! remaining problem is the classical multiprocessor speed-scaling problem:
//! minimise `Σ_k P_k(x_{·k})` subject to `Σ_k c_{jk} x_{jk} = 1` and
//! `x ≥ 0`.  The objective is convex and differentiable (Proposition 1) and
//! the feasible set is a product of per-job simplices, so block coordinate
//! descent — re-optimising one job's row at a time, exactly, via
//! [`crate::waterfill::waterfill_job`] — converges to the
//! global optimum.
//!
//! This solver is used as
//!
//! * the multiprocessor offline baseline (`pss-offline`), cross-validated
//!   against the independent YDS implementation for `m = 1`,
//! * the replanning engine of multiprocessor Optimal Available
//!   (`pss-baselines`),
//! * the "energy of the kept set" oracle inside the brute-force optimum.

use pss_intervals::WorkAssignment;
use pss_types::num::Tolerance;
use pss_types::snapshot::{BlobReader, BlobWriter, SnapshotError, SnapshotPart};

use crate::program::ProgramContext;
use crate::waterfill::{waterfill_job, WaterfillOptions};

/// Options for the coordinate-descent solver.
#[derive(Debug, Clone, Copy)]
pub struct SolverOptions {
    /// Maximum number of passes over all jobs.
    pub max_passes: usize,
    /// Relative improvement of the energy below which the solver stops.
    pub energy_tol: f64,
    /// Tolerance forwarded to the per-job water-filling step.
    pub waterfill_tol: Tolerance,
}

impl Default for SolverOptions {
    fn default() -> Self {
        Self {
            max_passes: 60,
            energy_tol: 1e-9,
            waterfill_tol: Tolerance::default(),
        }
    }
}

impl SolverOptions {
    /// A cheaper configuration for large benchmark sweeps.
    pub fn coarse() -> Self {
        Self {
            max_passes: 25,
            energy_tol: 1e-6,
            waterfill_tol: Tolerance::coarse(),
        }
    }
}

impl SnapshotPart for SolverOptions {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.max_passes);
        w.write_f64(self.energy_tol);
        w.write_part(&self.waterfill_tol);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Self {
            max_passes: r.read_usize()?,
            energy_tol: r.read_f64()?,
            waterfill_tol: r.read_part()?,
        })
    }
}

/// The result of the offline minimisation.
#[derive(Debug, Clone, PartialEq)]
pub struct MinEnergySolution {
    /// The optimal (up to tolerance) work assignment.
    pub assignment: WorkAssignment,
    /// Its energy `Σ_k P_k`.
    pub energy: f64,
    /// Number of coordinate-descent passes performed.
    pub passes: usize,
    /// Whether the energy improvement dropped below the tolerance before
    /// the pass limit was reached.
    pub converged: bool,
}

/// Minimises the total energy of finishing *every* job of the context's
/// instance, using default options.
pub fn solve_min_energy(ctx: &ProgramContext) -> MinEnergySolution {
    solve_min_energy_with(ctx, &SolverOptions::default())
}

/// Minimises the total energy of finishing every job, with explicit options.
pub fn solve_min_energy_with(ctx: &ProgramContext, opts: &SolverOptions) -> MinEnergySolution {
    descend(ctx, opts, None)
}

/// Minimises the total energy of finishing every job, *warm-started* from a
/// seed assignment (typically the previous solution of a replanning step,
/// remapped onto the current partition).
///
/// The seed does not need to be feasible or optimal: the first
/// coordinate-descent pass re-waterfills every job's row exactly, so the
/// seed only shapes the loads the early passes see.  A seed near the
/// optimum makes the descent converge in a small, instance-size-independent
/// number of passes — this is the entry point the multiprocessor OA
/// replanner uses for its per-arrival warm restarts.  Warm and cold starts
/// converge to the same (unique, strictly convex) optimum up to the energy
/// tolerance; `kkt::max_stationarity_violation` certifies either.
///
/// The seed's dimensions must match the context (`n_jobs × n_intervals`);
/// mismatching seeds are ignored (plain cold start).
pub fn solve_min_energy_warm(
    ctx: &ProgramContext,
    opts: &SolverOptions,
    seed: &WorkAssignment,
) -> MinEnergySolution {
    let fits = seed.n_jobs() == ctx.n_jobs() && seed.n_intervals() == ctx.partition().len();
    descend(ctx, opts, fits.then(|| seed.clone()))
}

/// The cyclic coordinate-descent core shared by the cold and warm entry
/// points; `seed` preloads the assignment the first pass starts from.
fn descend(
    ctx: &ProgramContext,
    opts: &SolverOptions,
    seed: Option<WorkAssignment>,
) -> MinEnergySolution {
    let n = ctx.n_jobs();
    let n_intervals = ctx.partition().len();
    let seeded = seed.is_some();
    let mut x = seed.unwrap_or_else(|| WorkAssignment::zeros(n, n_intervals));
    if n == 0 || n_intervals == 0 {
        return MinEnergySolution {
            assignment: WorkAssignment::zeros(n, n_intervals),
            energy: 0.0,
            passes: 0,
            converged: true,
        };
    }

    let wf_opts = WaterfillOptions {
        max_fraction: 1.0,
        max_marginal: None,
        tol: opts.waterfill_tol,
    };

    // A seed near the optimum makes the very first pass a no-op; pricing it
    // lets the convergence check fire after one pass instead of two.  This
    // is what makes warm restarts cheap: the check still cannot stop early
    // spuriously, because an unseeded new arrival changes the energy far
    // beyond the tolerance.
    let mut prev_energy = if seeded {
        ctx.total_energy(&x)
    } else {
        f64::INFINITY
    };
    // Warm restarts descend in *deadline order*: the replanning instances
    // this entry point serves are left-aligned (every pending job's window
    // starts at the planning time), where the optimum has a staircase
    // structure along increasing deadlines — one deadline-ordered sweep of
    // exact row minimisations lands on it, so the descent converges in a
    // sweep plus a confirming pass.  The cold path keeps the original
    // pending-order cyclic sweep: it is the retained from-scratch baseline
    // and the general-purpose offline solver, and must stay bit-identical
    // to its pre-warm-start behaviour.
    let mut order: Vec<usize> = (0..n).collect();
    if seeded {
        let jobs = &ctx.instance().jobs;
        order.sort_by(|&a, &b| jobs[a].deadline.total_cmp(&jobs[b].deadline));
    }
    // Escape hatch for adversarial seeds: most warm restarts converge in a
    // sweep or two, but a seed can park the descent on a slow geometric
    // zigzag that the *constructive* deadline-ordered sweep from zeros does
    // not suffer.  When two successive improvements shrink by less than the
    // restart ratio, discard the seed once and rebuild from zeros — the
    // passes already spent still count.
    const RESTART_RATIO: f64 = 0.15;
    let mut restarted = !seeded;
    let mut last_improvement = f64::INFINITY;
    let mut passes = 0;
    let mut converged = false;
    for pass in 0..opts.max_passes {
        passes = pass + 1;
        for &job in &order {
            x.clear_job(job);
            let fill = waterfill_job(ctx, &x, job, &wf_opts);
            for (k, f) in fill.added {
                x.set(job, k, f);
            }
        }
        let energy = ctx.total_energy(&x);
        let improvement = prev_energy - energy;
        if prev_energy.is_finite() && improvement.abs() <= opts.energy_tol * energy.max(1.0) {
            converged = true;
            prev_energy = energy;
            break;
        }
        if !restarted
            && improvement > 0.0
            && last_improvement.is_finite()
            && last_improvement > 0.0
            && improvement > RESTART_RATIO * last_improvement
        {
            x = WorkAssignment::zeros(n, n_intervals);
            prev_energy = f64::INFINITY;
            last_improvement = f64::INFINITY;
            restarted = true;
            continue;
        }
        last_improvement = improvement;
        prev_energy = energy;
    }

    MinEnergySolution {
        energy: prev_energy,
        assignment: x,
        passes,
        converged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{validate_schedule, Instance};

    fn solve(inst: &Instance) -> (ProgramContext, MinEnergySolution) {
        let ctx = ProgramContext::new(inst);
        let sol = solve_min_energy(&ctx);
        (ctx, sol)
    }

    #[test]
    fn single_job_runs_at_its_density() {
        let inst = Instance::from_tuples(1, 3.0, vec![(0.0, 4.0, 2.0, 1.0)]).unwrap();
        let (_, sol) = solve(&inst);
        // Optimal: speed 0.5 for 4 time units => energy 0.5^3 * 4 = 0.5.
        assert!((sol.energy - 0.5).abs() < 1e-6, "energy {}", sol.energy);
        assert!(sol.converged);
    }

    #[test]
    fn two_disjoint_jobs_single_machine() {
        // Two jobs with disjoint windows: each runs at its own density.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 1.0), (1.0, 3.0, 1.0, 1.0)])
            .unwrap();
        let (_, sol) = solve(&inst);
        let expected = 1.0 + 2.0 * 0.25; // 1^2*1 + 0.5^2*2
        assert!((sol.energy - expected).abs() < 1e-6);
    }

    #[test]
    fn nested_jobs_match_yds_hand_computation() {
        // Classic YDS example: job 0 on [0,4) with work 2, job 1 on [1,2)
        // with work 2.  The critical interval is [1,2) at speed 2 (job 1);
        // job 0 then runs at speed 2/3 on the remaining 3 time units.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 4.0, 2.0, 1.0), (1.0, 2.0, 2.0, 1.0)])
            .unwrap();
        let (_, sol) = solve(&inst);
        let expected = 4.0 + 3.0 * (2.0 / 3.0_f64).powi(2);
        assert!(
            (sol.energy - expected).abs() < 1e-5,
            "energy {} vs {}",
            sol.energy,
            expected
        );
    }

    #[test]
    fn two_machines_split_parallel_jobs() {
        // Two identical jobs on two machines: each gets its own machine at
        // its density; energy is twice the single-job energy.
        let inst = Instance::from_tuples(2, 3.0, vec![(0.0, 2.0, 2.0, 1.0), (0.0, 2.0, 2.0, 1.0)])
            .unwrap();
        let (_, sol) = solve(&inst);
        assert!(
            (sol.energy - 2.0 * 2.0).abs() < 1e-6,
            "energy {}",
            sol.energy
        );
    }

    #[test]
    fn more_machines_never_increase_energy() {
        let tuples = vec![
            (0.0, 3.0, 2.0, 1.0),
            (0.5, 2.5, 1.0, 1.0),
            (1.0, 4.0, 1.5, 1.0),
            (2.0, 5.0, 2.5, 1.0),
        ];
        let mut prev = f64::INFINITY;
        for m in [1usize, 2, 3, 4] {
            let inst = Instance::from_tuples(m, 2.5, tuples.clone()).unwrap();
            let (_, sol) = solve(&inst);
            assert!(
                sol.energy <= prev + 1e-6,
                "energy increased with more machines: {} -> {}",
                prev,
                sol.energy
            );
            prev = sol.energy;
        }
    }

    #[test]
    fn solution_realizes_into_a_feasible_schedule_finishing_everything() {
        let inst = Instance::from_tuples(
            2,
            2.0,
            vec![
                (0.0, 3.0, 2.0, 1.0),
                (1.0, 2.0, 1.0, 1.0),
                (0.5, 2.5, 1.5, 1.0),
            ],
        )
        .unwrap();
        let (ctx, sol) = solve(&inst);
        let schedule = ctx.realize_schedule(&sol.assignment);
        let report = validate_schedule(&inst, &schedule).unwrap();
        assert!(
            report.rejected.is_empty(),
            "rejected: {:?}",
            report.rejected
        );
        assert!((report.energy - sol.energy).abs() < 1e-6);
    }

    #[test]
    fn empty_instance_is_trivial() {
        let inst = Instance::from_tuples(1, 2.0, vec![]).unwrap();
        let (_, sol) = solve(&inst);
        assert_eq!(sol.energy, 0.0);
        assert!(sol.converged);
    }

    #[test]
    fn warm_start_from_the_optimum_converges_immediately_to_the_same_energy() {
        let inst = Instance::from_tuples(
            2,
            2.5,
            vec![
                (0.0, 3.0, 2.0, 1.0),
                (1.0, 2.0, 1.0, 1.0),
                (0.5, 2.5, 1.5, 1.0),
                (0.0, 1.5, 0.7, 1.0),
            ],
        )
        .unwrap();
        let (ctx, cold) = solve(&inst);
        let warm = solve_min_energy_warm(&ctx, &SolverOptions::default(), &cold.assignment);
        assert!(warm.converged);
        assert!(
            warm.passes <= cold.passes,
            "warm took {} passes, cold {}",
            warm.passes,
            cold.passes
        );
        assert!(
            (warm.energy - cold.energy).abs() <= 1e-6 * cold.energy.max(1.0),
            "warm energy {} vs cold {}",
            warm.energy,
            cold.energy
        );
        // The warm solution satisfies the KKT conditions, like the cold one.
        let report = crate::kkt::max_stationarity_violation(&ctx, &warm.assignment);
        assert!(
            report.max_violation < 1e-3,
            "warm KKT violation {}",
            report.max_violation
        );
    }

    #[test]
    fn warm_start_tolerates_garbage_and_mismatched_seeds() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 2.0, 1.0), (1.0, 2.0, 1.0, 1.0)])
            .unwrap();
        let ctx = ProgramContext::new(&inst);
        let cold = solve_min_energy(&ctx);
        // An infeasible all-mass-in-one-interval seed still converges to the
        // optimum (the first pass rebuilds every row exactly).
        let mut garbage = WorkAssignment::zeros(2, ctx.partition().len());
        garbage.set(0, 0, 1.0);
        garbage.set(1, 1, 1.0);
        let warm = solve_min_energy_warm(&ctx, &SolverOptions::default(), &garbage);
        assert!(
            (warm.energy - cold.energy).abs() <= 1e-6 * cold.energy.max(1.0),
            "garbage-seeded warm energy {} vs cold {}",
            warm.energy,
            cold.energy
        );
        // A seed with wrong dimensions falls back to a cold start.
        let wrong = WorkAssignment::zeros(5, 1);
        let fallback = solve_min_energy_warm(&ctx, &SolverOptions::default(), &wrong);
        assert!((fallback.energy - cold.energy).abs() <= 1e-9 * cold.energy.max(1.0));
    }
}
