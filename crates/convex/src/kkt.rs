//! KKT stationarity residuals for solutions of the mandatory-completion
//! relaxation.
//!
//! At an optimal assignment, for every job `j` there is a dual value `λ_j`
//! such that the marginal cost `∂P_k/∂x_{jk}` equals `λ_j` on every interval
//! where `x_{jk} > 0` and is at least `λ_j` on every covered interval where
//! `x_{jk} = 0`.  (This is exactly the water-level structure the paper's PD
//! algorithm maintains greedily.)  [`max_stationarity_violation`] measures
//! how far a candidate assignment is from satisfying these conditions; tests
//! use it to certify the coordinate-descent solver.

use pss_chen::interval_power_derivative;
use pss_intervals::WorkAssignment;

use crate::program::ProgramContext;

/// Per-job KKT residual information.
#[derive(Debug, Clone, PartialEq)]
pub struct KktReport {
    /// For each job: the implied dual value (minimum marginal over covered
    /// intervals with positive assignment), or `None` for unassigned jobs.
    pub implied_dual: Vec<Option<f64>>,
    /// The largest relative violation over all (job, interval) pairs.
    pub max_violation: f64,
}

/// Computes the largest relative stationarity violation of an assignment in
/// which every job is (supposed to be) fully assigned.
pub fn max_stationarity_violation(ctx: &ProgramContext, x: &WorkAssignment) -> KktReport {
    let n = ctx.n_jobs();
    let mut implied_dual = vec![None; n];
    let mut max_violation = 0.0_f64;

    for (job, dual_slot) in implied_dual.iter_mut().enumerate() {
        let covered = ctx.covered(job);
        if covered.is_empty() {
            continue;
        }
        let marginals: Vec<(usize, f64, f64)> = covered
            .iter()
            .map(|&k| {
                let d = interval_power_derivative(
                    ctx.power(),
                    ctx.partition().length(k),
                    ctx.machines(),
                    &x.column(k),
                    ctx.workloads(),
                    job,
                );
                (k, x.get(job, k), d)
            })
            .collect();

        // Dual value = marginal on the intervals actually used.
        let used: Vec<f64> = marginals
            .iter()
            .filter(|(_, frac, _)| *frac > 1e-9)
            .map(|(_, _, d)| *d)
            .collect();
        if used.is_empty() {
            continue;
        }
        let lambda = used.iter().copied().fold(f64::INFINITY, f64::min);
        *dual_slot = Some(lambda);
        let scale = lambda.max(1e-12);

        for (_, frac, d) in &marginals {
            if *frac > 1e-9 {
                // Used intervals must all sit at the common level.
                max_violation = max_violation.max((d - lambda).abs() / scale);
            } else {
                // Unused intervals must not be cheaper than the level.
                max_violation = max_violation.max((lambda - d).max(0.0) / scale);
            }
        }
    }

    KktReport {
        implied_dual,
        max_violation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::solve_min_energy;
    use pss_types::Instance;

    #[test]
    fn solver_output_satisfies_kkt() {
        let inst = Instance::from_tuples(
            2,
            2.5,
            vec![
                (0.0, 3.0, 2.0, 1.0),
                (1.0, 2.0, 1.0, 1.0),
                (0.5, 2.5, 1.5, 1.0),
                (0.0, 1.5, 0.7, 1.0),
            ],
        )
        .unwrap();
        let ctx = ProgramContext::new(&inst);
        let sol = solve_min_energy(&ctx);
        let report = max_stationarity_violation(&ctx, &sol.assignment);
        assert!(
            report.max_violation < 1e-3,
            "KKT violation too large: {}",
            report.max_violation
        );
        assert!(report.implied_dual.iter().all(|d| d.is_some()));
    }

    #[test]
    fn unbalanced_assignment_has_large_violation() {
        // Job with window [0,2) split into two intervals; dumping all work
        // into one interval violates stationarity badly.
        let inst =
            Instance::from_tuples(1, 2.0, vec![(0.0, 2.0, 2.0, 1.0), (1.0, 2.0, 0.0001, 1.0)])
                .unwrap();
        let ctx = ProgramContext::new(&inst);
        let mut x = WorkAssignment::zeros(2, ctx.partition().len());
        x.set(0, 0, 1.0); // everything in [0,1)
        x.set(1, 1, 1.0);
        let report = max_stationarity_violation(&ctx, &x);
        assert!(report.max_violation > 0.1);
    }

    #[test]
    fn empty_assignment_reports_no_duals() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        let ctx = ProgramContext::new(&inst);
        let x = WorkAssignment::zeros(1, 1);
        let report = max_stationarity_violation(&ctx, &x);
        assert_eq!(report.max_violation, 0.0);
        assert!(report.implied_dual[0].is_none());
    }
}
