//! The dual function `g(λ)` of the convex program in closed form
//! (Lemmas 4–6 of the paper).
//!
//! For dual variables `λ ≥ 0`, the dual function is the infimum of the
//! Lagrangian over the primal domain.  The paper shows (Lemma 4/5) that the
//! infimum is attained by an "optimal infeasible solution" in which every
//! atomic interval runs at most `m` jobs, namely the available jobs with the
//! largest *dual speeds* `ŝ_j = (λ_j / (α w_j))^{1/(α-1)}`, each dedicated
//! at speed `ŝ_j`.  This yields the job-centric closed form of Lemma 6:
//!
//! ```text
//! g(λ) = (1 − α) Σ_j E_λ(j) + Σ_j min(λ_j, v_j),
//! E_λ(j) = l(j) · ŝ_j^α,
//! ```
//!
//! where `l(j)` is the total length of the atomic intervals in which `j` is
//! among the top-`min(m, n_k)` available jobs by dual speed.  (The paper
//! states the second sum as `Σ λ_j` because PD's duals always satisfy
//! `λ_j ≤ v_j`; the `min` is the correct infimum over `y ∈ [0,1]` for
//! arbitrary `λ` and makes the bound valid for any nonnegative duals.)
//!
//! By weak duality `g(λ)` lower-bounds the optimum of (CP), hence of the
//! integral program (IMP), hence the cost of *every* schedule — which is how
//! the experiment harness certifies competitive ratios on instances where
//! the true optimum cannot be computed exactly.

use pss_power::PowerFunction;
use pss_types::num;

use crate::program::ProgramContext;

/// The evaluated dual solution: the bound and its per-job decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct DualSolution {
    /// The dual variables the bound was evaluated at.
    pub lambda: Vec<f64>,
    /// The dual function value `g(λ)`: a lower bound on the optimal cost.
    pub value: f64,
    /// Dual speeds `ŝ_j = (λ_j / (α w_j))^{1/(α-1)}`.
    pub hat_speed: Vec<f64>,
    /// Total scheduled time `l(j)` of each job in the optimal infeasible
    /// solution.
    pub scheduled_time: Vec<f64>,
    /// Energy `E_λ(j) = l(j) ŝ_j^α` the optimal infeasible solution invests
    /// in each job.
    pub energy: Vec<f64>,
}

impl DualSolution {
    /// The assigned fraction `x̂_j = l(j)·ŝ_j / w_j` of job `j` in the
    /// optimal infeasible solution (used to classify low-/high-yield jobs in
    /// the analysis of Section 4.3).
    pub fn assigned_fraction(&self, ctx: &ProgramContext, job: usize) -> f64 {
        let w = ctx.workloads()[job];
        if w <= 0.0 {
            0.0
        } else {
            self.scheduled_time[job] * self.hat_speed[job] / w
        }
    }
}

/// Evaluates the dual function `g(λ)` for the given dual variables.
///
/// # Panics
/// Panics if `lambda.len()` differs from the number of jobs or contains a
/// negative or non-finite entry.
pub fn dual_bound(ctx: &ProgramContext, lambda: &[f64]) -> DualSolution {
    let n = ctx.n_jobs();
    assert_eq!(lambda.len(), n, "one dual variable per job required");
    assert!(
        lambda.iter().all(|l| l.is_finite() && *l >= 0.0),
        "dual variables must be finite and nonnegative"
    );
    let power = ctx.power();
    let alpha = power.alpha();
    let m = ctx.machines();

    let hat_speed: Vec<f64> = (0..n)
        .map(|j| power.dual_speed(lambda[j], ctx.workloads()[j]))
        .collect();

    // Scheduled time l(j): in every interval, the available jobs with the
    // largest dual speeds (at most m of them) are scheduled for the whole
    // interval.
    let mut scheduled_time = vec![0.0_f64; n];
    for iv in ctx.partition().intervals() {
        let mut available: Vec<usize> = (0..n)
            .filter(|&j| ctx.covered(j).binary_search(&iv.index).is_ok() && hat_speed[j] > 0.0)
            .collect();
        available.sort_by(|&a, &b| hat_speed[b].total_cmp(&hat_speed[a]).then(a.cmp(&b)));
        for &j in available.iter().take(m) {
            scheduled_time[j] += iv.length();
        }
    }

    let energy: Vec<f64> = (0..n)
        .map(|j| scheduled_time[j] * power.power(hat_speed[j]))
        .collect();

    let value = (1.0 - alpha) * num::stable_sum(energy.iter().copied())
        + num::stable_sum((0..n).map(|j| lambda[j].min(ctx.values()[j])));

    DualSolution {
        lambda: lambda.to_vec(),
        value,
        hat_speed,
        scheduled_time,
        energy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_intervals::WorkAssignment;
    use pss_types::Instance;

    fn ctx_one_job(alpha: f64) -> ProgramContext {
        let inst = Instance::from_tuples(1, alpha, vec![(0.0, 1.0, 1.0, 100.0)]).unwrap();
        ProgramContext::new(&inst)
    }

    #[test]
    fn zero_lambda_gives_zero_bound() {
        let ctx = ctx_one_job(2.0);
        let d = dual_bound(&ctx, &[0.0]);
        assert_eq!(d.value, 0.0);
        assert_eq!(d.hat_speed, vec![0.0]);
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_lambda_is_rejected() {
        let ctx = ctx_one_job(2.0);
        dual_bound(&ctx, &[-1.0]);
    }

    #[test]
    fn single_job_bound_is_maximised_at_kkt_lambda() {
        // Single job, unit work, unit interval, alpha = 2.  The optimal
        // schedule runs at speed 1 with energy 1.  g(λ) = -l ŝ^2 + λ with
        // ŝ = λ/2, maximised at λ = 2 where g = 1 = OPT.
        let ctx = ctx_one_job(2.0);
        let opt = 1.0;
        let at_kkt = dual_bound(&ctx, &[2.0]).value;
        assert!((at_kkt - opt).abs() < 1e-9);
        for l in [0.5, 1.0, 1.5, 2.5, 3.0, 10.0] {
            let v = dual_bound(&ctx, &[l]).value;
            assert!(v <= opt + 1e-9, "g({l}) = {v} exceeds OPT = {opt}");
        }
    }

    #[test]
    fn bound_never_exceeds_cost_of_feasible_schedules() {
        // Two jobs, one machine.  Compare g(λ) for a grid of duals against
        // the cost of an explicit feasible schedule.
        let inst = Instance::from_tuples(1, 3.0, vec![(0.0, 2.0, 1.0, 4.0), (1.0, 3.0, 1.0, 2.0)])
            .unwrap();
        let ctx = ProgramContext::new(&inst);
        // Feasible: job 0 at speed 0.5 on [0,2), job 1 at speed 1 on [2,3).
        let mut x = WorkAssignment::zeros(2, ctx.partition().len());
        x.set(0, 0, 0.5);
        x.set(0, 1, 0.5);
        x.set(1, 2, 1.0);
        let schedule = ctx.realize_schedule(&x);
        let cost = schedule.cost(ctx.instance()).total();
        for l0 in [0.0, 0.5, 1.0, 2.0, 4.0] {
            for l1 in [0.0, 0.5, 1.0, 2.0] {
                let g = dual_bound(&ctx, &[l0, l1]).value;
                assert!(
                    g <= cost + 1e-9,
                    "g({l0},{l1}) = {g} exceeds feasible cost {cost}"
                );
            }
        }
    }

    #[test]
    fn value_cap_limits_contribution_of_large_duals() {
        // With λ far above v, the y-part of the bound is capped at v.
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 0.5)]).unwrap();
        let ctx = ProgramContext::new(&inst);
        let d = dual_bound(&ctx, &[100.0]);
        // y-contribution is min(100, 0.5) = 0.5; x-contribution is negative.
        assert!(d.value <= 0.5);
    }

    #[test]
    fn only_top_m_jobs_are_scheduled_per_interval() {
        // Three identical jobs on two machines in one interval: only the two
        // with the largest duals get scheduled time.
        let inst = Instance::from_tuples(
            2,
            2.0,
            vec![
                (0.0, 1.0, 1.0, 10.0),
                (0.0, 1.0, 1.0, 10.0),
                (0.0, 1.0, 1.0, 10.0),
            ],
        )
        .unwrap();
        let ctx = ProgramContext::new(&inst);
        let d = dual_bound(&ctx, &[3.0, 2.0, 1.0]);
        assert_eq!(d.scheduled_time, vec![1.0, 1.0, 0.0]);
    }

    #[test]
    fn assigned_fraction_is_time_times_speed_over_work() {
        let ctx = ctx_one_job(2.0);
        let d = dual_bound(&ctx, &[2.0]);
        assert!((d.assigned_fraction(&ctx, 0) - 1.0).abs() < 1e-9);
    }
}
