//! The convex program context: an instance bound to its atomic-interval
//! partition.

use pss_chen::ChenInterval;
use pss_intervals::{IntervalPartition, WorkAssignment};
use pss_power::AlphaPower;
use pss_types::{num, Instance, JobId, Schedule};

/// An [`Instance`] together with the derived objects every algorithm in the
/// workspace needs: the atomic-interval partition, the workload vector, the
/// power function and, per job, the list of covered intervals.
///
/// The context corresponds to the data defining the mathematical program
/// (IMP)/(CP) of Figure 1 in the paper: the partition gives the intervals
/// `T_k`, `covered` gives the coefficients `c_{jk}`, and
/// [`interval_energy`](Self::interval_energy) evaluates the per-interval
/// power function `P_k`.
#[derive(Debug, Clone)]
pub struct ProgramContext {
    instance: Instance,
    partition: IntervalPartition,
    power: AlphaPower,
    workloads: Vec<f64>,
    values: Vec<f64>,
    covered: Vec<Vec<usize>>,
}

impl ProgramContext {
    /// Builds the context for an instance, deriving the atomic intervals
    /// from all release times and deadlines.
    pub fn new(instance: &Instance) -> Self {
        let partition = IntervalPartition::from_jobs(&instance.jobs);
        Self::with_partition(instance, partition)
    }

    /// Builds the context with an explicitly provided partition.  The
    /// partition must refine the one induced by the instance's jobs (each
    /// job's release and deadline must be boundaries); this is used by the
    /// online algorithms while the job set is still growing.
    pub fn with_partition(instance: &Instance, partition: IntervalPartition) -> Self {
        let power = AlphaPower::new(instance.alpha);
        let workloads: Vec<f64> = instance.jobs.iter().map(|j| j.work).collect();
        let values: Vec<f64> = instance.jobs.iter().map(|j| j.value).collect();
        let covered: Vec<Vec<usize>> = instance
            .jobs
            .iter()
            .map(|j| partition.covered_intervals(j))
            .collect();
        Self {
            instance: instance.clone(),
            partition,
            power,
            workloads,
            values,
            covered,
        }
    }

    /// The underlying instance.
    pub fn instance(&self) -> &Instance {
        &self.instance
    }

    /// The atomic-interval partition.
    pub fn partition(&self) -> &IntervalPartition {
        &self.partition
    }

    /// The power function `P_α`.
    pub fn power(&self) -> AlphaPower {
        self.power
    }

    /// The workload vector `w`.
    pub fn workloads(&self) -> &[f64] {
        &self.workloads
    }

    /// The value vector `v`.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Number of jobs.
    pub fn n_jobs(&self) -> usize {
        self.instance.len()
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.instance.machines
    }

    /// The atomic intervals covered by job `j` (the `k` with `c_{jk} = 1`).
    pub fn covered(&self, job: usize) -> &[usize] {
        &self.covered[job]
    }

    /// The work `x_{jk}·w_j` of every job in interval `k` under the given
    /// assignment, as a dense vector indexed by job.
    pub fn interval_works(&self, x: &WorkAssignment, interval: usize) -> Vec<f64> {
        (0..self.n_jobs())
            .map(|j| x.get(j, interval) * self.workloads[j])
            .collect()
    }

    /// The work of every job in interval `k`, excluding job `exclude`.
    pub fn interval_works_excluding(
        &self,
        x: &WorkAssignment,
        interval: usize,
        exclude: usize,
    ) -> Vec<f64> {
        let mut works = self.interval_works(x, interval);
        if exclude < works.len() {
            works[exclude] = 0.0;
        }
        works
    }

    /// The Chen et al. solver for interval `k`.
    pub fn chen(&self, interval: usize) -> ChenInterval {
        ChenInterval::new(self.partition.length(interval), self.machines(), self.power)
    }

    /// The per-interval energy `P_k` under the given assignment.
    pub fn interval_energy(&self, x: &WorkAssignment, interval: usize) -> f64 {
        let works = self.interval_works(x, interval);
        self.chen(interval).solve(&works).energy
    }

    /// Total energy `Σ_k P_k` of the assignment.
    pub fn total_energy(&self, x: &WorkAssignment) -> f64 {
        num::stable_sum((0..self.partition.len()).map(|k| self.interval_energy(x, k)))
    }

    /// The objective of (CP): total energy plus the value of jobs that are
    /// not fully assigned (`Σ_k c_{jk} x_{jk} < 1`).
    pub fn objective(&self, x: &WorkAssignment) -> f64 {
        let lost: f64 = num::stable_sum(self.instance.jobs.iter().map(|j| {
            let assigned = self.assigned_fraction(x, j.id.index());
            if num::approx_ge(assigned, 1.0) {
                0.0
            } else {
                j.value
            }
        }));
        self.total_energy(x) + lost
    }

    /// The fraction of job `j` assigned to intervals it covers.
    pub fn assigned_fraction(&self, x: &WorkAssignment, job: usize) -> f64 {
        num::stable_sum(self.covered[job].iter().map(|&k| x.get(job, k)))
    }

    /// Realises a single atomic interval of the assignment: runs Chen et
    /// al.'s algorithm on the interval's work column and places the result
    /// with McNaughton's rule.  Returns an empty vector for an interval with
    /// no work.
    ///
    /// Because the realisation of an interval depends only on that
    /// interval's column of `x`, the event-driven online algorithms use this
    /// to *commit* elapsed intervals one at a time as arrivals are
    /// processed, without ever touching already-committed intervals.
    pub fn realize_interval(&self, x: &WorkAssignment, interval: usize) -> Vec<pss_types::Segment> {
        let iv = self.partition.interval(interval);
        let works = self.interval_works(x, interval);
        if works.iter().all(|u| *u <= 0.0) {
            return Vec::new();
        }
        let sol = self.chen(interval).solve(&works);
        pss_chen::placement::place_interval(&sol, iv.start, 0, JobId)
    }

    /// Converts a work assignment into a machine-level [`Schedule`] by
    /// running Chen et al.'s algorithm in every atomic interval and placing
    /// the result with McNaughton's rule.
    pub fn realize_schedule(&self, x: &WorkAssignment) -> Schedule {
        let mut schedule = Schedule::empty(self.machines());
        for iv in self.partition.intervals() {
            for seg in self.realize_interval(x, iv.index) {
                schedule.push(seg);
            }
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ProgramContext {
        let inst = Instance::from_tuples(2, 2.0, vec![(0.0, 2.0, 2.0, 10.0), (1.0, 3.0, 1.0, 5.0)])
            .unwrap();
        ProgramContext::new(&inst)
    }

    #[test]
    fn covered_intervals_match_paper_coefficients() {
        let c = ctx();
        // Boundaries 0,1,2,3 -> intervals [0,1),[1,2),[2,3).
        assert_eq!(c.partition().len(), 3);
        assert_eq!(c.covered(0), &[0, 1]);
        assert_eq!(c.covered(1), &[1, 2]);
    }

    #[test]
    fn objective_counts_unassigned_jobs() {
        let c = ctx();
        let x = WorkAssignment::zeros(2, 3);
        assert!((c.objective(&x) - 15.0).abs() < 1e-12);

        let mut x = WorkAssignment::zeros(2, 3);
        x.set(0, 0, 0.5);
        x.set(0, 1, 0.5);
        // Job 0 fully assigned: energy = 1^2*1 + 1^2*1 = 2, job 1 lost (5).
        assert!((c.objective(&x) - 7.0).abs() < 1e-9);
        assert!((c.total_energy(&x) - 2.0).abs() < 1e-9);
        assert!((c.assigned_fraction(&x, 0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn realize_schedule_is_feasible_and_matches_energy() {
        let c = ctx();
        let mut x = WorkAssignment::zeros(2, 3);
        x.set(0, 0, 0.5);
        x.set(0, 1, 0.5);
        x.set(1, 1, 1.0);
        let schedule = c.realize_schedule(&x);
        let report = pss_types::validate_schedule(c.instance(), &schedule).unwrap();
        assert_eq!(report.rejected.len(), 0);
        assert!((report.energy - c.total_energy(&x)).abs() < 1e-9);
    }

    #[test]
    fn interval_works_excluding_masks_one_job() {
        let c = ctx();
        let mut x = WorkAssignment::zeros(2, 3);
        x.set(0, 1, 0.5);
        x.set(1, 1, 1.0);
        assert_eq!(c.interval_works(&x, 1), vec![1.0, 1.0]);
        assert_eq!(c.interval_works_excluding(&x, 1, 1), vec![1.0, 0.0]);
    }
}
