//! Plain-text and Markdown table rendering for experiment output.

/// A simple column-aligned table used by the experiment binaries to print
/// the rows recorded in `EXPERIMENTS.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (each row should have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row of cells.
    pub fn push_row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Convenience for rows mixing text and numbers.
    pub fn push_display_row(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.push_row(cells.iter().map(|c| c.to_string()).collect());
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        widths
    }

    /// Renders the table as aligned plain text.
    pub fn to_text(&self) -> String {
        let widths = self.widths();
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let render_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&render_row(&self.headers));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a JSON object (`{"title", "headers", "rows"}`).
    ///
    /// The workspace has no serialisation dependency, so the experiment
    /// harness emits its machine-readable results through this hand-rolled
    /// writer.
    pub fn to_json(&self) -> String {
        let arr = |items: &[String]| -> String {
            let cells: Vec<String> = items.iter().map(|c| json_string(c)).collect();
            format!("[{}]", cells.join(","))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\":{},\"headers\":{},\"rows\":[{}]}}",
            json_string(&self.title),
            arr(&self.headers),
            rows.join(",")
        )
    }

    /// Renders the table as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| " --- |").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Escapes a string as a JSON string literal (including the quotes).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float with a sensible fixed precision for tables.
pub fn fmt_f64(x: f64) -> String {
    if !x.is_finite() {
        return format!("{x}");
    }
    // pss-lint: allow(float-eq) — exact zero (±0.0) gets the short form
    if x == 0.0 {
        return "0".into();
    }
    let mag = x.abs();
    if !(0.001..1000.0).contains(&mag) {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["algo", "cost", "ratio"]);
        t.push_row(vec!["PD".into(), "12.5".into(), "1.31".into()]);
        t.push_row(vec!["CLL".into(), "14.0".into(), "1.47".into()]);
        t
    }

    #[test]
    fn text_rendering_aligns_columns() {
        let text = sample().to_text();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("algo"));
        assert!(text.contains("PD"));
        let lines: Vec<&str> = text.lines().collect();
        // Header + separator + two rows + title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn markdown_rendering_has_header_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| algo | cost | ratio |"));
        assert!(md.contains("| --- | --- | --- |"));
        assert!(md.contains("| CLL | 14.0 | 1.47 |"));
    }

    #[test]
    fn fmt_f64_picks_reasonable_precision() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.23456), "1.2346");
        assert!(fmt_f64(123456.0).contains('e'));
        assert!(fmt_f64(0.0000123).contains('e'));
        assert_eq!(fmt_f64(f64::INFINITY), "inf");
    }

    #[test]
    fn json_rendering_escapes_special_characters() {
        let mut t = Table::new("a \"quoted\" title", &["col"]);
        t.push_row(vec!["line\nbreak".into()]);
        let json = t.to_json();
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("line\\nbreak"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn push_display_row_stringifies() {
        let mut t = Table::new("t", &["a", "b"]);
        t.push_display_row(&[&1.5, &"x"]);
        assert_eq!(t.rows[0], vec!["1.5".to_string(), "x".to_string()]);
    }
}
