//! # pss-metrics
//!
//! Measurement and reporting utilities shared by the experiment harness:
//! per-algorithm result records, competitive-ratio summaries, and plain-text
//! / Markdown / JSON table rendering used to produce the tables recorded in
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csv;
pub mod report;
pub mod table;

pub use csv::table_to_csv;
pub use report::{evaluate_scheduler, AlgorithmResult, RatioSummary};
pub use table::Table;
