//! # pss-metrics
//!
//! Measurement and reporting utilities shared by the experiment harness:
//! per-algorithm result records, competitive-ratio summaries, and plain-text
//! / Markdown / JSON table rendering used to produce the tables recorded in
//! `EXPERIMENTS.md` — plus the JSON half of the checkpoint codec
//! ([`codec`]): the hand-rolled, versioned text envelope for the
//! [`StateBlob`](pss_types::StateBlob) snapshots of `pss_types::snapshot`
//! (the binary wire form lives next to the blob type itself).
//!
//! All text output shares one strict, total, hand-rolled JSON tree
//! ([`json::JsonValue`] — the offline build has no serde): the checkpoint
//! envelope parses through it, and [`service::ServiceSummary`] (the flat
//! summary of a `pss-serve` multi-tenant ingestion run: per-tenant
//! admission counts, queue depths, the dual-price trace, drain/hand-off
//! latencies) round-trips through it bit-exactly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod csv;
pub mod json;
pub mod report;
pub mod service;
pub mod table;

pub use codec::{blob_from_json, blob_to_json, seglog_from_json, seglog_to_json};
pub use csv::table_to_csv;
pub use json::{JsonError, JsonValue};
pub use report::{evaluate_scheduler, AlgorithmResult, RatioSummary};
pub use service::{DrainSummary, ServiceSummary, ShardSummary, TenantSummary};
pub use table::Table;
