//! # pss-metrics
//!
//! Measurement and reporting utilities shared by the experiment harness:
//! per-algorithm result records, competitive-ratio summaries, and plain-text
//! / Markdown / JSON table rendering used to produce the tables recorded in
//! `EXPERIMENTS.md` — plus the JSON half of the checkpoint codec
//! ([`codec`]): the hand-rolled, versioned text envelope for the
//! [`StateBlob`](pss_types::StateBlob) snapshots of `pss_types::snapshot`
//! (the binary wire form lives next to the blob type itself).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod csv;
pub mod report;
pub mod table;

pub use codec::{blob_from_json, blob_to_json};
pub use csv::table_to_csv;
pub use report::{evaluate_scheduler, AlgorithmResult, RatioSummary};
pub use table::Table;
