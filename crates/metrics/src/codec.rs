//! The JSON envelope of checkpoint blobs — the text half of the
//! hand-rolled, versioned binary/JSON checkpoint codec.
//!
//! A [`StateBlob`] has two interchangeable wire forms:
//!
//! * **binary** — `StateBlob::to_bytes`/`from_bytes` in `pss-types`
//!   (magic, format version, kind, state version, payload, FNV-1a
//!   checksum); compact, the form the failover harness ships between
//!   workers;
//! * **JSON** — [`blob_to_json`]/[`blob_from_json`] here: a fixed-shape
//!   object with the payload hex-encoded, for checkpoint files that should
//!   be inspectable (or transported through text-only channels).  The
//!   build environment has no serde, so the writer is hand-rolled and the
//!   (strict, fixed-shape) decoder goes through the shared
//!   [`JsonValue`] parser of [`crate::json`].
//!
//! The realised-segment log — the other half of an O(active) `(log, blob)`
//! checkpoint pair — gets the same treatment: [`seglog_to_json`]/
//! [`seglog_from_json`] wrap a [`SegmentLog`]'s checksummed binary wire
//! form in a self-describing envelope (machine count, end cursor, record
//! count) whose summary fields are verified against the decoded log.
//!
//! All decoders are total: truncated or corrupted input of any form
//! produces an error, never a panic — the codec fuzz pins in `pss-sim`
//! exercise this.

use pss_types::snapshot::SnapshotError;
use pss_types::{SegmentLog, StateBlob};

use crate::json::JsonValue;
use crate::table::json_string;

/// Value of the `"format"` field identifying a checkpoint envelope.
const JSON_FORMAT: &str = "pss-checkpoint";

/// Value of the `"format"` field identifying a segment-log envelope.
const SEGLOG_FORMAT: &str = "pss-seglog";

/// Renders a checkpoint blob as a JSON object:
///
/// ```json
/// {"format":"pss-checkpoint","kind":"replan","version":1,"payload":"<hex>"}
/// ```
///
/// The payload is the blob's raw binary payload, hex-encoded (two lowercase
/// digits per byte); kind and version are carried as JSON fields, so the
/// envelope is self-describing without decoding the payload.
pub fn blob_to_json(blob: &StateBlob) -> String {
    let mut hex = String::with_capacity(2 * blob.payload().len());
    for b in blob.payload() {
        use std::fmt::Write;
        let _ = write!(hex, "{b:02x}");
    }
    format!(
        "{{\"format\":{},\"kind\":{},\"version\":{},\"payload\":\"{}\"}}",
        json_string(JSON_FORMAT),
        json_string(blob.kind()),
        blob.version(),
        hex
    )
}

/// Parses the JSON envelope produced by [`blob_to_json`] back into a
/// [`StateBlob`].
///
/// The decoder is deliberately strict: the input must be exactly one JSON
/// object of the fixed shape the writer produces (any key order, arbitrary
/// whitespace between tokens — the shared [`JsonValue`] parser's rules);
/// anything else is rejected with a [`SnapshotError`] — it is a checkpoint
/// decoder, not a general JSON consumer.
pub fn blob_from_json(text: &str) -> Result<StateBlob, SnapshotError> {
    let corrupted = SnapshotError::Corrupted;
    let value = JsonValue::parse(text).map_err(|e| corrupted(e.to_string()))?;
    let pairs = value
        .as_object()
        .ok_or_else(|| corrupted("checkpoint envelope is not an object".into()))?;
    let mut format: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut version: Option<u64> = None;
    let mut payload: Option<Vec<u8>> = None;
    for (key, field) in pairs {
        match key.as_str() {
            "format" => {
                format = Some(
                    field
                        .as_str()
                        .ok_or_else(|| corrupted("format is not a string".into()))?
                        .to_string(),
                )
            }
            "kind" => {
                kind = Some(
                    field
                        .as_str()
                        .ok_or_else(|| corrupted("kind is not a string".into()))?
                        .to_string(),
                )
            }
            "version" => {
                version = Some(
                    field
                        .as_u64()
                        .ok_or_else(|| corrupted("version is not an unsigned integer".into()))?,
                )
            }
            "payload" => {
                payload =
                    Some(decode_hex(field.as_str().ok_or_else(|| {
                        corrupted("payload is not a string".into())
                    })?)?)
            }
            other => return Err(corrupted(format!("unknown checkpoint field {other:?}"))),
        }
    }
    if format.as_deref() != Some(JSON_FORMAT) {
        return Err(corrupted(format!("not a {JSON_FORMAT} envelope")));
    }
    let kind = kind.ok_or_else(|| corrupted("missing kind".into()))?;
    let version = version.ok_or_else(|| corrupted("missing version".into()))?;
    let version =
        u16::try_from(version).map_err(|_| corrupted(format!("version {version} out of range")))?;
    let payload = payload.ok_or_else(|| corrupted("missing payload".into()))?;
    Ok(StateBlob::new(kind, version, payload))
}

/// Renders a realised-segment log as a JSON envelope:
///
/// ```json
/// {"format":"pss-seglog","machines":2,"segments":10,"records":3,"log":"<hex>"}
/// ```
///
/// The `log` field is the log's binary wire form ([`SegmentLog::to_bytes`]:
/// the checksummed `StateBlob` container with one FNV-1a checksum per
/// record), hex-encoded; `machines`, `segments` (the end cursor) and
/// `records` (live record envelopes) are carried alongside so the envelope
/// is self-describing without decoding the payload — the other half of the
/// `(log, blob)` checkpoint pair in text form.
pub fn seglog_to_json(log: &SegmentLog) -> String {
    let bytes = log.to_bytes();
    let mut hex = String::with_capacity(2 * bytes.len());
    for b in &bytes {
        use std::fmt::Write;
        let _ = write!(hex, "{b:02x}");
    }
    format!(
        "{{\"format\":{},\"machines\":{},\"segments\":{},\"records\":{},\"log\":\"{}\"}}",
        json_string(SEGLOG_FORMAT),
        log.machines(),
        log.cursor().segments(),
        log.record_count(),
        hex
    )
}

/// Parses the JSON envelope produced by [`seglog_to_json`] back into a
/// [`SegmentLog`].
///
/// As strict as [`blob_from_json`], and strictly *total*: the fixed shape
/// is enforced, the hex payload must decode as a valid log (contiguous,
/// checksummed records — [`SegmentLog::from_bytes`]), and the summary
/// fields must agree with the decoded log; any mismatch is a
/// [`SnapshotError`], never a panic or a silent misparse.
pub fn seglog_from_json(text: &str) -> Result<SegmentLog, SnapshotError> {
    let corrupted = SnapshotError::Corrupted;
    let value = JsonValue::parse(text).map_err(|e| corrupted(e.to_string()))?;
    let pairs = value
        .as_object()
        .ok_or_else(|| corrupted("segment-log envelope is not an object".into()))?;
    let mut format: Option<String> = None;
    let mut machines: Option<u64> = None;
    let mut segments: Option<u64> = None;
    let mut records: Option<u64> = None;
    let mut wire: Option<Vec<u8>> = None;
    for (key, field) in pairs {
        match key.as_str() {
            "format" => {
                format = Some(
                    field
                        .as_str()
                        .ok_or_else(|| corrupted("format is not a string".into()))?
                        .to_string(),
                )
            }
            "machines" => {
                machines = Some(
                    field
                        .as_u64()
                        .ok_or_else(|| corrupted("machines is not an unsigned integer".into()))?,
                )
            }
            "segments" => {
                segments = Some(
                    field
                        .as_u64()
                        .ok_or_else(|| corrupted("segments is not an unsigned integer".into()))?,
                )
            }
            "records" => {
                records = Some(
                    field
                        .as_u64()
                        .ok_or_else(|| corrupted("records is not an unsigned integer".into()))?,
                )
            }
            "log" => {
                wire = Some(decode_hex(
                    field
                        .as_str()
                        .ok_or_else(|| corrupted("log is not a string".into()))?,
                )?)
            }
            other => return Err(corrupted(format!("unknown segment-log field {other:?}"))),
        }
    }
    if format.as_deref() != Some(SEGLOG_FORMAT) {
        return Err(corrupted(format!("not a {SEGLOG_FORMAT} envelope")));
    }
    let machines = machines.ok_or_else(|| corrupted("missing machines".into()))?;
    let segments = segments.ok_or_else(|| corrupted("missing segments".into()))?;
    let records = records.ok_or_else(|| corrupted("missing records".into()))?;
    let wire = wire.ok_or_else(|| corrupted("missing log".into()))?;
    let log = SegmentLog::from_bytes(&wire)?;
    if log.machines() as u64 != machines
        || log.cursor().segments() != segments
        || log.record_count() as u64 != records
    {
        return Err(corrupted(
            "segment-log summary fields disagree with the decoded log".into(),
        ));
    }
    Ok(log)
}

/// Decodes the payload's hex encoding (two digits per byte, either case).
fn decode_hex(hex: &str) -> Result<Vec<u8>, SnapshotError> {
    if !hex.len().is_multiple_of(2) {
        return Err(SnapshotError::Corrupted("odd hex payload length".into()));
    }
    let bytes = hex.as_bytes();
    let mut out = Vec::with_capacity(bytes.len() / 2);
    for pair in bytes.chunks_exact(2) {
        let digit = |b: u8| -> Result<u8, SnapshotError> {
            match b {
                b'0'..=b'9' => Ok(b - b'0'),
                b'a'..=b'f' => Ok(b - b'a' + 10),
                b'A'..=b'F' => Ok(b - b'A' + 10),
                _ => Err(SnapshotError::Corrupted(format!(
                    "invalid hex digit {:?}",
                    b as char
                ))),
            }
        };
        // `chunks_exact(2)` guarantees the shape; the slice pattern keeps
        // the decode total without indexing.
        let &[hi, lo] = pair else {
            return Err(SnapshotError::Corrupted("odd hex payload length".into()));
        };
        out.push(digit(hi)? << 4 | digit(lo)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_envelope_round_trips() {
        let blob = StateBlob::new("replan", 1, (0..=255u8).collect());
        let json = blob_to_json(&blob);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pss-checkpoint\""));
        let back = blob_from_json(&json).unwrap();
        assert_eq!(back, blob);
    }

    #[test]
    fn json_envelope_tolerates_whitespace_and_key_order() {
        let text = "{ \"version\" : 3 ,\n \"payload\" : \"0aff\" ,\
                    \"kind\" : \"bkp\", \"format\": \"pss-checkpoint\" }";
        let blob = blob_from_json(text).unwrap();
        assert_eq!(blob.kind(), "bkp");
        assert_eq!(blob.version(), 3);
        assert_eq!(blob.payload(), &[0x0a, 0xff]);
    }

    #[test]
    fn malformed_json_is_an_error_never_a_panic() {
        let good = blob_to_json(&StateBlob::new("avr", 1, vec![1, 2, 3]));
        // Every truncation of the valid envelope must fail cleanly.
        for len in 0..good.len() {
            let prefix = &good[..len];
            if std::str::from_utf8(prefix.as_bytes()).is_ok() {
                assert!(blob_from_json(prefix).is_err(), "truncation to {len}");
            }
        }
        for bad in [
            "",
            "{}",
            "null",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1}",
            "{\"format\":\"other\",\"kind\":\"x\",\"version\":1,\"payload\":\"\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"0g\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"abc\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":99999,\"payload\":\"\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"\"}}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"\",\"extra\":1}",
        ] {
            assert!(blob_from_json(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn escaped_kinds_round_trip() {
        let blob = StateBlob::new("weird \"kind\"\nwith \\ stuff", 2, vec![7]);
        let back = blob_from_json(&blob_to_json(&blob)).unwrap();
        assert_eq!(back, blob);
    }

    fn sample_log() -> SegmentLog {
        use pss_types::{JobId, Schedule, Segment};
        let mut log = SegmentLog::new(2);
        let mut frontier = Schedule::empty(2);
        for burst in 0..3usize {
            frontier.segments.push(Segment::work(
                burst % 2,
                burst as f64,
                burst as f64 + 1.0,
                1.25,
                JobId(burst),
            ));
            log.sync_from(&frontier).unwrap();
        }
        log
    }

    #[test]
    fn seglog_envelope_round_trips() {
        let log = sample_log();
        let json = seglog_to_json(&log);
        assert!(json.contains("\"pss-seglog\""));
        assert!(json.contains("\"segments\":3"));
        let back = seglog_from_json(&json).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn seglog_envelope_rejects_corruption_and_lying_summaries() {
        let log = sample_log();
        let json = seglog_to_json(&log);
        // Every truncation of the valid envelope must fail cleanly.
        for len in 0..json.len() {
            let prefix = &json[..len];
            assert!(seglog_from_json(prefix).is_err(), "truncation to {len}");
        }
        // A summary field that disagrees with the decoded log is corrupt,
        // not silently trusted.
        let lying = json.replace("\"segments\":3", "\"segments\":4");
        assert!(seglog_from_json(&lying).is_err());
        // A flipped hex digit breaks a record checksum inside the wire.
        let hex_at = json.find("\"log\":\"").unwrap() + "\"log\":\"".len();
        let mut flipped = json.clone().into_bytes();
        flipped[hex_at + 40] = if flipped[hex_at + 40] == b'0' {
            b'1'
        } else {
            b'0'
        };
        let flipped = String::from_utf8(flipped).unwrap();
        assert!(seglog_from_json(&flipped).is_err());
        for bad in [
            "{}",
            "{\"format\":\"pss-seglog\",\"machines\":2,\"segments\":3,\"records\":3}",
            "{\"format\":\"pss-checkpoint\",\"machines\":2,\"segments\":3,\"records\":3,\"log\":\"\"}",
            "{\"format\":\"pss-seglog\",\"machines\":2,\"segments\":3,\"records\":3,\"log\":\"zz\"}",
        ] {
            assert!(seglog_from_json(bad).is_err(), "must reject {bad:?}");
        }
    }
}
