//! The JSON envelope of checkpoint blobs — the text half of the
//! hand-rolled, versioned binary/JSON checkpoint codec.
//!
//! A [`StateBlob`] has two interchangeable wire forms:
//!
//! * **binary** — `StateBlob::to_bytes`/`from_bytes` in `pss-types`
//!   (magic, format version, kind, state version, payload, FNV-1a
//!   checksum); compact, the form the failover harness ships between
//!   workers;
//! * **JSON** — [`blob_to_json`]/[`blob_from_json`] here: a fixed-shape
//!   object with the payload hex-encoded, for checkpoint files that should
//!   be inspectable (or transported through text-only channels).  The
//!   build environment has no serde, so both the writer and the (strict,
//!   fixed-shape) parser are hand-rolled, like the rest of the JSON output
//!   in this crate.
//!
//! Both decoders are total: truncated or corrupted input of either form
//! produces an error, never a panic — the codec fuzz pins in `pss-sim`
//! exercise this.

use pss_types::snapshot::SnapshotError;
use pss_types::StateBlob;

use crate::table::json_string;

/// Value of the `"format"` field identifying a checkpoint envelope.
const JSON_FORMAT: &str = "pss-checkpoint";

/// Renders a checkpoint blob as a JSON object:
///
/// ```json
/// {"format":"pss-checkpoint","kind":"replan","version":1,"payload":"<hex>"}
/// ```
///
/// The payload is the blob's raw binary payload, hex-encoded (two lowercase
/// digits per byte); kind and version are carried as JSON fields, so the
/// envelope is self-describing without decoding the payload.
pub fn blob_to_json(blob: &StateBlob) -> String {
    let mut hex = String::with_capacity(2 * blob.payload().len());
    for b in blob.payload() {
        use std::fmt::Write;
        let _ = write!(hex, "{b:02x}");
    }
    format!(
        "{{\"format\":{},\"kind\":{},\"version\":{},\"payload\":\"{}\"}}",
        json_string(JSON_FORMAT),
        json_string(blob.kind()),
        blob.version(),
        hex
    )
}

/// Parses the JSON envelope produced by [`blob_to_json`] back into a
/// [`StateBlob`].
///
/// The parser is deliberately strict: it accepts exactly the fixed object
/// shape the writer produces (any key order, arbitrary whitespace between
/// tokens) and rejects everything else with a [`SnapshotError`] — it is a
/// checkpoint decoder, not a general JSON library.
pub fn blob_from_json(text: &str) -> Result<StateBlob, SnapshotError> {
    let mut p = Parser::new(text);
    p.skip_ws();
    p.expect_byte(b'{')?;
    let mut format: Option<String> = None;
    let mut kind: Option<String> = None;
    let mut version: Option<u64> = None;
    let mut payload: Option<Vec<u8>> = None;
    loop {
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.pos += 1;
            break;
        }
        let key = p.parse_string()?;
        p.skip_ws();
        p.expect_byte(b':')?;
        p.skip_ws();
        match key.as_str() {
            "format" => format = Some(p.parse_string()?),
            "kind" => kind = Some(p.parse_string()?),
            "version" => version = Some(p.parse_u64()?),
            "payload" => payload = Some(p.parse_hex_string()?),
            other => {
                return Err(SnapshotError::Corrupted(format!(
                    "unknown checkpoint field {other:?}"
                )))
            }
        }
        p.skip_ws();
        match p.peek() {
            Some(b',') => p.pos += 1,
            Some(b'}') => {}
            _ => return Err(SnapshotError::Corrupted("expected ',' or '}'".into())),
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(SnapshotError::Corrupted("trailing characters".into()));
    }
    if format.as_deref() != Some(JSON_FORMAT) {
        return Err(SnapshotError::Corrupted(format!(
            "not a {JSON_FORMAT} envelope"
        )));
    }
    let kind = kind.ok_or_else(|| SnapshotError::Corrupted("missing kind".into()))?;
    let version = version.ok_or_else(|| SnapshotError::Corrupted("missing version".into()))?;
    let version = u16::try_from(version)
        .map_err(|_| SnapshotError::Corrupted(format!("version {version} out of range")))?;
    let payload = payload.ok_or_else(|| SnapshotError::Corrupted("missing payload".into()))?;
    Ok(StateBlob::new(kind, version, payload))
}

/// The minimal strict parser behind [`blob_from_json`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), SnapshotError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(SnapshotError::Corrupted(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    /// Parses a JSON string literal with the same escape set the writer
    /// emits (`\" \\ \n \r \t \uXXXX`).
    fn parse_string(&mut self) -> Result<String, SnapshotError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(SnapshotError::Truncated);
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(SnapshotError::Truncated);
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(SnapshotError::Truncated);
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| SnapshotError::Corrupted("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| SnapshotError::Corrupted("bad \\u escape".into()))?;
                            let c = char::from_u32(code).ok_or_else(|| {
                                SnapshotError::Corrupted("bad \\u code point".into())
                            })?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(SnapshotError::Corrupted(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Continue a multi-byte UTF-8 sequence as raw bytes; the
                    // input is a &str, so the sequence is valid.
                    let start = self.pos - 1;
                    while self
                        .peek()
                        .is_some_and(|nb| nb >= 0x80 && (nb & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| SnapshotError::Corrupted("invalid UTF-8".into()))?;
                    out.push_str(s);
                }
            }
        }
    }

    fn parse_u64(&mut self) -> Result<u64, SnapshotError> {
        let start = self.pos;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(SnapshotError::Corrupted("expected a number".into()));
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| SnapshotError::Corrupted("number out of range".into()))
    }

    fn parse_hex_string(&mut self) -> Result<Vec<u8>, SnapshotError> {
        let hex = self.parse_string()?;
        if hex.len() % 2 != 0 {
            return Err(SnapshotError::Corrupted("odd hex payload length".into()));
        }
        let bytes = hex.as_bytes();
        let mut out = Vec::with_capacity(bytes.len() / 2);
        for pair in bytes.chunks_exact(2) {
            let digit = |b: u8| -> Result<u8, SnapshotError> {
                match b {
                    b'0'..=b'9' => Ok(b - b'0'),
                    b'a'..=b'f' => Ok(b - b'a' + 10),
                    b'A'..=b'F' => Ok(b - b'A' + 10),
                    _ => Err(SnapshotError::Corrupted(format!(
                        "invalid hex digit {:?}",
                        b as char
                    ))),
                }
            };
            out.push(digit(pair[0])? << 4 | digit(pair[1])?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_envelope_round_trips() {
        let blob = StateBlob::new("replan", 1, (0..=255u8).collect());
        let json = blob_to_json(&blob);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"pss-checkpoint\""));
        let back = blob_from_json(&json).unwrap();
        assert_eq!(back, blob);
    }

    #[test]
    fn json_envelope_tolerates_whitespace_and_key_order() {
        let text = "{ \"version\" : 3 ,\n \"payload\" : \"0aff\" ,\
                    \"kind\" : \"bkp\", \"format\": \"pss-checkpoint\" }";
        let blob = blob_from_json(text).unwrap();
        assert_eq!(blob.kind(), "bkp");
        assert_eq!(blob.version(), 3);
        assert_eq!(blob.payload(), &[0x0a, 0xff]);
    }

    #[test]
    fn malformed_json_is_an_error_never_a_panic() {
        let good = blob_to_json(&StateBlob::new("avr", 1, vec![1, 2, 3]));
        // Every truncation of the valid envelope must fail cleanly.
        for len in 0..good.len() {
            let prefix = &good[..len];
            if std::str::from_utf8(prefix.as_bytes()).is_ok() {
                assert!(blob_from_json(prefix).is_err(), "truncation to {len}");
            }
        }
        for bad in [
            "",
            "{}",
            "null",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1}",
            "{\"format\":\"other\",\"kind\":\"x\",\"version\":1,\"payload\":\"\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"0g\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"abc\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":99999,\"payload\":\"\"}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"\"}}",
            "{\"format\":\"pss-checkpoint\",\"kind\":\"x\",\"version\":1,\"payload\":\"\",\"extra\":1}",
        ] {
            assert!(blob_from_json(bad).is_err(), "must reject {bad:?}");
        }
    }

    #[test]
    fn escaped_kinds_round_trip() {
        let blob = StateBlob::new("weird \"kind\"\nwith \\ stuff", 2, vec![7]);
        let back = blob_from_json(&blob_to_json(&blob)).unwrap();
        assert_eq!(back, blob);
    }
}
