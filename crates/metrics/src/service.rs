//! The machine-readable summary of a multi-tenant ingestion-service run —
//! and its JSON codec, built on the shared [`JsonValue`](crate::json) tree.
//!
//! The `pss-serve` daemon's full `ServiceReport` carries heavyweight run
//! artefacts (schedules, per-event records); what operators ship to
//! dashboards is this flat summary: per-tenant admission accounting,
//! per-shard queue/price/throughput statistics, and the drain / hand-off
//! latencies of the lifecycle protocol.  The type lives here (not in
//! `pss-serve`) for the same reason [`AlgorithmResult`](crate::report)
//! does — it is pure reporting data, and keeping it below the daemon crate
//! lets the codec be reused without a dependency cycle.
//!
//! [`ServiceSummary::to_json`]/[`ServiceSummary::from_json`] round-trip the
//! summary exactly: every count is an integer, every latency/price is a
//! finite `f64` rendered in shortest round-trip form, so
//! `from_json(to_json(s)) == s` bit-for-bit.

use crate::json::{JsonError, JsonValue};

/// Per-tenant admission accounting over a service run.
///
/// The counters partition every submission the tenant attempted (once the
/// service has fully drained): `submitted = accepted +
/// rejected_by_scheduler + rejected_by_price + rejected_invalid +
/// rejected_stale + deferred + queue_full + quota_exceeded`.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// The tenant's registered name.
    pub tenant: String,
    /// Total submissions attempted through the tenant's handle.
    pub submitted: u64,
    /// Jobs the scheduling algorithm accepted.
    pub accepted: u64,
    /// Jobs that were ingested and rejected at the `Decision` level —
    /// by the scheduling algorithm itself, or synthesised by the service
    /// for jobs that expired in the queue (their value is lost either way).
    pub rejected_by_scheduler: u64,
    /// Jobs rejected *at admission* by dual-price backpressure under the
    /// tenant's `Reject` policy (their value is lost without ever loading
    /// the scheduler).
    pub rejected_by_price: u64,
    /// Submissions rejected as invalid (non-finite fields, bad windows).
    pub rejected_invalid: u64,
    /// Submissions rejected as too late: release beyond the staleness
    /// window, or deadline already behind the shard's feed watermark
    /// (dead on arrival).
    pub rejected_stale: u64,
    /// Submissions deferred by backpressure under the tenant's `Defer`
    /// policy (retryable; no value lost).
    pub deferred: u64,
    /// Submissions bounced off a full arrival queue (retryable).
    pub queue_full: u64,
    /// Submissions rejected because the tenant's outstanding-jobs quota
    /// was reached (retryable).
    pub quota_exceeded: u64,
    /// Total value lost to price-based admission rejections.
    pub lost_value: f64,
}

/// Per-shard ingestion statistics over a service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSummary {
    /// Shard index.
    pub shard: u64,
    /// Arrival events the shard's worker ingested.
    pub arrivals: u64,
    /// Ingestion batches (`on_arrivals` calls) the worker made — burst
    /// coalescing makes this ≤ `arrivals`.
    pub batches: u64,
    /// Largest queue depth observed at a drain point.
    pub max_queue_depth: u64,
    /// True maximum queue depth ever reached, counted at every push —
    /// transient storms that build and drain between two drain points are
    /// invisible to `max_queue_depth` but not to this; always ≥ it.
    pub peak_queue_depth: u64,
    /// Nearest-rank p99 of the queue depth samples.
    pub queue_depth_p99: f64,
    /// The rolling dual price after each ingestion batch (the backpressure
    /// signal's trajectory; may be downsampled by the producer).
    pub dual_price_trace: Vec<f64>,
    /// The rolling dual price when the run ended.
    pub final_price: f64,
    /// Checkpoints the worker captured.
    pub checkpoints: u64,
    /// Hand-offs (worker migrations) the shard went through.
    pub handoffs: u64,
}

/// Latencies of the lifecycle protocol: graceful drains and hand-offs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DrainSummary {
    /// Per-shard wall-clock drain latency at shutdown, in seconds (from
    /// the drain signal to the finished schedule), in shard order.
    pub drain_secs: Vec<f64>,
    /// Wall-clock latency of each hand-off (checkpoint on the old worker
    /// to resumption on the fresh one), in occurrence order.
    pub handoff_secs: Vec<f64>,
}

/// The flat, JSON-serialisable summary of a service run.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceSummary {
    /// Name of the scheduling algorithm the daemon ran.
    pub algorithm: String,
    /// Per-tenant admission accounting, in registry order.
    pub tenants: Vec<TenantSummary>,
    /// Per-shard ingestion statistics, in shard order.
    pub shards: Vec<ShardSummary>,
    /// Drain / hand-off latencies.
    pub drain: DrainSummary,
}

/// Value of the `"format"` field identifying a service-summary document.
const JSON_FORMAT: &str = "pss-service";

impl ServiceSummary {
    /// Renders the summary as a single JSON object.
    pub fn to_json(&self) -> String {
        let tenant = |t: &TenantSummary| {
            JsonValue::Obj(vec![
                ("tenant".into(), JsonValue::str(&t.tenant)),
                ("submitted".into(), JsonValue::Num(t.submitted as f64)),
                ("accepted".into(), JsonValue::Num(t.accepted as f64)),
                (
                    "rejected_by_scheduler".into(),
                    JsonValue::Num(t.rejected_by_scheduler as f64),
                ),
                (
                    "rejected_by_price".into(),
                    JsonValue::Num(t.rejected_by_price as f64),
                ),
                (
                    "rejected_invalid".into(),
                    JsonValue::Num(t.rejected_invalid as f64),
                ),
                (
                    "rejected_stale".into(),
                    JsonValue::Num(t.rejected_stale as f64),
                ),
                ("deferred".into(), JsonValue::Num(t.deferred as f64)),
                ("queue_full".into(), JsonValue::Num(t.queue_full as f64)),
                (
                    "quota_exceeded".into(),
                    JsonValue::Num(t.quota_exceeded as f64),
                ),
                ("lost_value".into(), JsonValue::Num(t.lost_value)),
            ])
        };
        let shard = |s: &ShardSummary| {
            JsonValue::Obj(vec![
                ("shard".into(), JsonValue::Num(s.shard as f64)),
                ("arrivals".into(), JsonValue::Num(s.arrivals as f64)),
                ("batches".into(), JsonValue::Num(s.batches as f64)),
                (
                    "max_queue_depth".into(),
                    JsonValue::Num(s.max_queue_depth as f64),
                ),
                (
                    "peak_queue_depth".into(),
                    JsonValue::Num(s.peak_queue_depth as f64),
                ),
                ("queue_depth_p99".into(), JsonValue::Num(s.queue_depth_p99)),
                (
                    "dual_price_trace".into(),
                    JsonValue::nums(s.dual_price_trace.iter().copied()),
                ),
                ("final_price".into(), JsonValue::Num(s.final_price)),
                ("checkpoints".into(), JsonValue::Num(s.checkpoints as f64)),
                ("handoffs".into(), JsonValue::Num(s.handoffs as f64)),
            ])
        };
        JsonValue::Obj(vec![
            ("format".into(), JsonValue::str(JSON_FORMAT)),
            ("algorithm".into(), JsonValue::str(&self.algorithm)),
            (
                "tenants".into(),
                JsonValue::Arr(self.tenants.iter().map(tenant).collect()),
            ),
            (
                "shards".into(),
                JsonValue::Arr(self.shards.iter().map(shard).collect()),
            ),
            (
                "drain".into(),
                JsonValue::Obj(vec![
                    (
                        "drain_secs".into(),
                        JsonValue::nums(self.drain.drain_secs.iter().copied()),
                    ),
                    (
                        "handoff_secs".into(),
                        JsonValue::nums(self.drain.handoff_secs.iter().copied()),
                    ),
                ]),
            ),
        ])
        .render()
    }

    /// Parses a document produced by [`to_json`](Self::to_json).
    ///
    /// Strict like the checkpoint envelope decoder: the document must be a
    /// `pss-service` object with exactly the writer's fields (any key
    /// order); anything else is a [`JsonError`].
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = JsonValue::parse(text)?;
        expect_keys(
            &root,
            &["format", "algorithm", "tenants", "shards", "drain"],
        )?;
        if str_field(&root, "format")? != JSON_FORMAT {
            return Err(JsonError::new(format!("not a {JSON_FORMAT} document")));
        }
        let tenants = seq_field(&root, "tenants")?
            .iter()
            .map(parse_tenant)
            .collect::<Result<Vec<_>, _>>()?;
        let shards = seq_field(&root, "shards")?
            .iter()
            .map(parse_shard)
            .collect::<Result<Vec<_>, _>>()?;
        let drain = field(&root, "drain")?;
        expect_keys(drain, &["drain_secs", "handoff_secs"])?;
        Ok(ServiceSummary {
            algorithm: str_field(&root, "algorithm")?.to_string(),
            tenants,
            shards,
            drain: DrainSummary {
                drain_secs: f64_seq(drain, "drain_secs")?,
                handoff_secs: f64_seq(drain, "handoff_secs")?,
            },
        })
    }
}

fn parse_tenant(v: &JsonValue) -> Result<TenantSummary, JsonError> {
    expect_keys(
        v,
        &[
            "tenant",
            "submitted",
            "accepted",
            "rejected_by_scheduler",
            "rejected_by_price",
            "rejected_invalid",
            "rejected_stale",
            "deferred",
            "queue_full",
            "quota_exceeded",
            "lost_value",
        ],
    )?;
    Ok(TenantSummary {
        tenant: str_field(v, "tenant")?.to_string(),
        submitted: u64_field(v, "submitted")?,
        accepted: u64_field(v, "accepted")?,
        rejected_by_scheduler: u64_field(v, "rejected_by_scheduler")?,
        rejected_by_price: u64_field(v, "rejected_by_price")?,
        rejected_invalid: u64_field(v, "rejected_invalid")?,
        rejected_stale: u64_field(v, "rejected_stale")?,
        deferred: u64_field(v, "deferred")?,
        queue_full: u64_field(v, "queue_full")?,
        quota_exceeded: u64_field(v, "quota_exceeded")?,
        lost_value: f64_field(v, "lost_value")?,
    })
}

fn parse_shard(v: &JsonValue) -> Result<ShardSummary, JsonError> {
    expect_keys(
        v,
        &[
            "shard",
            "arrivals",
            "batches",
            "max_queue_depth",
            "peak_queue_depth",
            "queue_depth_p99",
            "dual_price_trace",
            "final_price",
            "checkpoints",
            "handoffs",
        ],
    )?;
    Ok(ShardSummary {
        shard: u64_field(v, "shard")?,
        arrivals: u64_field(v, "arrivals")?,
        batches: u64_field(v, "batches")?,
        max_queue_depth: u64_field(v, "max_queue_depth")?,
        peak_queue_depth: u64_field(v, "peak_queue_depth")?,
        queue_depth_p99: f64_field(v, "queue_depth_p99")?,
        dual_price_trace: f64_seq(v, "dual_price_trace")?,
        final_price: f64_field(v, "final_price")?,
        checkpoints: u64_field(v, "checkpoints")?,
        handoffs: u64_field(v, "handoffs")?,
    })
}

/// Requires `v` to be an object whose key set is exactly `keys`.
fn expect_keys(v: &JsonValue, keys: &[&str]) -> Result<(), JsonError> {
    let pairs = v
        .as_object()
        .ok_or_else(|| JsonError::new("expected an object"))?;
    for (k, _) in pairs {
        if !keys.contains(&k.as_str()) {
            return Err(JsonError::new(format!("unknown field {k:?}")));
        }
    }
    for key in keys {
        if !pairs.iter().any(|(k, _)| k == key) {
            return Err(JsonError::new(format!("missing field {key:?}")));
        }
    }
    Ok(())
}

fn field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a JsonValue, JsonError> {
    v.get(key)
        .ok_or_else(|| JsonError::new(format!("missing field {key:?}")))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, JsonError> {
    field(v, key)?
        .as_str()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not a string")))
}

fn u64_field(v: &JsonValue, key: &str) -> Result<u64, JsonError> {
    field(v, key)?
        .as_u64()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not an unsigned integer")))
}

fn f64_field(v: &JsonValue, key: &str) -> Result<f64, JsonError> {
    field(v, key)?
        .as_f64()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not a number")))
}

fn seq_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a [JsonValue], JsonError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not an array")))
}

fn f64_seq(v: &JsonValue, key: &str) -> Result<Vec<f64>, JsonError> {
    field(v, key)?
        .as_array()
        .ok_or_else(|| JsonError::new(format!("field {key:?} is not an array")))?
        .iter()
        .map(|item| {
            item.as_f64()
                .ok_or_else(|| JsonError::new(format!("field {key:?} holds a non-number")))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ServiceSummary {
        ServiceSummary {
            algorithm: "PD".into(),
            tenants: vec![
                TenantSummary {
                    tenant: "analytics".into(),
                    submitted: 100,
                    accepted: 80,
                    rejected_by_scheduler: 5,
                    rejected_by_price: 7,
                    rejected_invalid: 1,
                    rejected_stale: 2,
                    deferred: 3,
                    queue_full: 2,
                    quota_exceeded: 4,
                    lost_value: 12.625,
                },
                TenantSummary {
                    tenant: "batch \"low\"".into(),
                    submitted: 0,
                    accepted: 0,
                    rejected_by_scheduler: 0,
                    rejected_by_price: 0,
                    rejected_invalid: 0,
                    rejected_stale: 0,
                    deferred: 0,
                    queue_full: 0,
                    quota_exceeded: 0,
                    lost_value: 0.0,
                },
            ],
            shards: vec![ShardSummary {
                shard: 0,
                arrivals: 95,
                batches: 40,
                max_queue_depth: 17,
                peak_queue_depth: 23,
                queue_depth_p99: 16.0,
                dual_price_trace: vec![0.0, 0.25, 1.0 / 3.0],
                final_price: 1.0 / 3.0,
                checkpoints: 4,
                handoffs: 1,
            }],
            drain: DrainSummary {
                drain_secs: vec![0.001953125],
                handoff_secs: vec![0.125, 0.0625],
            },
        }
    }

    #[test]
    fn summary_round_trips_bit_exactly() {
        let summary = sample();
        let json = summary.to_json();
        assert!(json.contains("\"pss-service\""));
        let back = ServiceSummary::from_json(&json).unwrap();
        assert_eq!(back, summary);
        // Non-dyadic floats survive bit-for-bit.
        assert_eq!(
            back.shards[0].dual_price_trace[2].to_bits(),
            (1.0f64 / 3.0).to_bits()
        );
    }

    #[test]
    fn empty_summary_round_trips() {
        let summary = ServiceSummary {
            algorithm: "CLL".into(),
            tenants: vec![],
            shards: vec![],
            drain: DrainSummary::default(),
        };
        let back = ServiceSummary::from_json(&summary.to_json()).unwrap();
        assert_eq!(back, summary);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        let good = sample().to_json();
        // Truncations fail cleanly.
        for len in 0..good.len() {
            if good.is_char_boundary(len) {
                assert!(ServiceSummary::from_json(&good[..len]).is_err());
            }
        }
        for bad in [
            "null",
            "{}",
            "{\"format\":\"other\",\"algorithm\":\"x\",\"tenants\":[],\"shards\":[],\
             \"drain\":{\"drain_secs\":[],\"handoff_secs\":[]}}",
            // Unknown top-level field.
            "{\"format\":\"pss-service\",\"algorithm\":\"x\",\"tenants\":[],\"shards\":[],\
             \"drain\":{\"drain_secs\":[],\"handoff_secs\":[]},\"extra\":1}",
            // Fractional count.
            "{\"format\":\"pss-service\",\"algorithm\":\"x\",\"tenants\":[{\"tenant\":\"t\",\
             \"submitted\":1.5,\"accepted\":0,\"rejected_by_scheduler\":0,\
             \"rejected_by_price\":0,\"rejected_invalid\":0,\"rejected_stale\":0,\
             \"deferred\":0,\"queue_full\":0,\"quota_exceeded\":0,\"lost_value\":0}],\
             \"shards\":[],\"drain\":{\"drain_secs\":[],\"handoff_secs\":[]}}",
        ] {
            assert!(
                ServiceSummary::from_json(bad).is_err(),
                "must reject {bad:?}"
            );
        }
    }
}
