//! Algorithm evaluation records and ratio summaries.

use std::time::Instant;

use pss_types::{validate_schedule, Cost, Instance, ScheduleError, Scheduler};

/// The outcome of running one algorithm on one instance.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmResult {
    /// Algorithm name (from [`Scheduler::name`]).
    pub algorithm: String,
    /// Cost of the produced schedule.
    pub cost: Cost,
    /// Number of jobs the schedule finished.
    pub finished_jobs: usize,
    /// Number of jobs not finished (rejected or missed).
    pub rejected_jobs: usize,
    /// Wall-clock runtime of the scheduling call, in seconds.
    pub runtime_secs: f64,
}

impl AlgorithmResult {
    /// The ratio of this result's total cost to a reference cost (clamped to
    /// 1 from below when the reference is a valid lower bound and round-off
    /// makes the ratio dip slightly under 1).
    pub fn ratio_to(&self, reference: f64) -> f64 {
        if reference <= 0.0 {
            if self.cost.total() <= 1e-12 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            self.cost.total() / reference
        }
    }
}

/// Runs a scheduler on an instance, validates the schedule, and returns the
/// result record.
pub fn evaluate_scheduler<S: Scheduler + ?Sized>(
    scheduler: &S,
    instance: &Instance,
) -> Result<AlgorithmResult, ScheduleError> {
    let start = Instant::now();
    let schedule = scheduler.schedule(instance)?;
    let runtime_secs = start.elapsed().as_secs_f64();
    let report = validate_schedule(instance, &schedule)?;
    let cost = schedule.cost(instance);
    Ok(AlgorithmResult {
        algorithm: scheduler.name(),
        cost,
        finished_jobs: report.finished_count(),
        rejected_jobs: instance.len() - report.finished_count(),
        runtime_secs,
    })
}

/// Summary statistics of a collection of ratios (one per instance of a
/// sweep).
#[derive(Debug, Clone, PartialEq)]
pub struct RatioSummary {
    /// Number of ratios summarised.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

impl RatioSummary {
    /// Summarises a set of ratios.  Returns `None` for an empty input.
    pub fn from_ratios(ratios: &[f64]) -> Option<Self> {
        if ratios.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = ratios.to_vec();
        sorted.sort_by(f64::total_cmp);
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            sorted[idx.min(count - 1)]
        };
        Some(Self {
            count,
            min: sorted[0],
            mean,
            median: pct(0.5),
            p95: pct(0.95),
            max: sorted[count - 1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pss_types::{Schedule, Segment};

    struct FixedSpeed(f64);

    impl Scheduler for FixedSpeed {
        fn name(&self) -> String {
            "fixed".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            let mut s = Schedule::empty(instance.machines);
            for j in &instance.jobs {
                let duration = j.work / self.0;
                s.push(Segment::work(
                    0,
                    j.release,
                    (j.release + duration).min(j.deadline),
                    self.0,
                    j.id,
                ));
            }
            Ok(s)
        }
    }

    #[test]
    fn evaluate_scheduler_reports_cost_and_completion() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 0.5, 2.0), (2.0, 3.0, 2.0, 4.0)])
            .unwrap();
        // At speed 1, job 0 (work 0.5) finishes, job 1 (work 2, window 1) does not.
        let result = evaluate_scheduler(&FixedSpeed(1.0), &inst).unwrap();
        assert_eq!(result.algorithm, "fixed");
        assert_eq!(result.finished_jobs, 1);
        assert_eq!(result.rejected_jobs, 1);
        assert!((result.cost.lost_value - 4.0).abs() < 1e-12);
        assert!(result.runtime_secs >= 0.0);
    }

    #[test]
    fn ratio_to_handles_degenerate_references() {
        let r = AlgorithmResult {
            algorithm: "x".into(),
            cost: Cost::new(2.0, 0.0),
            finished_jobs: 1,
            rejected_jobs: 0,
            runtime_secs: 0.0,
        };
        assert!((r.ratio_to(1.0) - 2.0).abs() < 1e-12);
        assert_eq!(r.ratio_to(0.0), f64::INFINITY);
    }

    #[test]
    fn ratio_summary_percentiles() {
        let ratios: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = RatioSummary::from_ratios(&ratios).unwrap();
        assert_eq!(s.count, 100);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 100.0);
        assert!((s.mean - 50.5).abs() < 1e-12);
        assert!((s.median - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
        assert!(RatioSummary::from_ratios(&[]).is_none());
    }
}
