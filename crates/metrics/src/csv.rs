//! Minimal CSV export for experiment tables (no external dependency).
//!
//! The experiment harness emits Markdown for humans and JSON for machines;
//! CSV is the lingua franca for spreadsheet/plotting workflows, so tables
//! can also be exported in RFC-4180-compatible form.

use crate::table::Table;

/// Escapes one CSV field: wraps in quotes when it contains a comma, quote or
/// newline, doubling embedded quotes.
pub fn escape_field(field: &str) -> String {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Renders a [`Table`] as CSV (header row followed by data rows).  The table
/// title is not part of the CSV output (it usually becomes the file name).
pub fn table_to_csv(table: &Table) -> String {
    let mut out = String::new();
    out.push_str(
        &table
            .headers
            .iter()
            .map(|h| escape_field(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in &table.rows {
        out.push_str(
            &row.iter()
                .map(|c| escape_field(c))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_field("plain"), "plain");
        assert_eq!(escape_field("a,b"), "\"a,b\"");
        assert_eq!(escape_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(escape_field("two\nlines"), "\"two\nlines\"");
    }

    #[test]
    fn table_round_trips_headers_and_rows() {
        let mut t = Table::new("title", &["algo", "cost"]);
        t.push_row(vec!["PD".into(), "1.5".into()]);
        t.push_row(vec!["CLL, tuned".into(), "2.0".into()]);
        let csv = table_to_csv(&t);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "algo,cost");
        assert_eq!(lines[1], "PD,1.5");
        assert_eq!(lines[2], "\"CLL, tuned\",2.0");
    }

    #[test]
    fn empty_table_is_just_the_header() {
        let t = Table::new("t", &["a"]);
        assert_eq!(table_to_csv(&t), "a\n");
    }
}
