//! A minimal, strict, hand-rolled JSON value tree — the shared text codec
//! behind every machine-readable artefact in the workspace.
//!
//! The offline build has no serde; each JSON producer so far hand-rolled
//! its writer and the checkpoint envelope hand-rolled a fixed-shape parser.
//! This module factors that machinery into one reusable pair:
//!
//! * [`JsonValue`] — an owned JSON tree (`null`, booleans, finite numbers,
//!   strings, arrays, objects with preserved key order) with a
//!   [`render`](JsonValue::render) writer, and
//! * [`JsonValue::parse`] — a strict, *total* parser: it accepts exactly
//!   one JSON value spanning the whole input (arbitrary whitespace between
//!   tokens) and returns a [`JsonError`] on anything else — truncation,
//!   trailing characters, malformed escapes, out-of-range numbers — never
//!   a panic.
//!
//! Consumers: the checkpoint envelope (`pss_metrics::codec`) parses its
//! fixed object shape through this tree, and the service-report codec
//! ([`crate::service`]) round-trips `ServiceSummary` through it.
//!
//! Deliberate limits (it is a data codec, not a general JSON library):
//! numbers are `f64` (integers round-trip exactly up to 2⁵³) and must be
//! finite — rendering a non-finite number yields `null`, so producers are
//! expected to keep their fields finite; nesting depth is bounded by
//! [`MAX_DEPTH`].

use std::fmt;

/// Maximum nesting depth [`JsonValue::parse`] accepts, bounding recursion
/// on adversarial input (e.g. ten thousand `[`s).
pub const MAX_DEPTH: usize = 128;

/// An error from [`JsonValue::parse`] or from typed extraction of a parsed
/// tree (missing field, wrong type, out-of-range number).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError(String);

impl JsonError {
    /// Creates an error with the given description.
    pub fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for JsonError {}

/// An owned JSON value.
///
/// Objects preserve insertion order and are stored as a flat pair list —
/// every consumer in the workspace reads small, fixed-shape objects, so a
/// map would buy nothing.  Duplicate keys are not rejected by the parser
/// (the writer never produces them); [`JsonValue::get`] returns the first
/// match.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object: `(key, value)` pairs in insertion order.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Self {
        JsonValue::Str(s.into())
    }

    /// An array of numbers.
    pub fn nums<I: IntoIterator<Item = f64>>(items: I) -> Self {
        JsonValue::Arr(items.into_iter().map(JsonValue::Num).collect())
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an exactly-representable unsigned integer, if it is
    /// one (rejects fractions, negatives, and magnitudes above 2⁵³ where
    /// `f64` can no longer represent every integer).
    pub fn as_u64(&self) -> Option<u64> {
        let x = self.as_f64()?;
        // pss-lint: allow(float-eq) — exact integrality test, not a tolerance
        if x.fract() != 0.0 || !(0.0..=9_007_199_254_740_992.0).contains(&x) {
            return None;
        }
        Some(x as u64)
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's pair list, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// First value under `key`, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.as_object()?
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Renders the value as compact JSON (no whitespace).
    ///
    /// Numbers use Rust's shortest round-trip formatting, with integral
    /// values printed without a fractional part (`3`, not `3.0`), so
    /// `parse(render(v)) == v` bit-for-bit for every finite number.
    /// Non-finite numbers render as `null` (JSON has no representation
    /// for them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(true) => out.push_str("true"),
            JsonValue::Bool(false) => out.push_str("false"),
            JsonValue::Num(x) => out.push_str(&render_f64(*x)),
            JsonValue::Str(s) => out.push_str(&crate::table::json_string(s)),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&crate::table::json_string(k));
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses exactly one JSON value spanning the whole input.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser::new(text);
        p.skip_ws();
        let value = p.parse_value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(JsonError::new("trailing characters"));
        }
        Ok(value)
    }
}

/// Shortest round-trip rendering of a finite `f64`; integral values print
/// without a fractional part, non-finite values as `null`.
fn render_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    if x == x.trunc() && x.abs() < 1e17 {
        // Integral: print without the ".0" Rust's Display would omit
        // anyway, but clamp the path through i64/format manually to keep
        // "−0.0" stable.
        // pss-lint: allow(float-eq) — exact zero (±0.0) gets the short form
        if x == 0.0 {
            return "0".into();
        }
        return format!("{x:.0}");
    }
    format!("{x}")
}

/// The strict recursive-descent parser behind [`JsonValue::parse`].
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(JsonError::new(format!(
                "expected {lit:?} at offset {}",
                self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::new("nesting too deep"));
        }
        match self.peek() {
            None => Err(JsonError::new("unexpected end of input")),
            Some(b'{') => self.parse_object(depth),
            Some(b'[') => self.parse_array(depth),
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'{')?;
        let mut pairs = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(JsonValue::Obj(pairs));
            }
            if !pairs.is_empty() {
                self.expect_byte(b',')?;
                self.skip_ws();
            }
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            pairs.push((key, value));
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            if !items.is_empty() {
                self.expect_byte(b',')?;
                self.skip_ws();
            }
            items.push(self.parse_value(depth + 1)?);
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(JsonError::new(format!(
                "expected a value at offset {start}"
            )));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| JsonError::new("invalid UTF-8 in number"))?;
        let x: f64 = text
            .parse()
            .map_err(|_| JsonError::new(format!("malformed number {text:?}")))?;
        if !x.is_finite() {
            return Err(JsonError::new(format!("number {text:?} overflows f64")));
        }
        Ok(JsonValue::Num(x))
    }

    /// Parses a JSON string literal with the same escape set the writer
    /// ([`crate::table::json_string`]) emits (`\" \\ \/ \n \r \t \uXXXX`).
    fn parse_string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(JsonError::new("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(JsonError::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(JsonError::new("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::new("bad \\u escape"))?;
                            let c = char::from_u32(code)
                                .ok_or_else(|| JsonError::new("bad \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(JsonError::new(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => {
                    // Continue a multi-byte UTF-8 sequence as raw bytes; the
                    // input is a &str, so the sequence is valid.
                    let start = self.pos - 1;
                    while self
                        .peek()
                        .is_some_and(|nb| nb >= 0x80 && (nb & 0xC0) == 0x80)
                    {
                        self.pos += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| JsonError::new("invalid UTF-8"))?;
                    out.push_str(s);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, value) in [
            ("null", JsonValue::Null),
            ("true", JsonValue::Bool(true)),
            ("false", JsonValue::Bool(false)),
            ("0", JsonValue::Num(0.0)),
            ("-3", JsonValue::Num(-3.0)),
            ("2.5", JsonValue::Num(2.5)),
            ("1e-3", JsonValue::Num(0.001)),
            ("\"hi\"", JsonValue::str("hi")),
        ] {
            assert_eq!(JsonValue::parse(text).unwrap(), value, "{text}");
            let rendered = value.render();
            assert_eq!(JsonValue::parse(&rendered).unwrap(), value, "{rendered}");
        }
    }

    #[test]
    fn numbers_round_trip_bit_exactly() {
        for x in [
            0.0,
            1.0,
            -1.0,
            0.1,
            1.0 / 3.0,
            1e300,
            -2.2250738585072014e-308,
            9_007_199_254_740_992.0,
            123456789.25,
        ] {
            let rendered = JsonValue::Num(x).render();
            let back = JsonValue::parse(&rendered).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} rendered as {rendered}");
        }
        // Integral values print without a fraction, and non-finite values
        // render as null.
        assert_eq!(JsonValue::Num(3.0).render(), "3");
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }

    #[test]
    fn containers_round_trip_and_preserve_order() {
        let value = JsonValue::Obj(vec![
            ("b".into(), JsonValue::nums([1.0, 2.0, 3.0])),
            ("a".into(), JsonValue::str("x\n\"y\"")),
            (
                "nested".into(),
                JsonValue::Obj(vec![("k".into(), JsonValue::Arr(vec![JsonValue::Null]))]),
            ),
        ]);
        let text = value.render();
        assert!(text.starts_with("{\"b\":[1,2,3]"), "{text}");
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
        assert_eq!(value.get("a").unwrap().as_str().unwrap(), "x\n\"y\"");
        assert_eq!(value.get("b").unwrap().as_array().unwrap().len(), 3);
        assert!(value.get("missing").is_none());
    }

    #[test]
    fn typed_extraction_checks_integrality() {
        assert_eq!(JsonValue::Num(42.0).as_u64(), Some(42));
        assert_eq!(JsonValue::Num(42.5).as_u64(), None);
        assert_eq!(JsonValue::Num(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Num(1e18).as_u64(), None);
        assert_eq!(JsonValue::str("42").as_u64(), None);
        assert_eq!(JsonValue::Bool(true).as_bool(), Some(true));
        assert_eq!(JsonValue::Null.as_f64(), None);
    }

    #[test]
    fn malformed_input_is_an_error_never_a_panic() {
        for bad in [
            "",
            "   ",
            "{",
            "}",
            "[1,]",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "tru",
            "nul",
            "\"unterminated",
            "\"bad \\q escape\"",
            "\"trunc \\u00",
            "1.2.3",
            "--5",
            "1e",
            "1e400",
            "[1] trailing",
            "{} {}",
            "\u{1}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "must reject {bad:?}");
        }
        // Every truncation of a valid document fails cleanly.
        let good = JsonValue::Obj(vec![
            ("k".into(), JsonValue::nums([1.5, -2.0])),
            ("s".into(), JsonValue::str("é\u{1F600}")),
        ])
        .render();
        for len in 1..good.len() {
            if good.is_char_boundary(len) {
                assert!(
                    JsonValue::parse(&good[..len]).is_err(),
                    "truncation to {len}"
                );
            }
        }
    }

    #[test]
    fn nesting_depth_is_bounded() {
        let deep = "[".repeat(MAX_DEPTH + 8) + &"]".repeat(MAX_DEPTH + 8);
        assert!(JsonValue::parse(&deep).is_err());
        let ok = "[".repeat(16).to_string() + &"]".repeat(16);
        assert!(JsonValue::parse(&ok).is_ok());
    }

    #[test]
    fn unicode_and_escapes_round_trip() {
        let s = "mixed é 🚀 \t tab \\ slash \"quote\" \u{7f}";
        let value = JsonValue::str(s);
        let back = JsonValue::parse(&value.render()).unwrap();
        assert_eq!(back.as_str().unwrap(), s);
        // \u escapes parse to their code points.
        assert_eq!(
            JsonValue::parse("\"\\u0041\\u00e9\"").unwrap(),
            JsonValue::str("Aé")
        );
    }
}
