//! Tolerance-aware floating point helpers.
//!
//! All numeric code in the workspace performs comparisons of times, speeds,
//! workloads and energies that are the result of iterative numeric
//! procedures (bisection, coordinate descent).  Comparing such quantities
//! with `==` or `<` directly leads to brittle behaviour, so every crate
//! routes its comparisons through the helpers defined here.
//!
//! Two kinds of tolerance are used:
//!
//! * [`EPS`] — the workspace-wide default absolute/relative tolerance used
//!   by the convenience functions ([`approx_eq`], [`approx_le`], …).
//! * [`Tolerance`] — an explicit, configurable tolerance carried by the
//!   numeric solvers (bisection loops, water filling, coordinate descent) so
//!   that callers can trade accuracy for speed.

/// Workspace-wide default tolerance used by the convenience comparison
/// functions in this module.
pub const EPS: f64 = 1e-9;

/// Returns `true` if `a` and `b` are equal up to a combined
/// absolute/relative tolerance of `tol`.
///
/// The comparison is symmetric: `|a - b| <= tol * max(1, |a|, |b|)`.
#[inline]
pub fn approx_eq_tol(a: f64, b: f64, tol: f64) -> bool {
    let scale = 1.0_f64.max(a.abs()).max(b.abs());
    (a - b).abs() <= tol * scale
}

/// Returns `true` if `a` and `b` are equal up to the default tolerance
/// [`EPS`].
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    approx_eq_tol(a, b, EPS)
}

/// Returns `true` if `a <= b` up to the default tolerance [`EPS`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b || approx_eq(a, b)
}

/// Returns `true` if `a >= b` up to the default tolerance [`EPS`].
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a >= b || approx_eq(a, b)
}

/// Returns `true` if `a` is strictly smaller than `b` beyond the default
/// tolerance (i.e. `a < b` and they are not approximately equal).
#[inline]
pub fn definitely_lt(a: f64, b: f64) -> bool {
    a < b && !approx_eq(a, b)
}

/// Returns `true` if `a` is strictly greater than `b` beyond the default
/// tolerance.
#[inline]
pub fn definitely_gt(a: f64, b: f64) -> bool {
    a > b && !approx_eq(a, b)
}

/// Returns `true` if `x` is approximately zero (absolute tolerance [`EPS`]).
#[inline]
pub fn approx_zero(x: f64) -> bool {
    x.abs() <= EPS
}

/// Clamps `x` into `[lo, hi]`, tolerating `lo > hi` by at most [`EPS`]
/// (in which case the midpoint is returned).
#[inline]
pub fn clamp(x: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        debug_assert!(lo - hi <= 1e-6, "clamp: inverted interval [{lo}, {hi}]");
        return 0.5 * (lo + hi);
    }
    x.max(lo).min(hi)
}

/// Explicit tolerance settings carried by the iterative numeric solvers of
/// the workspace (bisection, water filling, coordinate descent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative tolerance on the quantity being solved for.
    pub rel: f64,
    /// Absolute tolerance on the quantity being solved for.
    pub abs: f64,
    /// Hard cap on the number of iterations of any single solver loop.
    pub max_iters: usize,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self {
            rel: 1e-10,
            abs: 1e-12,
            max_iters: 200,
        }
    }
}

impl Tolerance {
    /// A looser tolerance suitable for large benchmark sweeps where speed
    /// matters more than the last few digits.
    pub fn coarse() -> Self {
        Self {
            rel: 1e-6,
            abs: 1e-8,
            max_iters: 80,
        }
    }

    /// A tighter tolerance for verification tests.
    pub fn fine() -> Self {
        Self {
            rel: 1e-12,
            abs: 1e-14,
            max_iters: 400,
        }
    }

    /// Returns `true` if the interval `[lo, hi]` has been narrowed enough to
    /// stop a bisection that solves for a value of magnitude roughly
    /// `max(|lo|, |hi|)`.
    #[inline]
    pub fn converged(&self, lo: f64, hi: f64) -> bool {
        let width = hi - lo;
        let scale = lo.abs().max(hi.abs()).max(1.0);
        width <= self.abs || width <= self.rel * scale
    }
}

/// Sums a slice with Neumaier (improved Kahan) compensation.
///
/// Energy totals aggregate many small per-segment contributions of widely
/// varying magnitude; compensated summation keeps the experiment tables
/// reproducible across summation orders.
pub fn stable_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0_f64;
    let mut comp = 0.0_f64;
    for v in values {
        let t = sum + v;
        if sum.abs() >= v.abs() {
            comp += (sum - t) + v;
        } else {
            comp += (v - t) + sum;
        }
        sum = t;
    }
    sum + comp
}

/// Generic bisection solver for a nondecreasing function.
///
/// Finds `x` in `[lo, hi]` with `f(x) ≈ target`, assuming `f` is
/// nondecreasing on the interval.  If `f(lo) >= target` the lower end is
/// returned, if `f(hi) <= target` the upper end is returned; this makes the
/// function total and well suited to water-filling style searches where the
/// target may be unattainable inside the bracket.
pub fn bisect_nondecreasing<F>(
    mut lo: f64,
    mut hi: f64,
    target: f64,
    tol: Tolerance,
    mut f: F,
) -> f64
where
    F: FnMut(f64) -> f64,
{
    debug_assert!(lo <= hi, "bisect: inverted bracket [{lo}, {hi}]");
    if f(lo) >= target {
        return lo;
    }
    if f(hi) <= target {
        return hi;
    }
    for _ in 0..tol.max_iters {
        if tol.converged(lo, hi) {
            break;
        }
        let mid = 0.5 * (lo + hi);
        if f(mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_basic() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-3));
        assert!(approx_eq(1e12, 1e12 + 1.0));
    }

    #[test]
    fn approx_ordering() {
        assert!(approx_le(1.0, 1.0 + 1e-12));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(approx_ge(2.0, 1.0));
        assert!(definitely_lt(1.0, 2.0));
        assert!(!definitely_lt(1.0, 1.0 + 1e-13));
        assert!(definitely_gt(2.0, 1.0));
    }

    #[test]
    fn approx_zero_works() {
        assert!(approx_zero(0.0));
        assert!(approx_zero(1e-12));
        assert!(!approx_zero(1e-3));
    }

    #[test]
    fn clamp_works() {
        assert_eq!(clamp(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn stable_sum_matches_naive_for_small_inputs() {
        let xs = [1.0, 2.0, 3.0, 4.5];
        assert!(approx_eq(stable_sum(xs), 10.5));
    }

    #[test]
    fn stable_sum_handles_cancellation() {
        // 1 + 1e16 - 1e16 naively loses the 1 in f64 when summed in a bad
        // order; Neumaier keeps it.
        let xs = [1.0, 1e16, -1e16];
        assert_eq!(stable_sum(xs), 1.0);
    }

    #[test]
    fn bisect_finds_root_of_monotone_function() {
        let tol = Tolerance::default();
        // f(x) = x^3 is nondecreasing, solve x^3 = 8.
        let x = bisect_nondecreasing(0.0, 10.0, 8.0, tol, |x| x * x * x);
        assert!((x - 2.0).abs() < 1e-8, "got {x}");
    }

    #[test]
    fn bisect_clamps_to_bracket_ends() {
        let tol = Tolerance::default();
        let lo = bisect_nondecreasing(2.0, 5.0, 1.0, tol, |x| x);
        assert_eq!(lo, 2.0);
        let hi = bisect_nondecreasing(2.0, 5.0, 9.0, tol, |x| x);
        assert_eq!(hi, 5.0);
    }

    #[test]
    fn tolerance_convergence() {
        let tol = Tolerance::default();
        assert!(tol.converged(1.0, 1.0 + 1e-13));
        assert!(!tol.converged(1.0, 2.0));
    }
}
