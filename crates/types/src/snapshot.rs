//! Checkpoint/restore for long-running online runs: serialisable scheduler
//! state.
//!
//! The paper's online algorithms are *stateful* competitive schedulers whose
//! committed frontier is never revised; suspending and resuming a run must
//! therefore not perturb a single decision.  This module provides the
//! workspace-wide contract for that:
//!
//! * [`StateBlob`] — a versioned, self-describing snapshot of one run's
//!   dynamic state, with a binary wire format
//!   ([`StateBlob::to_bytes`]/[`StateBlob::from_bytes`]: magic, format
//!   version, kind, state version, length-prefixed payload, FNV-1a
//!   checksum).  Decoding is total: truncated or corrupted bytes produce a
//!   [`SnapshotError`], never a panic.  (The companion *JSON* envelope of
//!   the same blob lives in `pss-metrics`' `codec` module, next to the
//!   other hand-rolled JSON output.)
//! * [`BlobWriter`]/[`BlobReader`] — the hand-rolled little-endian
//!   primitives payloads are built from.  The build environment has no
//!   serde, so every field is written explicitly; readers bounds-check
//!   every access.
//! * [`SnapshotPart`] — a component that knows how to encode itself into a
//!   payload and decode itself back.  Implemented here for the primitive
//!   types and the model types ([`Job`], [`Segment`], [`Schedule`], …);
//!   the algorithm crates implement it for their internal structures
//!   (partitions, plan caches, speed indexes).
//! * [`Checkpointable`] — the top-level trait of a run state:
//!   [`snapshot`](Checkpointable::snapshot) captures the complete dynamic
//!   state into a [`StateBlob`], [`restore`](Checkpointable::restore)
//!   reconstructs a run that continues **bit-identically** (solver-accuracy
//!   for the iterative multiprocessor planner).  All seven online scheduler
//!   states in the workspace implement it, as does the workload generator's
//!   `SmallRng` (so a stream's *source* can resume from the same position).
//!
//! The restore-equivalence integration tests (`tests/incremental_equivalence.rs`)
//! pin the contract for every algorithm: a run snapshotted and restored at
//! arbitrary cut points — including mid-burst — produces the same decisions,
//! duals and schedule as the uninterrupted run.  On top of the trait,
//! `pss-sim` builds checkpoint-at-interval streaming and shard *failover*
//! (kill a worker, restore from the last checkpoint, replay the delta).

use crate::job::{Job, JobId};
use crate::num::Tolerance;
use crate::segment::{Schedule, Segment};

/// Magic bytes opening every serialised [`StateBlob`].
const BLOB_MAGIC: [u8; 4] = *b"PSSC";

/// Version of the binary container format itself (bumped only if the
/// framing — not a particular state's payload — changes shape).
const BLOB_FORMAT_VERSION: u16 = 1;

/// Hard cap on the decoded kind-string length; real kinds are a few bytes,
/// so anything larger is corruption.
const MAX_KIND_LEN: usize = 256;

/// An error produced while decoding a snapshot.
///
/// Decoding is *total*: malformed input of any shape — truncated buffers,
/// bad magic, checksum mismatches, out-of-range lengths, unknown versions —
/// is reported through this type and never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before the expected data (truncation).
    Truncated,
    /// The container framing is malformed (bad magic, bad checksum,
    /// impossible lengths).
    Corrupted(String),
    /// The blob is well-formed but describes a different state kind than
    /// the one being restored.
    WrongKind {
        /// The kind the caller expected.
        expected: String,
        /// The kind recorded in the blob.
        found: String,
    },
    /// The blob's state version is not understood by this build.
    UnsupportedVersion(u16),
    /// The payload decoded structurally but violates an invariant of the
    /// state being restored (e.g. mismatched table lengths).
    Invalid(String),
    /// The blob stores its committed frontier as a segment-log cursor
    /// (`FrontierPart::Cursor`), so restoring it requires the matching
    /// [`SegmentLog`](crate::seglog::SegmentLog); the caller supplied none.
    NeedsLog,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::Corrupted(why) => write!(f, "snapshot corrupted: {why}"),
            SnapshotError::WrongKind { expected, found } => {
                write!(
                    f,
                    "snapshot kind mismatch: expected {expected}, found {found}"
                )
            }
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot state version {v}")
            }
            SnapshotError::Invalid(why) => write!(f, "invalid snapshot state: {why}"),
            SnapshotError::NeedsLog => {
                write!(
                    f,
                    "snapshot stores a log cursor but no segment log was supplied"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<SnapshotError> for crate::error::ScheduleError {
    fn from(e: SnapshotError) -> Self {
        crate::error::ScheduleError::Internal(format!("checkpoint: {e}"))
    }
}

/// FNV-1a 64-bit hash, the integrity checksum of the wire format (this is a
/// corruption check, not a cryptographic signature).  Shared with the
/// segment log's per-record checksums.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A versioned snapshot of one run's complete dynamic state.
///
/// A blob is self-describing: it records which *kind* of state it holds
/// (e.g. `"replan"`, `"pd"`, `"bkp"`) and that state's payload version, so
/// [`Checkpointable::restore`] can reject blobs from the wrong algorithm or
/// an incompatible build instead of misinterpreting them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateBlob {
    kind: String,
    version: u16,
    payload: Vec<u8>,
}

impl StateBlob {
    /// Wraps a payload with its kind tag and state version.
    pub fn new(kind: impl Into<String>, version: u16, payload: Vec<u8>) -> Self {
        Self {
            kind: kind.into(),
            version,
            payload,
        }
    }

    /// The state kind recorded in the blob.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The payload's state version.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The raw payload bytes.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Size of the serialised blob in bytes (header + payload + checksum) —
    /// the number the checkpoint-size experiment (E14) reports.
    pub fn size_bytes(&self) -> usize {
        // magic + format version + kind len + kind + state version +
        // payload len + payload + checksum.
        4 + 2 + 4 + self.kind.len() + 2 + 8 + self.payload.len() + 8
    }

    /// Serialises the blob into the binary wire format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size_bytes());
        out.extend_from_slice(&BLOB_MAGIC);
        out.extend_from_slice(&BLOB_FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(self.kind.len() as u32).to_le_bytes());
        out.extend_from_slice(self.kind.as_bytes());
        out.extend_from_slice(&self.version.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.payload);
        let checksum = fnv1a(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Parses the binary wire format back into a blob.
    ///
    /// Any malformation — truncation, bad magic, unknown format version, a
    /// checksum mismatch (every bit flip is caught), trailing garbage —
    /// returns an error; this function never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let mut r = BlobReader::new(bytes);
        let magic = r.read_exact(4)?;
        if magic != BLOB_MAGIC {
            return Err(SnapshotError::Corrupted("bad magic".into()));
        }
        let format = r.read_u16()?;
        if format != BLOB_FORMAT_VERSION {
            return Err(SnapshotError::Corrupted(format!(
                "unknown container format version {format}"
            )));
        }
        let kind_len = r.read_u32()? as usize;
        if kind_len > MAX_KIND_LEN {
            return Err(SnapshotError::Corrupted(format!(
                "kind length {kind_len} out of range"
            )));
        }
        let kind_bytes = r.read_exact(kind_len)?;
        let kind = std::str::from_utf8(kind_bytes)
            .map_err(|_| SnapshotError::Corrupted("kind is not UTF-8".into()))?
            .to_string();
        let version = r.read_u16()?;
        let payload_len = r.read_u64()? as usize;
        if payload_len > r.remaining() {
            return Err(SnapshotError::Truncated);
        }
        let payload = r.read_exact(payload_len)?.to_vec();
        let checked = r.position();
        let checksum = r.read_u64()?;
        if r.remaining() != 0 {
            return Err(SnapshotError::Corrupted("trailing bytes".into()));
        }
        let checked_bytes = bytes.get(..checked).ok_or(SnapshotError::Truncated)?;
        if fnv1a(checked_bytes) != checksum {
            return Err(SnapshotError::Corrupted("checksum mismatch".into()));
        }
        Ok(Self {
            kind,
            version,
            payload,
        })
    }

    /// Checks the blob's kind and state version against what a restorer
    /// expects, returning a [`BlobReader`] over the payload.  The helper
    /// every [`Checkpointable::restore`] implementation starts with.
    pub fn expect(&self, kind: &str, version: u16) -> Result<BlobReader<'_>, SnapshotError> {
        if self.kind != kind {
            return Err(SnapshotError::WrongKind {
                expected: kind.into(),
                found: self.kind.clone(),
            });
        }
        if self.version != version {
            return Err(SnapshotError::UnsupportedVersion(self.version));
        }
        Ok(BlobReader::new(&self.payload))
    }
}

/// Little-endian payload writer: the encoding half of the hand-rolled
/// codec.  All integers are fixed-width little-endian; floats are their
/// IEEE-754 bit patterns (so restores are *bit*-exact, including signed
/// zeros, infinities and NaN payloads); collections are length-prefixed.
#[derive(Debug, Default)]
pub struct BlobWriter {
    buf: Vec<u8>,
}

impl BlobWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the writer, returning the payload bytes.
    pub fn into_payload(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `bool` as one byte (0/1).
    pub fn write_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Writes a `u16`.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u32`.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (platform-independent).
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Writes an `f64` as its IEEE-754 bit pattern.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Writes a length-prefixed byte slice.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        self.write_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn write_str(&mut self, s: &str) {
        self.write_bytes(s.as_bytes());
    }

    /// Writes any [`SnapshotPart`].
    pub fn write_part<T: SnapshotPart>(&mut self, part: &T) {
        part.encode(self);
    }

    /// Writes a length-prefixed sequence of parts.
    pub fn write_seq<T: SnapshotPart>(&mut self, items: &[T]) {
        self.write_u64(items.len() as u64);
        for item in items {
            item.encode(self);
        }
    }
}

/// Bounds-checked payload reader: the decoding half of the codec.  Every
/// read validates the remaining length first, so truncated or corrupted
/// payloads surface as [`SnapshotError`]s, never as panics.
#[derive(Debug)]
pub struct BlobReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> BlobReader<'a> {
    /// A reader over the given payload.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Returns an error unless the payload was consumed exactly.
    pub fn finish(&self) -> Result<(), SnapshotError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(SnapshotError::Corrupted(format!(
                "{} unread payload bytes",
                self.remaining()
            )))
        }
    }

    fn read_exact(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        // `remaining() < n` already implies the range is in bounds; the
        // `.get` keeps the read total even if that reasoning rots.
        if self.remaining() < n {
            return Err(SnapshotError::Truncated);
        }
        let out = self
            .buf
            .get(self.pos..self.pos + n)
            .ok_or(SnapshotError::Truncated)?;
        self.pos += n;
        Ok(out)
    }

    /// Reads one byte.
    pub fn read_u8(&mut self) -> Result<u8, SnapshotError> {
        match self.read_exact(1)? {
            &[b] => Ok(b),
            _ => Err(SnapshotError::Truncated),
        }
    }

    /// Reads a `bool` (rejecting bytes other than 0/1).
    pub fn read_bool(&mut self) -> Result<bool, SnapshotError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(SnapshotError::Corrupted(format!(
                "invalid bool byte {other}"
            ))),
        }
    }

    /// Reads a `u16`.
    pub fn read_u16(&mut self) -> Result<u16, SnapshotError> {
        let b: [u8; 2] = self
            .read_exact(2)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u16::from_le_bytes(b))
    }

    /// Reads a `u32`.
    pub fn read_u32(&mut self) -> Result<u32, SnapshotError> {
        let b: [u8; 4] = self
            .read_exact(4)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a `u64`.
    pub fn read_u64(&mut self) -> Result<u64, SnapshotError> {
        let b: [u8; 8] = self
            .read_exact(8)?
            .try_into()
            .map_err(|_| SnapshotError::Truncated)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that cannot fit.
    pub fn read_usize(&mut self) -> Result<usize, SnapshotError> {
        let v = self.read_u64()?;
        usize::try_from(v).map_err(|_| SnapshotError::Corrupted(format!("usize overflow: {v}")))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn read_f64(&mut self) -> Result<f64, SnapshotError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Reads a sequence length, validating it against the bytes actually
    /// remaining (`min_elem_bytes` per element) so a corrupted length can
    /// neither over-allocate nor run past the end.
    pub fn read_len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let len = self.read_usize()?;
        if len
            .checked_mul(min_elem_bytes.max(1))
            .is_none_or(|total| total > self.remaining())
        {
            return Err(SnapshotError::Truncated);
        }
        Ok(len)
    }

    /// Reads a length-prefixed byte slice.
    pub fn read_bytes(&mut self) -> Result<&'a [u8], SnapshotError> {
        let len = self.read_len(1)?;
        self.read_exact(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn read_str(&mut self) -> Result<String, SnapshotError> {
        let bytes = self.read_bytes()?;
        std::str::from_utf8(bytes)
            .map(|s| s.to_string())
            .map_err(|_| SnapshotError::Corrupted("string is not UTF-8".into()))
    }

    /// Reads any [`SnapshotPart`].
    pub fn read_part<T: SnapshotPart>(&mut self) -> Result<T, SnapshotError> {
        T::decode(self)
    }

    /// Reads a length-prefixed sequence of parts.
    pub fn read_seq<T: SnapshotPart>(&mut self) -> Result<Vec<T>, SnapshotError> {
        let len = self.read_len(1)?;
        let mut out = Vec::with_capacity(len.min(self.remaining()));
        for _ in 0..len {
            out.push(T::decode(self)?);
        }
        Ok(out)
    }
}

/// A component of a run's state that can encode itself into a payload and
/// decode itself back — the building block [`Checkpointable`] payloads are
/// assembled from.  Decoding must be total (errors, never panics) and
/// round-trip exact: `decode(encode(x)) == x` bit for bit.
pub trait SnapshotPart: Sized {
    /// Appends this value's encoding to the writer.
    fn encode(&self, w: &mut BlobWriter);

    /// Decodes one value from the reader.
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError>;
}

impl SnapshotPart for u64 {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_u64(*self);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        r.read_u64()
    }
}

impl SnapshotPart for usize {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(*self);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        r.read_usize()
    }
}

impl SnapshotPart for f64 {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_f64(*self);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        r.read_f64()
    }
}

impl SnapshotPart for bool {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_bool(*self);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        r.read_bool()
    }
}

impl<T: SnapshotPart> SnapshotPart for Option<T> {
    fn encode(&self, w: &mut BlobWriter) {
        match self {
            None => w.write_bool(false),
            Some(v) => {
                w.write_bool(true);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        if r.read_bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: SnapshotPart> SnapshotPart for Vec<T> {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_seq(self);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        r.read_seq()
    }
}

impl<A: SnapshotPart, B: SnapshotPart> SnapshotPart for (A, B) {
    fn encode(&self, w: &mut BlobWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: SnapshotPart, B: SnapshotPart, C: SnapshotPart> SnapshotPart for (A, B, C) {
    fn encode(&self, w: &mut BlobWriter) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl SnapshotPart for JobId {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.index());
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(JobId(r.read_usize()?))
    }
}

impl SnapshotPart for Job {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.id.index());
        w.write_f64(self.release);
        w.write_f64(self.deadline);
        w.write_f64(self.work);
        w.write_f64(self.value);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        let id = r.read_usize()?;
        let release = r.read_f64()?;
        let deadline = r.read_f64()?;
        let work = r.read_f64()?;
        let value = r.read_f64()?;
        Ok(Job::new(id, release, deadline, work, value))
    }
}

impl SnapshotPart for Segment {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.machine);
        w.write_f64(self.start);
        w.write_f64(self.end);
        w.write_f64(self.speed);
        w.write_part(&self.job);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Segment {
            machine: r.read_usize()?,
            start: r.read_f64()?,
            end: r.read_f64()?,
            speed: r.read_f64()?,
            job: r.read_part()?,
        })
    }
}

impl SnapshotPart for Schedule {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_usize(self.machines);
        w.write_seq(&self.segments);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        // Restored verbatim (no re-push): `Schedule::push` drops degenerate
        // segments, and a restore must reproduce the segment list bit for
        // bit, not re-filter it.
        let machines = r.read_usize()?;
        let segments = r.read_seq()?;
        Ok(Schedule { machines, segments })
    }
}

impl SnapshotPart for Tolerance {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_f64(self.rel);
        w.write_f64(self.abs);
        w.write_usize(self.max_iters);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Tolerance {
            rel: r.read_f64()?,
            abs: r.read_f64()?,
            max_iters: r.read_usize()?,
        })
    }
}

/// A run state that can be suspended into a [`StateBlob`] and resumed
/// without perturbing a single future decision.
///
/// # Contract
///
/// For any prefix of a valid arrival stream, feeding the remaining events
/// to `Self::restore(&self.snapshot())` must produce bit-identical
/// decisions, duals, frontier and final schedule to feeding them to the
/// original run (solver-accuracy-bounded for iterative planners).  The
/// blob holds the run's complete *dynamic* state — including the committed
/// frontier inline, so blob size grows with the stream.  Production
/// checkpointing uses the O(active) variant instead
/// ([`LogCheckpointable`](crate::seglog::LogCheckpointable)), which stores
/// only a cursor into an external
/// [`SegmentLog`](crate::seglog::SegmentLog); see the checkpoint recipe in
/// `src/README.md` for cadence guidance.
///
/// `restore` must be total: a blob of the wrong kind, an incompatible
/// version, or corrupted/truncated payload bytes yield an error, never a
/// panic.
pub trait Checkpointable: Sized {
    /// Captures the run's complete dynamic state.
    fn snapshot(&self) -> StateBlob;

    /// Reconstructs a run from a snapshot.
    fn restore(blob: &StateBlob) -> Result<Self, SnapshotError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip_bit_exactly() {
        let mut w = BlobWriter::new();
        w.write_u8(7);
        w.write_bool(true);
        w.write_u16(0xBEEF);
        w.write_u32(0xDEAD_BEEF);
        w.write_u64(u64::MAX);
        w.write_usize(12345);
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            w.write_f64(v);
        }
        w.write_str("hello");
        let payload = w.into_payload();
        let mut r = BlobReader::new(&payload);
        assert_eq!(r.read_u8().unwrap(), 7);
        assert!(r.read_bool().unwrap());
        assert_eq!(r.read_u16().unwrap(), 0xBEEF);
        assert_eq!(r.read_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.read_u64().unwrap(), u64::MAX);
        assert_eq!(r.read_usize().unwrap(), 12345);
        for v in [0.0, -0.0, 1.5, f64::INFINITY, f64::NEG_INFINITY, f64::NAN] {
            assert_eq!(r.read_f64().unwrap().to_bits(), v.to_bits());
        }
        assert_eq!(r.read_str().unwrap(), "hello");
        r.finish().unwrap();
    }

    #[test]
    fn schedule_and_jobs_round_trip() {
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 1.5, 2.0, JobId(3)));
        s.push(Segment::work(1, 1.0, 2.0, 0.5, JobId(0)));
        let job = Job::new(4, 0.25, 3.5, 1.25, 9.0);
        let mut w = BlobWriter::new();
        w.write_part(&s);
        w.write_part(&job);
        w.write_part(&Tolerance::default());
        let payload = w.into_payload();
        let mut r = BlobReader::new(&payload);
        let s2: Schedule = r.read_part().unwrap();
        let j2: Job = r.read_part().unwrap();
        let t2: Tolerance = r.read_part().unwrap();
        r.finish().unwrap();
        assert_eq!(s.segments, s2.segments);
        assert_eq!(s.machines, s2.machines);
        assert_eq!(job, j2);
        assert_eq!(t2.max_iters, Tolerance::default().max_iters);
    }

    #[test]
    fn blob_wire_format_round_trips() {
        let blob = StateBlob::new("demo", 3, vec![1, 2, 3, 4, 5]);
        let bytes = blob.to_bytes();
        assert_eq!(bytes.len(), blob.size_bytes());
        let back = StateBlob::from_bytes(&bytes).unwrap();
        assert_eq!(back, blob);
        assert_eq!(back.kind(), "demo");
        assert_eq!(back.version(), 3);
        assert_eq!(back.payload(), &[1, 2, 3, 4, 5]);
    }

    #[test]
    fn every_truncation_is_an_error_not_a_panic() {
        let bytes = StateBlob::new("truncate-me", 1, (0..64u8).collect()).to_bytes();
        for len in 0..bytes.len() {
            assert!(
                StateBlob::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = StateBlob::new("flip-me", 2, (0..32u8).collect()).to_bytes();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[i] ^= 1 << bit;
                assert!(
                    StateBlob::from_bytes(&corrupted).is_err(),
                    "flip of byte {i} bit {bit} must fail"
                );
            }
        }
    }

    #[test]
    fn expect_checks_kind_and_version() {
        let blob = StateBlob::new("avr", 1, Vec::new());
        assert!(blob.expect("avr", 1).is_ok());
        assert!(matches!(
            blob.expect("bkp", 1),
            Err(SnapshotError::WrongKind { .. })
        ));
        assert!(matches!(
            blob.expect("avr", 2),
            Err(SnapshotError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn oversized_sequence_lengths_are_rejected_without_allocation() {
        // A payload claiming 2^60 elements must fail the length check, not
        // attempt the allocation.
        let mut w = BlobWriter::new();
        w.write_u64(1u64 << 60);
        let payload = w.into_payload();
        let mut r = BlobReader::new(&payload);
        assert!(r.read_seq::<f64>().is_err());
        let mut r = BlobReader::new(&payload);
        assert!(r.read_bytes().is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = StateBlob::new("t", 1, vec![9]).to_bytes();
        bytes.push(0);
        assert!(StateBlob::from_bytes(&bytes).is_err());
    }
}
