//! Problem instances.

use crate::error::InstanceError;
use crate::job::{Job, JobId};

/// A problem instance: a job set, the number of speed-scalable machines and
/// the energy exponent `α` of the power function `P_α(s) = s^α`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// The jobs, indexed by [`JobId`]: `jobs[j].id == JobId(j)`.
    pub jobs: Vec<Job>,
    /// Number of identical speed-scalable machines `m >= 1`.
    pub machines: usize,
    /// Energy exponent `α > 1`.
    pub alpha: f64,
}

impl Instance {
    /// Builds an instance from raw `(release, deadline, work, value)` tuples,
    /// assigning dense job ids in the given order, and validates it.
    pub fn from_tuples(
        machines: usize,
        alpha: f64,
        tuples: impl IntoIterator<Item = (f64, f64, f64, f64)>,
    ) -> Result<Self, InstanceError> {
        let jobs = tuples
            .into_iter()
            .enumerate()
            .map(|(i, (r, d, w, v))| Job::new(i, r, d, w, v))
            .collect();
        Self::from_jobs(machines, alpha, jobs)
    }

    /// Builds an instance from fully formed jobs and validates it.
    pub fn from_jobs(machines: usize, alpha: f64, jobs: Vec<Job>) -> Result<Self, InstanceError> {
        let inst = Self {
            jobs,
            machines,
            alpha,
        };
        inst.validate()?;
        Ok(inst)
    }

    /// Number of jobs `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Returns `true` if the instance has no jobs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Returns the job with the given id.
    ///
    /// # Panics
    /// Panics if the id is out of range (ids are dense, so this indicates a
    /// programming error).
    #[inline]
    pub fn job(&self, id: JobId) -> &Job {
        &self.jobs[id.index()]
    }

    /// Total value of all jobs, i.e. the cost of the trivial schedule that
    /// rejects everything.  This is always an upper bound on the optimal
    /// cost and is used as a sanity cap in tests and metrics.
    pub fn total_value(&self) -> f64 {
        crate::num::stable_sum(self.jobs.iter().map(|j| j.value))
    }

    /// Total workload of all jobs.
    pub fn total_work(&self) -> f64 {
        crate::num::stable_sum(self.jobs.iter().map(|j| j.work))
    }

    /// The time horizon `[min release, max deadline]` spanned by the
    /// instance.  Returns `(0.0, 0.0)` for an empty instance.
    pub fn horizon(&self) -> (f64, f64) {
        if self.jobs.is_empty() {
            return (0.0, 0.0);
        }
        let lo = self
            .jobs
            .iter()
            .map(|j| j.release)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .jobs
            .iter()
            .map(|j| j.deadline)
            .fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// Job ids sorted by release time (ties broken by id).  This is the
    /// order in which an online algorithm learns about the jobs.
    pub fn arrival_order(&self) -> Vec<JobId> {
        let mut ids: Vec<JobId> = self.jobs.iter().map(|j| j.id).collect();
        ids.sort_by(|a, b| {
            let ja = &self.jobs[a.index()];
            let jb = &self.jobs[b.index()];
            ja.release.total_cmp(&jb.release).then(a.cmp(b))
        });
        ids
    }

    /// Returns a copy of the instance restricted to the given job ids, with
    /// ids re-densified in the given order.  Useful for brute-force search
    /// over rejection sets.
    pub fn restrict(&self, keep: &[JobId]) -> Instance {
        let jobs = keep
            .iter()
            .enumerate()
            .map(|(new_id, old)| {
                let j = self.job(*old);
                Job::new(new_id, j.release, j.deadline, j.work, j.value)
            })
            .collect();
        Instance {
            jobs,
            machines: self.machines,
            alpha: self.alpha,
        }
    }

    /// Validates the instance: machine count, `α`, dense job ids and all
    /// per-job constraints.
    pub fn validate(&self) -> Result<(), InstanceError> {
        if self.machines == 0 {
            return Err(InstanceError::NoMachines);
        }
        if !self.alpha.is_finite() || self.alpha <= 1.0 {
            return Err(InstanceError::BadAlpha(self.alpha));
        }
        for (i, job) in self.jobs.iter().enumerate() {
            if job.id.index() != i {
                return Err(InstanceError::NonDenseIds {
                    position: i,
                    found: job.id,
                });
            }
            job.validate()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Instance {
        Instance::from_tuples(
            2,
            3.0,
            vec![
                (0.0, 4.0, 2.0, 5.0),
                (1.0, 3.0, 1.0, 2.0),
                (0.5, 2.0, 0.5, 1.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_assigns_dense_ids() {
        let inst = sample();
        assert_eq!(inst.len(), 3);
        for (i, j) in inst.jobs.iter().enumerate() {
            assert_eq!(j.id, JobId(i));
        }
    }

    #[test]
    fn totals_and_horizon() {
        let inst = sample();
        assert!((inst.total_value() - 8.0).abs() < 1e-12);
        assert!((inst.total_work() - 3.5).abs() < 1e-12);
        assert_eq!(inst.horizon(), (0.0, 4.0));
    }

    #[test]
    fn arrival_order_sorts_by_release() {
        let inst = sample();
        let order = inst.arrival_order();
        assert_eq!(order, vec![JobId(0), JobId(2), JobId(1)]);
    }

    #[test]
    fn restrict_re_densifies_ids() {
        let inst = sample();
        let sub = inst.restrict(&[JobId(2), JobId(0)]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.jobs[0].id, JobId(0));
        assert_eq!(sub.jobs[0].work, 0.5);
        assert_eq!(sub.jobs[1].id, JobId(1));
        assert_eq!(sub.jobs[1].work, 2.0);
    }

    #[test]
    fn validation_catches_bad_alpha_and_machines() {
        assert!(matches!(
            Instance::from_tuples(0, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]),
            Err(InstanceError::NoMachines)
        ));
        assert!(matches!(
            Instance::from_tuples(1, 1.0, vec![(0.0, 1.0, 1.0, 1.0)]),
            Err(InstanceError::BadAlpha(_))
        ));
    }

    #[test]
    fn validation_catches_non_dense_ids() {
        let jobs = vec![Job::new(1, 0.0, 1.0, 1.0, 1.0)];
        assert!(matches!(
            Instance::from_jobs(1, 2.0, jobs),
            Err(InstanceError::NonDenseIds { .. })
        ));
    }

    #[test]
    fn empty_instance_is_fine() {
        let inst = Instance::from_tuples(1, 2.0, vec![]).unwrap();
        assert!(inst.is_empty());
        assert_eq!(inst.horizon(), (0.0, 0.0));
        assert_eq!(inst.total_value(), 0.0);
    }

    #[test]
    fn restrict_to_everything_is_identity_up_to_ids() {
        let inst = sample();
        let all: Vec<JobId> = inst.jobs.iter().map(|j| j.id).collect();
        let back = inst.restrict(&all);
        assert_eq!(inst, back);
    }
}
