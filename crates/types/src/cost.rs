//! Cost accounting for schedules.

use std::fmt;
use std::ops::Add;

/// The cost of a schedule, split into its two components as in Equation (1)
/// of the paper: consumed energy and the total value of unfinished jobs.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cost {
    /// Total energy `Σ_i ∫ P_α(S_i(t)) dt`.
    pub energy: f64,
    /// Total value `Σ_{j ∈ J_rej} v_j` of jobs the schedule does not finish.
    pub lost_value: f64,
}

impl Cost {
    /// A zero cost.
    pub const ZERO: Cost = Cost {
        energy: 0.0,
        lost_value: 0.0,
    };

    /// Creates a cost from its two components.
    pub fn new(energy: f64, lost_value: f64) -> Self {
        Self { energy, lost_value }
    }

    /// The total cost `energy + lost_value`, the objective minimised by the
    /// paper's algorithms.
    #[inline]
    pub fn total(&self) -> f64 {
        self.energy + self.lost_value
    }

    /// The ratio of this cost over `other` (total over total).  Returns
    /// `1.0` when both are (numerically) zero and `+∞` when only the
    /// denominator is zero — matching the convention that the competitive
    /// ratio is at least one and empty instances are uninteresting.
    pub fn ratio_to(&self, other: &Cost) -> f64 {
        let num = self.total();
        let den = other.total();
        if crate::num::approx_zero(den) {
            if crate::num::approx_zero(num) {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            num / den
        }
    }
}

impl Add for Cost {
    type Output = Cost;

    fn add(self, rhs: Cost) -> Cost {
        Cost {
            energy: self.energy + rhs.energy,
            lost_value: self.lost_value + rhs.lost_value,
        }
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cost {{ total: {:.6}, energy: {:.6}, lost value: {:.6} }}",
            self.total(),
            self.energy,
            self.lost_value
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_add() {
        let a = Cost::new(2.0, 1.0);
        let b = Cost::new(0.5, 0.25);
        assert_eq!(a.total(), 3.0);
        let c = a + b;
        assert_eq!(c.energy, 2.5);
        assert_eq!(c.lost_value, 1.25);
        assert_eq!(c.total(), 3.75);
    }

    #[test]
    fn ratio_conventions() {
        let a = Cost::new(2.0, 0.0);
        let b = Cost::new(1.0, 1.0);
        assert!((a.ratio_to(&b) - 1.0).abs() < 1e-12);
        assert_eq!(Cost::ZERO.ratio_to(&Cost::ZERO), 1.0);
        assert_eq!(a.ratio_to(&Cost::ZERO), f64::INFINITY);
    }

    #[test]
    fn display_mentions_components() {
        let s = Cost::new(1.0, 2.0).to_string();
        assert!(s.contains("energy"));
        assert!(s.contains("lost value"));
    }
}
