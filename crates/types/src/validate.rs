//! Schedule feasibility checking.
//!
//! The model of Section 2 of the paper imposes three structural constraints
//! on a schedule besides meeting workloads:
//!
//! 1. every machine processes at most one job at any time,
//! 2. every job is processed by at most one machine at any time
//!    (jobs are nonparallel),
//! 3. work on a job only counts inside its availability window `[r_j, d_j)`.
//!
//! [`validate_schedule`] checks all of these plus basic well-formedness of
//! the segments, and reports which jobs are finished.  It is used by the
//! integration tests and by the simulator to certify every schedule the
//! algorithms produce.

use crate::error::ScheduleError;
use crate::instance::Instance;
use crate::job::JobId;
use crate::num;
use crate::segment::Schedule;

/// Result of validating a schedule against an instance.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Work processed inside its window for each job.
    pub work_done: Vec<f64>,
    /// Whether each job is finished.
    pub finished: Vec<bool>,
    /// Ids of unfinished jobs (the rejected set).
    pub rejected: Vec<JobId>,
    /// Total energy of the schedule under the instance's `α`.
    pub energy: f64,
}

impl ValidationReport {
    /// Number of finished jobs.
    pub fn finished_count(&self) -> usize {
        self.finished.iter().filter(|b| **b).count()
    }
}

/// Validates a schedule against an instance.
///
/// Returns a [`ValidationReport`] on success and a [`ScheduleError`]
/// describing the first violated constraint otherwise.  Work scheduled for a
/// job outside its `[r_j, d_j)` window is an error (rather than silently not
/// counted) because no algorithm in this workspace should ever produce it.
pub fn validate_schedule(
    instance: &Instance,
    schedule: &Schedule,
) -> Result<ValidationReport, ScheduleError> {
    let n = instance.len();
    let m = instance.machines;

    if schedule.machines != m {
        return Err(ScheduleError::Internal(format!(
            "schedule declares {} machines but instance has {}",
            schedule.machines, m
        )));
    }

    // -- Per-segment well-formedness -------------------------------------
    for seg in &schedule.segments {
        if !seg.start.is_finite() || !seg.end.is_finite() || !seg.speed.is_finite() {
            return Err(ScheduleError::BadSegment(format!(
                "non-finite segment {seg:?}"
            )));
        }
        if seg.end <= seg.start {
            return Err(ScheduleError::BadSegment(format!(
                "empty or reversed segment [{}, {})",
                seg.start, seg.end
            )));
        }
        if seg.speed < 0.0 {
            return Err(ScheduleError::BadSegment(format!(
                "negative speed {} in segment",
                seg.speed
            )));
        }
        if seg.machine >= m {
            return Err(ScheduleError::UnknownMachine(seg.machine));
        }
        if let Some(j) = seg.job {
            if j.index() >= n {
                return Err(ScheduleError::UnknownJob(j));
            }
            let job = instance.job(j);
            if !job.covers(seg.start, seg.end) {
                return Err(ScheduleError::BadSegment(format!(
                    "job {j} processed in [{:.6}, {:.6}) outside its window [{:.6}, {:.6})",
                    seg.start, seg.end, job.release, job.deadline
                )));
            }
        }
    }

    // -- Constraint 1: one job per machine at a time ----------------------
    for machine in 0..m {
        let segs = schedule.machine_segments(machine);
        for pair in segs.windows(2) {
            if pair[0].overlaps(&pair[1]) {
                return Err(ScheduleError::BadSegment(format!(
                    "machine {machine} runs two overlapping segments: {:?} and {:?}",
                    pair[0], pair[1]
                )));
            }
        }
    }

    // -- Constraint 2: one machine per job at a time ----------------------
    for j in 0..n {
        let mut segs: Vec<_> = schedule
            .segments
            .iter()
            .filter(|s| s.job == Some(JobId(j)))
            .collect();
        segs.sort_by(|a, b| a.start.total_cmp(&b.start));
        for pair in segs.windows(2) {
            if pair[0].overlaps(pair[1]) && pair[0].machine != pair[1].machine {
                return Err(ScheduleError::BadSegment(format!(
                    "job j{j} runs on machines {} and {} simultaneously",
                    pair[0].machine, pair[1].machine
                )));
            }
            // Same machine overlaps were already rejected by constraint 1,
            // but duplicated segments on the same machine for the same job
            // would double count work, so reject them here too.
            if pair[0].overlaps(pair[1]) && pair[0].machine == pair[1].machine {
                return Err(ScheduleError::BadSegment(format!(
                    "job j{j} has overlapping segments on machine {}",
                    pair[0].machine
                )));
            }
        }
    }

    // -- Work and energy accounting ---------------------------------------
    let work_done = schedule.work_per_job(n);
    let finished: Vec<bool> = instance
        .jobs
        .iter()
        .map(|job| num::approx_ge(work_done[job.id.index()], job.work))
        .collect();
    let rejected = finished
        .iter()
        .enumerate()
        .filter_map(|(i, done)| if *done { None } else { Some(JobId(i)) })
        .collect();

    Ok(ValidationReport {
        work_done,
        finished,
        rejected,
        energy: schedule.energy(instance.alpha),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    fn inst() -> Instance {
        Instance::from_tuples(2, 2.0, vec![(0.0, 2.0, 2.0, 4.0), (1.0, 3.0, 1.0, 1.0)]).unwrap()
    }

    #[test]
    fn accepts_feasible_schedule() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.0, JobId(0)));
        s.push(Segment::work(1, 1.0, 3.0, 0.5, JobId(1)));
        let report = validate_schedule(&inst, &s).unwrap();
        assert_eq!(report.finished, vec![true, true]);
        assert!(report.rejected.is_empty());
        assert_eq!(report.finished_count(), 2);
        assert!((report.energy - (2.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn reports_unfinished_jobs() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.0, JobId(0)));
        let report = validate_schedule(&inst, &s).unwrap();
        assert_eq!(report.rejected, vec![JobId(1)]);
    }

    #[test]
    fn rejects_work_outside_window() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 2.5, 3.0, 1.0, JobId(0))); // job 0 deadline is 2.0
        assert!(matches!(
            validate_schedule(&inst, &s),
            Err(ScheduleError::BadSegment(_))
        ));
    }

    #[test]
    fn rejects_machine_overlap() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.0, JobId(0)));
        s.push(Segment::work(0, 1.0, 2.0, 1.0, JobId(1)));
        assert!(validate_schedule(&inst, &s).is_err());
    }

    #[test]
    fn rejects_parallel_execution_of_one_job() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 1.5, 1.0, JobId(0)));
        s.push(Segment::work(1, 1.0, 2.0, 1.0, JobId(0)));
        assert!(validate_schedule(&inst, &s).is_err());
    }

    #[test]
    fn rejects_unknown_machine_and_job() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(5, 0.0, 1.0, 1.0, JobId(0)));
        assert!(matches!(
            validate_schedule(&inst, &s),
            Err(ScheduleError::UnknownMachine(5))
        ));

        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 1.0, 1.0, JobId(9)));
        assert!(matches!(
            validate_schedule(&inst, &s),
            Err(ScheduleError::UnknownJob(JobId(9)))
        ));
    }

    #[test]
    fn rejects_wrong_machine_count() {
        let inst = inst();
        let s = Schedule::empty(1);
        assert!(validate_schedule(&inst, &s).is_err());
    }

    #[test]
    fn rejects_negative_speed_and_bad_times() {
        let inst = inst();
        let mut s = Schedule::empty(2);
        s.segments.push(Segment {
            machine: 0,
            start: 0.0,
            end: 1.0,
            speed: -1.0,
            job: Some(JobId(0)),
        });
        assert!(validate_schedule(&inst, &s).is_err());

        let mut s = Schedule::empty(2);
        s.segments.push(Segment {
            machine: 0,
            start: 1.0,
            end: 0.5,
            speed: 1.0,
            job: Some(JobId(0)),
        });
        assert!(validate_schedule(&inst, &s).is_err());
    }

    #[test]
    fn empty_schedule_rejects_everything() {
        let inst = inst();
        let s = Schedule::empty(2);
        let report = validate_schedule(&inst, &s).unwrap();
        assert_eq!(report.rejected.len(), 2);
        assert_eq!(report.energy, 0.0);
    }
}
