//! Machine-level schedules: constant-speed segments.

use crate::cost::Cost;
use crate::instance::Instance;
use crate::job::JobId;
use crate::num;

/// A maximal piece of a schedule during which one machine runs at a constant
/// speed, processing at most one job.
///
/// Segments with `job == None` model idle-but-spinning time; well formed
/// schedules only emit such segments with `speed == 0`, and they are ignored
/// by the cost accounting when their speed is zero.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Machine index in `0..m`.
    pub machine: usize,
    /// Segment start time (inclusive).
    pub start: f64,
    /// Segment end time (exclusive), `end > start`.
    pub end: f64,
    /// Constant speed during the segment.
    pub speed: f64,
    /// The job being processed, or `None` for idle time.
    pub job: Option<JobId>,
}

impl Segment {
    /// Creates a new work segment.
    pub fn work(machine: usize, start: f64, end: f64, speed: f64, job: JobId) -> Self {
        Self {
            machine,
            start,
            end,
            speed,
            job: Some(job),
        }
    }

    /// Creates an idle segment (speed 0, no job).
    pub fn idle(machine: usize, start: f64, end: f64) -> Self {
        Self {
            machine,
            start,
            end,
            speed: 0.0,
            job: None,
        }
    }

    /// Duration `end - start` of the segment.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// Work `speed · duration` processed during the segment.
    #[inline]
    pub fn work_amount(&self) -> f64 {
        self.speed * self.duration()
    }

    /// Energy `s^α · duration` consumed during the segment.
    #[inline]
    pub fn energy(&self, alpha: f64) -> f64 {
        if self.speed <= 0.0 {
            0.0
        } else {
            self.speed.powf(alpha) * self.duration()
        }
    }

    /// Returns `true` if this segment overlaps in time with `other` by more
    /// than the numeric tolerance.
    pub fn overlaps(&self, other: &Segment) -> bool {
        let lo = self.start.max(other.start);
        let hi = self.end.min(other.end);
        num::definitely_gt(hi, lo)
    }
}

/// A complete schedule for an instance: a collection of constant-speed
/// [`Segment`]s over `machines` machines.
///
/// The segment list is not required to be sorted; accessors sort on demand.
/// A job is *finished* by the schedule if the total work of its segments
/// (restricted to its availability window — enforced by
/// [`validate_schedule`](crate::validate::validate_schedule)) reaches its
/// workload.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Schedule {
    /// Number of machines the schedule is defined over.
    pub machines: usize,
    /// The constant-speed pieces making up the schedule.
    pub segments: Vec<Segment>,
}

impl Schedule {
    /// Creates an empty schedule over `machines` machines.
    pub fn empty(machines: usize) -> Self {
        Self {
            machines,
            segments: Vec::new(),
        }
    }

    /// Appends a segment, silently dropping segments of (numerically) zero
    /// duration or zero work, which arise naturally from degenerate atomic
    /// intervals.
    pub fn push(&mut self, seg: Segment) {
        if seg.duration() <= 0.0 || num::approx_zero(seg.duration()) {
            return;
        }
        if seg.job.is_some() && num::approx_zero(seg.speed) {
            return;
        }
        self.segments.push(seg);
    }

    /// Appends every segment of `other` (which must be over the same number
    /// of machines).
    pub fn extend(&mut self, other: &Schedule) {
        debug_assert_eq!(self.machines, other.machines);
        for seg in &other.segments {
            self.push(*seg);
        }
    }

    /// Total energy `Σ s^α · duration` over all segments.
    pub fn energy(&self, alpha: f64) -> f64 {
        num::stable_sum(self.segments.iter().map(|s| s.energy(alpha)))
    }

    /// Work processed per job, indexed by job id, for an instance with `n`
    /// jobs.  Segments referring to ids `>= n` are ignored.
    pub fn work_per_job(&self, n: usize) -> Vec<f64> {
        let mut work = vec![0.0; n];
        for seg in &self.segments {
            if let Some(j) = seg.job {
                if j.index() < n {
                    work[j.index()] += seg.work_amount();
                }
            }
        }
        work
    }

    /// Returns, for each job of the instance, whether the schedule finishes
    /// it (processes at least its workload, up to numeric tolerance).
    pub fn finished(&self, instance: &Instance) -> Vec<bool> {
        let work = self.work_per_job(instance.len());
        instance
            .jobs
            .iter()
            .map(|j| num::approx_ge(work[j.id.index()], j.work))
            .collect()
    }

    /// Ids of the jobs the schedule does *not* finish (the rejected set
    /// `J_rej` of the paper).
    pub fn unfinished_jobs(&self, instance: &Instance) -> Vec<JobId> {
        self.finished(instance)
            .iter()
            .enumerate()
            .filter_map(|(i, done)| if *done { None } else { Some(JobId(i)) })
            .collect()
    }

    /// Cost of the schedule for the given instance: energy plus the total
    /// value of unfinished jobs (Equation (1) of the paper).
    pub fn cost(&self, instance: &Instance) -> Cost {
        let energy = self.energy(instance.alpha);
        let lost_value = num::stable_sum(
            self.unfinished_jobs(instance)
                .iter()
                .map(|j| instance.job(*j).value),
        );
        Cost { energy, lost_value }
    }

    /// The segments assigned to one machine, sorted by start time.
    pub fn machine_segments(&self, machine: usize) -> Vec<Segment> {
        let mut segs: Vec<Segment> = self
            .segments
            .iter()
            .copied()
            .filter(|s| s.machine == machine)
            .collect();
        segs.sort_by(|a, b| a.start.total_cmp(&b.start));
        segs
    }

    /// The speed of the given machine at time `t` (0 if idle).
    pub fn speed_at(&self, machine: usize, t: f64) -> f64 {
        self.segments
            .iter()
            .filter(|s| s.machine == machine && s.start <= t && t < s.end)
            .map(|s| s.speed)
            .fold(0.0, f64::max)
    }

    /// Total speed over all machines at time `t`; for `m = 1` this is the
    /// classical speed profile used in the paper's Figure 3.
    pub fn total_speed_at(&self, t: f64) -> f64 {
        num::stable_sum(
            self.segments
                .iter()
                .filter(|s| s.start <= t && t < s.end)
                .map(|s| s.speed),
        )
    }

    /// The time span `[min start, max end]` covered by the schedule's
    /// segments, or `None` if there are none.
    pub fn span(&self) -> Option<(f64, f64)> {
        if self.segments.is_empty() {
            return None;
        }
        let lo = self
            .segments
            .iter()
            .map(|s| s.start)
            .fold(f64::INFINITY, f64::min);
        let hi = self
            .segments
            .iter()
            .map(|s| s.end)
            .fold(f64::NEG_INFINITY, f64::max);
        Some((lo, hi))
    }

    /// Samples the per-machine speed profile at `samples` evenly spaced
    /// points of `[from, to)`.  Used by examples to print/plot profiles.
    pub fn sample_total_speed(&self, from: f64, to: f64, samples: usize) -> Vec<(f64, f64)> {
        assert!(samples > 0 && to > from);
        let step = (to - from) / samples as f64;
        (0..samples)
            .map(|i| {
                let t = from + (i as f64 + 0.5) * step;
                (t, self.total_speed_at(t))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> Instance {
        Instance::from_tuples(2, 2.0, vec![(0.0, 2.0, 2.0, 10.0), (0.0, 4.0, 4.0, 3.0)]).unwrap()
    }

    #[test]
    fn segment_accounting() {
        let s = Segment::work(0, 1.0, 3.0, 2.0, JobId(0));
        assert_eq!(s.duration(), 2.0);
        assert_eq!(s.work_amount(), 4.0);
        assert_eq!(s.energy(2.0), 8.0);
        assert_eq!(s.energy(3.0), 16.0);
        let idle = Segment::idle(0, 0.0, 1.0);
        assert_eq!(idle.energy(3.0), 0.0);
    }

    #[test]
    fn overlap_detection() {
        let a = Segment::work(0, 0.0, 2.0, 1.0, JobId(0));
        let b = Segment::work(0, 1.0, 3.0, 1.0, JobId(1));
        let c = Segment::work(0, 2.0, 3.0, 1.0, JobId(1));
        assert!(a.overlaps(&b));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn push_drops_degenerate_segments() {
        let mut s = Schedule::empty(1);
        s.push(Segment::work(0, 1.0, 1.0, 5.0, JobId(0)));
        s.push(Segment::work(0, 1.0, 2.0, 0.0, JobId(0)));
        assert!(s.segments.is_empty());
        s.push(Segment::work(0, 1.0, 2.0, 1.0, JobId(0)));
        assert_eq!(s.segments.len(), 1);
    }

    #[test]
    fn cost_combines_energy_and_lost_value() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        // Finish job 0 (2 work by t=2 at speed 1), do nothing for job 1.
        s.push(Segment::work(0, 0.0, 2.0, 1.0, JobId(0)));
        let cost = s.cost(&inst);
        assert!((cost.energy - 2.0).abs() < 1e-12); // 1^2 * 2
        assert!((cost.lost_value - 3.0).abs() < 1e-12); // job 1's value
        assert!((cost.total() - 5.0).abs() < 1e-12);
        assert_eq!(s.unfinished_jobs(&inst), vec![JobId(1)]);
    }

    #[test]
    fn finished_uses_tolerance() {
        let inst = instance();
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.0 - 1e-13, JobId(0)));
        assert!(s.finished(&inst)[0]);
    }

    #[test]
    fn speed_queries() {
        let mut s = Schedule::empty(2);
        s.push(Segment::work(0, 0.0, 2.0, 1.5, JobId(0)));
        s.push(Segment::work(1, 1.0, 3.0, 0.5, JobId(1)));
        assert_eq!(s.speed_at(0, 1.0), 1.5);
        assert_eq!(s.speed_at(0, 2.5), 0.0);
        assert_eq!(s.total_speed_at(1.5), 2.0);
        assert_eq!(s.span(), Some((0.0, 3.0)));
        let profile = s.sample_total_speed(0.0, 3.0, 3);
        assert_eq!(profile.len(), 3);
        assert!((profile[0].1 - 1.5).abs() < 1e-12);
        assert!((profile[1].1 - 2.0).abs() < 1e-12);
        assert!((profile[2].1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn machine_segments_are_sorted() {
        let mut s = Schedule::empty(1);
        s.push(Segment::work(0, 2.0, 3.0, 1.0, JobId(0)));
        s.push(Segment::work(0, 0.0, 1.0, 1.0, JobId(1)));
        let segs = s.machine_segments(0);
        assert_eq!(segs[0].start, 0.0);
        assert_eq!(segs[1].start, 2.0);
    }
}
