//! Append-only realised-segment log: the O(active) checkpoint substrate.
//!
//! E14 measured checkpoint blobs growing linearly with the stream
//! (~43 B/event) because the committed frontier rode inside every
//! [`StateBlob`].  The paper's prefix-stability invariant — a committed
//! segment is never revised — means that frontier is *immutable history*,
//! not live state, so it belongs in an append-only log shared by every
//! checkpoint of the run, not in each snapshot.  This module provides that
//! log and the conventions the rest of the workspace builds on:
//!
//! * [`SegmentLog`] — a per-run/per-shard append-only log of realised
//!   segments, organised as checksummed *records* (one per append).  The
//!   wire format reuses the [`StateBlob`] container plus a per-record
//!   FNV-1a checksum, and decoding is total: truncation or corruption of
//!   any record is a [`SnapshotError`], never a panic.
//! * [`LogCursor`] — a position in the log (a count of realised segments).
//!   A live-state snapshot stores a cursor instead of the frontier.
//! * [`FrontierPart`] — the encoding of a snapshot's committed frontier:
//!   either inline (the legacy full-frontier form, kept as a differential
//!   baseline) or a cursor into the log.  [`FrontierPart::resolve`] turns
//!   either form back into a [`Schedule`]; resolving a cursor without the
//!   log yields [`SnapshotError::NeedsLog`].
//! * [`LogCheckpointable`] — the O(active) counterpart of
//!   [`Checkpointable`]: [`snapshot_live`](LogCheckpointable::snapshot_live)
//!   syncs the log with the run's frontier and captures only live state
//!   plus the cursor; [`restore_with_log`](LogCheckpointable::restore_with_log)
//!   reassembles the frontier from the `(log, blob)` pair bit-identically.
//!
//! # Compaction
//!
//! [`SegmentLog::compact`] consolidates records below a cursor (the newest
//! retained checkpoint's cursor, in practice) into a single prefix, so the
//! number of record *envelopes* — the granularity at which tails are
//! shipped during shard moves — stays proportional to the retained
//! checkpoint chain, not to the number of bursts ever fed.  Segment *data*
//! is never discarded: `frontier()` is the run's output, and bit-identical
//! reassembly from any retained checkpoint needs every segment below that
//! checkpoint's cursor.  The log is the durable O(events) artefact; the
//! point of this module is that each *blob* is O(active).
//!
//! # Recovery discipline
//!
//! Recovery is write-ahead-log shaped: restore the blob, then
//! [`truncate`](SegmentLog::truncate) the log to the blob's cursor *before*
//! replaying the journal delta — replay re-commits the truncated segments
//! through the run itself, so skipping the truncation would duplicate them.

use crate::segment::{Schedule, Segment};
use crate::snapshot::{
    fnv1a, BlobReader, BlobWriter, Checkpointable, SnapshotError, SnapshotPart, StateBlob,
};

/// Blob kind under which a serialised log travels.
const LOG_KIND: &str = "seglog";

/// Wire version of the log payload.
const LOG_VERSION: u16 = 1;

/// A position in a [`SegmentLog`]: the number of realised segments below
/// it.  Cursors are what live-state snapshots store in place of the
/// committed frontier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct LogCursor(pub u64);

impl LogCursor {
    /// The cursor as a segment count.
    pub fn segments(self) -> u64 {
        self.0
    }
}

impl SnapshotPart for LogCursor {
    fn encode(&self, w: &mut BlobWriter) {
        w.write_u64(self.0);
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LogCursor(r.read_u64()?))
    }
}

/// One append to the log: the segments realised by one committed batch (or
/// one shipped tail), together with the cursor they start at.
#[derive(Debug, Clone, PartialEq)]
struct SegmentRecord {
    /// Cursor before this record's segments (records are contiguous:
    /// `base` equals the previous record's end).
    base: u64,
    segments: Vec<Segment>,
}

impl SegmentRecord {
    /// Encodes the record body (base + segments) — the bytes the
    /// per-record checksum covers.
    fn encode_body(&self) -> Vec<u8> {
        let mut w = BlobWriter::new();
        w.write_u64(self.base);
        w.write_seq(&self.segments);
        w.into_payload()
    }

    fn encode(&self, w: &mut BlobWriter) {
        let body = self.encode_body();
        w.write_u64(fnv1a(&body));
        w.write_bytes(&body);
    }

    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        let checksum = r.read_u64()?;
        let body = r.read_bytes()?;
        if fnv1a(body) != checksum {
            return Err(SnapshotError::Corrupted("record checksum mismatch".into()));
        }
        let mut br = BlobReader::new(body);
        let base = br.read_u64()?;
        let segments = br.read_seq()?;
        br.finish()?;
        Ok(SegmentRecord { base, segments })
    }
}

/// An append-only log of one run's realised segments.
///
/// The log mirrors the run's committed frontier: after every committed
/// batch, [`sync_from`](SegmentLog::sync_from) appends the frontier's new
/// segments as one checksummed record.  Checkpoints then store only a
/// [`LogCursor`]; [`reassemble`](SegmentLog::reassemble) rebuilds the
/// frontier below any cursor bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentLog {
    machines: usize,
    /// Segments consolidated out of compacted records (always the log's
    /// first `prefix.len()` segments).
    prefix: Vec<Segment>,
    /// Live records, contiguous after the prefix.
    records: Vec<SegmentRecord>,
}

impl SegmentLog {
    /// An empty log for a run on `machines` machines.
    pub fn new(machines: usize) -> Self {
        Self {
            machines,
            prefix: Vec::new(),
            records: Vec::new(),
        }
    }

    /// The machine count the log's segments are laid out on.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// The log's end cursor: the total number of realised segments held.
    pub fn cursor(&self) -> LogCursor {
        let live: u64 = self.records.iter().map(|r| r.segments.len() as u64).sum();
        LogCursor(self.prefix.len() as u64 + live)
    }

    /// Number of live record envelopes (compaction consolidates these; the
    /// count is what stays O(retained checkpoints)).
    pub fn record_count(&self) -> usize {
        self.records.len()
    }

    /// Appends the frontier's segments beyond the current cursor as one
    /// record, returning the new end cursor.  A no-delta sync appends no
    /// record.  A frontier *shorter* than the log, or on a different
    /// machine count, violates prefix stability and is an error.
    pub fn sync_from(&mut self, frontier: &Schedule) -> Result<LogCursor, SnapshotError> {
        if frontier.machines != self.machines {
            return Err(SnapshotError::Invalid(format!(
                "frontier has {} machines, log has {}",
                frontier.machines, self.machines
            )));
        }
        let have = self.cursor().0 as usize;
        if frontier.segments.len() < have {
            return Err(SnapshotError::Invalid(format!(
                "frontier holds {} segments but the log already holds {}; \
                 committed segments are immutable",
                frontier.segments.len(),
                have
            )));
        }
        if frontier.segments.len() > have {
            self.records.push(SegmentRecord {
                base: have as u64,
                segments: frontier.segments.get(have..).unwrap_or_default().to_vec(),
            });
        }
        Ok(self.cursor())
    }

    /// Discards everything at or beyond `cursor` (write-ahead-log tail
    /// truncation, used before journal replay on recovery).  Truncating
    /// beyond the end is an error.
    pub fn truncate(&mut self, cursor: LogCursor) -> Result<(), SnapshotError> {
        if cursor > self.cursor() {
            return Err(SnapshotError::Invalid(format!(
                "cannot truncate log of {} segments to cursor {}",
                self.cursor().0,
                cursor.0
            )));
        }
        let keep = cursor.0;
        if keep <= self.prefix.len() as u64 {
            self.prefix.truncate(keep as usize);
            self.records.clear();
            return Ok(());
        }
        while let Some(last) = self.records.last_mut() {
            let end = last.base + last.segments.len() as u64;
            if end <= keep {
                break;
            }
            if last.base >= keep {
                self.records.pop();
            } else {
                last.segments.truncate((keep - last.base) as usize);
                break;
            }
        }
        Ok(())
    }

    /// Consolidates every record wholly below `cursor` into the prefix,
    /// dropping their envelopes.  Segment data is never discarded (see the
    /// module docs); this bounds the number of record envelopes by the
    /// retained checkpoint chain.  Cursors beyond the end are clamped.
    pub fn compact(&mut self, cursor: LogCursor) {
        let limit = cursor.0.min(self.cursor().0);
        let mut folded = 0;
        for rec in &self.records {
            if rec.base + rec.segments.len() as u64 <= limit {
                folded += 1;
            } else {
                break;
            }
        }
        for rec in self.records.drain(..folded) {
            self.prefix.extend(rec.segments);
        }
    }

    /// Rebuilds the committed frontier below `cursor` — bit-identical to
    /// the schedule the run held when the cursor was captured.  A cursor
    /// beyond the log's end (the log was truncated below a checkpoint that
    /// references it) is an error.
    pub fn reassemble(&self, cursor: LogCursor) -> Result<Schedule, SnapshotError> {
        if cursor > self.cursor() {
            return Err(SnapshotError::Invalid(format!(
                "log holds {} segments but the snapshot cursor is {}",
                self.cursor().0,
                cursor.0
            )));
        }
        let mut segments = Vec::with_capacity(cursor.0 as usize);
        segments.extend_from_slice(&self.prefix);
        for rec in &self.records {
            segments.extend_from_slice(&rec.segments);
        }
        segments.truncate(cursor.0 as usize);
        Ok(Schedule {
            machines: self.machines,
            segments,
        })
    }

    /// Serialises the whole log into a [`StateBlob`] (kind `"seglog"`).
    pub fn to_blob(&self) -> StateBlob {
        let mut w = BlobWriter::new();
        w.write_usize(self.machines);
        w.write_seq(&self.prefix);
        w.write_u64(self.records.len() as u64);
        for rec in &self.records {
            rec.encode(&mut w);
        }
        StateBlob::new(LOG_KIND, LOG_VERSION, w.into_payload())
    }

    /// Serialises the whole log into wire bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.to_blob().to_bytes()
    }

    /// Decodes a log from a [`StateBlob`], verifying contiguity and every
    /// per-record checksum.
    pub fn from_blob(blob: &StateBlob) -> Result<Self, SnapshotError> {
        // Total kind/version check (returns Err). pss-lint: allow(codec-totality)
        let mut r = blob.expect(LOG_KIND, LOG_VERSION)?;
        let machines = r.read_usize()?;
        let prefix: Vec<Segment> = r.read_seq()?;
        let count = r.read_len(8)?;
        let mut records = Vec::with_capacity(count);
        let mut next = prefix.len() as u64;
        for _ in 0..count {
            let rec = SegmentRecord::decode(&mut r)?;
            if rec.base != next {
                return Err(SnapshotError::Invalid(format!(
                    "record base {} does not continue the log at {next}",
                    rec.base
                )));
            }
            next += rec.segments.len() as u64;
            records.push(rec);
        }
        r.finish()?;
        Ok(Self {
            machines,
            prefix,
            records,
        })
    }

    /// Decodes a log from wire bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let blob = StateBlob::from_bytes(bytes)?;
        Self::from_blob(&blob)
    }

    /// Serialises the log's tail at or beyond `from` — the half of a
    /// `(log tail, blob)` pair shipped during shard moves.  The tail is a
    /// single checksummed record based at `from`.
    pub fn encode_tail(&self, from: LogCursor) -> Result<Vec<u8>, SnapshotError> {
        if from > self.cursor() {
            return Err(SnapshotError::Invalid(format!(
                "tail start {} is beyond the log end {}",
                from.0,
                self.cursor().0
            )));
        }
        let full = self.reassemble(self.cursor())?;
        let segments = full
            .segments
            .get(from.0 as usize..)
            .unwrap_or_default()
            .to_vec();
        let rec = SegmentRecord {
            base: from.0,
            segments,
        };
        let mut w = BlobWriter::new();
        rec.encode(&mut w);
        Ok(StateBlob::new("seglog-tail", LOG_VERSION, w.into_payload()).to_bytes())
    }

    /// Absorbs a tail produced by [`encode_tail`](SegmentLog::encode_tail):
    /// the log is truncated to the tail's base, then the tail's segments
    /// are appended as one record.  A tail based beyond the log's end
    /// (missing history) is an error.
    pub fn absorb_tail(&mut self, bytes: &[u8]) -> Result<LogCursor, SnapshotError> {
        let blob = StateBlob::from_bytes(bytes)?;
        // pss-lint: allow(codec-totality) — total kind/version check.
        let mut r = blob.expect("seglog-tail", LOG_VERSION)?;
        let rec = SegmentRecord::decode(&mut r)?;
        r.finish()?;
        if LogCursor(rec.base) > self.cursor() {
            return Err(SnapshotError::Invalid(format!(
                "tail base {} is beyond the log end {}",
                rec.base,
                self.cursor().0
            )));
        }
        self.truncate(LogCursor(rec.base))?;
        if !rec.segments.is_empty() {
            self.records.push(rec);
        }
        Ok(self.cursor())
    }
}

/// The committed frontier as stored inside a snapshot payload: inline (the
/// legacy full-frontier form) or as a cursor into the run's [`SegmentLog`].
#[derive(Debug, Clone, PartialEq)]
pub enum FrontierPart {
    /// The whole frontier rides in the blob (O(events) blobs; retained as
    /// the differential baseline behind the full-frontier toggle).
    Inline(Schedule),
    /// The blob stores only the log cursor; the frontier is reassembled
    /// from the log at restore time (O(active) blobs).
    Cursor {
        /// Machine count of the frontier (checked against the log).
        machines: usize,
        /// End cursor of the frontier in the log.
        cursor: LogCursor,
    },
}

impl FrontierPart {
    /// The cursor form of `frontier`, as synced into `log`.
    pub fn cursor_of(machines: usize, cursor: LogCursor) -> Self {
        FrontierPart::Cursor { machines, cursor }
    }

    /// Resolves to the frontier [`Schedule`], reassembling from `log` when
    /// the part is a cursor.  A cursor with no log is
    /// [`SnapshotError::NeedsLog`]; a log on a different machine count is
    /// invalid.
    pub fn resolve(self, log: Option<&SegmentLog>) -> Result<Schedule, SnapshotError> {
        match self {
            FrontierPart::Inline(schedule) => Ok(schedule),
            FrontierPart::Cursor { machines, cursor } => {
                let log = log.ok_or(SnapshotError::NeedsLog)?;
                if log.machines() != machines {
                    return Err(SnapshotError::Invalid(format!(
                        "snapshot frontier has {machines} machines, log has {}",
                        log.machines()
                    )));
                }
                log.reassemble(cursor)
            }
        }
    }
}

impl SnapshotPart for FrontierPart {
    fn encode(&self, w: &mut BlobWriter) {
        match self {
            FrontierPart::Inline(schedule) => {
                w.write_u8(0);
                w.write_part(schedule);
            }
            FrontierPart::Cursor { machines, cursor } => {
                w.write_u8(1);
                w.write_usize(*machines);
                w.write_part(cursor);
            }
        }
    }
    fn decode(r: &mut BlobReader<'_>) -> Result<Self, SnapshotError> {
        match r.read_u8()? {
            0 => Ok(FrontierPart::Inline(r.read_part()?)),
            1 => Ok(FrontierPart::Cursor {
                machines: r.read_usize()?,
                cursor: r.read_part()?,
            }),
            other => Err(SnapshotError::Corrupted(format!(
                "invalid frontier tag {other}"
            ))),
        }
    }
}

/// The O(active) checkpoint contract: snapshots that store a log cursor in
/// place of the committed frontier.
///
/// # Contract
///
/// `snapshot_live` first syncs `log` with the run's frontier (so the
/// cursor and the frontier agree by construction), then captures only the
/// run's *live* state — pending sets, indexes, plan caches, grid cursors —
/// plus the cursor.  `restore_with_log(&run.snapshot_live(log), log)` must
/// yield a run whose `frontier()` and every future decision are
/// bit-identical to the original (solver-accuracy-bounded for iterative
/// planners), exactly as [`Checkpointable`] demands of the inline form.
/// Both methods are total: mismatched machine counts, truncated logs and
/// wrong-kind/wrong-version blobs are errors, never panics.
pub trait LogCheckpointable: Checkpointable {
    /// Syncs `log` with the run's committed frontier and captures the
    /// run's live state plus the resulting cursor.
    fn snapshot_live(&self, log: &mut SegmentLog) -> Result<StateBlob, SnapshotError>;

    /// Reconstructs a run from a live-state snapshot, reassembling its
    /// frontier from `log`.
    fn restore_with_log(blob: &StateBlob, log: &SegmentLog) -> Result<Self, SnapshotError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;

    fn seg(machine: usize, start: f64, id: usize) -> Segment {
        Segment::work(machine, start, start + 1.0, 1.5, JobId(id))
    }

    fn sample_log() -> SegmentLog {
        let mut log = SegmentLog::new(2);
        let mut frontier = Schedule::empty(2);
        for burst in 0..4 {
            for k in 0..=burst {
                frontier
                    .segments
                    .push(seg(k % 2, burst as f64 + k as f64, k));
            }
            log.sync_from(&frontier).unwrap();
        }
        log
    }

    #[test]
    fn sync_appends_only_the_delta_and_reassembles_bit_identically() {
        let mut log = SegmentLog::new(2);
        let mut frontier = Schedule::empty(2);
        frontier.segments.push(seg(0, 0.0, 1));
        frontier.segments.push(seg(1, 0.5, 2));
        let c1 = log.sync_from(&frontier).unwrap();
        assert_eq!(c1, LogCursor(2));
        // No-delta sync appends nothing.
        assert_eq!(log.sync_from(&frontier).unwrap(), c1);
        assert_eq!(log.record_count(), 1);
        frontier.segments.push(seg(0, 2.0, 3));
        let c2 = log.sync_from(&frontier).unwrap();
        assert_eq!(c2, LogCursor(3));
        let back = log.reassemble(c2).unwrap();
        assert_eq!(back.segments, frontier.segments);
        let mid = log.reassemble(c1).unwrap();
        assert_eq!(mid.segments, frontier.segments[..2]);
    }

    #[test]
    fn shrinking_or_mismatched_frontiers_are_rejected() {
        let mut log = SegmentLog::new(2);
        let mut frontier = Schedule::empty(2);
        frontier.segments.push(seg(0, 0.0, 1));
        log.sync_from(&frontier).unwrap();
        frontier.segments.clear();
        assert!(matches!(
            log.sync_from(&frontier),
            Err(SnapshotError::Invalid(_))
        ));
        let other = Schedule::empty(3);
        assert!(matches!(
            log.sync_from(&other),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn truncate_cuts_records_and_straddled_tails() {
        let mut log = sample_log();
        let full = log.cursor();
        assert_eq!(full, LogCursor(1 + 2 + 3 + 4));
        // Cut inside the third record.
        log.truncate(LogCursor(4)).unwrap();
        assert_eq!(log.cursor(), LogCursor(4));
        let s = log.reassemble(LogCursor(4)).unwrap();
        assert_eq!(s.segments.len(), 4);
        // Reassembling beyond the new end fails.
        assert!(log.reassemble(full).is_err());
        // Truncate to zero clears everything.
        log.truncate(LogCursor(0)).unwrap();
        assert_eq!(log.cursor(), LogCursor(0));
        assert!(log.truncate(LogCursor(1)).is_err());
    }

    #[test]
    fn compaction_drops_envelopes_never_segments() {
        let mut log = sample_log();
        let full = log.cursor();
        let before = log.reassemble(full).unwrap();
        assert_eq!(log.record_count(), 4);
        // Compact below a cursor inside the third record: only the first
        // two records fold.
        log.compact(LogCursor(4));
        assert_eq!(log.record_count(), 2);
        assert_eq!(log.reassemble(full).unwrap().segments, before.segments);
        // Compact everything.
        log.compact(LogCursor(u64::MAX));
        assert_eq!(log.record_count(), 0);
        assert_eq!(log.cursor(), full);
        assert_eq!(log.reassemble(full).unwrap().segments, before.segments);
        // Truncation into the compacted prefix still works.
        log.truncate(LogCursor(2)).unwrap();
        assert_eq!(
            log.reassemble(LogCursor(2)).unwrap().segments,
            before.segments[..2]
        );
    }

    #[test]
    fn wire_round_trip_is_exact_including_after_compaction() {
        let mut log = sample_log();
        log.compact(LogCursor(3));
        let bytes = log.to_bytes();
        let back = SegmentLog::from_bytes(&bytes).unwrap();
        assert_eq!(back, log);
        let full = log.cursor();
        assert_eq!(
            back.reassemble(full).unwrap().segments,
            log.reassemble(full).unwrap().segments
        );
    }

    #[test]
    fn every_truncation_and_bit_flip_of_a_log_file_is_an_error() {
        let bytes = sample_log().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                SegmentLog::from_bytes(&bytes[..len]).is_err(),
                "truncation to {len} bytes must fail"
            );
        }
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupted = bytes.clone();
                corrupted[i] ^= 1 << bit;
                assert!(
                    SegmentLog::from_bytes(&corrupted).is_err(),
                    "flip of byte {i} bit {bit} must fail"
                );
            }
        }
    }

    #[test]
    fn non_contiguous_records_are_rejected() {
        // Hand-assemble a payload whose second record skips a base.
        let rec = |base: u64, n: usize| SegmentRecord {
            base,
            segments: (0..n).map(|k| seg(0, k as f64, k)).collect(),
        };
        let mut w = BlobWriter::new();
        w.write_usize(1);
        w.write_seq::<Segment>(&[]);
        w.write_u64(2);
        rec(0, 2).encode(&mut w);
        rec(5, 1).encode(&mut w);
        let blob = StateBlob::new("seglog", 1, w.into_payload());
        assert!(matches!(
            SegmentLog::from_blob(&blob),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn tails_ship_and_absorb() {
        let log = sample_log();
        let full = log.cursor();
        // A receiver that already has the first two segments.
        let mut receiver = log.clone();
        receiver.truncate(LogCursor(2)).unwrap();
        let tail = log.encode_tail(LogCursor(2)).unwrap();
        let end = receiver.absorb_tail(&tail).unwrap();
        assert_eq!(end, full);
        assert_eq!(
            receiver.reassemble(full).unwrap().segments,
            log.reassemble(full).unwrap().segments
        );
        // Absorbing is idempotent under re-delivery (WAL truncation).
        let end2 = receiver.absorb_tail(&tail).unwrap();
        assert_eq!(end2, full);
        // A tail based beyond the receiver's history is an error.
        let mut empty = SegmentLog::new(2);
        assert!(empty.absorb_tail(&tail).is_err());
        // A tail from a diverged log still absorbs at its base (the base
        // governs truncation), and corrupted tails are errors.
        let mut corrupted = tail.clone();
        corrupted[tail.len() / 2] ^= 0x40;
        assert!(receiver.absorb_tail(&corrupted).is_err());
    }

    #[test]
    fn frontier_part_round_trips_and_resolves() {
        let log = sample_log();
        let cur = log.cursor();
        let inline = FrontierPart::Inline(log.reassemble(cur).unwrap());
        let cursor = FrontierPart::cursor_of(2, cur);
        for part in [inline.clone(), cursor.clone()] {
            let mut w = BlobWriter::new();
            w.write_part(&part);
            let payload = w.into_payload();
            let mut r = BlobReader::new(&payload);
            let back: FrontierPart = r.read_part().unwrap();
            r.finish().unwrap();
            assert_eq!(back, part);
        }
        let a = inline.resolve(None).unwrap();
        let b = cursor.clone().resolve(Some(&log)).unwrap();
        assert_eq!(a.segments, b.segments);
        assert!(matches!(
            cursor.clone().resolve(None),
            Err(SnapshotError::NeedsLog)
        ));
        let wrong = SegmentLog::new(3);
        assert!(matches!(
            cursor.resolve(Some(&wrong)),
            Err(SnapshotError::Invalid(_))
        ));
    }
}
