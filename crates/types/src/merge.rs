//! Zipping per-shard schedules back into one logical schedule.
//!
//! A *sharded* run of one logical stream partitions arrivals across `S`
//! independent scheduler runs, each over its own `machines_per_shard`
//! processors and its own dense shard-local job ids.  [`merge_frontiers`]
//! reassembles the per-shard committed [`Schedule`]s (frontiers mid-stream,
//! finished schedules at the end) into a single logical schedule:
//!
//! * **machine lanes** — shard `s`'s machine `m` becomes logical machine
//!   `s · machines_per_shard + m`, so per-job pieces stay within their
//!   shard's lanes and the merged schedule is a valid `S ·
//!   machines_per_shard`-machine schedule;
//! * **job ids** — each shard supplies the map from its dense local ids to
//!   the logical stream's ids ([`ShardPiece::jobs`]), so the merged
//!   segments speak the logical instance's vocabulary;
//! * **speeds add** — on overlapping time intervals the merged schedule's
//!   [`total_speed_at`](Schedule::total_speed_at) is the sum of the shard
//!   speeds (the lanes are disjoint), and because energy is a per-segment
//!   sum the merged energy equals the sum of the shard energies — the
//!   *total-energy identity* pinned by the sharded-stream test suites.
//!
//! Segments are copied bit-for-bit in shard order (shard 0's segments
//! first, each shard's in its own committed order), never re-split or
//! re-rounded, so a merged frontier inherits prefix stability from its
//! shards: segments a shard has committed appear unchanged in every later
//! merge.

use crate::error::ScheduleError;
use crate::job::JobId;
use crate::segment::Schedule;

/// One shard's contribution to a logical-schedule merge.
#[derive(Debug, Clone, Copy)]
pub struct ShardPiece<'a> {
    /// The shard's committed schedule (frontier or finished), over the
    /// shard's own `machines_per_shard` machines and dense local job ids.
    pub schedule: &'a Schedule,
    /// Maps the shard's dense local job ids (`0..jobs.len()`) to the
    /// logical stream's job ids.
    pub jobs: &'a [JobId],
}

/// Merges per-shard committed schedules into one logical schedule over
/// `shards.len() · machines_per_shard` machines (see the module docs for
/// the lane/id/energy contract).
///
/// Errors if a shard schedule spans more machines than
/// `machines_per_shard`, or references a local job id outside its
/// [`ShardPiece::jobs`] map.
pub fn merge_frontiers(
    machines_per_shard: usize,
    shards: &[ShardPiece<'_>],
) -> Result<Schedule, ScheduleError> {
    if machines_per_shard == 0 {
        return Err(ScheduleError::Internal(
            "merge_frontiers needs at least one machine per shard".into(),
        ));
    }
    let mut merged = Schedule::empty(shards.len() * machines_per_shard);
    for (s, piece) in shards.iter().enumerate() {
        if piece.schedule.machines > machines_per_shard {
            return Err(ScheduleError::Internal(format!(
                "shard {s} schedule spans {} machines, expected at most {machines_per_shard}",
                piece.schedule.machines
            )));
        }
        for seg in &piece.schedule.segments {
            if seg.machine >= machines_per_shard {
                return Err(ScheduleError::Internal(format!(
                    "shard {s} segment on machine {} outside the shard's {machines_per_shard} lane(s)",
                    seg.machine
                )));
            }
            let job = match seg.job {
                None => None,
                Some(local) => Some(*piece.jobs.get(local.index()).ok_or_else(|| {
                    ScheduleError::Internal(format!(
                        "shard {s} segment references local job {local} outside its id map \
                         ({} entries)",
                        piece.jobs.len()
                    ))
                })?),
            };
            // Copied bit-for-bit (no Schedule::push degeneracy filtering):
            // the merge must preserve exactly what the shard committed so
            // prefix stability and the energy identity hold bit-for-bit.
            let mut seg = *seg;
            seg.machine += s * machines_per_shard;
            seg.job = job;
            merged.segments.push(seg);
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segment::Segment;

    fn shard_schedule(machines: usize, segs: &[(usize, f64, f64, f64, Option<usize>)]) -> Schedule {
        let mut s = Schedule::empty(machines);
        for &(m, a, b, v, j) in segs {
            s.segments.push(Segment {
                machine: m,
                start: a,
                end: b,
                speed: v,
                job: j.map(JobId),
            });
        }
        s
    }

    #[test]
    fn lanes_are_offset_and_ids_remapped() {
        let a = shard_schedule(
            2,
            &[(0, 0.0, 1.0, 1.0, Some(0)), (1, 0.5, 2.0, 0.5, Some(1))],
        );
        let b = shard_schedule(2, &[(0, 0.0, 1.0, 2.0, Some(0)), (1, 1.0, 2.0, 0.0, None)]);
        let a_jobs = [JobId(3), JobId(5)];
        let b_jobs = [JobId(4)];
        let merged = merge_frontiers(
            2,
            &[
                ShardPiece {
                    schedule: &a,
                    jobs: &a_jobs,
                },
                ShardPiece {
                    schedule: &b,
                    jobs: &b_jobs,
                },
            ],
        )
        .unwrap();
        assert_eq!(merged.machines, 4);
        assert_eq!(merged.segments.len(), 4);
        assert_eq!(merged.segments[0].machine, 0);
        assert_eq!(merged.segments[0].job, Some(JobId(3)));
        assert_eq!(merged.segments[1].machine, 1);
        assert_eq!(merged.segments[1].job, Some(JobId(5)));
        assert_eq!(merged.segments[2].machine, 2);
        assert_eq!(merged.segments[2].job, Some(JobId(4)));
        assert_eq!(merged.segments[3].machine, 3);
        assert_eq!(merged.segments[3].job, None);
    }

    #[test]
    fn energy_is_the_sum_of_shard_energies_and_speeds_add() {
        let a = shard_schedule(1, &[(0, 0.0, 2.0, 1.5, Some(0))]);
        let b = shard_schedule(1, &[(0, 1.0, 3.0, 2.0, Some(0))]);
        let pieces = [
            ShardPiece {
                schedule: &a,
                jobs: &[JobId(0)],
            },
            ShardPiece {
                schedule: &b,
                jobs: &[JobId(1)],
            },
        ];
        let merged = merge_frontiers(1, &pieces).unwrap();
        let alpha = 2.5;
        let sum = a.energy(alpha) + b.energy(alpha);
        assert!((merged.energy(alpha) - sum).abs() <= 1e-12 * sum.max(1.0));
        // On the overlap [1, 2) the logical speed is the sum of the shards'.
        assert!((merged.total_speed_at(1.5) - 3.5).abs() < 1e-12);
        assert!((merged.total_speed_at(0.5) - 1.5).abs() < 1e-12);
        assert!((merged.total_speed_at(2.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn merge_is_total_on_bad_input() {
        let wide = shard_schedule(2, &[(1, 0.0, 1.0, 1.0, Some(0))]);
        let err = merge_frontiers(
            1,
            &[ShardPiece {
                schedule: &wide,
                jobs: &[JobId(0)],
            }],
        );
        assert!(err.is_err(), "machine outside the shard's lanes");
        let dangling = shard_schedule(1, &[(0, 0.0, 1.0, 1.0, Some(7))]);
        let err = merge_frontiers(
            1,
            &[ShardPiece {
                schedule: &dangling,
                jobs: &[JobId(0)],
            }],
        );
        assert!(err.is_err(), "local id outside the map");
        assert!(merge_frontiers(0, &[]).is_err(), "zero machines per shard");
        let empty = merge_frontiers(3, &[]).unwrap();
        assert_eq!(empty.machines, 0);
        assert!(empty.segments.is_empty());
    }
}
