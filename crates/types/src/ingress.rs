//! Service-facing ingestion types: tenant identifiers, the job *envelope* a
//! tenant submits to an ingestion daemon, and the typed errors an ingestion
//! boundary returns instead of panicking.
//!
//! The scheduling core identifies jobs by dense [`JobId`]s (`0..n` inside an
//! instance), an invariant clients of a long-running service cannot uphold —
//! they do not know how many jobs other tenants submitted.  A
//! [`JobEnvelope`] therefore carries the job's *model* fields plus the
//! tenant's own correlation tag; the service assigns the dense [`JobId`] at
//! ingestion time (in feed order, so each shard's accepted stream is a valid
//! instance) via [`JobEnvelope::job`].
//!
//! [`IngressError`] makes the service boundary *total*: every violation of
//! the ingress contract ([`check_arrival`](crate::check_arrival) validity,
//! arrival ordering, queue capacity, tenant quota, dual-price backpressure)
//! surfaces as a typed error the submitter can act on — retry, re-shard, or
//! drop — never as a panic and never as a poisoned scheduler run.

use std::fmt;

use crate::job::{Job, JobId};

/// Identifier of a tenant registered with an ingestion service.
///
/// Tenant ids are dense indices (`0..t`) into the service's tenant registry,
/// mirroring the [`JobId`] convention; all per-tenant accounting is indexed
/// by [`TenantId::index`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

impl TenantId {
    /// The dense index of this tenant.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A job as a tenant submits it — the model fields of a [`Job`] plus the
/// tenant's identity and correlation tag, *without* a dense [`JobId`] (the
/// service assigns one at ingestion time).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JobEnvelope {
    /// The submitting tenant.
    pub tenant: TenantId,
    /// An opaque client-side correlation tag, echoed back in the service's
    /// per-decision records so tenants can match outcomes to submissions.
    pub tag: u64,
    /// Release time `r_j` (the job enters the system no earlier than this).
    pub release: f64,
    /// Deadline `d_j > r_j`.
    pub deadline: f64,
    /// Workload `w_j > 0`.
    pub work: f64,
    /// Value `v_j ≥ 0` lost if the job is not finished — also the tenant's
    /// *declared willingness to pay*: a daemon's dual-price backpressure
    /// compares the rolling marginal energy price against this value.
    pub value: f64,
}

impl JobEnvelope {
    /// Creates an envelope.
    pub fn new(
        tenant: TenantId,
        tag: u64,
        release: f64,
        deadline: f64,
        work: f64,
        value: f64,
    ) -> Self {
        Self {
            tenant,
            tag,
            release,
            deadline,
            work,
            value,
        }
    }

    /// Materialises the envelope as a [`Job`] under the service-assigned
    /// dense id.
    pub fn job(&self, id: JobId) -> Job {
        Job {
            id,
            release: self.release,
            deadline: self.deadline,
            work: self.work,
            value: self.value,
        }
    }

    /// Checks the model-field sanity conditions ([`Job::validate`]) without
    /// assigning an id, returning the violation as a typed
    /// [`IngressError::InvalidJob`].
    pub fn validate(&self) -> Result<(), IngressError> {
        self.job(JobId(0)).validate().map_err(|e| {
            let reason = match e {
                crate::error::InstanceError::BadJob { reason, .. } => reason,
                other => other.to_string(),
            };
            IngressError::InvalidJob {
                tenant: self.tenant,
                tag: self.tag,
                reason,
            }
        })
    }
}

/// A typed rejection at the service's ingestion boundary.
///
/// Every way a submission can fail *before* reaching the scheduler is an
/// `IngressError` variant; scheduler-level rejections (the algorithm
/// declines a valid job) are *not* errors — they come back as ordinary
/// [`Decision`](crate::Decision)-level rejections in the service's records.
/// [`IngressError::is_retryable`] distinguishes transient congestion
/// (back off and resubmit) from submissions that can never succeed.
#[derive(Debug, Clone, PartialEq)]
pub enum IngressError {
    /// The submission names a tenant the service has no registration for.
    UnknownTenant(TenantId),
    /// The envelope's model fields are invalid (non-finite, deadline not
    /// after release, nonpositive work, negative value) — the violation
    /// [`check_arrival`](crate::check_arrival) would reject at feed time,
    /// caught at the boundary instead.
    InvalidJob {
        /// The submitting tenant.
        tenant: TenantId,
        /// The submission's correlation tag.
        tag: u64,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The envelope's release time lies too far before the shard's feed
    /// watermark: ingesting it would violate the nondecreasing-arrival
    /// contract [`check_arrival_order`](crate::check_arrival_order) enforces.
    Stale {
        /// The submitting tenant.
        tenant: TenantId,
        /// The submission's correlation tag.
        tag: u64,
        /// The stale release time.
        release: f64,
        /// The shard's current feed watermark (last feed time).
        watermark: f64,
        /// How far behind the watermark a release may lie and still be
        /// admitted.
        tolerance: f64,
    },
    /// The envelope's deadline already lies at or behind the shard's feed
    /// watermark: the job would be fed no earlier than the watermark, so it
    /// can no longer be completed — *dead on arrival*.  In the paper's
    /// model jobs arrive at their release time (always before the
    /// deadline), so an expired arrival is a contract violation the service
    /// converts into a typed rejection instead of poisoning the run.
    Expired {
        /// The submitting tenant.
        tenant: TenantId,
        /// The submission's correlation tag.
        tag: u64,
        /// The expired deadline.
        deadline: f64,
        /// The shard's current feed watermark (last feed time).
        watermark: f64,
    },
    /// The shard's bounded arrival queue is full — transient congestion;
    /// back off and resubmit.
    QueueFull {
        /// The shard whose queue rejected the submission.
        shard: usize,
        /// The queue's capacity.
        capacity: usize,
    },
    /// The tenant has reached its admission quota of outstanding
    /// (queued, not yet ingested) jobs.
    QuotaExceeded {
        /// The submitting tenant.
        tenant: TenantId,
        /// The tenant's outstanding-jobs quota.
        limit: usize,
    },
    /// Dual-price backpressure deferred the submission: the shard's rolling
    /// marginal price exceeds what this job (or its tenant) is willing to
    /// pay.  Transient — resubmit when the price falls.
    Backpressure {
        /// The submitting tenant.
        tenant: TenantId,
        /// The shard's rolling dual price at submission time.
        price: f64,
        /// The threshold the price exceeded (the smaller of the tenant's
        /// price ceiling and the job's declared value).
        threshold: f64,
    },
    /// The service is draining; no new submissions are accepted.
    ShuttingDown,
}

impl IngressError {
    /// Whether the submission may succeed if simply retried later:
    /// `true` for transient congestion ([`QueueFull`](Self::QueueFull),
    /// [`QuotaExceeded`](Self::QuotaExceeded),
    /// [`Backpressure`](Self::Backpressure)), `false` for submissions that
    /// can never succeed as-is.
    ///
    /// The match is exhaustive on purpose: a new variant forces an explicit
    /// classification here instead of silently inheriting one — producers'
    /// retry loops (`pss_serve`'s `RetryPolicy`) key their terminate-or-
    /// back-off decision on this contract.
    pub fn is_retryable(&self) -> bool {
        match self {
            // Transient congestion: the queue drains, quota slots free as
            // the worker ingests, and the rolling price falls when cheaper
            // batches feed — backing off and resubmitting can succeed.
            IngressError::QueueFull { .. }
            | IngressError::QuotaExceeded { .. }
            | IngressError::Backpressure { .. } => true,
            // Permanent for this envelope: the registration, the model
            // fields, and the relation of release/deadline to a
            // never-receding watermark cannot improve by waiting.
            IngressError::UnknownTenant(_)
            | IngressError::InvalidJob { .. }
            | IngressError::Stale { .. }
            | IngressError::Expired { .. }
            | IngressError::ShuttingDown => false,
        }
    }

    /// How far the observed shard price overshot the submission's threshold:
    /// `Some(price / threshold)` (≥ 1) for a price deferral
    /// ([`Backpressure`](Self::Backpressure)), `None` for every other error.
    ///
    /// Producers back off *proportionally* on this signal instead of
    /// blindly: the EWMA price decays towards cheaper batches at a rate set
    /// by the smoothing weight, so a 4x overshoot predictably needs longer
    /// than a 1.1x overshoot to clear.  `pss_serve`'s `RetryPolicy` scales
    /// its delay by this ratio.  Degenerate thresholds (zero, non-finite)
    /// report an overshoot of 1 — plain backoff.
    pub fn price_overshoot(&self) -> Option<f64> {
        match self {
            IngressError::Backpressure {
                price, threshold, ..
            } => {
                if price.is_finite() && *threshold > 0.0 && threshold.is_finite() {
                    Some((price / threshold).max(1.0))
                } else {
                    Some(1.0)
                }
            }
            _ => None,
        }
    }
}

impl fmt::Display for IngressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngressError::UnknownTenant(t) => write!(f, "unknown tenant {t}"),
            IngressError::InvalidJob {
                tenant,
                tag,
                reason,
            } => write!(f, "invalid job (tenant {tenant}, tag {tag}): {reason}"),
            IngressError::Stale {
                tenant,
                tag,
                release,
                watermark,
                tolerance,
            } => write!(
                f,
                "stale submission (tenant {tenant}, tag {tag}): release {release} lies more \
                 than {tolerance} before the shard watermark {watermark}"
            ),
            IngressError::Expired {
                tenant,
                tag,
                deadline,
                watermark,
            } => write!(
                f,
                "expired submission (tenant {tenant}, tag {tag}): deadline {deadline} already \
                 lies behind the shard watermark {watermark}"
            ),
            IngressError::QueueFull { shard, capacity } => {
                write!(f, "shard {shard} arrival queue full (capacity {capacity})")
            }
            IngressError::QuotaExceeded { tenant, limit } => {
                write!(
                    f,
                    "tenant {tenant} exceeded its quota of {limit} outstanding jobs"
                )
            }
            IngressError::Backpressure {
                tenant,
                price,
                threshold,
            } => write!(
                f,
                "backpressure for tenant {tenant}: dual price {price} exceeds threshold {threshold}"
            ),
            IngressError::ShuttingDown => write!(f, "service is shutting down"),
        }
    }
}

impl std::error::Error for IngressError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn envelope() -> JobEnvelope {
        JobEnvelope::new(TenantId(2), 77, 1.0, 5.0, 2.0, 10.0)
    }

    #[test]
    fn tenant_id_display_and_index() {
        assert_eq!(TenantId(3).to_string(), "t3");
        assert_eq!(TenantId(3).index(), 3);
    }

    #[test]
    fn envelope_materialises_as_a_job_under_the_assigned_id() {
        let env = envelope();
        let job = env.job(JobId(9));
        assert_eq!(job.id, JobId(9));
        assert_eq!(job.release, 1.0);
        assert_eq!(job.deadline, 5.0);
        assert_eq!(job.work, 2.0);
        assert_eq!(job.value, 10.0);
        assert!(env.validate().is_ok());
    }

    #[test]
    fn invalid_envelopes_surface_typed_errors() {
        let mut env = envelope();
        env.work = f64::NAN;
        match env.validate() {
            Err(IngressError::InvalidJob { tenant, tag, .. }) => {
                assert_eq!(tenant, TenantId(2));
                assert_eq!(tag, 77);
            }
            other => panic!("expected InvalidJob, got {other:?}"),
        }
        let mut env = envelope();
        env.deadline = env.release;
        assert!(env.validate().is_err());
    }

    #[test]
    fn retryability_classifies_variants() {
        assert!(IngressError::QueueFull {
            shard: 0,
            capacity: 8
        }
        .is_retryable());
        assert!(IngressError::QuotaExceeded {
            tenant: TenantId(0),
            limit: 4
        }
        .is_retryable());
        assert!(IngressError::Backpressure {
            tenant: TenantId(0),
            price: 2.0,
            threshold: 1.0
        }
        .is_retryable());
        assert!(!IngressError::ShuttingDown.is_retryable());
        assert!(!IngressError::UnknownTenant(TenantId(9)).is_retryable());
        assert!(envelope().validate().is_ok());
        let stale = IngressError::Stale {
            tenant: TenantId(1),
            tag: 0,
            release: 1.0,
            watermark: 5.0,
            tolerance: 0.5,
        };
        assert!(!stale.is_retryable());
        let expired = IngressError::Expired {
            tenant: TenantId(1),
            tag: 0,
            deadline: 3.0,
            watermark: 5.0,
        };
        assert!(!expired.is_retryable());
        assert!(expired.to_string().contains("deadline 3"));
    }

    #[test]
    fn price_overshoot_reports_the_deferral_ratio() {
        let deferred = IngressError::Backpressure {
            tenant: TenantId(0),
            price: 3.0,
            threshold: 1.5,
        };
        assert_eq!(deferred.price_overshoot(), Some(2.0));
        // Prices below the threshold (possible when the threshold comes
        // from a ceiling mid-update) clamp to plain backoff.
        let under = IngressError::Backpressure {
            tenant: TenantId(0),
            price: 0.5,
            threshold: 1.0,
        };
        assert_eq!(under.price_overshoot(), Some(1.0));
        // Degenerate thresholds degrade to plain backoff, not NaN/inf.
        let degenerate = IngressError::Backpressure {
            tenant: TenantId(0),
            price: 2.0,
            threshold: 0.0,
        };
        assert_eq!(degenerate.price_overshoot(), Some(1.0));
        assert_eq!(
            IngressError::QueueFull {
                shard: 0,
                capacity: 8
            }
            .price_overshoot(),
            None
        );
    }

    #[test]
    fn display_messages_are_informative() {
        let e = IngressError::Backpressure {
            tenant: TenantId(4),
            price: 3.25,
            threshold: 1.5,
        };
        let msg = e.to_string();
        assert!(msg.contains("t4") && msg.contains("3.25") && msg.contains("1.5"));
        assert!(IngressError::ShuttingDown
            .to_string()
            .contains("shutting down"));
    }
}
