//! Error types shared across the workspace.

use crate::job::JobId;
use std::fmt;

/// Errors raised when constructing or validating a problem instance.
#[derive(Debug, Clone, PartialEq)]
pub enum InstanceError {
    /// A job violates the model constraints (negative work, deadline before
    /// release, …).
    BadJob {
        /// The offending job.
        job: JobId,
        /// Human-readable description of the violation.
        reason: String,
    },
    /// The energy exponent `α` must be a finite number `> 1`.
    BadAlpha(f64),
    /// The instance must have at least one machine.
    NoMachines,
    /// Job ids must be the dense sequence `0..n`.
    NonDenseIds {
        /// Index at which the id mismatch was detected.
        position: usize,
        /// The id actually found at that position.
        found: JobId,
    },
}

impl fmt::Display for InstanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstanceError::BadJob { job, reason } => write!(f, "invalid job {job}: {reason}"),
            InstanceError::BadAlpha(a) => {
                write!(f, "energy exponent alpha must be finite and > 1, got {a}")
            }
            InstanceError::NoMachines => write!(f, "instance must have at least one machine"),
            InstanceError::NonDenseIds { position, found } => write!(
                f,
                "job ids must be dense 0..n: expected j{position} at position {position}, found {found}"
            ),
        }
    }
}

impl std::error::Error for InstanceError {}

/// Errors raised by schedule construction or execution.
#[derive(Debug, Clone, PartialEq)]
pub enum ScheduleError {
    /// A segment has a nonpositive duration or nonfinite endpoints.
    BadSegment(String),
    /// A segment refers to a machine index outside the instance.
    UnknownMachine(usize),
    /// A segment refers to a job id outside the instance.
    UnknownJob(JobId),
    /// The underlying numeric solver failed to converge.
    SolverDiverged(String),
    /// A generic invariant violation inside an algorithm.
    Internal(String),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::BadSegment(msg) => write!(f, "invalid schedule segment: {msg}"),
            ScheduleError::UnknownMachine(m) => write!(f, "segment refers to unknown machine {m}"),
            ScheduleError::UnknownJob(j) => write!(f, "segment refers to unknown job {j}"),
            ScheduleError::SolverDiverged(msg) => write!(f, "numeric solver diverged: {msg}"),
            ScheduleError::Internal(msg) => write!(f, "internal scheduling error: {msg}"),
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = InstanceError::BadJob {
            job: JobId(2),
            reason: "work is zero".into(),
        };
        assert!(e.to_string().contains("j2"));
        assert!(e.to_string().contains("work is zero"));

        let e = InstanceError::BadAlpha(0.5);
        assert!(e.to_string().contains("0.5"));

        let e = ScheduleError::UnknownMachine(9);
        assert!(e.to_string().contains('9'));

        let e = ScheduleError::UnknownJob(JobId(4));
        assert!(e.to_string().contains("j4"));
    }
}
