//! # pss-types
//!
//! Foundational types for the *Profitable Speed Scaling* workspace, a
//! reproduction of Kling & Pietrzyk, "Profitable Scheduling on Multiple
//! Speed-Scalable Processors" (SPAA 2013).
//!
//! This crate defines the problem model shared by every other crate:
//!
//! * [`Job`] — a preemptable job with release time, deadline, workload and
//!   value,
//! * [`Instance`] — a problem instance (job set, number of machines, energy
//!   exponent `α`),
//! * [`Schedule`] — a machine-level schedule as a set of constant-speed
//!   [`Segment`]s, together with cost accounting ([`Cost`]),
//! * [`validate`] — feasibility checking of schedules against instances,
//! * [`Scheduler`] — the batch algorithm trait implemented by the offline
//!   baselines, plus the event-driven online pair
//!   [`OnlineAlgorithm`]/[`OnlineScheduler`] (incremental arrivals via
//!   [`OnlineScheduler::on_arrival`], a never-revised committed
//!   [`OnlineScheduler::frontier`], and a blanket batch adapter) implemented
//!   by every online algorithm in the workspace,
//! * [`merge`] — reassembling one logical schedule from per-shard
//!   committed schedules ([`merge_frontiers`]: lane-offset machines,
//!   remapped job ids, additive speeds/energy — the frontier-merge half of
//!   the sharded-stream router),
//! * [`ingress`] — service-facing ingestion types: [`TenantId`],
//!   [`JobEnvelope`] (a submitted job before the service assigns its dense
//!   [`JobId`]) and the typed [`IngressError`]s a total
//!   ingestion boundary returns instead of panicking,
//! * [`num`] — tolerance-aware floating point helpers used by all numeric
//!   code in the workspace,
//! * [`snapshot`] — checkpoint/restore for long-running runs: versioned
//!   [`StateBlob`]s, the hand-rolled bounds-checked binary codec
//!   ([`BlobWriter`]/[`BlobReader`], no serde in the offline build), and
//!   the [`Checkpointable`]/[`SnapshotPart`] traits every online scheduler
//!   state implements (restores continue bit-identically; the JSON
//!   envelope lives in `pss-metrics`),
//! * [`seglog`] — the append-only realised-segment log behind O(active)
//!   checkpoints: checksummed [`SegmentLog`] records, [`LogCursor`]s,
//!   the [`FrontierPart`] inline-or-cursor frontier encoding and the
//!   [`LogCheckpointable`] trait (snapshot only live state, reassemble the
//!   frontier from a `(log, blob)` pair bit-identically).
//!
//! The model follows Section 2 of the paper: `m` speed-scalable processors,
//! power `P_α(s) = s^α` with `α > 1`, preemption and migration allowed, at
//! most one job per processor and one processor per job at any time, and the
//! cost of a schedule is the consumed energy plus the total value of jobs it
//! does not finish.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod error;
pub mod ingress;
pub mod instance;
pub mod job;
pub mod merge;
pub mod num;
pub mod scheduler;
pub mod seglog;
pub mod segment;
pub mod snapshot;
pub mod validate;

pub use cost::Cost;
pub use error::{InstanceError, ScheduleError};
pub use ingress::{IngressError, JobEnvelope, TenantId};
pub use instance::Instance;
pub use job::{Job, JobId};
pub use merge::{merge_frontiers, ShardPiece};
pub use num::Tolerance;
pub use scheduler::{
    check_arrival, check_arrival_order, fold_price, run_online, Decision, OnlineAlgorithm,
    OnlineScheduler, Scheduler, ARRIVAL_ORDER_TOLERANCE,
};
pub use seglog::{FrontierPart, LogCheckpointable, LogCursor, SegmentLog};
pub use segment::{Schedule, Segment};
pub use snapshot::{
    BlobReader, BlobWriter, Checkpointable, SnapshotError, SnapshotPart, StateBlob,
};
pub use validate::{validate_schedule, ValidationReport};
