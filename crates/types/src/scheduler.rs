//! Algorithm traits implemented across the workspace.

use crate::error::ScheduleError;
use crate::instance::Instance;
use crate::segment::Schedule;

/// A scheduling algorithm that maps an instance to a schedule.
///
/// Both offline algorithms (YDS, brute force, the convex-program solver) and
/// online algorithms implement this trait; it is what the experiment harness
/// and the simulator consume.
pub trait Scheduler {
    /// Human-readable name used in experiment tables (e.g. `"PD"`, `"OA"`,
    /// `"YDS"`).
    fn name(&self) -> String;

    /// Computes a schedule for the instance.
    ///
    /// Implementations must return a schedule over `instance.machines`
    /// machines whose segments respect the availability windows of the jobs
    /// they process; [`validate_schedule`](crate::validate::validate_schedule)
    /// checks this.
    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError>;
}

/// Marker trait for *online* algorithms.
///
/// An online algorithm must base every decision concerning times `< t` only
/// on jobs with release time `<= t`.  The trait is a marker because all our
/// online algorithms are implemented in the "plan revision" style of the
/// paper: they iterate over jobs in release order and only ever add work to
/// the future.  The simulator crate (`pss-sim`) additionally provides an
/// event-driven harness ([`pss-sim::replay`]) that re-runs a scheduler on
/// growing prefixes of the instance and checks that the produced past never
/// changes, which is the operational definition of "online".
pub trait OnlineScheduler: Scheduler {}

impl<T: Scheduler + ?Sized> Scheduler for &T {
    fn name(&self) -> String {
        (**self).name()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        (**self).schedule(instance)
    }
}

impl<T: Scheduler + ?Sized> Scheduler for Box<T> {
    fn name(&self) -> String {
        (**self).name()
    }

    fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
        (**self).schedule(instance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Noop;

    impl Scheduler for Noop {
        fn name(&self) -> String {
            "noop".into()
        }

        fn schedule(&self, instance: &Instance) -> Result<Schedule, ScheduleError> {
            Ok(Schedule::empty(instance.machines))
        }
    }

    #[test]
    fn blanket_impls_forward() {
        let inst = Instance::from_tuples(1, 2.0, vec![(0.0, 1.0, 1.0, 1.0)]).unwrap();
        let s = Noop;
        let by_ref: &dyn Scheduler = &s;
        assert_eq!(by_ref.name(), "noop");
        assert!(by_ref.schedule(&inst).is_ok());
        let boxed: Box<dyn Scheduler> = Box::new(Noop);
        assert_eq!(boxed.name(), "noop");
        assert!(boxed.schedule(&inst).unwrap().segments.is_empty());
    }
}
